// Air-surveillance scenario (the paper's motivating workload).
//
// In ADS-B, every aircraft broadcasts its position about once per second
// and air-traffic-control consumers need those updates within a hard
// latency budget. This example models a 20-broker WAN overlay carrying ten
// aircraft topics to ATC subscribers with a tight 2x-shortest-path
// deadline, and compares DCRD against every baseline under a 6% per-second
// link-failure rate — printing a side-by-side table like the paper's
// evaluation, plus the lateness distribution of the packets that missed.
//
//   ./air_surveillance [--pf 0.06] [--seconds 600] [--qos 2.0]
#include <iomanip>
#include <iostream>

#include "common/flags.h"
#include "sim/engine.h"
#include "sim/experiment.h"

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);

  dcrd::ScenarioConfig config;
  config.node_count = 20;
  config.topology = dcrd::TopologyKind::kRandomDegree;
  config.degree = 8;
  config.failure_probability = flags.GetDouble("pf", 0.06);
  config.qos_factor = flags.GetDouble("qos", 2.0);
  config.sim_time = dcrd::SimDuration::Seconds(flags.GetInt("seconds", 600));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  flags.ExitOnUnqueried();

  const std::vector<dcrd::RouterKind> routers = {
      dcrd::RouterKind::kDcrd, dcrd::RouterKind::kRTree,
      dcrd::RouterKind::kDTree, dcrd::RouterKind::kOracle,
      dcrd::RouterKind::kMultipath};

  std::cout << "ADS-B style workload: 10 aircraft topics, 1 position/s, "
               "deadline "
            << config.qos_factor << "x shortest path, Pf="
            << config.failure_probability << "\n\n";
  std::cout << std::left << std::setw(12) << "router" << std::right
            << std::setw(12) << "delivery" << std::setw(12) << "QoS"
            << std::setw(14) << "pkts/sub" << std::setw(14) << "late p50"
            << "\n";

  for (dcrd::RouterKind router : routers) {
    dcrd::ScenarioConfig run = config;
    run.router = router;
    const dcrd::RunSummary summary = dcrd::RunScenario(run);

    double late_p50 = 0.0;
    if (!summary.lateness_ratios.empty()) {
      std::vector<double> sorted = summary.lateness_ratios;
      std::sort(sorted.begin(), sorted.end());
      late_p50 = sorted[sorted.size() / 2];
    }
    std::cout << std::left << std::setw(12) << dcrd::RouterName(router)
              << std::right << std::fixed << std::setprecision(4)
              << std::setw(12) << summary.delivery_ratio() << std::setw(12)
              << summary.qos_ratio() << std::setw(14)
              << summary.packets_per_subscriber() << std::setw(14)
              << late_p50 << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "\n(late p50: median actual-delay/deadline ratio among "
               "deadline-missing deliveries; 0 = nothing missed)\n";
  return 0;
}
