// Deadline explorer: a direct look at DCRD's <d,r> machinery.
//
// Instead of running a full simulation, this example builds one overlay,
// computes the DCRD tables for a chosen (publisher, subscriber, deadline)
// and dumps every broker's sending list — expected delay d, delivery ratio
// r, the Theorem-1 d/r sort keys, and the per-node delay budget D_XS. Use
// it to see how tightening the deadline prunes the lists until rerouting
// has nowhere to go.
//
//   ./deadline_explorer [--nodes 12] [--degree 4] [--qos 3.0] [--pf 0.06]
#include <iomanip>
#include <iostream>

#include "common/flags.h"
#include "dcrd/dr_computation.h"
#include "graph/shortest_path.h"
#include "graph/topology.h"
#include "net/link_monitor.h"
#include "net/failure_schedule.h"

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const std::size_t nodes =
      static_cast<std::size_t>(flags.GetInt("nodes", 12));
  const std::size_t degree =
      static_cast<std::size_t>(flags.GetInt("degree", 4));
  const double qos_factor = flags.GetDouble("qos", 3.0);
  const double pf = flags.GetDouble("pf", 0.06);

  dcrd::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 3)));
  flags.ExitOnUnqueried();
  dcrd::Rng topo_rng = rng.Fork("topology");
  const dcrd::Graph graph = dcrd::RandomConnected(nodes, degree, topo_rng);

  const dcrd::FailureSchedule failures(rng.Fork("failures")(), pf);
  dcrd::LinkMonitorConfig monitor_config;
  monitor_config.loss_rate = 1e-4;
  dcrd::LinkMonitor monitor(graph, failures, monitor_config,
                            rng.Fork("probes"));
  monitor.MeasureAt(dcrd::SimTime::Zero());

  const dcrd::NodeId publisher(0);
  const dcrd::NodeId subscriber(
      static_cast<dcrd::NodeId::underlying_type>(nodes - 1));
  const dcrd::PathTree true_tree = dcrd::ShortestDelayTree(graph, publisher);
  const double shortest_ms =
      true_tree.distance[subscriber.underlying()].millis();
  const double deadline_us = shortest_ms * 1000.0 * qos_factor;

  std::cout << "overlay: " << nodes << " brokers, degree " << degree
            << ", publisher " << publisher << ", subscriber " << subscriber
            << "\nshortest-path delay " << shortest_ms << " ms; deadline "
            << deadline_us / 1000.0 << " ms (factor " << qos_factor
            << ")\n\n";

  const std::vector<double> publisher_dist =
      dcrd::MonitoredDistancesFrom(graph, monitor.view(), publisher);
  dcrd::DrComputationConfig computation;
  const dcrd::DestinationTables tables = dcrd::ComputeDestinationTables(
      graph, monitor.view(), subscriber, deadline_us, publisher_dist,
      computation);

  std::cout << "<d,r> converged in " << tables.sweeps_used << " sweeps\n\n";
  for (std::size_t v = 0; v < nodes; ++v) {
    const dcrd::NodeId node(static_cast<dcrd::NodeId::underlying_type>(v));
    const dcrd::NodeTables& nt = tables.per_node[v];
    std::cout << node << "  budget D_XS=" << std::setprecision(4)
              << tables.budget_us[v] / 1000.0 << "ms  d="
              << (nt.dr.reachable() ? nt.dr.d_us / 1000.0 : -1.0)
              << "ms r=" << nt.dr.r << "\n";
    if (node == subscriber) {
      std::cout << "    (destination)\n";
      continue;
    }
    std::cout << "    sending list:";
    for (const dcrd::ViaEntry& entry : nt.primary) {
      std::cout << "  " << entry.neighbor << "(d/r="
                << entry.d_via_us / entry.r_via / 1000.0 << ")";
    }
    if (nt.primary.empty()) std::cout << "  <empty>";
    if (!nt.fallback.empty()) {
      std::cout << "  | fallback:";
      for (const dcrd::ViaEntry& entry : nt.fallback) {
        std::cout << "  " << entry.neighbor;
      }
    }
    std::cout << "\n";
  }
  return 0;
}
