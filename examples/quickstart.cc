// Quickstart: the smallest end-to-end use of the DCRD library.
//
// Builds a 12-broker random overlay, registers one topic with a handful of
// subscribers, injects per-second link failures, and runs DCRD for five
// simulated minutes — printing the three headline metrics at the end.
//
//   ./quickstart [--pf 0.06] [--nodes 12] [--degree 4] [--seconds 300]
#include <iostream>

#include "common/flags.h"
#include "sim/engine.h"

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);

  dcrd::ScenarioConfig config;
  config.node_count = static_cast<std::size_t>(flags.GetInt("nodes", 12));
  config.topology = dcrd::TopologyKind::kRandomDegree;
  config.degree = static_cast<std::size_t>(flags.GetInt("degree", 4));
  config.failure_probability = flags.GetDouble("pf", 0.06);
  config.loss_rate = flags.GetDouble("pl", 1e-4);
  config.topic_count = 3;
  config.sim_time =
      dcrd::SimDuration::Seconds(flags.GetInt("seconds", 300));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 7));
  flags.ExitOnUnqueried();
  config.router = dcrd::RouterKind::kDcrd;

  std::cout << "Running: " << config.Describe() << "\n";
  const dcrd::RunSummary summary = dcrd::RunScenario(config);

  std::cout << "messages published     : " << summary.messages_published
            << "\n"
            << "(message, subscriber)  : " << summary.expected_pairs << "\n"
            << "delivery ratio         : " << summary.delivery_ratio() << "\n"
            << "QoS delivery ratio     : " << summary.qos_ratio() << "\n"
            << "packets / subscriber   : " << summary.packets_per_subscriber()
            << "\n"
            << "ACK transmissions      : " << summary.ack_transmissions
            << "\n";
  return 0;
}
