// dcrdsim — the full-surface command-line driver for the simulator.
//
// Exposes every ScenarioConfig knob as a flag, runs one scenario (or one
// per router with --all), and prints the summary. The quickest way to poke
// at a hypothesis without writing a bench.
//
//   ./dcrdsim --router DCRD --nodes 40 --degree 6 --pf 0.08 --seconds 600
//   ./dcrdsim --all --topology mesh --pf 0.04
//   ./dcrdsim --router DCRD --pf 0.1 --outage_epochs 10 --persistence
//   ./dcrdsim --all --load overlay.txt        # topology_tool edge list
//   ./dcrdsim --router DCRD --distributed     # live <d,r> gossip control plane
//   ./dcrdsim --router DCRD --broker_mtbf 60 --peer_death --check_invariants
#include <iomanip>
#include <iostream>

#include "common/flags.h"
#include "sim/engine.h"
#include "sim/stats.h"

namespace {

const std::vector<std::string> kKnownFlags = {
    "router",      "all",          "nodes",       "topology",
    "degree",      "pf",           "pl",          "m",
    "qos",         "topics",       "seconds",     "seed",
    "outage_epochs", "node_pf",    "node_outage_epochs",
    "serialization_ms", "persistence", "multipath_paths",
    "monitor_s",   "rate",         "ack_delay_factor", "verbose",
    "histogram",   "heterogeneity", "jitter",          "ordering",
    "churn",       "load",          "distributed",
    "gray",        "gray_loss",     "gray_delay_factor", "gray_asymmetry",
    "adaptive_rto", "check_invariants",
    "broker_mtbf", "broker_mttr",   "peer_death",  "peer_death_threshold",
};

dcrd::RouterKind ParseRouter(const std::string& name) {
  if (name == "DCRD") return dcrd::RouterKind::kDcrd;
  if (name == "R-Tree") return dcrd::RouterKind::kRTree;
  if (name == "D-Tree") return dcrd::RouterKind::kDTree;
  if (name == "ORACLE") return dcrd::RouterKind::kOracle;
  if (name == "Multipath") return dcrd::RouterKind::kMultipath;
  std::cerr << "unknown --router '" << name
            << "' (DCRD, R-Tree, D-Tree, ORACLE, Multipath); using DCRD\n";
  return dcrd::RouterKind::kDcrd;
}

void PrintSummary(const dcrd::ScenarioConfig& config,
                  const dcrd::RunSummary& summary, bool histogram) {
  std::cout << std::left << std::setw(12) << dcrd::RouterName(config.router)
            << std::right << std::fixed << std::setprecision(4)
            << std::setw(12) << summary.delivery_ratio() << std::setw(12)
            << summary.qos_ratio() << std::setw(14)
            << summary.packets_per_subscriber() << std::setw(11)
            << dcrd::Quantile(summary.delay_ms_samples, 0.5) << std::setw(11)
            << dcrd::Quantile(summary.delay_ms_samples, 0.95) << std::setw(11)
            << dcrd::Quantile(summary.delay_ms_samples, 0.99) << "\n";
  std::cout.unsetf(std::ios::fixed);
  if (summary.invariant_violation_count > 0) {
    std::cout << "INVARIANT VIOLATIONS (" << summary.invariant_violation_count
              << "):\n";
    for (const std::string& violation : summary.invariant_violations) {
      std::cout << "  " << violation << "\n";
    }
  }
  if (histogram && !summary.delay_ms_samples.empty()) {
    const double hi = dcrd::Quantile(summary.delay_ms_samples, 0.999) + 1.0;
    std::cout << "\nend-to-end delay (ms):\n"
              << dcrd::MakeHistogram(summary.delay_ms_samples, 0.0, hi, 20)
                     .Render()
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  // Flags are read lazily below, so typo rejection uses the explicit
  // allow-list rather than ExitOnUnqueried().
  bool unknown_flags = false;
  for (const std::string& unknown : flags.UnknownFlags(kKnownFlags)) {
    std::cerr << "error: unknown flag --" << unknown << "\n";
    unknown_flags = true;
  }
  if (unknown_flags) return 2;
  if (flags.GetBool("verbose", false)) {
    dcrd::GlobalLogLevel() = dcrd::LogLevel::kDebug;
  }

  dcrd::ScenarioConfig config;
  config.node_count = static_cast<std::size_t>(flags.GetInt("nodes", 20));
  config.topology = flags.GetString("topology", "degree") == "mesh"
                        ? dcrd::TopologyKind::kFullMesh
                        : dcrd::TopologyKind::kRandomDegree;
  config.degree = static_cast<std::size_t>(flags.GetInt("degree", 8));
  config.failure_probability = flags.GetDouble("pf", 0.06);
  config.link_outage_epochs =
      static_cast<int>(flags.GetInt("outage_epochs", 1));
  config.node_failure_probability = flags.GetDouble("node_pf", 0.0);
  config.node_outage_epochs =
      static_cast<int>(flags.GetInt("node_outage_epochs", 1));
  config.loss_rate = flags.GetDouble("pl", 1e-4);
  config.max_transmissions = static_cast<int>(flags.GetInt("m", 1));
  config.qos_factor = flags.GetDouble("qos", 3.0);
  config.topic_count = static_cast<std::size_t>(flags.GetInt("topics", 10));
  config.sim_time = dcrd::SimDuration::Seconds(flags.GetInt("seconds", 600));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  config.link_serialization =
      dcrd::SimDuration::Millis(flags.GetInt("serialization_ms", 0));
  config.dcrd_persistence = flags.GetBool("persistence", false);
  config.multipath_path_count =
      static_cast<std::size_t>(flags.GetInt("multipath_paths", 2));
  config.monitor_interval =
      dcrd::SimDuration::Seconds(flags.GetInt("monitor_s", 300));
  config.ack_delay_factor = flags.GetDouble("ack_delay_factor", 0.0);
  config.failure_heterogeneity = flags.GetDouble("heterogeneity", 0.0);
  config.delay_jitter = flags.GetDouble("jitter", 0.0);
  config.subscription_churn = flags.GetDouble("churn", 0.0);
  config.gray_probability = flags.GetDouble("gray", 0.0);
  config.gray_extra_loss = flags.GetDouble("gray_loss", 0.25);
  config.gray_delay_factor = flags.GetDouble("gray_delay_factor", 3.0);
  config.gray_asymmetry = flags.GetDouble("gray_asymmetry", 0.5);
  config.adaptive_rto = flags.GetBool("adaptive_rto", false);
  // Crash–recovery: --broker_mtbf S turns the fail-stop process on (mean up
  // seconds between crashes); --peer_death arms ACK-silence detection.
  config.broker_mtbf =
      dcrd::SimDuration::Seconds(flags.GetInt("broker_mtbf", 0));
  config.broker_mttr =
      dcrd::SimDuration::Seconds(flags.GetInt("broker_mttr", 5));
  config.peer_death_detection = flags.GetBool("peer_death", false);
  config.peer_death_threshold =
      static_cast<int>(flags.GetInt("peer_death_threshold", 2));
  config.enable_invariant_checker = flags.GetBool("check_invariants", false);
  config.topology_file = flags.GetString("load", "");
  config.dcrd_distributed = flags.GetBool("distributed", false);
  const std::string ordering = flags.GetString("ordering", "theorem1");
  config.dcrd_ordering =
      ordering == "delay" ? dcrd::OrderingPolicy::kDelayFirst
      : ordering == "reliability"
          ? dcrd::OrderingPolicy::kReliabilityFirst
          : dcrd::OrderingPolicy::kTheorem1;
  if (flags.Has("rate")) {
    config.publish_interval =
        dcrd::SimDuration::FromSecondsF(1.0 / flags.GetDouble("rate", 1.0));
  }

  std::vector<dcrd::RouterKind> routers;
  if (flags.GetBool("all", false)) {
    routers = {dcrd::RouterKind::kDcrd, dcrd::RouterKind::kRTree,
               dcrd::RouterKind::kDTree, dcrd::RouterKind::kOracle,
               dcrd::RouterKind::kMultipath};
  } else {
    routers = {ParseRouter(flags.GetString("router", "DCRD"))};
  }

  config.router = routers.front();
  std::cout << "scenario: " << config.Describe() << "\n\n"
            << std::left << std::setw(12) << "router" << std::right
            << std::setw(12) << "delivery" << std::setw(12) << "QoS"
            << std::setw(14) << "pkts/sub" << std::setw(11) << "p50 ms"
            << std::setw(11) << "p95 ms" << std::setw(11) << "p99 ms"
            << "\n";
  const bool histogram = flags.GetBool("histogram", false);
  for (const dcrd::RouterKind router : routers) {
    config.router = router;
    PrintSummary(config, dcrd::RunScenario(config), histogram);
  }
  return 0;
}
