// topology_tool — generate, inspect and export overlay topologies.
//
//   ./topology_tool --nodes 20 --degree 5 --seed 3            # stats only
//   ./topology_tool --nodes 20 --mesh --dot overlay.dot       # Graphviz
//   ./topology_tool --nodes 40 --degree 8 --edges overlay.txt # edge list
//   ./topology_tool --load overlay.txt                        # re-inspect
//
// Stats reported: degree distribution, delay-weighted diameter, and mean
// shortest-path delay — the quantities that drive every deadline in the
// simulator (deadline = qos_factor x shortest-path delay).
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/flags.h"
#include "graph/connectivity.h"
#include "graph/io.h"
#include "graph/shortest_path.h"
#include "graph/topology.h"

namespace {

void PrintStats(const dcrd::Graph& graph) {
  std::cout << "nodes: " << graph.node_count()
            << "  edges: " << graph.edge_count()
            << "  connected: " << (dcrd::IsConnected(graph) ? "yes" : "no")
            << "\n";

  std::size_t min_degree = SIZE_MAX, max_degree = 0, total_degree = 0;
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    const std::size_t d =
        graph.degree(dcrd::NodeId(static_cast<std::uint32_t>(v)));
    min_degree = std::min(min_degree, d);
    max_degree = std::max(max_degree, d);
    total_degree += d;
  }
  std::cout << "degree: min " << min_degree << ", mean "
            << static_cast<double>(total_degree) /
                   static_cast<double>(graph.node_count())
            << ", max " << max_degree << "\n";

  dcrd::SimDuration diameter = dcrd::SimDuration::Zero();
  double total_ms = 0.0;
  std::size_t pairs = 0;
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    const auto tree = dcrd::ShortestDelayTree(
        graph, dcrd::NodeId(static_cast<std::uint32_t>(v)));
    for (std::size_t u = 0; u < graph.node_count(); ++u) {
      if (u == v || !tree.Reachable(dcrd::NodeId(static_cast<std::uint32_t>(u))))
        continue;
      diameter = std::max(diameter, tree.distance[u]);
      total_ms += tree.distance[u].millis();
      ++pairs;
    }
  }
  std::cout << "delay diameter: " << diameter.millis() << " ms; mean "
            << "shortest-path delay: " << (pairs ? total_ms / pairs : 0)
            << " ms\n";
}

}  // namespace

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  // Read the full flag set up front: generation flags are ignored with
  // --load, but they are not typos.
  const std::string load = flags.GetString("load", "");
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  const auto nodes = static_cast<std::size_t>(flags.GetInt("nodes", 20));
  const bool mesh = flags.GetBool("mesh", false);
  const auto degree = static_cast<std::size_t>(flags.GetInt("degree", 5));
  const bool want_dot = flags.Has("dot");
  const std::string dot = flags.GetString("dot", "");
  const bool want_edges = flags.Has("edges");
  const std::string edges = flags.GetString("edges", "");
  flags.ExitOnUnqueried();

  dcrd::Graph graph(3);
  if (!load.empty()) {
    std::ifstream file(load);
    if (!file) {
      std::cerr << "cannot open " << load << "\n";
      return 1;
    }
    std::string error;
    const auto loaded = dcrd::ReadEdgeList(file, &error);
    if (!loaded.has_value()) {
      std::cerr << "parse error: " << error << "\n";
      return 1;
    }
    graph = *loaded;
  } else {
    dcrd::Rng rng(seed);
    graph = mesh ? dcrd::FullMesh(nodes, rng)
                 : dcrd::RandomConnected(nodes, degree, rng);
  }

  PrintStats(graph);

  if (want_dot) {
    std::ofstream file(dot);
    file << dcrd::ToDot(graph);
    std::cout << "wrote " << dot << "\n";
  }
  if (want_edges) {
    std::ofstream file(edges);
    dcrd::WriteEdgeList(file, graph);
    std::cout << "wrote " << edges << "\n";
  }
  return 0;
}
