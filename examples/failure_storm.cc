// Failure storm: how does each protocol degrade as the network melts?
//
// Sweeps the per-second link-failure probability from calm (0) to storm
// (0.20 — twice the paper's worst case) on a sparse degree-4 overlay, the
// regime where fixed trees lose whole subtrees and rerouting has to work
// hardest. Prints delivery and QoS series per router; watch the trees fall
// off a cliff while DCRD tracks the ORACLE.
//
//   ./failure_storm [--seconds 400] [--reps 2] [--nodes 20] [--degree 4]
#include <iostream>

#include "common/flags.h"
#include "sim/experiment.h"

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);

  dcrd::ScenarioConfig base;
  base.node_count = static_cast<std::size_t>(flags.GetInt("nodes", 20));
  base.topology = dcrd::TopologyKind::kRandomDegree;
  base.degree = static_cast<std::size_t>(flags.GetInt("degree", 4));
  base.sim_time = dcrd::SimDuration::Seconds(flags.GetInt("seconds", 400));
  base.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 11));
  const int reps = static_cast<int>(flags.GetInt("reps", 2));
  flags.ExitOnUnqueried();

  const std::vector<dcrd::RouterKind> routers = {
      dcrd::RouterKind::kDcrd, dcrd::RouterKind::kRTree,
      dcrd::RouterKind::kDTree, dcrd::RouterKind::kOracle,
      dcrd::RouterKind::kMultipath};

  const dcrd::SweepResult sweep = dcrd::RunSweep(
      "Failure storm on a degree-" + std::to_string(base.degree) +
          " overlay",
      "Pf", base, routers, {0.0, 0.05, 0.10, 0.15, 0.20},
      [](double pf, dcrd::ScenarioConfig& config) {
        config.failure_probability = pf;
      },
      reps);

  dcrd::PrintStandardPanels(std::cout, sweep);
  return 0;
}
