# Empty compiler generated dependencies file for ext2_persistence.
# This may be replaced when dependencies are built.
