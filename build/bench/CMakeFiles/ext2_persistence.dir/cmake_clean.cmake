file(REMOVE_RECURSE
  "CMakeFiles/ext2_persistence.dir/ext2_persistence.cc.o"
  "CMakeFiles/ext2_persistence.dir/ext2_persistence.cc.o.d"
  "ext2_persistence"
  "ext2_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext2_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
