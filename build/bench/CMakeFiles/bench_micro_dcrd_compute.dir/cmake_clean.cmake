file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_dcrd_compute.dir/bench_micro_dcrd_compute.cc.o"
  "CMakeFiles/bench_micro_dcrd_compute.dir/bench_micro_dcrd_compute.cc.o.d"
  "bench_micro_dcrd_compute"
  "bench_micro_dcrd_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_dcrd_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
