# Empty dependencies file for bench_micro_dcrd_compute.
# This may be replaced when dependencies are built.
