file(REMOVE_RECURSE
  "CMakeFiles/ablation_dcrd.dir/ablation_dcrd.cc.o"
  "CMakeFiles/ablation_dcrd.dir/ablation_dcrd.cc.o.d"
  "ablation_dcrd"
  "ablation_dcrd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dcrd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
