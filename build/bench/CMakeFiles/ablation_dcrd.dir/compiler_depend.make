# Empty compiler generated dependencies file for ablation_dcrd.
# This may be replaced when dependencies are built.
