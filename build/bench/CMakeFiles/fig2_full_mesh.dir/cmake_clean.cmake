file(REMOVE_RECURSE
  "CMakeFiles/fig2_full_mesh.dir/fig2_full_mesh.cc.o"
  "CMakeFiles/fig2_full_mesh.dir/fig2_full_mesh.cc.o.d"
  "fig2_full_mesh"
  "fig2_full_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_full_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
