# Empty compiler generated dependencies file for fig2_full_mesh.
# This may be replaced when dependencies are built.
