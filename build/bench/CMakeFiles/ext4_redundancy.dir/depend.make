# Empty dependencies file for ext4_redundancy.
# This may be replaced when dependencies are built.
