file(REMOVE_RECURSE
  "CMakeFiles/ext4_redundancy.dir/ext4_redundancy.cc.o"
  "CMakeFiles/ext4_redundancy.dir/ext4_redundancy.cc.o.d"
  "ext4_redundancy"
  "ext4_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext4_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
