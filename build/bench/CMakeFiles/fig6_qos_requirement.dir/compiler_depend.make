# Empty compiler generated dependencies file for fig6_qos_requirement.
# This may be replaced when dependencies are built.
