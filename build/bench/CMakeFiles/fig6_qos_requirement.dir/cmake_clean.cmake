file(REMOVE_RECURSE
  "CMakeFiles/fig6_qos_requirement.dir/fig6_qos_requirement.cc.o"
  "CMakeFiles/fig6_qos_requirement.dir/fig6_qos_requirement.cc.o.d"
  "fig6_qos_requirement"
  "fig6_qos_requirement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_qos_requirement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
