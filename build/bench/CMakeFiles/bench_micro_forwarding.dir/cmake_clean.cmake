file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_forwarding.dir/bench_micro_forwarding.cc.o"
  "CMakeFiles/bench_micro_forwarding.dir/bench_micro_forwarding.cc.o.d"
  "bench_micro_forwarding"
  "bench_micro_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
