file(REMOVE_RECURSE
  "CMakeFiles/fig3_degree5.dir/fig3_degree5.cc.o"
  "CMakeFiles/fig3_degree5.dir/fig3_degree5.cc.o.d"
  "fig3_degree5"
  "fig3_degree5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_degree5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
