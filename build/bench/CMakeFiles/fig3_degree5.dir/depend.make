# Empty dependencies file for fig3_degree5.
# This may be replaced when dependencies are built.
