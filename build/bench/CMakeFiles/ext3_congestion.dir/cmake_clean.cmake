file(REMOVE_RECURSE
  "CMakeFiles/ext3_congestion.dir/ext3_congestion.cc.o"
  "CMakeFiles/ext3_congestion.dir/ext3_congestion.cc.o.d"
  "ext3_congestion"
  "ext3_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext3_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
