# Empty compiler generated dependencies file for ext3_congestion.
# This may be replaced when dependencies are built.
