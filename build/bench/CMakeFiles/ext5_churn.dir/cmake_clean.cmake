file(REMOVE_RECURSE
  "CMakeFiles/ext5_churn.dir/ext5_churn.cc.o"
  "CMakeFiles/ext5_churn.dir/ext5_churn.cc.o.d"
  "ext5_churn"
  "ext5_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext5_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
