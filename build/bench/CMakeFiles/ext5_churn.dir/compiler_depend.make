# Empty compiler generated dependencies file for ext5_churn.
# This may be replaced when dependencies are built.
