# Empty dependencies file for fig4_connectivity.
# This may be replaced when dependencies are built.
