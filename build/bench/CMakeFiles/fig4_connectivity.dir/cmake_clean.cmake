file(REMOVE_RECURSE
  "CMakeFiles/fig4_connectivity.dir/fig4_connectivity.cc.o"
  "CMakeFiles/fig4_connectivity.dir/fig4_connectivity.cc.o.d"
  "fig4_connectivity"
  "fig4_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
