file(REMOVE_RECURSE
  "CMakeFiles/ext6_control_plane.dir/ext6_control_plane.cc.o"
  "CMakeFiles/ext6_control_plane.dir/ext6_control_plane.cc.o.d"
  "ext6_control_plane"
  "ext6_control_plane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext6_control_plane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
