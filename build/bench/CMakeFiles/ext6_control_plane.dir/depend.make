# Empty dependencies file for ext6_control_plane.
# This may be replaced when dependencies are built.
