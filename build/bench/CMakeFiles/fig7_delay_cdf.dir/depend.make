# Empty dependencies file for fig7_delay_cdf.
# This may be replaced when dependencies are built.
