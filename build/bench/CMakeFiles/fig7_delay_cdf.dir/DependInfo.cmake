
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_delay_cdf.cc" "bench/CMakeFiles/fig7_delay_cdf.dir/fig7_delay_cdf.cc.o" "gcc" "bench/CMakeFiles/fig7_delay_cdf.dir/fig7_delay_cdf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dcrd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dcrd/CMakeFiles/dcrd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dcrd_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dcrd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dcrd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/dcrd_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/dcrd_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcrd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
