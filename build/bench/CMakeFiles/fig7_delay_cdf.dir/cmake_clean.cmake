file(REMOVE_RECURSE
  "CMakeFiles/fig7_delay_cdf.dir/fig7_delay_cdf.cc.o"
  "CMakeFiles/fig7_delay_cdf.dir/fig7_delay_cdf.cc.o.d"
  "fig7_delay_cdf"
  "fig7_delay_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_delay_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
