# Empty compiler generated dependencies file for ext1_node_failures.
# This may be replaced when dependencies are built.
