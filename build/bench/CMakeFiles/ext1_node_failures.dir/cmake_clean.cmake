file(REMOVE_RECURSE
  "CMakeFiles/ext1_node_failures.dir/ext1_node_failures.cc.o"
  "CMakeFiles/ext1_node_failures.dir/ext1_node_failures.cc.o.d"
  "ext1_node_failures"
  "ext1_node_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext1_node_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
