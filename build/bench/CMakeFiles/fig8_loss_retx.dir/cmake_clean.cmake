file(REMOVE_RECURSE
  "CMakeFiles/fig8_loss_retx.dir/fig8_loss_retx.cc.o"
  "CMakeFiles/fig8_loss_retx.dir/fig8_loss_retx.cc.o.d"
  "fig8_loss_retx"
  "fig8_loss_retx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_loss_retx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
