# Empty compiler generated dependencies file for fig8_loss_retx.
# This may be replaced when dependencies are built.
