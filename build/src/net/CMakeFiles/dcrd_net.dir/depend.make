# Empty dependencies file for dcrd_net.
# This may be replaced when dependencies are built.
