file(REMOVE_RECURSE
  "libdcrd_net.a"
)
