
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/failure_schedule.cc" "src/net/CMakeFiles/dcrd_net.dir/failure_schedule.cc.o" "gcc" "src/net/CMakeFiles/dcrd_net.dir/failure_schedule.cc.o.d"
  "/root/repo/src/net/link_monitor.cc" "src/net/CMakeFiles/dcrd_net.dir/link_monitor.cc.o" "gcc" "src/net/CMakeFiles/dcrd_net.dir/link_monitor.cc.o.d"
  "/root/repo/src/net/overlay_network.cc" "src/net/CMakeFiles/dcrd_net.dir/overlay_network.cc.o" "gcc" "src/net/CMakeFiles/dcrd_net.dir/overlay_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcrd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/dcrd_event.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dcrd_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
