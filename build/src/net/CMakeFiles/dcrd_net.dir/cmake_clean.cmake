file(REMOVE_RECURSE
  "CMakeFiles/dcrd_net.dir/failure_schedule.cc.o"
  "CMakeFiles/dcrd_net.dir/failure_schedule.cc.o.d"
  "CMakeFiles/dcrd_net.dir/link_monitor.cc.o"
  "CMakeFiles/dcrd_net.dir/link_monitor.cc.o.d"
  "CMakeFiles/dcrd_net.dir/overlay_network.cc.o"
  "CMakeFiles/dcrd_net.dir/overlay_network.cc.o.d"
  "libdcrd_net.a"
  "libdcrd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
