file(REMOVE_RECURSE
  "libdcrd_sim.a"
)
