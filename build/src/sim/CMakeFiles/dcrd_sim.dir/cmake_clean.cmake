file(REMOVE_RECURSE
  "CMakeFiles/dcrd_sim.dir/engine.cc.o"
  "CMakeFiles/dcrd_sim.dir/engine.cc.o.d"
  "CMakeFiles/dcrd_sim.dir/experiment.cc.o"
  "CMakeFiles/dcrd_sim.dir/experiment.cc.o.d"
  "CMakeFiles/dcrd_sim.dir/metrics.cc.o"
  "CMakeFiles/dcrd_sim.dir/metrics.cc.o.d"
  "CMakeFiles/dcrd_sim.dir/report.cc.o"
  "CMakeFiles/dcrd_sim.dir/report.cc.o.d"
  "CMakeFiles/dcrd_sim.dir/scenario.cc.o"
  "CMakeFiles/dcrd_sim.dir/scenario.cc.o.d"
  "CMakeFiles/dcrd_sim.dir/stats.cc.o"
  "CMakeFiles/dcrd_sim.dir/stats.cc.o.d"
  "CMakeFiles/dcrd_sim.dir/workload.cc.o"
  "CMakeFiles/dcrd_sim.dir/workload.cc.o.d"
  "libdcrd_sim.a"
  "libdcrd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
