
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cc" "src/sim/CMakeFiles/dcrd_sim.dir/engine.cc.o" "gcc" "src/sim/CMakeFiles/dcrd_sim.dir/engine.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/sim/CMakeFiles/dcrd_sim.dir/experiment.cc.o" "gcc" "src/sim/CMakeFiles/dcrd_sim.dir/experiment.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/sim/CMakeFiles/dcrd_sim.dir/metrics.cc.o" "gcc" "src/sim/CMakeFiles/dcrd_sim.dir/metrics.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/sim/CMakeFiles/dcrd_sim.dir/report.cc.o" "gcc" "src/sim/CMakeFiles/dcrd_sim.dir/report.cc.o.d"
  "/root/repo/src/sim/scenario.cc" "src/sim/CMakeFiles/dcrd_sim.dir/scenario.cc.o" "gcc" "src/sim/CMakeFiles/dcrd_sim.dir/scenario.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/sim/CMakeFiles/dcrd_sim.dir/stats.cc.o" "gcc" "src/sim/CMakeFiles/dcrd_sim.dir/stats.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/dcrd_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/dcrd_sim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcrd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/dcrd_event.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dcrd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dcrd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/dcrd_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dcrd_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/dcrd/CMakeFiles/dcrd_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
