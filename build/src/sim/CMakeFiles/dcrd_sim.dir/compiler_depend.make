# Empty compiler generated dependencies file for dcrd_sim.
# This may be replaced when dependencies are built.
