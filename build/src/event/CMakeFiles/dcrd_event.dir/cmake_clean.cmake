file(REMOVE_RECURSE
  "CMakeFiles/dcrd_event.dir/scheduler.cc.o"
  "CMakeFiles/dcrd_event.dir/scheduler.cc.o.d"
  "libdcrd_event.a"
  "libdcrd_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrd_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
