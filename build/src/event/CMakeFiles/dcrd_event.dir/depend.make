# Empty dependencies file for dcrd_event.
# This may be replaced when dependencies are built.
