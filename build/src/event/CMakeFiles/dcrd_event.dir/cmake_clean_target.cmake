file(REMOVE_RECURSE
  "libdcrd_event.a"
)
