
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pubsub/publisher.cc" "src/pubsub/CMakeFiles/dcrd_pubsub.dir/publisher.cc.o" "gcc" "src/pubsub/CMakeFiles/dcrd_pubsub.dir/publisher.cc.o.d"
  "/root/repo/src/pubsub/subscriptions.cc" "src/pubsub/CMakeFiles/dcrd_pubsub.dir/subscriptions.cc.o" "gcc" "src/pubsub/CMakeFiles/dcrd_pubsub.dir/subscriptions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcrd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/dcrd_event.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
