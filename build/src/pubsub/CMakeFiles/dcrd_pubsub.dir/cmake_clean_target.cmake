file(REMOVE_RECURSE
  "libdcrd_pubsub.a"
)
