file(REMOVE_RECURSE
  "CMakeFiles/dcrd_pubsub.dir/publisher.cc.o"
  "CMakeFiles/dcrd_pubsub.dir/publisher.cc.o.d"
  "CMakeFiles/dcrd_pubsub.dir/subscriptions.cc.o"
  "CMakeFiles/dcrd_pubsub.dir/subscriptions.cc.o.d"
  "libdcrd_pubsub.a"
  "libdcrd_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrd_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
