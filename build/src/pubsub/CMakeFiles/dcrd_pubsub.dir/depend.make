# Empty dependencies file for dcrd_pubsub.
# This may be replaced when dependencies are built.
