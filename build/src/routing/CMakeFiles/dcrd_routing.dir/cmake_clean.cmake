file(REMOVE_RECURSE
  "CMakeFiles/dcrd_routing.dir/hop_transport.cc.o"
  "CMakeFiles/dcrd_routing.dir/hop_transport.cc.o.d"
  "CMakeFiles/dcrd_routing.dir/multipath_router.cc.o"
  "CMakeFiles/dcrd_routing.dir/multipath_router.cc.o.d"
  "CMakeFiles/dcrd_routing.dir/oracle_router.cc.o"
  "CMakeFiles/dcrd_routing.dir/oracle_router.cc.o.d"
  "CMakeFiles/dcrd_routing.dir/source_routed.cc.o"
  "CMakeFiles/dcrd_routing.dir/source_routed.cc.o.d"
  "CMakeFiles/dcrd_routing.dir/tree_router.cc.o"
  "CMakeFiles/dcrd_routing.dir/tree_router.cc.o.d"
  "libdcrd_routing.a"
  "libdcrd_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrd_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
