file(REMOVE_RECURSE
  "libdcrd_routing.a"
)
