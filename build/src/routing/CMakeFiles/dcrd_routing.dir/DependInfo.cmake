
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/hop_transport.cc" "src/routing/CMakeFiles/dcrd_routing.dir/hop_transport.cc.o" "gcc" "src/routing/CMakeFiles/dcrd_routing.dir/hop_transport.cc.o.d"
  "/root/repo/src/routing/multipath_router.cc" "src/routing/CMakeFiles/dcrd_routing.dir/multipath_router.cc.o" "gcc" "src/routing/CMakeFiles/dcrd_routing.dir/multipath_router.cc.o.d"
  "/root/repo/src/routing/oracle_router.cc" "src/routing/CMakeFiles/dcrd_routing.dir/oracle_router.cc.o" "gcc" "src/routing/CMakeFiles/dcrd_routing.dir/oracle_router.cc.o.d"
  "/root/repo/src/routing/source_routed.cc" "src/routing/CMakeFiles/dcrd_routing.dir/source_routed.cc.o" "gcc" "src/routing/CMakeFiles/dcrd_routing.dir/source_routed.cc.o.d"
  "/root/repo/src/routing/tree_router.cc" "src/routing/CMakeFiles/dcrd_routing.dir/tree_router.cc.o" "gcc" "src/routing/CMakeFiles/dcrd_routing.dir/tree_router.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcrd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/dcrd_event.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dcrd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dcrd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/dcrd_pubsub.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
