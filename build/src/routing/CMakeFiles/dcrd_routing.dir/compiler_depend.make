# Empty compiler generated dependencies file for dcrd_routing.
# This may be replaced when dependencies are built.
