# Empty compiler generated dependencies file for dcrd_core.
# This may be replaced when dependencies are built.
