file(REMOVE_RECURSE
  "libdcrd_core.a"
)
