file(REMOVE_RECURSE
  "CMakeFiles/dcrd_core.dir/dcrd_router.cc.o"
  "CMakeFiles/dcrd_core.dir/dcrd_router.cc.o.d"
  "CMakeFiles/dcrd_core.dir/distributed_dr.cc.o"
  "CMakeFiles/dcrd_core.dir/distributed_dr.cc.o.d"
  "CMakeFiles/dcrd_core.dir/dr.cc.o"
  "CMakeFiles/dcrd_core.dir/dr.cc.o.d"
  "CMakeFiles/dcrd_core.dir/dr_computation.cc.o"
  "CMakeFiles/dcrd_core.dir/dr_computation.cc.o.d"
  "libdcrd_core.a"
  "libdcrd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
