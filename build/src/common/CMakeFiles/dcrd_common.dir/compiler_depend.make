# Empty compiler generated dependencies file for dcrd_common.
# This may be replaced when dependencies are built.
