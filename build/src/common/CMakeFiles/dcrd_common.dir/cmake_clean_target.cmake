file(REMOVE_RECURSE
  "libdcrd_common.a"
)
