file(REMOVE_RECURSE
  "CMakeFiles/dcrd_common.dir/flags.cc.o"
  "CMakeFiles/dcrd_common.dir/flags.cc.o.d"
  "CMakeFiles/dcrd_common.dir/logging.cc.o"
  "CMakeFiles/dcrd_common.dir/logging.cc.o.d"
  "libdcrd_common.a"
  "libdcrd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
