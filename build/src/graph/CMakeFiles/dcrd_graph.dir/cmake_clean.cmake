file(REMOVE_RECURSE
  "CMakeFiles/dcrd_graph.dir/connectivity.cc.o"
  "CMakeFiles/dcrd_graph.dir/connectivity.cc.o.d"
  "CMakeFiles/dcrd_graph.dir/graph.cc.o"
  "CMakeFiles/dcrd_graph.dir/graph.cc.o.d"
  "CMakeFiles/dcrd_graph.dir/io.cc.o"
  "CMakeFiles/dcrd_graph.dir/io.cc.o.d"
  "CMakeFiles/dcrd_graph.dir/shortest_path.cc.o"
  "CMakeFiles/dcrd_graph.dir/shortest_path.cc.o.d"
  "CMakeFiles/dcrd_graph.dir/topology.cc.o"
  "CMakeFiles/dcrd_graph.dir/topology.cc.o.d"
  "CMakeFiles/dcrd_graph.dir/yen_ksp.cc.o"
  "CMakeFiles/dcrd_graph.dir/yen_ksp.cc.o.d"
  "libdcrd_graph.a"
  "libdcrd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
