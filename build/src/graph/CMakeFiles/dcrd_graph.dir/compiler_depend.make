# Empty compiler generated dependencies file for dcrd_graph.
# This may be replaced when dependencies are built.
