file(REMOVE_RECURSE
  "libdcrd_graph.a"
)
