
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/connectivity.cc" "src/graph/CMakeFiles/dcrd_graph.dir/connectivity.cc.o" "gcc" "src/graph/CMakeFiles/dcrd_graph.dir/connectivity.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/dcrd_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/dcrd_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/graph/CMakeFiles/dcrd_graph.dir/io.cc.o" "gcc" "src/graph/CMakeFiles/dcrd_graph.dir/io.cc.o.d"
  "/root/repo/src/graph/shortest_path.cc" "src/graph/CMakeFiles/dcrd_graph.dir/shortest_path.cc.o" "gcc" "src/graph/CMakeFiles/dcrd_graph.dir/shortest_path.cc.o.d"
  "/root/repo/src/graph/topology.cc" "src/graph/CMakeFiles/dcrd_graph.dir/topology.cc.o" "gcc" "src/graph/CMakeFiles/dcrd_graph.dir/topology.cc.o.d"
  "/root/repo/src/graph/yen_ksp.cc" "src/graph/CMakeFiles/dcrd_graph.dir/yen_ksp.cc.o" "gcc" "src/graph/CMakeFiles/dcrd_graph.dir/yen_ksp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcrd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
