# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/event_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/pubsub_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/dcrd_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
