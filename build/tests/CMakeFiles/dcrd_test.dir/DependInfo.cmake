
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dcrd/dcrd_router_test.cc" "tests/CMakeFiles/dcrd_test.dir/dcrd/dcrd_router_test.cc.o" "gcc" "tests/CMakeFiles/dcrd_test.dir/dcrd/dcrd_router_test.cc.o.d"
  "/root/repo/tests/dcrd/distributed_dr_test.cc" "tests/CMakeFiles/dcrd_test.dir/dcrd/distributed_dr_test.cc.o" "gcc" "tests/CMakeFiles/dcrd_test.dir/dcrd/distributed_dr_test.cc.o.d"
  "/root/repo/tests/dcrd/distributed_mode_test.cc" "tests/CMakeFiles/dcrd_test.dir/dcrd/distributed_mode_test.cc.o" "gcc" "tests/CMakeFiles/dcrd_test.dir/dcrd/distributed_mode_test.cc.o.d"
  "/root/repo/tests/dcrd/dr_computation_test.cc" "tests/CMakeFiles/dcrd_test.dir/dcrd/dr_computation_test.cc.o" "gcc" "tests/CMakeFiles/dcrd_test.dir/dcrd/dr_computation_test.cc.o.d"
  "/root/repo/tests/dcrd/dr_montecarlo_test.cc" "tests/CMakeFiles/dcrd_test.dir/dcrd/dr_montecarlo_test.cc.o" "gcc" "tests/CMakeFiles/dcrd_test.dir/dcrd/dr_montecarlo_test.cc.o.d"
  "/root/repo/tests/dcrd/dr_test.cc" "tests/CMakeFiles/dcrd_test.dir/dcrd/dr_test.cc.o" "gcc" "tests/CMakeFiles/dcrd_test.dir/dcrd/dr_test.cc.o.d"
  "/root/repo/tests/dcrd/link_model_test.cc" "tests/CMakeFiles/dcrd_test.dir/dcrd/link_model_test.cc.o" "gcc" "tests/CMakeFiles/dcrd_test.dir/dcrd/link_model_test.cc.o.d"
  "/root/repo/tests/dcrd/ordering_policy_test.cc" "tests/CMakeFiles/dcrd_test.dir/dcrd/ordering_policy_test.cc.o" "gcc" "tests/CMakeFiles/dcrd_test.dir/dcrd/ordering_policy_test.cc.o.d"
  "/root/repo/tests/dcrd/persistence_test.cc" "tests/CMakeFiles/dcrd_test.dir/dcrd/persistence_test.cc.o" "gcc" "tests/CMakeFiles/dcrd_test.dir/dcrd/persistence_test.cc.o.d"
  "/root/repo/tests/dcrd/theorem1_test.cc" "tests/CMakeFiles/dcrd_test.dir/dcrd/theorem1_test.cc.o" "gcc" "tests/CMakeFiles/dcrd_test.dir/dcrd/theorem1_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dcrd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dcrd/CMakeFiles/dcrd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dcrd_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dcrd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dcrd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/dcrd_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/dcrd_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcrd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
