file(REMOVE_RECURSE
  "CMakeFiles/dcrd_test.dir/dcrd/dcrd_router_test.cc.o"
  "CMakeFiles/dcrd_test.dir/dcrd/dcrd_router_test.cc.o.d"
  "CMakeFiles/dcrd_test.dir/dcrd/distributed_dr_test.cc.o"
  "CMakeFiles/dcrd_test.dir/dcrd/distributed_dr_test.cc.o.d"
  "CMakeFiles/dcrd_test.dir/dcrd/distributed_mode_test.cc.o"
  "CMakeFiles/dcrd_test.dir/dcrd/distributed_mode_test.cc.o.d"
  "CMakeFiles/dcrd_test.dir/dcrd/dr_computation_test.cc.o"
  "CMakeFiles/dcrd_test.dir/dcrd/dr_computation_test.cc.o.d"
  "CMakeFiles/dcrd_test.dir/dcrd/dr_montecarlo_test.cc.o"
  "CMakeFiles/dcrd_test.dir/dcrd/dr_montecarlo_test.cc.o.d"
  "CMakeFiles/dcrd_test.dir/dcrd/dr_test.cc.o"
  "CMakeFiles/dcrd_test.dir/dcrd/dr_test.cc.o.d"
  "CMakeFiles/dcrd_test.dir/dcrd/link_model_test.cc.o"
  "CMakeFiles/dcrd_test.dir/dcrd/link_model_test.cc.o.d"
  "CMakeFiles/dcrd_test.dir/dcrd/ordering_policy_test.cc.o"
  "CMakeFiles/dcrd_test.dir/dcrd/ordering_policy_test.cc.o.d"
  "CMakeFiles/dcrd_test.dir/dcrd/persistence_test.cc.o"
  "CMakeFiles/dcrd_test.dir/dcrd/persistence_test.cc.o.d"
  "CMakeFiles/dcrd_test.dir/dcrd/theorem1_test.cc.o"
  "CMakeFiles/dcrd_test.dir/dcrd/theorem1_test.cc.o.d"
  "dcrd_test"
  "dcrd_test.pdb"
  "dcrd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
