# Empty dependencies file for dcrd_test.
# This may be replaced when dependencies are built.
