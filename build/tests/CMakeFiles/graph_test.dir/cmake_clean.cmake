file(REMOVE_RECURSE
  "CMakeFiles/graph_test.dir/graph/graph_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/graph_test.cc.o.d"
  "CMakeFiles/graph_test.dir/graph/io_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/io_test.cc.o.d"
  "CMakeFiles/graph_test.dir/graph/shortest_path_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/shortest_path_test.cc.o.d"
  "CMakeFiles/graph_test.dir/graph/topology_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/topology_test.cc.o.d"
  "CMakeFiles/graph_test.dir/graph/yen_ksp_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/yen_ksp_test.cc.o.d"
  "graph_test"
  "graph_test.pdb"
  "graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
