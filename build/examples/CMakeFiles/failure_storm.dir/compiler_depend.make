# Empty compiler generated dependencies file for failure_storm.
# This may be replaced when dependencies are built.
