# Empty compiler generated dependencies file for air_surveillance.
# This may be replaced when dependencies are built.
