file(REMOVE_RECURSE
  "CMakeFiles/air_surveillance.dir/air_surveillance.cc.o"
  "CMakeFiles/air_surveillance.dir/air_surveillance.cc.o.d"
  "air_surveillance"
  "air_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
