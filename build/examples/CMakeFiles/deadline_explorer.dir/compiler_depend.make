# Empty compiler generated dependencies file for deadline_explorer.
# This may be replaced when dependencies are built.
