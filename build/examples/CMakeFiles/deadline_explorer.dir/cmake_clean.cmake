file(REMOVE_RECURSE
  "CMakeFiles/deadline_explorer.dir/deadline_explorer.cc.o"
  "CMakeFiles/deadline_explorer.dir/deadline_explorer.cc.o.d"
  "deadline_explorer"
  "deadline_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
