file(REMOVE_RECURSE
  "CMakeFiles/dcrdsim.dir/dcrdsim.cc.o"
  "CMakeFiles/dcrdsim.dir/dcrdsim.cc.o.d"
  "dcrdsim"
  "dcrdsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrdsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
