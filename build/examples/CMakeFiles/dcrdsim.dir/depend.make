# Empty dependencies file for dcrdsim.
# This may be replaced when dependencies are built.
