#!/usr/bin/env python3
"""Perf-regression gate over the micro-benchmark --bench_json records.

The micro binaries (bench_micro_event_queue, bench_micro_trace_overhead)
append one record per run to a JSON array; each record carries a "rates"
object of per-benchmark items/s. CI runs the binaries several rounds,
interleaved, into one candidate file, then calls this script to compare the
per-benchmark *medians* against the committed baseline:

  scripts/bench_gate.py check --baseline bench/perf_gate_baseline.json \
      --candidate /tmp/gate.json [--threshold 0.15]

A benchmark fails the gate when its normalized candidate median drops more
than the threshold below the baseline. Normalization is the machine-noise
guard: every micro binary carries BM_CalibrationSpin, a fixed pure-ALU
workload independent of repo code; the candidate/baseline calibration ratio
estimates how fast this machine is running relative to the machine that
recorded the baseline, and candidate rates are divided by it before the
comparison. A benchmark present in the baseline but missing from the
candidate is a failure (coverage must not silently shrink); one present
only in the candidate is a warning to refresh the baseline.

Refreshing the baseline after an intentional perf change:

  scripts/bench_gate.py write-baseline --baseline bench/perf_gate_baseline.json \
      --candidate /tmp/gate.json

and commit the updated file (see README.md, "perf gate").
"""

import argparse
import json
import statistics
import sys

CALIBRATION = "BM_CalibrationSpin"

# A calibration ratio outside this band means the machine differs too much
# from the baseline machine (or the run was badly disturbed) for a 15%-class
# comparison to mean anything; the gate degrades to a loud warning + pass so
# exotic runners don't spuriously block merges.
CALIBRATION_SANE_LOW = 0.25
CALIBRATION_SANE_HIGH = 4.0


def load_rates(path):
    """path -> {binary: {benchmark: [rate, ...]}} across interleaved rounds."""
    with open(path, encoding="utf-8") as fh:
        records = json.load(fh)
    if not isinstance(records, list):
        raise SystemExit(f"bench_gate: {path} is not a JSON array")
    rates = {}
    for record in records:
        per_binary = rates.setdefault(record.get("name", "?"), {})
        for bench, rate in record.get("rates", {}).items():
            per_binary.setdefault(bench, []).append(float(rate))
    return rates


def medians(rates):
    return {
        binary: {bench: statistics.median(values) for bench, values in per.items()}
        for binary, per in rates.items()
    }


def write_baseline(args):
    candidate = medians(load_rates(args.candidate))
    if not candidate:
        raise SystemExit(f"bench_gate: no rates in {args.candidate}")
    for binary, per in candidate.items():
        if CALIBRATION not in per:
            raise SystemExit(
                f"bench_gate: {binary} records carry no {CALIBRATION}; "
                "baseline would be unnormalizable"
            )
    with open(args.baseline, "w", encoding="utf-8") as fh:
        json.dump({"binaries": candidate}, fh, indent=2, sort_keys=True)
        fh.write("\n")
    total = sum(len(per) for per in candidate.values())
    print(f"bench_gate: wrote baseline {args.baseline} "
          f"({len(candidate)} binaries, {total} benchmarks)")
    return 0


def check(args):
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)["binaries"]
    candidate = medians(load_rates(args.candidate))

    failures = []
    warnings = []
    for binary, base_per in sorted(baseline.items()):
        cand_per = candidate.get(binary)
        if cand_per is None:
            failures.append(f"{binary}: no candidate records")
            continue

        base_cal = base_per.get(CALIBRATION)
        cand_cal = cand_per.get(CALIBRATION)
        if not base_cal or not cand_cal:
            failures.append(f"{binary}: {CALIBRATION} missing; cannot normalize")
            continue
        cal_ratio = cand_cal / base_cal
        normalizing = True
        if not CALIBRATION_SANE_LOW <= cal_ratio <= CALIBRATION_SANE_HIGH:
            warnings.append(
                f"{binary}: calibration ratio {cal_ratio:.2f} outside "
                f"[{CALIBRATION_SANE_LOW}, {CALIBRATION_SANE_HIGH}] — machine "
                "too different from baseline; comparison skipped"
            )
            normalizing = False

        for bench, base_rate in sorted(base_per.items()):
            if bench == CALIBRATION:
                continue
            cand_rate = cand_per.get(bench)
            if cand_rate is None:
                failures.append(f"{binary}/{bench}: missing from candidate")
                continue
            if not normalizing:
                continue
            normalized = cand_rate / cal_ratio
            ratio = normalized / base_rate
            verdict = "ok"
            if ratio < 1.0 - args.threshold:
                verdict = "REGRESSION"
                failures.append(
                    f"{binary}/{bench}: {normalized:.3g} vs baseline "
                    f"{base_rate:.3g} items/s ({(1.0 - ratio) * 100:.1f}% down, "
                    f"threshold {args.threshold * 100:.0f}%)"
                )
            print(f"  {binary}/{bench}: {ratio * 100:6.1f}% of baseline "
                  f"(cal ratio {cal_ratio:.2f}) {verdict}")

        for bench in sorted(set(cand_per) - set(base_per)):
            warnings.append(
                f"{binary}/{bench}: not in baseline — refresh it "
                "(scripts/bench_gate.py write-baseline)"
            )

    for warning in warnings:
        print(f"bench_gate: WARNING: {warning}", file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"bench_gate: FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench_gate: pass")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="compare candidate against baseline")
    p_check.add_argument("--baseline", required=True)
    p_check.add_argument("--candidate", required=True)
    p_check.add_argument("--threshold", type=float, default=0.15,
                         help="max allowed fractional drop (default 0.15)")
    p_check.set_defaults(func=check)

    p_write = sub.add_parser("write-baseline",
                             help="record candidate medians as the baseline")
    p_write.add_argument("--baseline", required=True)
    p_write.add_argument("--candidate", required=True)
    p_write.set_defaults(func=write_baseline)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
