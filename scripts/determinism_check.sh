#!/usr/bin/env bash
# Determinism gate: the parallel sweep pool must be bit-identical to the
# serial path. Runs one figure binary twice — --jobs 1 and --jobs N — and
# byte-diffs stdout plus every CSV artifact.
#
#   scripts/determinism_check.sh [build-dir]
#
# Environment overrides:
#   DCRD_DET_BINARY   figure binary name   (default fig5_network_size)
#   DCRD_DET_REPS     repetitions          (default 2)
#   DCRD_DET_SECONDS  simulated seconds    (default 120)
#   DCRD_DET_JOBS     parallel job count   (default 8)
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="${1:-build}"
binary_name="${DCRD_DET_BINARY:-fig5_network_size}"
reps="${DCRD_DET_REPS:-2}"
sim_seconds="${DCRD_DET_SECONDS:-120}"
jobs="${DCRD_DET_JOBS:-8}"

binary="$build_dir/bench/$binary_name"
if [[ ! -x "$binary" ]]; then
  echo "determinism_check: $binary not found; build first" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "=== determinism check: $binary_name --reps $reps --seconds $sim_seconds, --jobs 1 vs --jobs $jobs ==="

"$binary" --reps "$reps" --seconds "$sim_seconds" --jobs 1 \
  --csv "$workdir/serial" > "$workdir/serial.out"
"$binary" --reps "$reps" --seconds "$sim_seconds" --jobs "$jobs" \
  --csv "$workdir/parallel" > "$workdir/parallel.out"

fail=0
if ! diff -u "$workdir/serial.out" "$workdir/parallel.out"; then
  echo "determinism_check: stdout differs between --jobs 1 and --jobs $jobs" >&2
  fail=1
fi

# CSVs: same file set, same bytes.
(cd "$workdir/serial" && ls -1 | LC_ALL=C sort) > "$workdir/serial.files"
(cd "$workdir/parallel" && ls -1 | LC_ALL=C sort) > "$workdir/parallel.files"
if ! diff -u "$workdir/serial.files" "$workdir/parallel.files"; then
  echo "determinism_check: CSV file sets differ" >&2
  fail=1
fi
while IFS= read -r csv; do
  if ! cmp -s "$workdir/serial/$csv" "$workdir/parallel/$csv"; then
    echo "determinism_check: CSV $csv differs" >&2
    diff -u "$workdir/serial/$csv" "$workdir/parallel/$csv" || true
    fail=1
  fi
done < "$workdir/serial.files"

if [[ "$fail" != 0 ]]; then
  echo "=== determinism check FAILED ===" >&2
  exit 1
fi
echo "=== determinism check passed: output bit-identical across job counts ==="
