#!/usr/bin/env bash
# Determinism gate: the parallel sweep pool AND the sharded engine must be
# bit-identical to the serial path. Runs each figure binary at --jobs 1,
# --jobs N and --shards N and byte-diffs stdout plus every CSV artifact.
#
#   scripts/determinism_check.sh [build-dir]
#
# Environment overrides:
#   DCRD_DET_BINARY   single figure binary (overrides the default set)
#   DCRD_DET_BINARIES space-separated list
#                     (default "fig5_network_size fig2_full_mesh ext7_gray_failures ext8_broker_churn")
#   DCRD_DET_REPS     repetitions          (default 2)
#   DCRD_DET_SECONDS  simulated seconds    (default 120)
#   DCRD_DET_JOBS     parallel job count   (default 8)
#   DCRD_DET_SHARDS   engine shard count   (default 8)
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="${1:-build}"
binaries="${DCRD_DET_BINARIES:-fig5_network_size fig2_full_mesh ext7_gray_failures ext8_broker_churn}"
if [[ -n "${DCRD_DET_BINARY:-}" ]]; then
  binaries="$DCRD_DET_BINARY"
fi
reps="${DCRD_DET_REPS:-2}"
sim_seconds="${DCRD_DET_SECONDS:-120}"
jobs="${DCRD_DET_JOBS:-8}"
shards="${DCRD_DET_SHARDS:-8}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

fail=0
for binary_name in $binaries; do
  binary="$build_dir/bench/$binary_name"
  if [[ ! -x "$binary" ]]; then
    echo "determinism_check: $binary not found; build first" >&2
    exit 2
  fi

  echo "=== determinism check: $binary_name --reps $reps --seconds $sim_seconds, --jobs 1 vs --jobs $jobs ==="

  serial="$workdir/$binary_name.serial"
  parallel="$workdir/$binary_name.parallel"
  "$binary" --reps "$reps" --seconds "$sim_seconds" --jobs 1 \
    --csv "$serial" > "$serial.out"
  "$binary" --reps "$reps" --seconds "$sim_seconds" --jobs "$jobs" \
    --csv "$parallel" > "$parallel.out"

  if ! diff -u "$serial.out" "$parallel.out"; then
    echo "determinism_check: $binary_name stdout differs between --jobs 1 and --jobs $jobs" >&2
    fail=1
  fi

  # CSVs: same file set, same bytes.
  (cd "$serial" && ls -1 | LC_ALL=C sort) > "$serial.files"
  (cd "$parallel" && ls -1 | LC_ALL=C sort) > "$parallel.files"
  if ! diff -u "$serial.files" "$parallel.files"; then
    echo "determinism_check: $binary_name CSV file sets differ" >&2
    fail=1
  fi
  while IFS= read -r csv; do
    if ! cmp -s "$serial/$csv" "$parallel/$csv"; then
      echo "determinism_check: $binary_name CSV $csv differs" >&2
      diff -u "$serial/$csv" "$parallel/$csv" || true
      fail=1
    fi
  done < "$serial.files"
done

# Sharded engine: running one scenario across N engine shards with
# conservative lookahead windows (--shards N, DESIGN.md §12) must not
# change a single output byte relative to the classic single-thread
# engine. The --jobs 1 captures from the loop above are the baseline;
# --jobs 1 --shards N isolates the sharding layer from the sweep pool.
echo "=== determinism check: --shards 1 vs --shards $shards ==="
for binary_name in $binaries; do
  binary="$build_dir/bench/$binary_name"
  serial="$workdir/$binary_name.serial"
  sharded="$workdir/$binary_name.sharded"

  "$binary" --reps "$reps" --seconds "$sim_seconds" --jobs 1 \
    --shards "$shards" --csv "$sharded" > "$sharded.out" 2> /dev/null

  if ! diff -u "$serial.out" "$sharded.out"; then
    echo "determinism_check: $binary_name stdout differs between --shards 1 and --shards $shards" >&2
    fail=1
  fi
  (cd "$sharded" && ls -1 | LC_ALL=C sort) > "$sharded.files"
  if ! diff -u "$serial.files" "$sharded.files"; then
    echo "determinism_check: $binary_name CSV file sets differ with --shards $shards" >&2
    fail=1
  fi
  while IFS= read -r csv; do
    if ! cmp -s "$serial/$csv" "$sharded/$csv"; then
      echo "determinism_check: $binary_name CSV $csv differs with --shards $shards" >&2
      diff -u "$serial/$csv" "$sharded/$csv" || true
      fail=1
    fi
  done < "$serial.files"
done

# Two-tier scheduler: forcing the timer wheel off (--no_timer_wheel runs
# every scheduler on the legacy binary-heap backend) must not change a
# single output byte — the wheel preserves the heap's deterministic
# (time, seq) timer order exactly (DESIGN.md §8). Byte-diff the heap path
# against the default wheel captures from the loop above, serial and
# parallel alike.
wheel_binary="fig5_network_size"
if [[ " $binaries " == *" $wheel_binary "* ]]; then
  binary="$build_dir/bench/$wheel_binary"
  echo "=== determinism check: $wheel_binary timer wheel vs --no_timer_wheel ==="
  for pair in "j1 1 $workdir/$wheel_binary.serial" \
              "jN $jobs $workdir/$wheel_binary.parallel"; do
    read -r tag run_jobs baseline <<< "$pair"
    heap="$workdir/$wheel_binary.heap.$tag"
    "$binary" --reps "$reps" --seconds "$sim_seconds" --jobs "$run_jobs" \
      --no_timer_wheel --csv "$heap" > "$heap.out" 2> /dev/null
    if ! diff -u "$baseline.out" "$heap.out"; then
      echo "determinism_check: $wheel_binary stdout differs with --no_timer_wheel ($tag)" >&2
      fail=1
    fi
    while IFS= read -r csv; do
      if ! cmp -s "$baseline/$csv" "$heap/$csv"; then
        echo "determinism_check: $wheel_binary CSV $csv differs with --no_timer_wheel ($tag)" >&2
        diff -u "$baseline/$csv" "$heap/$csv" || true
        fail=1
      fi
    done < "$baseline.files"
  done
else
  echo "determinism_check: $wheel_binary not in binary set; skipping wheel-vs-heap phase" >&2
fi

# Observability must be result-neutral: a traced run (full JSONL trace +
# metrics registry) must produce byte-identical stdout and CSVs to an
# untraced one. The traces themselves go to per-cell files and stderr only.
trace_binary="fig2_full_mesh"
binary="$build_dir/bench/$trace_binary"
if [[ -x "$binary" ]]; then
  echo "=== determinism check: $trace_binary untraced vs --trace_out ==="
  plain="$workdir/$trace_binary.plain"
  traced="$workdir/$trace_binary.traced"
  "$binary" --reps "$reps" --seconds "$sim_seconds" --jobs "$jobs" \
    --csv "$plain" > "$plain.out"
  "$binary" --reps "$reps" --seconds "$sim_seconds" --jobs "$jobs" \
    --csv "$traced" --trace_out "$workdir/trace" \
    --metrics_json "$workdir/metrics" > "$traced.out"

  if ! diff -u "$plain.out" "$traced.out"; then
    echo "determinism_check: $trace_binary stdout differs when traced" >&2
    fail=1
  fi
  (cd "$plain" && ls -1 | LC_ALL=C sort) > "$plain.files"
  while IFS= read -r csv; do
    if ! cmp -s "$plain/$csv" "$traced/$csv"; then
      echo "determinism_check: $trace_binary CSV $csv differs when traced" >&2
      diff -u "$plain/$csv" "$traced/$csv" || true
      fail=1
    fi
  done < "$plain.files"
  if ! ls "$workdir"/trace.*.jsonl > /dev/null 2>&1; then
    echo "determinism_check: traced run produced no trace files" >&2
    fail=1
  fi
else
  echo "determinism_check: $binary not found; skipping trace phase" >&2
fi

# Shard-execution observability must be result-neutral as well: the
# profiler reads wall clocks and drained exchange messages only, and the
# per-shard trace recorders stamp but never steer, so --shard_profile plus
# --trace_out must leave stdout and every CSV byte-identical to the
# unprofiled captures above — at --shards 1 and --shards N alike
# (DESIGN.md §13). The profile JSON and the .shardK.jsonl files are the
# only new artifacts.
prof_binary="fig5_network_size"
binary="$build_dir/bench/$prof_binary"
if [[ " $binaries " == *" $prof_binary "* ]]; then
  echo "=== determinism check: $prof_binary unprofiled vs --shard_profile ==="
  for pair in "s1 1 $workdir/$prof_binary.serial" \
              "sN $shards $workdir/$prof_binary.sharded"; do
    read -r tag run_shards baseline <<< "$pair"
    profiled="$workdir/$prof_binary.profiled.$tag"
    "$binary" --reps "$reps" --seconds "$sim_seconds" --jobs 1 \
      --shards "$run_shards" --csv "$profiled" \
      --shard_profile "$workdir/prof.$tag" \
      --trace_out "$workdir/ptrace.$tag" > "$profiled.out" 2> /dev/null
    if ! diff -u "$baseline.out" "$profiled.out"; then
      echo "determinism_check: $prof_binary stdout differs with --shard_profile ($tag)" >&2
      fail=1
    fi
    while IFS= read -r csv; do
      if ! cmp -s "$baseline/$csv" "$profiled/$csv"; then
        echo "determinism_check: $prof_binary CSV $csv differs with --shard_profile ($tag)" >&2
        diff -u "$baseline/$csv" "$profiled/$csv" || true
        fail=1
      fi
    done < "$workdir/$prof_binary.serial.files"
  done
  if ! ls "$workdir"/prof.sN.*.json > /dev/null 2>&1; then
    echo "determinism_check: profiled run produced no shard-profile JSON" >&2
    fail=1
  fi
  if ! ls "$workdir"/ptrace.sN.*.shard*.jsonl > /dev/null 2>&1; then
    echo "determinism_check: sharded traced run produced no per-shard trace files" >&2
    fail=1
  fi
else
  echo "determinism_check: $prof_binary not in binary set; skipping shard-profile phase" >&2
fi

# Continuous telemetry must be result-neutral too: the sampler is a
# read-only scheduler event and the metrics registry a set of passive
# counters, so --timeseries plus --metrics_json must leave stdout and every
# CSV byte-identical to the plain captures — at --shards 1 and --shards N
# alike (DESIGN.md §14). Stronger still, the sharded run's *merged*
# telemetry files must be byte-identical to the single-shard run's: kSum
# series because owner-only deltas partition the work, kReplicated series
# because the control plane replays identically on every shard.
ts_binary="fig5_network_size"
binary="$build_dir/bench/$ts_binary"
if [[ " $binaries " == *" $ts_binary "* ]]; then
  echo "=== determinism check: $ts_binary plain vs --timeseries + --metrics_json ==="
  for pair in "s1 1 $workdir/$ts_binary.serial" \
              "sN $shards $workdir/$ts_binary.sharded"; do
    read -r tag run_shards baseline <<< "$pair"
    telemetered="$workdir/$ts_binary.telemetered.$tag"
    "$binary" --reps "$reps" --seconds "$sim_seconds" --jobs 1 \
      --shards "$run_shards" --csv "$telemetered" \
      --timeseries "$workdir/ts.$tag" \
      --metrics_json "$workdir/tsmetrics.$tag" > "$telemetered.out" 2> /dev/null
    if ! diff -u "$baseline.out" "$telemetered.out"; then
      echo "determinism_check: $ts_binary stdout differs with --timeseries ($tag)" >&2
      fail=1
    fi
    while IFS= read -r csv; do
      if ! cmp -s "$baseline/$csv" "$telemetered/$csv"; then
        echo "determinism_check: $ts_binary CSV $csv differs with --timeseries ($tag)" >&2
        diff -u "$baseline/$csv" "$telemetered/$csv" || true
        fail=1
      fi
    done < "$workdir/$ts_binary.serial.files"
  done
  if ! ls "$workdir"/ts.s1.*.json > /dev/null 2>&1; then
    echo "determinism_check: telemetered run produced no time-series JSON" >&2
    fail=1
  fi
  for s1_file in "$workdir"/ts.s1.*.json "$workdir"/tsmetrics.s1.*.json; do
    sN_file="${s1_file/.s1./.sN.}"
    if ! cmp -s "$s1_file" "$sN_file"; then
      echo "determinism_check: merged telemetry $(basename "$sN_file") differs from the single-shard capture" >&2
      fail=1
    fi
  done
else
  echo "determinism_check: $ts_binary not in binary set; skipping telemetry phase" >&2
fi

# Same bar for the delay-provenance capture: --delay_audit redirects the
# trace and adds the Theorem-1 model rows, so stdout and CSVs must stay
# byte-identical to the unaudited runs above — serial and parallel alike.
echo "=== determinism check: unaudited vs --delay_audit ==="
for binary_name in $binaries; do
  binary="$build_dir/bench/$binary_name"
  audited="$workdir/$binary_name.audited"
  serial="$workdir/$binary_name.serial"
  parallel="$workdir/$binary_name.parallel"

  "$binary" --reps "$reps" --seconds "$sim_seconds" --jobs 1 \
    --csv "$audited.j1" --delay_audit "$workdir/aud_j1.$binary_name" \
    > "$audited.j1.out" 2> /dev/null
  "$binary" --reps "$reps" --seconds "$sim_seconds" --jobs "$jobs" \
    --csv "$audited.jN" --delay_audit "$workdir/aud_jN.$binary_name" \
    > "$audited.jN.out" 2> /dev/null

  for pair in "j1 $serial" "jN $parallel"; do
    tag="${pair%% *}"
    baseline="${pair#* }"
    if ! diff -u "$baseline.out" "$audited.$tag.out"; then
      echo "determinism_check: $binary_name stdout differs with --delay_audit ($tag)" >&2
      fail=1
    fi
    while IFS= read -r csv; do
      if ! cmp -s "$baseline/$csv" "$audited.$tag/$csv"; then
        echo "determinism_check: $binary_name CSV $csv differs with --delay_audit ($tag)" >&2
        diff -u "$baseline/$csv" "$audited.$tag/$csv" || true
        fail=1
      fi
    done < "$baseline.files"
  done

  if ! ls "$workdir/aud_jN.$binary_name".model.*.jsonl > /dev/null 2>&1; then
    echo "determinism_check: $binary_name --delay_audit produced no model rows" >&2
    fail=1
  fi
done

if [[ "$fail" != 0 ]]; then
  echo "=== determinism check FAILED ===" >&2
  exit 1
fi
echo "=== determinism check passed: output bit-identical across job and shard counts ==="
