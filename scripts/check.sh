#!/usr/bin/env bash
# Full pre-merge check: the tier-1 verify (configure, build, ctest) run
# twice — once plain, once under AddressSanitizer + UBSan — in separate
# build directories so the object files never mix.
#
#   scripts/check.sh            # plain + asan passes
#   scripts/check.sh --plain    # plain pass only
#   scripts/check.sh --asan     # sanitized pass only
#   scripts/check.sh --tsan     # ThreadSanitizer pass: builds build-tsan/
#                               # and runs the SweepRunner + Flags suites
#                               # plus the sharded-engine equivalence suite
#                               # (the code that actually spawns threads)
#
# DCRD_CMAKE_ARGS adds extra -D arguments to every configure (CI uses it
# for ccache launchers).
set -euo pipefail

cd "$(dirname "$0")/.."

extra_cmake_args=()
if [[ -n "${DCRD_CMAKE_ARGS:-}" ]]; then
  # shellcheck disable=SC2206
  extra_cmake_args=(${DCRD_CMAKE_ARGS})
fi

run_plain=1
run_asan=1
run_tsan=0
case "${1:-}" in
  --plain) run_asan=0 ;;
  --asan) run_plain=0 ;;
  --tsan) run_plain=0; run_asan=0; run_tsan=1 ;;
  "") ;;
  *) echo "usage: $0 [--plain|--asan|--tsan]" >&2; exit 2 ;;
esac

configure_build() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "${extra_cmake_args[@]}" "$@"
  cmake --build "$dir" -j
}

verify() {
  local dir="$1"; shift
  configure_build "$dir" "$@"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

if [[ "$run_plain" == 1 ]]; then
  echo "=== tier-1 verify (plain) ==="
  verify build
fi

if [[ "$run_asan" == 1 ]]; then
  echo "=== tier-1 verify (address;undefined) ==="
  verify build-asan "-DDCRD_SANITIZE=address;undefined"
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "=== ThreadSanitizer pass (SweepRunner + Flags + sharded engine) ==="
  cmake -B build-tsan -S . "${extra_cmake_args[@]}" "-DDCRD_SANITIZE=thread"
  # Only the suites that actually spawn threads; keeps the nightly short.
  # ShardedEngineTest includes the 20-seed chaos soak at 4 shards, so the
  # barrier/horizon protocol and the exchange queues get a full TSan soak.
  cmake --build build-tsan -j --target sim_test common_test \
    sharded_engine_test
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
    -R 'SweepRunner|Flags|ShardedEngine'
fi

echo "=== check.sh: all requested passes green ==="
