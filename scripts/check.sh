#!/usr/bin/env bash
# Full pre-merge check: the tier-1 verify (configure, build, ctest) run
# twice — once plain, once under AddressSanitizer + UBSan — in separate
# build directories so the object files never mix.
#
#   scripts/check.sh            # both passes
#   scripts/check.sh --plain    # plain pass only
#   scripts/check.sh --asan     # sanitized pass only
set -euo pipefail

cd "$(dirname "$0")/.."

run_plain=1
run_asan=1
case "${1:-}" in
  --plain) run_asan=0 ;;
  --asan) run_plain=0 ;;
  "") ;;
  *) echo "usage: $0 [--plain|--asan]" >&2; exit 2 ;;
esac

verify() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

if [[ "$run_plain" == 1 ]]; then
  echo "=== tier-1 verify (plain) ==="
  verify build
fi

if [[ "$run_asan" == 1 ]]; then
  echo "=== tier-1 verify (address;undefined) ==="
  verify build-asan "-DDCRD_SANITIZE=address;undefined"
fi

echo "=== check.sh: all requested passes green ==="
