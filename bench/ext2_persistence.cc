// Extension experiment 2 — the persistency mode (paper Section III).
//
// "To provide the delivery guarantee even in case of persistent failures,
// we need to persist all packets, and then send them when the failures are
// recovered. Supporting the persistency mode should be straight forward,
// but this mode incurs a large overhead."
//
// Persistence only matters when the overlay actually partitions: on a
// degree-4 overlay DCRD's rerouting already finds a detour around any
// plausible failure set, so this experiment runs on a *ring* (degree 2 —
// the sparsest connected overlay), where two simultaneous 10-second link
// outages cut publisher from subscriber. DCRD with persistence off vs on.
// Expected: persistence closes the delivery-ratio gap toward 100% at
// unchanged QoS ratio (rescued packets are late by construction), paying
// extra traffic for the retries — the "large overhead" the paper predicts,
// quantified.
#include <iomanip>
#include <iostream>

#include "common/flags.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const auto scale = dcrd::figures::ParseScale(flags);
  flags.ExitOnUnqueried();
  dcrd::figures::PrintHeader(
      "Ext.2: persistency mode under 10s outages, 20-node ring (degree 2)",
      scale);

  std::cout << "\n"
            << std::left << std::setw(8) << "Pf" << std::setw(14)
            << "persistence" << std::right << std::setw(12) << "delivery"
            << std::setw(12) << "QoS" << std::setw(14) << "pkts/sub"
            << "\n";
  for (const double pf : {0.02, 0.06, 0.10}) {
    for (const bool persistence : {false, true}) {
      const dcrd::RunSummary pooled = dcrd::figures::RunFigureReps(
          scale,
          "ext2:pf" + std::to_string(pf) +
              (persistence ? ":persist" : ":plain"),
          [&scale, pf, persistence](int rep) {
            dcrd::ScenarioConfig config;
            config.router = dcrd::RouterKind::kDcrd;
            config.node_count = 20;
            config.topology = dcrd::TopologyKind::kRandomDegree;
            config.degree = 2;  // ring: the only overlay that actually cuts
            config.failure_probability = pf;
            config.link_outage_epochs = 10;  // 10-second outages
            config.loss_rate = 1e-4;
            config.dcrd_persistence = persistence;
            config.sim_time = scale.sim_time;
            config.seed = scale.seed + static_cast<std::uint64_t>(rep);
            config.shards = scale.shards;
            return config;
          });
      std::cout << std::left << std::setw(8) << pf << std::setw(14)
                << (persistence ? "on" : "off") << std::right << std::fixed
                << std::setprecision(4) << std::setw(12)
                << pooled.delivery_ratio() << std::setw(12)
                << pooled.qos_ratio() << std::setw(14)
                << pooled.packets_per_subscriber() << "\n";
      std::cout.unsetf(std::ios::fixed);
    }
  }
  return 0;
}
