// Figure 4 — Performance with different connectivities (node degree 3..10)
// at Pf = 0.06.
//
// Paper shape: for degree >= 5 DCRD delivers >96% within deadline, ~3%
// under ORACLE; at degree 4 DCRD's QoS ratio dips to ~94%; at degree 3
// every protocol collapses below 85% because connected failure-free paths
// within the budget often do not exist.
#include <iostream>

#include "common/flags.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const auto scale = dcrd::figures::ParseScale(flags);
  flags.ExitOnUnqueried();
  dcrd::figures::PrintHeader(
      "Figure 4: 20-node overlay, degree swept, Pf=0.06", scale);

  dcrd::ScenarioConfig base;
  base.node_count = 20;
  base.topology = dcrd::TopologyKind::kRandomDegree;
  base.failure_probability = 0.06;
  base.loss_rate = 1e-4;
  base.max_transmissions = 1;
  dcrd::figures::ApplyScale(scale, base);

  const dcrd::SweepResult sweep = dcrd::figures::RunFigureSweep(
      scale, "fig4_connectivity", "Fig.4 connectivity", "degree", base,
      scale.routers, {3, 4, 5, 6, 7, 8, 9, 10},
      [](double degree, dcrd::ScenarioConfig& config) {
        config.degree = static_cast<std::size_t>(degree);
      });

  dcrd::PrintStandardPanels(std::cout, sweep);
  dcrd::figures::MaybeSaveCsv(scale, "fig4_connectivity", sweep);
  return 0;
}
