// Figure 6 — Effect of the QoS delay requirement.
//
// 20 nodes, degree 8, Pf = 0.06; the deadline is `factor` times the
// shortest-path delay with factor swept over {1.5, 2, 3, 4, 5, 6}.
//
// Paper shape: DCRD gains ~4% going 1.5->2 and ~4% more going 2->3,
// reaching ~100% by factor 4; the trees barely move (they fail on
// failures, not deadlines); Multipath *beats* DCRD at the tightest factor
// 1.5 (pre-duplicated paths pay off when there is no time to retry) and
// loses from factor ~2 on.
#include <iostream>

#include "common/flags.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const auto scale = dcrd::figures::ParseScale(flags);
  flags.ExitOnUnqueried();
  dcrd::figures::PrintHeader(
      "Figure 6: QoS requirement factor, 20 nodes, degree 8, Pf=0.06",
      scale);

  dcrd::ScenarioConfig base;
  base.node_count = 20;
  base.topology = dcrd::TopologyKind::kRandomDegree;
  base.degree = 8;
  base.failure_probability = 0.06;
  base.loss_rate = 1e-4;
  base.max_transmissions = 1;
  dcrd::figures::ApplyScale(scale, base);

  const dcrd::SweepResult sweep = dcrd::figures::RunFigureSweep(
      scale, "fig6_qos_requirement", "Fig.6 QoS requirement", "factor", base,
      scale.routers, {1.5, 2, 3, 4, 5, 6},
      [](double factor, dcrd::ScenarioConfig& config) {
        config.qos_factor = factor;
      });

  dcrd::PrintTable(std::cout, sweep, "QoS Delivery Ratio",
                   [](const dcrd::RunSummary& s) { return s.qos_ratio(); });
  dcrd::figures::MaybeSaveCsv(scale, "fig6_qos_requirement", sweep);
  return 0;
}
