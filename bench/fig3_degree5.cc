// Figure 3 — Performance comparison in overlay networks with degree 5.
//
// Same sweep as Figure 2 but on a degree-5 random overlay: reduced
// connectivity lengthens paths, so the fixed-route baselines drop ~5%
// relative to the full mesh while DCRD stays within a few percent of
// ORACLE; everyone's packets/subscriber rises.
#include <iostream>

#include "common/flags.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const auto scale = dcrd::figures::ParseScale(flags);
  flags.ExitOnUnqueried();
  dcrd::figures::PrintHeader("Figure 3: 20-node overlay, degree 5", scale);

  dcrd::ScenarioConfig base;
  base.node_count = 20;
  base.topology = dcrd::TopologyKind::kRandomDegree;
  base.degree = 5;
  base.loss_rate = 1e-4;
  base.max_transmissions = 1;
  dcrd::figures::ApplyScale(scale, base);

  const dcrd::SweepResult sweep = dcrd::figures::RunFigureSweep(
      scale, "fig3_degree5", "Fig.3 degree-5 overlay", "Pf", base,
      scale.routers, {0.0, 0.02, 0.04, 0.06, 0.08, 0.10},
      [](double pf, dcrd::ScenarioConfig& config) {
        config.failure_probability = pf;
      });

  dcrd::PrintStandardPanels(std::cout, sweep);
  dcrd::figures::MaybeSaveCsv(scale, "fig3_degree5", sweep);
  return 0;
}
