// Extension experiment 3 — congestion (finite link bandwidth).
//
// The paper's introduction motivates DCRD with "failed or highly congested"
// links but the evaluation models failures only. Here every link serialises
// data packets (fixed per-packet occupancy) and the publish rate is swept,
// so queues build on popular links and queuing delay eats the deadline.
//
// Expectation: Multipath congests first (it injects ~2x the packets, some
// of its own duplicates queuing behind each other); the trees concentrate
// everything on few links; DCRD's ACK-timeout machinery detects queue
// delay exactly like a failure and spills onto alternate links, so it
// degrades last — but note that past saturation DCRD's timeouts fire for
// *every* hop and its retries amplify the overload (a genuine congestion-
// collapse mode; rate caps stay below it here, and the deadline_explorer
// example is the place to poke at the cliff interactively).
#include <iomanip>
#include <iostream>

#include "common/flags.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const auto scale = dcrd::figures::ParseScale(flags);
  dcrd::figures::PrintHeader(
      "Ext.3: congestion, 20 nodes, degree 5, per-packet link occupancy "
      "10 ms, publish rate swept",
      scale);

  dcrd::ScenarioConfig base;
  base.node_count = 20;
  base.topology = dcrd::TopologyKind::kRandomDegree;
  base.degree = 5;
  base.failure_probability = 0.0;  // isolate congestion from failures
  base.loss_rate = 1e-4;
  base.link_serialization =
      dcrd::SimDuration::Millis(flags.GetInt("serialization_ms", 10));
  flags.ExitOnUnqueried();
  dcrd::figures::ApplyScale(scale, base);

  const dcrd::SweepResult sweep = dcrd::figures::RunFigureSweep(
      scale, "ext3_congestion", "Ext.3 congestion", "pkts/s per publisher",
      base, scale.routers, {1, 2, 3, 4, 5},
      [](double rate, dcrd::ScenarioConfig& config) {
        config.publish_interval =
            dcrd::SimDuration::FromSecondsF(1.0 / rate);
      });

  dcrd::PrintStandardPanels(std::cout, sweep);
  dcrd::figures::MaybeSaveCsv(scale, "ext3_congestion", sweep);
  return 0;
}
