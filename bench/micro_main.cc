// Shared main() for the google-benchmark micro-benches (replaces
// benchmark_main) so they speak the repo's flag dialect: --bench_json PATH
// appends a wall-clock record (benchmark count, seconds, git describe,
// per-benchmark items/s rates) to the JSON perf-trajectory file,
// --benchmark_* flags pass through to the benchmark library untouched, and
// unknown --flags abort like every other binary.
//
// Every micro binary also carries BM_CalibrationSpin: a fixed pure-ALU
// workload whose rate depends on the machine and its load, never on the
// repo's code. scripts/bench_gate.py divides candidate rates by the
// calibration ratio before comparing against the committed baseline, so a
// slow or noisy CI machine doesn't read as a code regression.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "sim/bench_json.h"
#include "sim/sweep_runner.h"

namespace {

std::string Basename(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

void BM_CalibrationSpin(benchmark::State& state) {
  // xorshift64 over a fixed chunk: integer ALU + a data dependency chain,
  // no memory traffic, no repo code. The absolute rate is meaningless; the
  // baseline/candidate *ratio* estimates how fast this machine is running
  // relative to when the baseline was recorded.
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;
  for (auto _ : state) {
    for (int i = 0; i < 4096; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_CalibrationSpin);

// Console output exactly as stock google-benchmark, plus a capture of each
// per-iteration run's items/s for the --bench_json record.
class RateCapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const auto it = run.counters.find("items_per_second");
      if (it == run.counters.end()) continue;
      rates_.emplace_back(run.benchmark_name(),
                          static_cast<double>(it->second));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& rates()
      const {
    return rates_;
  }

 private:
  std::vector<std::pair<std::string, double>> rates_;
};

}  // namespace

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const std::string bench_json = flags.GetString("bench_json", "");
  flags.ExitOnUnqueried();

  // Hand benchmark::Initialize argv[0] plus the untouched pass-through
  // tokens (--benchmark_* and positionals).
  std::vector<std::string> args;
  args.emplace_back(argv[0]);
  for (const std::string& token : flags.passthrough()) args.push_back(token);
  std::vector<char*> argv_pass;
  argv_pass.reserve(args.size());
  for (std::string& token : args) argv_pass.push_back(token.data());
  int argc_pass = static_cast<int>(argv_pass.size());
  benchmark::Initialize(&argc_pass, argv_pass.data());
  if (benchmark::ReportUnrecognizedArguments(argc_pass, argv_pass.data())) {
    return 1;
  }

  RateCapturingReporter reporter;
  const auto start = std::chrono::steady_clock::now();
  const std::size_t benchmarks_run =
      benchmark::RunSpecifiedBenchmarks(&reporter);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (!bench_json.empty()) {
    dcrd::SweepRunStats stats;
    stats.jobs = 1;
    stats.cells = benchmarks_run;
    stats.wall_seconds = wall_seconds;
    dcrd::BenchRecord record =
        dcrd::MakeBenchRecord(Basename(argv[0]), stats);
    record.rates = reporter.rates();
    dcrd::AppendBenchRecord(bench_json, record);
  }
  benchmark::Shutdown();
  return 0;
}
