// Shared main() for the google-benchmark micro-benches (replaces
// benchmark_main) so they speak the repo's flag dialect: --bench_json PATH
// appends a wall-clock record (benchmark count, seconds, git describe) to
// the JSON perf-trajectory file, --benchmark_* flags pass through to the
// benchmark library untouched, and unknown --flags abort like every other
// binary.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "common/flags.h"
#include "sim/bench_json.h"
#include "sim/sweep_runner.h"

namespace {

std::string Basename(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

}  // namespace

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const std::string bench_json = flags.GetString("bench_json", "");
  flags.ExitOnUnqueried();

  // Hand benchmark::Initialize argv[0] plus the untouched pass-through
  // tokens (--benchmark_* and positionals).
  std::vector<std::string> args;
  args.emplace_back(argv[0]);
  for (const std::string& token : flags.passthrough()) args.push_back(token);
  std::vector<char*> argv_pass;
  argv_pass.reserve(args.size());
  for (std::string& token : args) argv_pass.push_back(token.data());
  int argc_pass = static_cast<int>(argv_pass.size());
  benchmark::Initialize(&argc_pass, argv_pass.data());
  if (benchmark::ReportUnrecognizedArguments(argc_pass, argv_pass.data())) {
    return 1;
  }

  const auto start = std::chrono::steady_clock::now();
  const std::size_t benchmarks_run = benchmark::RunSpecifiedBenchmarks();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (!bench_json.empty()) {
    dcrd::SweepRunStats stats;
    stats.jobs = 1;
    stats.cells = benchmarks_run;
    stats.wall_seconds = wall_seconds;
    dcrd::AppendBenchRecord(
        bench_json, dcrd::MakeBenchRecord(Basename(argv[0]), stats));
  }
  benchmark::Shutdown();
  return 0;
}
