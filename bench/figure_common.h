// Shared plumbing for the figure-reproduction binaries.
//
// Every figN binary accepts:
//   --paper          full paper scale (10 repetitions, 2 h simulated time)
//   --reps N         override repetition count
//   --seconds S      override simulated seconds
//   --seed S         base seed (rep r runs with seed S+r)
//   --routers a,b    subset of DCRD,R-Tree,D-Tree,ORACLE,Multipath
//
// Default scale is reduced (2 repetitions x 600 simulated seconds) so the
// whole bench suite finishes in minutes; the series' *shape* is already
// stable at that scale, and --paper reproduces the paper's configuration.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "sim/experiment.h"
#include "sim/report.h"

namespace dcrd::figures {

struct FigureScale {
  int repetitions = 2;
  SimDuration sim_time = SimDuration::Seconds(600);
  std::uint64_t seed = 1;
  std::vector<RouterKind> routers = {RouterKind::kDcrd, RouterKind::kRTree,
                                     RouterKind::kDTree, RouterKind::kOracle,
                                     RouterKind::kMultipath};
  std::string csv_dir;  // when set (--csv DIR), sweeps also land as CSV
};

inline std::vector<RouterKind> ParseRouters(const std::string& csv) {
  std::vector<RouterKind> routers;
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token == "DCRD") routers.push_back(RouterKind::kDcrd);
    else if (token == "R-Tree") routers.push_back(RouterKind::kRTree);
    else if (token == "D-Tree") routers.push_back(RouterKind::kDTree);
    else if (token == "ORACLE") routers.push_back(RouterKind::kOracle);
    else if (token == "Multipath") routers.push_back(RouterKind::kMultipath);
    else std::cerr << "unknown router '" << token << "' ignored\n";
  }
  return routers;
}

inline FigureScale ParseScale(const Flags& flags) {
  FigureScale scale;
  if (flags.GetBool("paper", false)) {
    scale.repetitions = 10;                           // 10 topologies
    scale.sim_time = SimDuration::Seconds(7200);      // two hours
  }
  scale.repetitions =
      static_cast<int>(flags.GetInt("reps", scale.repetitions));
  if (flags.Has("seconds")) {
    scale.sim_time = SimDuration::Seconds(flags.GetInt("seconds", 600));
  }
  scale.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  if (flags.Has("routers")) {
    scale.routers = ParseRouters(flags.GetString("routers", ""));
  }
  scale.csv_dir = flags.GetString("csv", "");
  return scale;
}

inline void MaybeSaveCsv(const FigureScale& scale, const std::string& stem,
                         const SweepResult& sweep) {
  if (scale.csv_dir.empty()) return;
  const std::string path = SaveSweepCsv(scale.csv_dir, stem, sweep);
  if (!path.empty()) std::cout << "wrote " << path << "\n";
}

inline void ApplyScale(const FigureScale& scale, ScenarioConfig& config) {
  config.sim_time = scale.sim_time;
  config.seed = scale.seed;
}

inline void PrintHeader(const std::string& figure,
                        const FigureScale& scale) {
  std::cout << "=== " << figure << " ===\n"
            << "repetitions=" << scale.repetitions
            << " simulated=" << scale.sim_time.seconds() << "s"
            << " (use --paper for the 10x7200s paper scale)\n";
}

}  // namespace dcrd::figures
