// Shared plumbing for the figure-reproduction binaries.
//
// Every figN binary accepts:
//   --paper          full paper scale (10 repetitions, 2 h simulated time)
//   --reps N         override repetition count
//   --seconds S      override simulated seconds
//   --seed S         base seed (rep r runs with seed S+r)
//   --routers a,b    subset of DCRD,R-Tree,D-Tree,ORACLE,Multipath
//   --jobs N         worker threads for the sweep pool (default: all cores;
//                    1 = the historical serial path). Output is
//                    bit-identical for any job count.
//   --shards N       engine shards *per scenario* (default 1 = classic
//                    single-thread engine; see DESIGN.md §12). Output is
//                    bit-identical for any shard count; jobs x shards is
//                    capped at hardware concurrency (note on stderr).
//   --bench_json P   append wall-clock/throughput records to the JSON
//                    array at P (see sim/bench_json.h)
//   --trace          keep an in-memory flight recorder per cell (postmortem
//                    dumps on invariant violations / crashes)
//   --trace_out P    stream each cell's full trace to
//                    P.<stem>.<cell>.jsonl (implies --trace); inspect with
//                    tools/dcrd_trace
//   --metrics_json P write each cell's metrics registry to
//                    P.<stem>.<cell>.json (works at any --shards count;
//                    per-shard registries merge at join)
//   --timeseries P   sample each cell's metrics registry every simulated
//                    second into a columnar time series — counter deltas,
//                    gauge levels, histogram raw-bucket deltas, per-broker
//                    health, windowed deadline-SLO series — written to
//                    P.<stem>.<cell>.json ("dcrd-timeseries-v1"); render
//                    with tools/dcrd_trace --timeseries. Works at any
//                    --shards count
//   --no_timer_wheel run every scheduler on the legacy binary-heap backend
//                    (determinism_check.sh byte-diffs this against the
//                    default timer-wheel path)
//   --delay_audit P  delay-provenance capture: per cell, stream the full
//                    trace to P.trace.<stem>.<cell>.jsonl and the Theorem-1
//                    model rows to P.model.<stem>.<cell>.jsonl (DCRD cells
//                    only — other routers have no <d,r> model and note that
//                    on stderr). Decompose/audit offline with
//                    tools/dcrd_trace --decompose --audit
//   --shard_profile P  write each cell's shard-execution profile (per-shard
//                    busy/stall wall time, events, cross-shard traffic
//                    matrix — DESIGN.md §13) to P.<stem>.<cell>.json;
//                    render with tools/dcrd_trace --shards. Works at any
//                    --shards count.
//
// Observability never touches stdout or any RNG stream, so the figure
// tables stay byte-identical with or without it (determinism_check.sh
// verifies). Per-cell file names keep parallel sweep workers from writing
// over each other.
//
// Default scale is reduced (2 repetitions x 600 simulated seconds) so the
// whole bench suite finishes in minutes; the series' *shape* is already
// stable at that scale, and --paper reproduces the paper's configuration.
//
// Run information (repetition counts, job counts, CSV/bench notices) goes
// to stderr; stdout carries only the deterministic tables, which is what
// scripts/determinism_check.sh diffs byte-for-byte across job counts.
#pragma once

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "sim/bench_json.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/sweep_runner.h"

namespace dcrd::figures {

struct FigureScale {
  int repetitions = 2;
  SimDuration sim_time = SimDuration::Seconds(600);
  std::uint64_t seed = 1;
  std::vector<RouterKind> routers = {RouterKind::kDcrd, RouterKind::kRTree,
                                     RouterKind::kDTree, RouterKind::kOracle,
                                     RouterKind::kMultipath};
  std::string csv_dir;  // when set (--csv DIR), sweeps also land as CSV
  int jobs = 1;         // resolved by ParseScale; 1 only until then
  int shards = 1;       // engine shards per cell (--shards)
  std::string bench_json;  // when set (--bench_json PATH), append records
  bool trace = false;       // --trace: in-memory flight recorder per cell
  std::string trace_out;    // --trace_out: JSONL trace file prefix
  std::string metrics_json;  // --metrics_json: metrics file prefix
  std::string timeseries;    // --timeseries: time-series file prefix
  std::string delay_audit;   // --delay_audit: trace+model file prefix
  std::string shard_profile;  // --shard_profile: exec-profile file prefix
};

inline std::vector<RouterKind> ParseRouters(const std::string& csv) {
  std::vector<RouterKind> routers;
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token == "DCRD") routers.push_back(RouterKind::kDcrd);
    else if (token == "R-Tree") routers.push_back(RouterKind::kRTree);
    else if (token == "D-Tree") routers.push_back(RouterKind::kDTree);
    else if (token == "ORACLE") routers.push_back(RouterKind::kOracle);
    else if (token == "Multipath") routers.push_back(RouterKind::kMultipath);
    else std::cerr << "unknown router '" << token << "' ignored\n";
  }
  return routers;
}

inline FigureScale ParseScale(const Flags& flags) {
  FigureScale scale;
  if (flags.GetBool("paper", false)) {
    scale.repetitions = 10;                           // 10 topologies
    scale.sim_time = SimDuration::Seconds(7200);      // two hours
  }
  scale.repetitions =
      static_cast<int>(flags.GetInt("reps", scale.repetitions));
  if (flags.Has("seconds")) {
    scale.sim_time = SimDuration::Seconds(flags.GetInt("seconds", 600));
  }
  scale.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  if (flags.Has("routers")) {
    scale.routers = ParseRouters(flags.GetString("routers", ""));
  }
  scale.csv_dir = flags.GetString("csv", "");
  scale.shards =
      std::max(1, static_cast<int>(flags.GetInt("shards", 1)));
  // Compose the two parallelism layers: sweep cells x engine shards must
  // not oversubscribe the machine (CapJobsForShards warns on stderr only).
  scale.jobs = CapJobsForShards(
      ResolveJobCount(static_cast<int>(flags.GetInt("jobs", 0))),
      scale.shards);
  if (flags.GetBool("no_timer_wheel", false)) {
    // Debug escape hatch for scripts/determinism_check.sh: run every
    // scheduler on the legacy binary-heap backend so the wheel and heap
    // paths can be byte-diffed against each other. Set here, before the
    // sweep pool spawns worker threads (the default is process-wide).
    Scheduler::SetProcessDefaultBackend(SchedulerBackend::kBinaryHeap);
    std::cerr << "timer wheel disabled: binary-heap scheduler backend\n";
  }
  scale.bench_json = flags.GetString("bench_json", "");
  scale.trace = flags.GetBool("trace", false);
  scale.trace_out = flags.GetString("trace_out", "");
  scale.metrics_json = flags.GetString("metrics_json", "");
  scale.timeseries = flags.GetString("timeseries", "");
  scale.delay_audit = flags.GetString("delay_audit", "");
  scale.shard_profile = flags.GetString("shard_profile", "");
  return scale;
}

// True when any observability output was requested on the command line.
inline bool ObservabilityRequested(const FigureScale& scale) {
  return scale.trace || !scale.trace_out.empty() ||
         !scale.metrics_json.empty() || !scale.timeseries.empty() ||
         !scale.delay_audit.empty() || !scale.shard_profile.empty();
}

// Applies the scale's observability options to one cell's config. `cell`
// distinguishes concurrent sweep cells (router/x/rep) so their trace and
// metrics files never collide.
inline void ApplyObservability(const FigureScale& scale,
                               const std::string& stem,
                               const std::string& cell,
                               ScenarioConfig& config) {
  config.trace =
      scale.trace || !scale.trace_out.empty() || !scale.delay_audit.empty();
  if (!scale.trace_out.empty()) {
    config.trace_out = scale.trace_out + "." + stem + "." + cell + ".jsonl";
  }
  if (!scale.metrics_json.empty()) {
    config.metrics_json =
        scale.metrics_json + "." + stem + "." + cell + ".json";
  }
  if (!scale.timeseries.empty()) {
    config.timeseries_out =
        scale.timeseries + "." + stem + "." + cell + ".json";
  }
  if (!scale.delay_audit.empty()) {
    // The audit needs the trace (observed side) and the model rows
    // (expected side) from the same cell; emit both under one prefix so
    // the dcrd_trace join is a two-argument affair.
    config.trace_out =
        scale.delay_audit + ".trace." + stem + "." + cell + ".jsonl";
    config.delay_audit_out =
        scale.delay_audit + ".model." + stem + "." + cell + ".jsonl";
  }
  if (!scale.shard_profile.empty()) {
    config.shard_profile_out =
        scale.shard_profile + "." + stem + "." + cell + ".json";
  }
}

inline void MaybeSaveCsv(const FigureScale& scale, const std::string& stem,
                         const SweepResult& sweep) {
  if (scale.csv_dir.empty()) return;
  const std::string path = SaveSweepCsv(scale.csv_dir, stem, sweep);
  if (!path.empty()) std::cerr << "wrote " << path << "\n";
}

// Appends one bench record for a pooled run when --bench_json is set.
inline void MaybeAppendBench(const FigureScale& scale, const std::string& stem,
                             const SweepRunStats& stats) {
  if (scale.bench_json.empty()) return;
  if (AppendBenchRecord(scale.bench_json, MakeBenchRecord(stem, stats))) {
    std::cerr << "bench record '" << stem << "' appended to "
              << scale.bench_json << "\n";
  }
}

// RunSweep on the scale's pool, with bench accounting under `stem`.
inline SweepResult RunFigureSweep(
    const FigureScale& scale, const std::string& stem,
    const std::string& title, const std::string& x_label,
    const ScenarioConfig& base, const std::vector<RouterKind>& routers,
    const std::vector<double>& x_values,
    const std::function<void(double, ScenarioConfig&)>& configure) {
  // RunSweep sets config.router and config.seed (= base.seed + rep) before
  // calling configure, which is exactly what the per-cell file tag needs.
  std::function<void(double, ScenarioConfig&)> cell_configure = configure;
  if (ObservabilityRequested(scale)) {
    const std::uint64_t base_seed = base.seed;
    cell_configure = [&scale, stem, base_seed, configure](
                         double x, ScenarioConfig& config) {
      const std::uint64_t rep = config.seed - base_seed;
      configure(x, config);
      std::ostringstream cell;
      cell << RouterName(config.router) << ".x" << x << ".rep" << rep;
      ApplyObservability(scale, stem, cell.str(), config);
    };
  }
  SweepRunStats stats;
  SweepResult sweep = RunSweep(title, x_label, base, routers, x_values,
                               cell_configure, scale.repetitions, scale.jobs,
                               &stats);
  MaybeAppendBench(scale, stem, stats);
  return sweep;
}

// RunRepetitions on the scale's pool, with bench accounting under `stem`.
// `make_config(rep)` must set the seed itself (conventionally
// scale.seed + rep).
inline RunSummary RunFigureReps(
    const FigureScale& scale, const std::string& stem,
    const std::function<ScenarioConfig(int)>& make_config) {
  std::function<ScenarioConfig(int)> cell_config = make_config;
  if (ObservabilityRequested(scale)) {
    cell_config = [&scale, stem, make_config](int rep) {
      ScenarioConfig config = make_config(rep);
      std::ostringstream cell;
      cell << RouterName(config.router) << ".rep" << rep;
      ApplyObservability(scale, stem, cell.str(), config);
      return config;
    };
  }
  SweepRunStats stats;
  RunSummary pooled =
      RunRepetitions(scale.repetitions, scale.jobs, cell_config, &stats);
  MaybeAppendBench(scale, stem, stats);
  return pooled;
}

inline void ApplyScale(const FigureScale& scale, ScenarioConfig& config) {
  config.sim_time = scale.sim_time;
  config.seed = scale.seed;
  config.shards = scale.shards;
}

inline void PrintHeader(const std::string& figure,
                        const FigureScale& scale) {
  std::cout << "=== " << figure << " ===\n"
            << "repetitions=" << scale.repetitions
            << " simulated=" << scale.sim_time.seconds() << "s"
            << " (use --paper for the 10x7200s paper scale)\n";
  // stderr: stdout must stay byte-identical across --jobs and --shards
  // values.
  std::cerr << "jobs=" << scale.jobs << " shards=" << scale.shards << "\n";
}

}  // namespace dcrd::figures
