// Microbenchmark: discrete-event scheduler throughput.
//
// The figure harnesses push millions of events per simulated hour; these
// benches track the cost of schedule/run cycles, cancellation, and the
// timer-heavy pattern HopTransport produces (schedule + cancel ~every ACK).
#include <benchmark/benchmark.h>

#include <functional>

#include "common/rng.h"
#include "event/scheduler.h"

namespace {

using dcrd::Rng;
using dcrd::Scheduler;
using dcrd::SimDuration;
using dcrd::SimTime;

void BM_ScheduleAndRun(benchmark::State& state) {
  const std::int64_t count = state.range(0);
  Rng rng(42);
  for (auto _ : state) {
    Scheduler scheduler;
    std::uint64_t sink = 0;
    for (std::int64_t i = 0; i < count; ++i) {
      scheduler.ScheduleAfter(
          SimDuration::Micros(static_cast<std::int64_t>(rng.NextBounded(1'000'000))),
          [&sink] { ++sink; });
    }
    scheduler.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_ScheduleAndRun)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_ScheduleCancel(benchmark::State& state) {
  // The ACK-timer pattern: almost every timer is cancelled before it fires.
  const std::int64_t count = state.range(0);
  for (auto _ : state) {
    Scheduler scheduler;
    std::vector<dcrd::EventHandle> handles;
    handles.reserve(count);
    for (std::int64_t i = 0; i < count; ++i) {
      handles.push_back(scheduler.ScheduleAfter(SimDuration::Millis(60),
                                                [] {}));
    }
    for (auto& handle : handles) scheduler.Cancel(handle);
    scheduler.Run();
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_ScheduleCancel)->Arg(1'000)->Arg(100'000);

void BM_InterleavedTimerChurn(benchmark::State& state) {
  // Schedule-fire-reschedule chains like periodic publishers.
  for (auto _ : state) {
    Scheduler scheduler;
    std::uint64_t fired = 0;
    std::function<void()> tick = [&] {
      if (++fired < 10'000) {
        scheduler.ScheduleAfter(SimDuration::Millis(1), tick);
      }
    };
    scheduler.ScheduleAfter(SimDuration::Millis(1), tick);
    scheduler.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_InterleavedTimerChurn);

}  // namespace
