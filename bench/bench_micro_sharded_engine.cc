// Microbenchmark: whole-engine throughput on a large topology, single- and
// multi-shard. This is the perf-gate record for the sharded-engine work:
// the Sim refactor (sim/engine.cc) moved the classic engine's state behind
// the shard coordinator, and this benchmark pins its end-to-end cost so a
// regression on the 400-broker path cannot land silently. Items = data +
// ACK transmissions resolved, a direct proxy for events executed.
//
// The scenario is fig5-style (sparse random overlay, retries on) but
// smaller than bench_sharded_engine's scaling runs so the gate's
// interleaved rounds stay in CI budget.
#include <benchmark/benchmark.h>

#include "sim/engine.h"

namespace {

dcrd::ScenarioConfig LargeTopologyConfig(int shards) {
  dcrd::ScenarioConfig config;
  config.router = dcrd::RouterKind::kDcrd;
  config.node_count = 400;
  config.topology = dcrd::TopologyKind::kRandomDegree;
  config.degree = 4;
  config.topic_count = 6;
  config.failure_probability = 0.05;
  config.loss_rate = 1e-3;
  config.max_transmissions = 2;
  config.publish_interval = dcrd::SimDuration::Millis(500);
  config.monitor_interval = dcrd::SimDuration::Seconds(10);
  config.sim_time = dcrd::SimDuration::Seconds(10);
  config.seed = 1;
  config.shards = shards;
  return config;
}

void BM_LargeTopologyEngine(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const dcrd::ScenarioConfig config = LargeTopologyConfig(shards);
  std::uint64_t items = 0;
  for (auto _ : state) {
    const dcrd::RunSummary summary = dcrd::RunScenario(config);
    items += summary.data_transmissions + summary.ack_transmissions;
    benchmark::DoNotOptimize(summary.delivered_pairs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
}
// shards=1 is the gate record proper (machine-independent of core count);
// shards=4 tracks the sharded path's trajectory on multi-core runners.
// UseRealTime: shard work runs on worker threads, so the default
// main-thread CPU clock would misreport the multi-shard rate entirely.
BENCHMARK(BM_LargeTopologyEngine)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
