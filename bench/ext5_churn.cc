// Extension experiment 5 — subscription churn.
//
// The overlay-multicast literature the paper builds on ([7], [8]) is
// largely about handling subscribers joining and leaving; the paper itself
// evaluates a static population. Here every monitoring epoch replaces each
// subscription with probability `churn` by a subscription from a fresh
// broker, and the epoch interval is shortened to 30 s so churn actually
// bites mid-run.
//
// Expectation: all protocols lose a little (messages published just before
// a join are not yet routed toward the joiner), but ranking is preserved —
// DCRD's tables rebuild at the same epochs the trees do, so churn is not a
// differentiator the way failures are.
#include <iostream>

#include "common/flags.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const auto scale = dcrd::figures::ParseScale(flags);
  flags.ExitOnUnqueried();
  dcrd::figures::PrintHeader(
      "Ext.5: subscription churn, 20 nodes, degree 8, Pf=0.04, epoch 30s",
      scale);

  dcrd::ScenarioConfig base;
  base.node_count = 20;
  base.topology = dcrd::TopologyKind::kRandomDegree;
  base.degree = 8;
  base.failure_probability = 0.04;
  base.loss_rate = 1e-4;
  base.monitor_interval = dcrd::SimDuration::Seconds(30);
  dcrd::figures::ApplyScale(scale, base);

  const dcrd::SweepResult sweep = dcrd::figures::RunFigureSweep(
      scale, "ext5_churn", "Ext.5 churn", "churn/epoch", base, scale.routers,
      {0.0, 0.1, 0.2, 0.4},
      [](double churn, dcrd::ScenarioConfig& config) {
        config.subscription_churn = churn;
      });

  dcrd::PrintStandardPanels(std::cout, sweep);
  dcrd::figures::MaybeSaveCsv(scale, "ext5_churn", sweep);
  return 0;
}
