// Microbenchmark: shortest-path machinery.
//
// Dijkstra dominates tree rebuilds and every ORACLE publish; Yen dominates
// Multipath rebuilds. Sized to the paper's topologies (20..160 nodes).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "graph/shortest_path.h"
#include "graph/topology.h"
#include "graph/yen_ksp.h"
#include "net/failure_schedule.h"

namespace {

using namespace dcrd;

Graph MakeOverlay(std::size_t nodes, std::size_t degree) {
  Rng rng(7);
  return RandomConnected(nodes, degree, rng);
}

void BM_ShortestDelayTree(benchmark::State& state) {
  const Graph graph = MakeOverlay(static_cast<std::size_t>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShortestDelayTree(graph, NodeId(0)));
  }
}
BENCHMARK(BM_ShortestDelayTree)->Arg(20)->Arg(80)->Arg(160);

void BM_ShortestHopTree(benchmark::State& state) {
  const Graph graph = MakeOverlay(static_cast<std::size_t>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShortestHopTree(graph, NodeId(0)));
  }
}
BENCHMARK(BM_ShortestHopTree)->Arg(20)->Arg(160);

void BM_TimeAwareShortestPath(benchmark::State& state) {
  const Graph graph = MakeOverlay(static_cast<std::size_t>(state.range(0)), 8);
  const FailureSchedule failures(99, 0.06);
  const NodeId dest(static_cast<NodeId::underlying_type>(state.range(0) - 1));
  SimTime depart = SimTime::Zero();
  for (auto _ : state) {
    benchmark::DoNotOptimize(TimeAwareShortestPath(
        graph, NodeId(0), dest, depart,
        [&failures](LinkId link, SimTime t) { return failures.IsUp(link, t); }));
    depart += SimDuration::Seconds(1);
  }
}
BENCHMARK(BM_TimeAwareShortestPath)->Arg(20)->Arg(160);

void BM_YenTop5(benchmark::State& state) {
  const Graph graph = MakeOverlay(static_cast<std::size_t>(state.range(0)), 8);
  const NodeId dest(static_cast<NodeId::underlying_type>(state.range(0) - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        YenKShortestPaths(graph, NodeId(0), dest, 5));
  }
}
BENCHMARK(BM_YenTop5)->Arg(20)->Arg(80);

}  // namespace
