// Microbenchmark: continuous-telemetry sampler cost (obs/timeseries.h).
//
// The sampler's contract mirrors the shard profiler's: a run without
// --timeseries pays one untaken null-check branch at setup — nothing per
// event — and the enabled path is one scheduler event per interval doing
// pure column writes into pre-reserved storage. These benches pin the
// costs that matter: the per-sample snapshot against a registry of
// production shape (the 1920-bucket histogram diff dominates), the
// end-of-run 8-shard merge, and the JSON serialisation, so the perf gate
// tracks them over time alongside the profiler's.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <ostream>
#include <streambuf>
#include <vector>

#include "event/scheduler.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries.h"

namespace {

using dcrd::BrokerHealth;
using dcrd::LogLinearHistogram;
using dcrd::MetricsRegistry;
using dcrd::Scheduler;
using dcrd::SimDuration;
using dcrd::SimTime;
using dcrd::TimeSeriesConfig;
using dcrd::TimeSeriesSampler;
using dcrd::TimeSeriesStore;

class NullStreambuf final : public std::streambuf {
 protected:
  int overflow(int ch) override { return ch; }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
};

// A registry of roughly the engine's shape: ~25 counters, 4 gauges, two
// histograms with samples spread across bucket groups.
struct EngineShapedRegistry {
  MetricsRegistry registry;
  std::vector<std::uint64_t*> counters;
  LogLinearHistogram* delay;
  LogLinearHistogram* rtt;
  std::uint64_t level = 0;

  EngineShapedRegistry() {
    counters.reserve(25);
    for (int i = 0; i < 25; ++i) {
      counters.push_back(
          registry.AddCounter("bench.counter" + std::to_string(i)));
    }
    for (int i = 0; i < 4; ++i) {
      registry.RegisterGauge("bench.gauge" + std::to_string(i),
                             [this] { return level; });
    }
    delay = registry.AddHistogram("delivery.delay_us");
    rtt = registry.AddHistogram("bench.rtt_us");
  }

  void Mutate(std::uint64_t& lcg) {
    for (std::uint64_t* c : counters) {
      lcg = lcg * 1664525 + 1013904223;
      *c += lcg & 15;
    }
    level = lcg % 32;
    for (int i = 0; i < 16; ++i) {
      lcg = lcg * 1664525 + 1013904223;
      delay->Record(static_cast<std::int64_t>(lcg % 10000000));
      rtt->Record(static_cast<std::int64_t>(lcg % 100000));
    }
  }
};

TimeSeriesConfig ConfigFor(int samples, std::size_t node_count) {
  TimeSeriesConfig config;
  config.interval = SimDuration::Seconds(1);
  // The sample budget (and with it every up-front reservation) is
  // end / interval + slack, so keep `end` proportional to what we drive.
  config.end = SimTime::FromMicros(static_cast<std::int64_t>(samples) *
                                   1'000'000);
  config.node_count = node_count;
  return config;
}

// Per-sample cost with a dirty registry: 25 counter diffs, 4 gauge reads,
// two full 1920-bucket histogram diffs, and 64 broker-health rows. This is
// the entire per-interval price of --timeseries. The store's budget is
// finite, so the sampler is rebuilt (outside the timed region) every 4096
// samples — amortised noise, not measurement.
void BM_TimeSeriesSample(benchmark::State& state) {
  constexpr int kBudget = 4096;
  EngineShapedRegistry rig;
  Scheduler scheduler;
  const auto health = [](std::vector<BrokerHealth>& out) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b].pending_copies = b;
    }
  };
  auto sampler = std::make_unique<TimeSeriesSampler>(
      rig.registry, scheduler, ConfigFor(kBudget, 64), health);
  std::uint64_t lcg = 99;
  for (auto _ : state) {
    if (sampler->store().samples() >= kBudget) {
      state.PauseTiming();
      sampler = std::make_unique<TimeSeriesSampler>(
          rig.registry, scheduler, ConfigFor(kBudget, 64), health);
      state.ResumeTiming();
    }
    rig.Mutate(lcg);
    sampler->SampleNow();
    benchmark::DoNotOptimize(sampler->store().t_us.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeSeriesSample);

std::unique_ptr<TimeSeriesSampler> DrivenSampler(EngineShapedRegistry& rig,
                                                 Scheduler& scheduler,
                                                 int samples) {
  auto sampler = std::make_unique<TimeSeriesSampler>(
      rig.registry, scheduler, ConfigFor(samples, 64), nullptr);
  std::uint64_t lcg = 3;
  for (int s = 1; s < samples; ++s) {
    rig.Mutate(lcg);
    sampler->SampleNow();
  }
  return sampler;
}

// End-of-run cost: fold 8 shard stores of 300 samples each — the join-time
// work a 5-minute sharded figure run pays once.
void BM_TimeSeriesMerge8Shards(benchmark::State& state) {
  std::vector<EngineShapedRegistry> rigs(8);
  Scheduler scheduler;
  std::vector<std::unique_ptr<TimeSeriesSampler>> samplers;
  std::vector<const TimeSeriesStore*> stores;
  for (auto& rig : rigs) {
    samplers.push_back(DrivenSampler(rig, scheduler, 300));
    stores.push_back(&samplers.back()->store());
  }
  for (auto _ : state) {
    const TimeSeriesStore merged = dcrd::MergeTimeSeriesStores(stores);
    benchmark::DoNotOptimize(merged.t_us.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeSeriesMerge8Shards);

// Serialisation cost for a 300-sample store, SLO series included.
void BM_TimeSeriesWriteJson(benchmark::State& state) {
  EngineShapedRegistry rig;
  Scheduler scheduler;
  const auto sampler = DrivenSampler(rig, scheduler, 300);
  NullStreambuf devnull;
  std::ostream sink(&devnull);
  for (auto _ : state) {
    dcrd::WriteTimeSeriesJson(sink, sampler->store());
    benchmark::DoNotOptimize(sink.rdstate());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeSeriesWriteJson);

}  // namespace
