// Extension experiment 7 — gray failures and adaptive retransmission.
//
// The paper's failure model is binary: a link is up or down, and the fixed
// 2*alpha_hat retransmission timer is tuned to that world. Real overlays
// also degrade *partially* — elevated loss, inflated delay, often in one
// direction only. Two questions:
//
//   (1) How does each protocol degrade as gray episodes (extra loss +
//       delay inflation + asymmetry) become more frequent? Panels:
//       delivery ratio, p99 end-to-end delay, spurious-retransmission
//       rate (spurious per data transmission).
//   (2) Under pure delay inflation the fixed timer fires before the ACK
//       can possibly return — every retransmission is wasted capacity.
//       Does the per-link Jacobson/Karels estimator (--adaptive_rto in
//       dcrdsim) recover that waste without giving up delivery?
//
// Expectation: gray loss hurts the trees most (single path, no retry
// budget to spare); DCRD's reroute machinery holds delivery but pays in
// spurious retransmissions under delay inflation — unless the adaptive
// timer is on, which learns the inflated RTT within a few samples.
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/flags.h"
#include "figure_common.h"

namespace {

double P99DelayMs(const dcrd::RunSummary& summary) {
  if (summary.delay_ms_samples.empty()) return 0.0;
  std::vector<double> sorted = summary.delay_ms_samples;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      0.99 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

double SpuriousRate(const dcrd::RunSummary& summary) {
  return summary.data_transmissions == 0
             ? 0.0
             : static_cast<double>(summary.spurious_retransmissions) /
                   static_cast<double>(summary.data_transmissions);
}

// Total retransmission rate. A copy whose send budget expires before a
// badly late ACK straggles home cannot be classified spurious, so under
// heavy inflation this is the honest waste metric alongside SpuriousRate.
double RetxRate(const dcrd::RunSummary& summary) {
  return summary.data_transmissions == 0
             ? 0.0
             : static_cast<double>(summary.retransmissions) /
                   static_cast<double>(summary.data_transmissions);
}

}  // namespace

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const auto scale = dcrd::figures::ParseScale(flags);
  dcrd::figures::PrintHeader(
      "Ext.7: gray failures, 20 nodes, degree 5, link Pf=0.05, m=3", scale);

  dcrd::ScenarioConfig base;
  base.node_count = 20;
  base.topology = dcrd::TopologyKind::kRandomDegree;
  base.degree = 5;
  base.failure_probability = 0.05;
  base.loss_rate = 1e-4;
  base.max_transmissions = 3;
  base.gray_extra_loss = flags.GetDouble("gray_loss", 0.25);
  base.gray_delay_factor = flags.GetDouble("gray_delay_factor", 3.0);
  base.gray_asymmetry = flags.GetDouble("gray_asymmetry", 0.5);
  flags.ExitOnUnqueried();
  dcrd::figures::ApplyScale(scale, base);

  // Panel set 1: sweep gray-episode probability for all protocols.
  const dcrd::SweepResult sweep = dcrd::figures::RunFigureSweep(
      scale, "ext7_gray_failures", "Ext.7 gray-failure intensity", "gray Pf",
      base, scale.routers, {0.0, 0.1, 0.2, 0.3, 0.4},
      [](double pf, dcrd::ScenarioConfig& config) {
        config.gray_probability = pf;
      });

  dcrd::PrintTable(std::cout, sweep, "delivery ratio",
                   [](const dcrd::RunSummary& s) { return s.delivery_ratio(); });
  dcrd::PrintTable(std::cout, sweep, "p99 delay (ms)", P99DelayMs);
  dcrd::PrintTable(std::cout, sweep, "spurious retx per data tx",
                   SpuriousRate);
  dcrd::figures::MaybeSaveCsv(scale, "ext7_gray_failures", sweep);

  // Panel set 2: DCRD fixed timer vs adaptive RTO under pure delay
  // inflation. No binary outages, no packet loss, no gray loss: nothing is
  // ever actually lost, so *every* retransmission is pure timer waste —
  // the cleanest possible read on what each timer policy costs.
  dcrd::ScenarioConfig inflate = base;
  inflate.failure_probability = 0.0;
  inflate.loss_rate = 0.0;
  inflate.gray_probability = 0.3;
  inflate.gray_extra_loss = 0.0;
  inflate.gray_asymmetry = 0.0;
  const std::vector<double> factors = {1.0, 2.0, 4.0, 6.0, 8.0};
  const std::vector<dcrd::RouterKind> dcrd_only = {dcrd::RouterKind::kDcrd};
  const auto set_factor = [](double factor, dcrd::ScenarioConfig& config) {
    config.gray_delay_factor = factor;
  };

  inflate.adaptive_rto = false;
  const dcrd::SweepResult fixed_sweep = dcrd::figures::RunFigureSweep(
      scale, "ext7_rto_fixed", "Ext.7 DCRD fixed timer", "delay factor",
      inflate, dcrd_only, factors, set_factor);
  inflate.adaptive_rto = true;
  const dcrd::SweepResult adaptive_sweep = dcrd::figures::RunFigureSweep(
      scale, "ext7_rto_adaptive", "Ext.7 DCRD adaptive RTO", "delay factor",
      inflate, dcrd_only, factors, set_factor);

  std::cout << "\n--- DCRD under delay inflation: fixed 2*alpha timer vs "
               "adaptive RTO ---\n"
            << "delay-factor  fixed[deliv  p99ms  retx/tx  spur/tx]  "
               "adaptive[deliv  p99ms  retx/tx  spur/tx]\n";
  for (std::size_t i = 0; i < factors.size(); ++i) {
    const dcrd::RunSummary& fixed = fixed_sweep.points[i].per_router[0];
    const dcrd::RunSummary& adaptive = adaptive_sweep.points[i].per_router[0];
    std::printf("%11.1f  %11.4f %6.1f %8.4f %8.4f  %14.4f %6.1f %8.4f %8.4f\n",
                factors[i], fixed.delivery_ratio(), P99DelayMs(fixed),
                RetxRate(fixed), SpuriousRate(fixed),
                adaptive.delivery_ratio(), P99DelayMs(adaptive),
                RetxRate(adaptive), SpuriousRate(adaptive));
  }
  dcrd::figures::MaybeSaveCsv(scale, "ext7_rto_fixed", fixed_sweep);
  dcrd::figures::MaybeSaveCsv(scale, "ext7_rto_adaptive", adaptive_sweep);
  return 0;
}
