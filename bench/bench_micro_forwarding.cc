// Microbenchmark: end-to-end simulated seconds per wall-clock second for
// each router — the figure harnesses' cost model.
#include <benchmark/benchmark.h>

#include "sim/engine.h"

namespace {

using namespace dcrd;

void RunRouter(benchmark::State& state, RouterKind router) {
  for (auto _ : state) {
    ScenarioConfig config;
    config.router = router;
    config.node_count = 20;
    config.topology = TopologyKind::kRandomDegree;
    config.degree = 8;
    config.failure_probability = 0.06;
    config.sim_time = SimDuration::Seconds(60);
    config.seed = 3;
    benchmark::DoNotOptimize(RunScenario(config));
  }
  state.SetItemsProcessed(state.iterations() * 60);  // simulated seconds
}

void BM_Run_DCRD(benchmark::State& state) { RunRouter(state, RouterKind::kDcrd); }
void BM_Run_RTree(benchmark::State& state) { RunRouter(state, RouterKind::kRTree); }
void BM_Run_DTree(benchmark::State& state) { RunRouter(state, RouterKind::kDTree); }
void BM_Run_Oracle(benchmark::State& state) { RunRouter(state, RouterKind::kOracle); }
void BM_Run_Multipath(benchmark::State& state) {
  RunRouter(state, RouterKind::kMultipath);
}

BENCHMARK(BM_Run_DCRD)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Run_RTree)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Run_DTree)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Run_Oracle)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Run_Multipath)->Unit(benchmark::kMillisecond);

}  // namespace
