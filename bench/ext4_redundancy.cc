// Extension experiment 4 — the redundancy/traffic trade-off of Multipath.
//
// The paper fixes Multipath at two paths; this sweep generalises it to
// k in {1,2,3,4} parallel routes per subscriber (k=1 is a "best path only"
// RON-style baseline, larger k approximates FEC-grade redundancy) and asks
// where duplicating stops paying. DCRD is printed alongside as the
// adaptive alternative: the headline is that DCRD reaches multi-path
// delivery ratios at a fraction of even k=2's traffic.
#include <iomanip>
#include <iostream>

#include "common/flags.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const auto scale = dcrd::figures::ParseScale(flags);
  flags.ExitOnUnqueried();
  dcrd::figures::PrintHeader(
      "Ext.4: Multipath redundancy sweep, 20 nodes, degree 8, Pf=0.08",
      scale);

  const auto run_pooled = [&](dcrd::RouterKind router, std::size_t paths) {
    const std::string stem = router == dcrd::RouterKind::kDcrd
                                 ? std::string("ext4:dcrd")
                                 : "ext4:multipath_k" + std::to_string(paths);
    return dcrd::figures::RunFigureReps(
        scale, stem, [&scale, router, paths](int rep) {
          dcrd::ScenarioConfig config;
          config.router = router;
          config.multipath_path_count = paths;
          config.node_count = 20;
          config.topology = dcrd::TopologyKind::kRandomDegree;
          config.degree = 8;
          config.failure_probability = 0.08;
          config.loss_rate = 1e-4;
          config.sim_time = scale.sim_time;
          config.seed = scale.seed + static_cast<std::uint64_t>(rep);
          config.shards = scale.shards;
          return config;
        });
  };

  std::cout << "\n"
            << std::left << std::setw(16) << "variant" << std::right
            << std::setw(12) << "delivery" << std::setw(12) << "QoS"
            << std::setw(14) << "pkts/sub" << "\n";
  for (const std::size_t paths : {1U, 2U, 3U, 4U}) {
    const dcrd::RunSummary pooled =
        run_pooled(dcrd::RouterKind::kMultipath, paths);
    std::cout << std::left << std::setw(16)
              << ("Multipath k=" + std::to_string(paths)) << std::right
              << std::fixed << std::setprecision(4) << std::setw(12)
              << pooled.delivery_ratio() << std::setw(12)
              << pooled.qos_ratio() << std::setw(14)
              << pooled.packets_per_subscriber() << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  const dcrd::RunSummary dcrd_pooled =
      run_pooled(dcrd::RouterKind::kDcrd, 2);
  std::cout << std::left << std::setw(16) << "DCRD" << std::right
            << std::fixed << std::setprecision(4) << std::setw(12)
            << dcrd_pooled.delivery_ratio() << std::setw(12)
            << dcrd_pooled.qos_ratio() << std::setw(14)
            << dcrd_pooled.packets_per_subscriber() << "\n";
  std::cout.unsetf(std::ios::fixed);
  return 0;
}
