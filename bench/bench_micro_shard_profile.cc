// Microbenchmark: shard-execution profiler cost (obs/shard_profiler.h).
//
// The profiler's contract mirrors the flight recorder's: an unprofiled
// window loop pays one untaken null-check branch per drained message and a
// handful per round — never per event — and the enabled path is a couple of
// steady_clock reads per round plus plain counter arithmetic per message.
// These benches pin the three costs that matter: the per-message inbound
// tally (with its wire-byte model), the per-round sample append, and the
// end-of-run merge + JSON write for a profile of realistic size, so
// BENCH_trace_overhead.json tracks them over time alongside the recorder's.
#include <benchmark/benchmark.h>

#include <ostream>
#include <sstream>
#include <streambuf>
#include <vector>

#include "net/shard_exchange.h"
#include "obs/shard_profiler.h"
#include "pubsub/packet.h"

namespace {

using dcrd::Message;
using dcrd::NodeId;
using dcrd::Packet;
using dcrd::ShardProfile;
using dcrd::ShardProfiler;
using dcrd::XMsg;
using dcrd::XMsgKind;

class NullStreambuf final : public std::streambuf {
 protected:
  int overflow(int ch) override { return ch; }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
};

XMsg MakeDataMsg() {
  XMsg msg;
  msg.kind = XMsgKind::kData;
  msg.at = 1000;
  msg.to = NodeId(3);
  msg.from = NodeId(1);
  msg.copy_id = 7;
  msg.packet = Packet(Message{}, {NodeId(3), NodeId(5), NodeId(9)});
  return msg;
}

// Per-message cost of the receiver-side matrix tally, byte model included —
// the only profiler work on the drain path.
void BM_ProfilerCountInbound(benchmark::State& state) {
  ShardProfiler profiler(0, 8);
  const XMsg msg = MakeDataMsg();
  int src = 0;
  for (auto _ : state) {
    profiler.CountInbound(src, msg);
    src = (src + 1) & 7;
    benchmark::DoNotOptimize(profiler.in_msgs_by_src().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerCountInbound);

// Per-round cost of closing a sample (vector push + counter reset). Rounds
// happen at horizon cadence — thousands per run, not millions.
void BM_ProfilerAddRound(benchmark::State& state) {
  ShardProfiler profiler(0, 8);
  std::int64_t horizon = 0;
  for (auto _ : state) {
    profiler.AddRound(horizon += 10'000, 120'000, 30'000, 500);
    benchmark::DoNotOptimize(profiler.rounds().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerAddRound);

// End-of-run cost: merge 8 shards x 4096 rounds into the bucketed profile
// and serialise it. One-shot per run in production; measured so a
// regression in the fold (the only O(shards x rounds) pass) is visible.
void BM_ProfileMergeAndWrite(benchmark::State& state) {
  std::vector<std::unique_ptr<ShardProfiler>> profilers;
  for (int s = 0; s < 8; ++s) {
    profilers.push_back(std::make_unique<ShardProfiler>(s, 8));
    const XMsg msg = MakeDataMsg();
    std::int64_t horizon = 0;
    for (int r = 0; r < 4096; ++r) {
      profilers.back()->CountInbound((s + 1) & 7, msg);
      profilers.back()->AddRound(horizon += 10'000,
                                 100'000 + 1000 * static_cast<unsigned>(s),
                                 20'000, 300);
    }
  }
  std::vector<const ShardProfiler*> views;
  for (const auto& p : profilers) views.push_back(p.get());
  NullStreambuf devnull;
  std::ostream sink(&devnull);
  for (auto _ : state) {
    const ShardProfile profile = dcrd::MergeShardProfiles(views, 10'000);
    dcrd::WriteShardProfileJson(sink, profile);
    benchmark::DoNotOptimize(profile.imbalance);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileMergeAndWrite);

}  // namespace
