// Microbenchmark: the DCRD <d,r> fixed point and sending-list build.
//
// This is the per-epoch cost that dominates large-N DCRD runs (Fig. 5):
// one ComputeDestinationTables call per (topic, subscriber) pair.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "dcrd/dr_computation.h"
#include "graph/topology.h"
#include "net/failure_schedule.h"
#include "net/link_monitor.h"

namespace {

using namespace dcrd;

struct Fixture {
  Graph graph;
  FailureSchedule failures{123, 0.06};
  LinkMonitor monitor;
  std::vector<double> publisher_dist;

  explicit Fixture(std::size_t nodes)
      : graph([&] {
          Rng rng(5);
          return RandomConnected(nodes, 8, rng);
        }()),
        monitor(graph, failures, LinkMonitorConfig{}, Rng(17)) {
    monitor.MeasureAt(SimTime::Zero());
    publisher_dist = MonitoredDistancesFrom(graph, monitor.view(), NodeId(0));
  }
};

void BM_ComputeDestinationTables(benchmark::State& state) {
  Fixture fixture(static_cast<std::size_t>(state.range(0)));
  const NodeId subscriber(
      static_cast<NodeId::underlying_type>(state.range(0) - 1));
  const double deadline_us =
      3.0 * fixture.publisher_dist[subscriber.underlying()];
  DrComputationConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeDestinationTables(
        fixture.graph, fixture.monitor.view(), subscriber, deadline_us,
        fixture.publisher_dist, config));
  }
}
BENCHMARK(BM_ComputeDestinationTables)->Arg(20)->Arg(80)->Arg(160);

void BM_Theorem1SortAndCombine(benchmark::State& state) {
  // The inner loop of every sweep: sort candidates, fold Eq. 3.
  Rng rng(9);
  std::vector<ViaEntry> entries;
  for (int i = 0; i < 10; ++i) {
    entries.push_back(ViaEntry{NodeId(static_cast<NodeId::underlying_type>(i)),
                               LinkId(static_cast<LinkId::underlying_type>(i)),
                               rng.NextDoubleInRange(10'000, 90'000),
                               rng.NextDoubleInRange(0.5, 1.0)});
  }
  for (auto _ : state) {
    std::vector<ViaEntry> copy = entries;
    SortByTheorem1(copy);
    benchmark::DoNotOptimize(CombineOrdered(copy));
  }
}
BENCHMARK(BM_Theorem1SortAndCombine);

}  // namespace
