// Extension experiment 1 — broker-node failures (paper Section V).
//
// "Work is also underway to evaluate DCRD performance in the presence of
// node failures. With node failures there is the potential for simultaneous
// link failures and long outages..."
//
// 20 nodes, degree 8, Pf = 0.02 on links; node failure probability swept.
// A down broker silences all its adjacent links at once (correlated
// failures) and of course cannot deliver to its own subscribers while down,
// so nobody reaches 100% — the question is how gracefully each protocol
// degrades. Expectation: the trees lose whole subtrees behind a dead
// broker; DCRD routes around dead *intermediate* brokers and tracks
// ORACLE, whose remaining gap is exactly the down-subscriber mass.
#include <iostream>

#include "common/flags.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const auto scale = dcrd::figures::ParseScale(flags);
  dcrd::figures::PrintHeader(
      "Ext.1: node failures, 20 nodes, degree 8, link Pf=0.02", scale);

  dcrd::ScenarioConfig base;
  base.node_count = 20;
  base.topology = dcrd::TopologyKind::kRandomDegree;
  base.degree = 8;
  base.failure_probability = 0.02;
  base.loss_rate = 1e-4;
  base.node_outage_epochs =
      static_cast<int>(flags.GetInt("outage_epochs", 5));
  flags.ExitOnUnqueried();
  dcrd::figures::ApplyScale(scale, base);

  const dcrd::SweepResult sweep = dcrd::figures::RunFigureSweep(
      scale, "ext1_node_failures", "Ext.1 node failures", "node Pf", base,
      scale.routers, {0.0, 0.01, 0.02, 0.04, 0.06},
      [](double pf, dcrd::ScenarioConfig& config) {
        config.node_failure_probability = pf;
      });

  dcrd::PrintStandardPanels(std::cout, sweep);
  dcrd::figures::MaybeSaveCsv(scale, "ext1_node_failures", sweep);
  return 0;
}
