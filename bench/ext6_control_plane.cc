// Extension experiment 6 — control-plane cost of the distributed <d,r>
// computation (paper Section III-B, run as a real protocol).
//
// The paper notes Eq. 3 is Θ(n) per node but never reports what the
// distributed recursion costs the network. Here the gossip runs literally
// over the simulated overlay: one subscriber per run, updates carried as
// control messages paying link delay. Reported per overlay size:
// convergence latency (time of the last <d,r> change), control messages
// per (subscriber, epoch), and messages per broker — the numbers a
// deployment would budget for each subscription and each monitoring epoch.
#include <iomanip>
#include <iostream>

#include "common/flags.h"
#include "dcrd/distributed_dr.h"
#include "graph/topology.h"
#include "net/link_monitor.h"
#include "sim/bench_json.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "sim/stats.h"
#include "sim/sweep_runner.h"

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const int repetitions = static_cast<int>(flags.GetInt("reps", 5));
  const std::size_t degree =
      static_cast<std::size_t>(flags.GetInt("degree", 8));
  const double threshold_us = flags.GetDouble("threshold_us", 50.0);
  const std::int64_t e2e_seconds = flags.GetInt("seconds", 300);
  const int jobs =
      dcrd::ResolveJobCount(static_cast<int>(flags.GetInt("jobs", 0)));
  const std::string bench_json = flags.GetString("bench_json", "");
  // Observability knobs for the end-to-end section (the gossip-only section
  // drives the scheduler directly and has no scenario engine to trace).
  const bool trace = flags.GetBool("trace", false);
  const std::string trace_out = flags.GetString("trace_out", "");
  const std::string metrics_json = flags.GetString("metrics_json", "");
  flags.ExitOnUnqueried();
  std::cerr << "jobs=" << jobs << "\n";
  const auto append_bench = [&](const std::string& stem,
                                const dcrd::SweepRunStats& stats) {
    if (bench_json.empty()) return;
    dcrd::AppendBenchRecord(bench_json, dcrd::MakeBenchRecord(stem, stats));
  };

  std::cout << "=== Ext.6: distributed <d,r> control plane, degree "
            << degree << ", update threshold " << threshold_us << "us ===\n\n"
            << std::left << std::setw(8) << "nodes" << std::right
            << std::setw(16) << "converge ms" << std::setw(16)
            << "updates total" << std::setw(16) << "updates/broker"
            << "\n";

  for (const std::size_t nodes : {10U, 20U, 40U, 80U, 160U}) {
    // One gossip convergence run per repetition; cells are independent, so
    // they fan over the job pool and land in rep-indexed slots.
    std::vector<double> converge_ms(static_cast<std::size_t>(repetitions));
    std::vector<double> updates(static_cast<std::size_t>(repetitions));
    dcrd::SweepRunStats stats;
    dcrd::SweepRunner runner(jobs);
    runner.Run(
        static_cast<std::size_t>(repetitions),
        [&](std::size_t rep) {
          dcrd::Rng rng(100 + static_cast<std::uint64_t>(rep));
          dcrd::Rng topo_rng = rng.Fork("topology");
          const dcrd::Graph graph =
              dcrd::RandomConnected(nodes, degree, topo_rng);
          const dcrd::FailureSchedule failures(rng.Fork("failures")(), 0.0);
          dcrd::LinkMonitor monitor(graph, failures,
                                    dcrd::LinkMonitorConfig{},
                                    rng.Fork("probes"));
          monitor.MeasureAt(dcrd::SimTime::Zero());

          const dcrd::NodeId publisher(0);
          const dcrd::NodeId subscriber(
              static_cast<dcrd::NodeId::underlying_type>(nodes - 1));
          const auto dist = dcrd::MonitoredDistancesFrom(
              graph, monitor.view(), publisher);
          std::vector<double> budgets(nodes);
          for (std::size_t i = 0; i < nodes; ++i) {
            budgets[i] = 3.0 * dist[subscriber.underlying()] - dist[i];
          }
          budgets[subscriber.underlying()] =
              std::max(budgets[subscriber.underlying()], 1.0);

          dcrd::Scheduler scheduler;
          dcrd::OverlayNetwork network(graph, scheduler, failures, 0.0,
                                       dcrd::Rng(7));
          dcrd::DistributedDrConfig config;
          config.update_threshold_us = threshold_us;
          auto protocol = std::make_shared<dcrd::DistributedDrComputation>(
              network, subscriber, monitor.view(), budgets, config);
          protocol->Start();
          scheduler.Run();
          converge_ms[rep] = protocol->last_change().micros() / 1e3;
          updates[rep] = static_cast<double>(protocol->updates_sent());
        },
        nullptr, &stats);
    append_bench("ext6:gossip_n" + std::to_string(nodes), stats);
    std::cout << std::left << std::setw(8) << nodes << std::right
              << std::fixed << std::setprecision(1) << std::setw(16)
              << dcrd::Mean(converge_ms) << std::setw(16) << std::setprecision(0)
              << dcrd::Mean(updates) << std::setw(16) << std::setprecision(1)
              << dcrd::Mean(updates) / static_cast<double>(nodes) << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "\n(per subscriber per monitoring epoch; multiply by "
               "subscriber count and divide by the 300 s epoch for a rate)\n";

  // End-to-end: the full DCRD router with its control plane live
  // (DcrdConfig::use_distributed_computation) against the centralized
  // solver, same seeds, 20 nodes, degree 8, Pf = 0.06.
  std::cout << "\n"
            << std::left << std::setw(14) << "mode" << std::right
            << std::setw(12) << "delivery" << std::setw(12) << "QoS"
            << std::setw(14) << "pkts/sub" << std::setw(16) << "ctl msgs"
            << "\n";
  for (const bool distributed : {false, true}) {
    dcrd::SweepRunStats stats;
    const dcrd::RunSummary pooled = dcrd::RunRepetitions(
        repetitions, jobs,
        [&](int rep) {
          dcrd::ScenarioConfig config;
          config.router = dcrd::RouterKind::kDcrd;
          config.dcrd_distributed = distributed;
          config.node_count = 20;
          config.topology = dcrd::TopologyKind::kRandomDegree;
          config.degree = degree;
          config.failure_probability = 0.06;
          config.loss_rate = 1e-4;
          config.sim_time = dcrd::SimDuration::Seconds(e2e_seconds);
          config.seed = 1 + static_cast<std::uint64_t>(rep);
          config.trace = trace || !trace_out.empty();
          const std::string cell = std::string("ext6_control_plane.") +
                                   (distributed ? "gossip" : "solver") +
                                   ".rep" + std::to_string(rep);
          if (!trace_out.empty()) {
            config.trace_out = trace_out + "." + cell + ".jsonl";
          }
          if (!metrics_json.empty()) {
            config.metrics_json = metrics_json + "." + cell + ".json";
          }
          return config;
        },
        &stats);
    append_bench(distributed ? "ext6:e2e_gossip" : "ext6:e2e_solver", stats);
    std::cout << std::left << std::setw(14)
              << (distributed ? "gossip" : "solver") << std::right
              << std::fixed << std::setprecision(4) << std::setw(12)
              << pooled.delivery_ratio() << std::setw(12)
              << pooled.qos_ratio() << std::setw(14)
              << pooled.packets_per_subscriber() << std::setw(16)
              << pooled.control_transmissions << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  return 0;
}
