// Figure 2 — Performance comparison in fully-meshed networks.
//
// 20 brokers, full mesh, Pl = 1e-4, m = 1; failure probability swept over
// {0, 0.02, 0.04, 0.06, 0.08, 0.10}. Panels: (a) delivery ratio,
// (b) QoS delivery ratio, (c) packets sent per subscriber.
//
// Paper shape to reproduce: DCRD and ORACLE deliver ~100% everywhere; the
// trees decay with Pf (R-Tree above D-Tree); Multipath sits between trees
// and DCRD at roughly double the tree traffic; R-Tree sends exactly one
// packet per subscriber (direct links exist in a full mesh).
#include <iostream>

#include "common/flags.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const auto scale = dcrd::figures::ParseScale(flags);
  // --m overrides the retransmission budget (paper default 1) so hop
  // retransmissions appear in traces. A full mesh never exhausts a
  // 19-entry sending list, so upstream reroutes cannot occur there;
  // --degree N sparsifies the overlay to a random degree-N graph for
  // trace walkthroughs that need to see reroute-to-upstream events.
  // Defaults leave the figure untouched.
  const int m = static_cast<int>(flags.GetInt("m", 1));
  const int degree = static_cast<int>(flags.GetInt("degree", 0));
  flags.ExitOnUnqueried();
  dcrd::figures::PrintHeader("Figure 2: fully-meshed 20-node overlay", scale);

  dcrd::ScenarioConfig base;
  base.node_count = 20;
  base.topology = dcrd::TopologyKind::kFullMesh;
  base.loss_rate = 1e-4;
  base.max_transmissions = m;
  if (degree > 0) {
    base.topology = dcrd::TopologyKind::kRandomDegree;
    base.degree = degree;
  }
  dcrd::figures::ApplyScale(scale, base);

  const dcrd::SweepResult sweep = dcrd::figures::RunFigureSweep(
      scale, "fig2_full_mesh", "Fig.2 full mesh", "Pf", base, scale.routers,
      {0.0, 0.02, 0.04, 0.06, 0.08, 0.10},
      [](double pf, dcrd::ScenarioConfig& config) {
        config.failure_probability = pf;
      });

  dcrd::PrintStandardPanels(std::cout, sweep);
  dcrd::figures::MaybeSaveCsv(scale, "fig2_full_mesh", sweep);
  return 0;
}
