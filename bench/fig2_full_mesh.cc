// Figure 2 — Performance comparison in fully-meshed networks.
//
// 20 brokers, full mesh, Pl = 1e-4, m = 1; failure probability swept over
// {0, 0.02, 0.04, 0.06, 0.08, 0.10}. Panels: (a) delivery ratio,
// (b) QoS delivery ratio, (c) packets sent per subscriber.
//
// Paper shape to reproduce: DCRD and ORACLE deliver ~100% everywhere; the
// trees decay with Pf (R-Tree above D-Tree); Multipath sits between trees
// and DCRD at roughly double the tree traffic; R-Tree sends exactly one
// packet per subscriber (direct links exist in a full mesh).
#include <iostream>

#include "common/flags.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const auto scale = dcrd::figures::ParseScale(flags);
  flags.ExitOnUnqueried();
  dcrd::figures::PrintHeader("Figure 2: fully-meshed 20-node overlay", scale);

  dcrd::ScenarioConfig base;
  base.node_count = 20;
  base.topology = dcrd::TopologyKind::kFullMesh;
  base.loss_rate = 1e-4;
  base.max_transmissions = 1;
  dcrd::figures::ApplyScale(scale, base);

  const dcrd::SweepResult sweep = dcrd::figures::RunFigureSweep(
      scale, "fig2_full_mesh", "Fig.2 full mesh", "Pf", base, scale.routers,
      {0.0, 0.02, 0.04, 0.06, 0.08, 0.10},
      [](double pf, dcrd::ScenarioConfig& config) {
        config.failure_probability = pf;
      });

  dcrd::PrintStandardPanels(std::cout, sweep);
  dcrd::figures::MaybeSaveCsv(scale, "fig2_full_mesh", sweep);
  return 0;
}
