// Figure 8 — Effect of the packet loss rate Pl and the per-link
// transmission budget m.
//
// 20 nodes, degree 8, Pf = 0.01; Pl swept over {1e-4, 1e-3, 1e-2, 1e-1},
// m in {1, 2}, QoS delivery ratio reported for DCRD, R-Tree, D-Tree and
// Multipath (ORACLE is not part of this figure in the paper).
//
// Paper shape: while Pl << Pf, DCRD with m=1 edges out m=2 (a missing ACK
// means a failed link, so retransmitting first wastes the deadline); as Pl
// approaches and passes Pf the two converge, and for the fixed-route
// baselines m=2 buys a visible 1-2% because losses on healthy links become
// recoverable.
#include <iostream>

#include "common/flags.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const auto scale = dcrd::figures::ParseScale(flags);
  flags.ExitOnUnqueried();
  dcrd::figures::PrintHeader(
      "Figure 8: loss rate x retransmissions, 20 nodes, degree 8, Pf=0.01",
      scale);

  const std::vector<dcrd::RouterKind> routers = {
      dcrd::RouterKind::kDcrd, dcrd::RouterKind::kRTree,
      dcrd::RouterKind::kDTree, dcrd::RouterKind::kMultipath};
  const std::vector<double> loss_rates = {1e-4, 1e-3, 1e-2, 1e-1};

  for (int m = 1; m <= 2; ++m) {
    dcrd::ScenarioConfig base;
    base.node_count = 20;
    base.topology = dcrd::TopologyKind::kRandomDegree;
    base.degree = 8;
    base.failure_probability = 0.01;
    base.max_transmissions = m;
    dcrd::figures::ApplyScale(scale, base);

    const dcrd::SweepResult sweep = dcrd::figures::RunFigureSweep(
        scale, "fig8_loss_retx_m" + std::to_string(m),
        "Fig.8 with m=" + std::to_string(m), "Pl", base, routers, loss_rates,
        [](double pl, dcrd::ScenarioConfig& config) {
          config.loss_rate = pl;
        });

    dcrd::PrintTable(std::cout, sweep, "QoS Delivery Ratio",
                     [](const dcrd::RunSummary& s) { return s.qos_ratio(); });
  }
  return 0;
}
