// Figure 5 — Effect of network size: N in {10,20,40,80,120,160}, degree 8,
// Pf = 0.06.
//
// Paper shape: every protocol degrades with size (fixed degree means a
// growing diameter and more hops per delivery); DCRD stays within ~5% of
// ORACLE on QoS while spending ~33% more packets, and its traffic overhead
// over the trees grows toward ~60% at N=160 — still under Multipath.
//
// Note: the default reduced scale trims simulated time; at N=160 the DCRD
// table rebuild is the dominant cost, so --paper runs take a while.
#include <iostream>

#include "common/flags.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  auto scale = dcrd::figures::ParseScale(flags);
  if (!flags.Has("seconds") && !flags.GetBool("paper", false)) {
    scale.sim_time = dcrd::SimDuration::Seconds(300);  // N=160 is heavy
  }
  flags.ExitOnUnqueried();
  dcrd::figures::PrintHeader("Figure 5: network size, degree 8, Pf=0.06",
                             scale);

  dcrd::ScenarioConfig base;
  base.topology = dcrd::TopologyKind::kRandomDegree;
  base.degree = 8;
  base.failure_probability = 0.06;
  base.loss_rate = 1e-4;
  base.max_transmissions = 1;
  dcrd::figures::ApplyScale(scale, base);

  const dcrd::SweepResult sweep = dcrd::figures::RunFigureSweep(
      scale, "fig5_network_size", "Fig.5 network size", "nodes", base,
      scale.routers, {10, 20, 40, 80, 120, 160},
      [](double nodes, dcrd::ScenarioConfig& config) {
        config.node_count = static_cast<std::size_t>(nodes);
      });

  dcrd::PrintStandardPanels(std::cout, sweep);
  dcrd::figures::MaybeSaveCsv(scale, "fig5_network_size", sweep);
  return 0;
}
