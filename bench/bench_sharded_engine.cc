// Scaling bench for the sharded engine (DESIGN.md §12).
//
// Runs one fig5-style scenario per broker count, interleaving `--shards 1`
// and `--shards N` rounds (interleaving spreads machine-noise drift across
// both sides, same protocol as the CI perf gate), reports the per-side
// median wall clock and the speedup, and asserts the two sides produced
// identical results — a bench run that broke determinism is worthless and
// must say so loudly.
//
//   bench_sharded_engine --brokers 160,1000,10000 --shards 0 --rounds 3 \
//       --seconds 30 --bench_json BENCH_sharded_engine.json
//
// --shards 0 means hardware concurrency. Records land in the JSON
// trajectory file with one record per broker count carrying
// shards1/shardsN wall seconds and the speedup (see BENCH_sharded_engine.json
// at the repo root for committed curves).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "sim/bench_json.h"
#include "sim/engine.h"

namespace {

using Clock = std::chrono::steady_clock;

std::vector<int> ParseBrokerList(const std::string& csv) {
  std::vector<int> brokers;
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    const int value = std::stoi(token);
    if (value > 1) brokers.push_back(value);
  }
  return brokers;
}

dcrd::ScenarioConfig MakeConfig(int brokers, std::int64_t seconds,
                                int topics) {
  dcrd::ScenarioConfig config;
  config.router = dcrd::RouterKind::kDcrd;
  config.node_count = static_cast<std::size_t>(brokers);
  config.topology = dcrd::TopologyKind::kRandomDegree;
  config.degree = 4;
  config.topic_count = static_cast<std::size_t>(topics);
  config.failure_probability = 0.05;
  config.loss_rate = 1e-3;
  config.max_transmissions = 2;
  config.publish_interval = dcrd::SimDuration::Millis(500);
  config.monitor_interval = dcrd::SimDuration::Seconds(10);
  config.sim_time = dcrd::SimDuration::Seconds(seconds);
  config.seed = 1;
  return config;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

// The two sides must be the same simulation; compare the cheap invariant
// core (full field-by-field identity lives in tests/sim/sharded_engine_test).
bool SameRun(const dcrd::RunSummary& a, const dcrd::RunSummary& b) {
  return a.delivered_pairs == b.delivered_pairs &&
         a.qos_pairs == b.qos_pairs &&
         a.data_transmissions == b.data_transmissions &&
         a.ack_transmissions == b.ack_transmissions &&
         a.messages_published == b.messages_published &&
         a.delay_ms_samples == b.delay_ms_samples;
}

}  // namespace

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const std::vector<int> brokers =
      ParseBrokerList(flags.GetString("brokers", "160,1000"));
  int shards = static_cast<int>(flags.GetInt("shards", 0));
  if (shards < 1) {
    const unsigned hardware = std::thread::hardware_concurrency();
    shards = hardware == 0 ? 1 : static_cast<int>(hardware);
  }
  const int rounds = std::max(1, static_cast<int>(flags.GetInt("rounds", 3)));
  const std::int64_t seconds = flags.GetInt("seconds", 30);
  const int topics = static_cast<int>(flags.GetInt("topics", 8));
  const std::string bench_json = flags.GetString("bench_json", "");
  flags.ExitOnUnqueried();

  std::cout << "sharded-engine scaling: shards=" << shards
            << " rounds=" << rounds << " simulated=" << seconds << "s\n"
            << "brokers  s1_median_s  sN_median_s  speedup\n";

  bool identical = true;
  for (const int broker_count : brokers) {
    std::vector<double> base_seconds;
    std::vector<double> sharded_seconds;
    dcrd::RunSummary base_summary;
    const auto wall_start = Clock::now();
    for (int round = 0; round < rounds; ++round) {
      dcrd::ScenarioConfig config = MakeConfig(broker_count, seconds, topics);
      config.shards = 1;
      auto start = Clock::now();
      const dcrd::RunSummary base = dcrd::RunScenario(config);
      base_seconds.push_back(
          std::chrono::duration<double>(Clock::now() - start).count());

      config.shards = shards;
      start = Clock::now();
      const dcrd::RunSummary sharded = dcrd::RunScenario(config);
      sharded_seconds.push_back(
          std::chrono::duration<double>(Clock::now() - start).count());

      if (!SameRun(base, sharded)) {
        identical = false;
        std::cerr << "DETERMINISM BROKEN at " << broker_count
                  << " brokers, round " << round << "\n";
      }
      base_summary = base;
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - wall_start).count();
    const double s1 = Median(base_seconds);
    const double sn = Median(sharded_seconds);
    const double speedup = sn > 0.0 ? s1 / sn : 0.0;
    std::cout << broker_count << "  " << s1 << "  " << sn << "  " << speedup
              << (identical ? "" : "  (MISMATCH)") << "\n";

    if (!bench_json.empty()) {
      dcrd::SweepRunStats stats;
      stats.jobs = shards;
      stats.cells = static_cast<std::size_t>(rounds) * 2;
      stats.wall_seconds = wall;
      dcrd::BenchRecord record = dcrd::MakeBenchRecord(
          "bench_sharded_engine/b" + std::to_string(broker_count), stats);
      record.rates.emplace_back("shards1_wall_seconds", s1);
      record.rates.emplace_back("shardsN_wall_seconds", sn);
      record.rates.emplace_back("speedup", speedup);
      record.rates.emplace_back(
          "delivered_pairs",
          static_cast<double>(base_summary.delivered_pairs));
      dcrd::AppendBenchRecord(bench_json, record);
    }
  }
  if (!identical) return 1;
  return 0;
}
