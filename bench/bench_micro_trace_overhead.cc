// Microbenchmark: flight-recorder overhead on instrumented hot paths.
//
// The recorder's contract is near-zero cost when disabled (one predictable
// untaken branch per instrumentation site) and allocation-free when
// enabled. These benches measure all three states of the record call —
// absent (baseline loop), disabled, enabled — plus the JSONL emission path
// and the histogram record, so BENCH_trace_overhead.json tracks the
// disabled/enabled ratio over time.
#include <benchmark/benchmark.h>

#include <ostream>
#include <streambuf>

#include "event/scheduler.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"

namespace {

using dcrd::FlightRecorder;
using dcrd::LinkId;
using dcrd::LogLinearHistogram;
using dcrd::NodeId;
using dcrd::Scheduler;
using dcrd::TraceEventKind;

class NullStreambuf final : public std::streambuf {
 protected:
  int overflow(int ch) override { return ch; }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
};

// Baseline: the surrounding loop with no recorder call at all. The
// disabled-recorder bench below must land within noise of this.
void BM_RecordAbsent(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++i);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordAbsent);

void BM_RecordDisabled(benchmark::State& state) {
  Scheduler scheduler;
  FlightRecorder recorder(scheduler);
  std::uint64_t i = 0;
  for (auto _ : state) {
    recorder.Record(TraceEventKind::kHopSend, i, i, NodeId(0), NodeId(1),
                    LinkId(0));
    benchmark::DoNotOptimize(++i);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordDisabled);

void BM_RecordEnabledRingOnly(benchmark::State& state) {
  Scheduler scheduler;
  FlightRecorder recorder(scheduler);
  recorder.set_enabled(true);
  std::uint64_t i = 0;
  for (auto _ : state) {
    recorder.Record(TraceEventKind::kHopSend, i, i, NodeId(0), NodeId(1),
                    LinkId(0));
    benchmark::DoNotOptimize(++i);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordEnabledRingOnly);

void BM_RecordEnabledWithSink(benchmark::State& state) {
  // Full-trace mode: ring fills and flushes as JSONL into a discarding
  // stream, so the snprintf emission cost is included.
  Scheduler scheduler;
  FlightRecorder recorder(scheduler);
  recorder.set_enabled(true);
  NullStreambuf devnull;
  std::ostream sink(&devnull);
  recorder.set_sink(&sink);
  std::uint64_t i = 0;
  for (auto _ : state) {
    recorder.Record(TraceEventKind::kAck, i, i, NodeId(0), NodeId(1),
                    LinkId(0));
    benchmark::DoNotOptimize(++i);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordEnabledWithSink);

void BM_HistogramRecord(benchmark::State& state) {
  LogLinearHistogram histogram;
  std::int64_t v = 0;
  for (auto _ : state) {
    histogram.Record(v);
    v += 12347;
    benchmark::DoNotOptimize(histogram.count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

}  // namespace
