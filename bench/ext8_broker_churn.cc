// Extension experiment 8 — broker crash–recovery (fail-stop churn).
//
// The paper's broker failure model (Section V) pauses a node with its state
// intact. Real brokers *crash*: the process restarts and every piece of
// volatile state — dedup tables, pending hop copies, learned <d,r> views —
// is gone. This experiment turns on the fail-stop crash–recovery process
// (net/broker_lifecycle.h) and sweeps the mean time between failures while
// holding the mean time to repair fixed. Questions:
//
//   (1) How does delivery degrade as crashes become more frequent? DCRD's
//       retransmission budget and upstream reroutes should hold delivery
//       longer than the single-path trees, which lose every packet that was
//       in flight through the dead broker.
//   (2) What does state loss cost in duplicates? A restarted broker forgets
//       what it already handed up, so retransmissions that cross a restart
//       are re-delivered. The crash-aware invariant checker attributes each
//       such duplicate to a specific crash; any duplicate it cannot explain
//       is a bug and fails the run.
//   (3) How long does a restarted DCRD broker take to trust its sending
//       lists again (gossip resync of the <d,r> tables)?
//
// Peer-death detection and the adaptive RTO are on for every router here:
// probing a dead neighbour with the fixed 2*alpha timer would flood the
// trace with budget exhaustions that say nothing about the crash model.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/flags.h"
#include "figure_common.h"

namespace {

double P99DelayMs(const dcrd::RunSummary& summary) {
  if (summary.delay_ms_samples.empty()) return 0.0;
  std::vector<double> sorted = summary.delay_ms_samples;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      0.99 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const auto scale = dcrd::figures::ParseScale(flags);
  dcrd::figures::PrintHeader(
      "Ext.8: broker crash-recovery, 20 nodes, degree 5, MTTR=5s, m=3",
      scale);

  dcrd::ScenarioConfig base;
  base.node_count = 20;
  base.topology = dcrd::TopologyKind::kRandomDegree;
  base.degree = 5;
  base.failure_probability = 0.0;  // crashes are the only failure process
  base.loss_rate = 1e-4;
  base.max_transmissions = 3;
  base.adaptive_rto = true;
  base.peer_death_detection = true;
  base.broker_mttr =
      dcrd::SimDuration::Seconds(flags.GetInt("mttr_seconds", 5));
  // The crash-aware exactly-once check runs alongside: every duplicate a
  // restart cannot explain is a violation (reported below, exit 1).
  base.enable_invariant_checker = true;
  flags.ExitOnUnqueried();
  dcrd::figures::ApplyScale(scale, base);

  // Sweep the mean up-time between crashes; x = MTBF in seconds, 0 = the
  // crash process off (the parity baseline every other figure runs with).
  const std::vector<double> mtbf_seconds = {0.0, 120.0, 60.0, 30.0, 15.0};
  const dcrd::SweepResult sweep = dcrd::figures::RunFigureSweep(
      scale, "ext8_broker_churn", "Ext.8 broker crash-recovery",
      "MTBF (s, 0=off)", base, scale.routers, mtbf_seconds,
      [](double mtbf, dcrd::ScenarioConfig& config) {
        config.broker_mtbf =
            dcrd::SimDuration::Seconds(static_cast<std::int64_t>(mtbf));
      });

  dcrd::PrintTable(std::cout, sweep, "delivery ratio",
                   [](const dcrd::RunSummary& s) { return s.delivery_ratio(); });
  dcrd::PrintTable(std::cout, sweep, "duplicate deliveries per pair",
                   [](const dcrd::RunSummary& s) { return s.duplicate_rate(); });
  dcrd::PrintTable(std::cout, sweep, "p99 delay (ms)", P99DelayMs);
  dcrd::PrintTable(std::cout, sweep, "mean resync (ms)",
                   [](const dcrd::RunSummary& s) { return s.mean_resync_ms(); });
  dcrd::figures::MaybeSaveCsv(scale, "ext8_broker_churn", sweep);

  // DCRD crash anatomy: what each MTBF point cost in crashes, killed
  // copies, peer-death verdicts, and crash-excused duplicates.
  std::size_t dcrd_index = scale.routers.size();
  for (std::size_t i = 0; i < scale.routers.size(); ++i) {
    if (scale.routers[i] == dcrd::RouterKind::kDcrd) dcrd_index = i;
  }
  if (dcrd_index < scale.routers.size()) {
    std::cout << "\n--- DCRD crash anatomy per MTBF point ---\n"
              << "MTBF(s)  crashes  killed-copies  peer-deaths  revivals  "
                 "resyncs  excused-dups\n";
    for (std::size_t i = 0; i < mtbf_seconds.size(); ++i) {
      const dcrd::RunSummary& s = sweep.points[i].per_router[dcrd_index];
      std::printf("%7.0f  %7llu  %13llu  %11llu  %8llu  %7llu  %12llu\n",
                  mtbf_seconds[i],
                  static_cast<unsigned long long>(s.broker_crashes),
                  static_cast<unsigned long long>(s.crash_copies_killed),
                  static_cast<unsigned long long>(s.peer_deaths),
                  static_cast<unsigned long long>(s.peer_revivals),
                  static_cast<unsigned long long>(s.resyncs_completed),
                  static_cast<unsigned long long>(s.crash_excused_duplicates));
    }
  }

  // Any duplicate the checker could not pin on a crash is a correctness
  // bug, not an experimental result.
  std::uint64_t violations = 0;
  for (const dcrd::SweepPoint& point : sweep.points) {
    for (const dcrd::RunSummary& s : point.per_router) {
      violations += s.invariant_violation_count;
      for (const std::string& v : s.invariant_violations) {
        std::cerr << "invariant violation: " << v << "\n";
      }
    }
  }
  if (violations > 0) {
    std::cerr << "ext8: " << violations
              << " invariant violation(s) — see messages above\n";
    return 1;
  }
  return 0;
}
