// Ablation — which DCRD design choices carry the result?
//
// Variants, all on the same seeds, topology (20 nodes, degree 5) and
// failure schedule (Pf = 0.08 with heterogeneity 1.5 — some links an order
// of magnitude flakier than others, the regime where reliability-aware
// decisions matter):
//   1. Theorem-1 ordering vs delay-only vs reliability-only sending lists —
//      what the paper's optimality proof buys in vivo.
//   2. Best-effort fallback off: walking past deadline-ineligible
//      neighbours is what keeps the delivery ratio at 100%; without it
//      budget-starved packets die early.
//   3. Upstream reroute retries off: a single failed upstream hop becomes
//      fatal for the rerouted packet.
#include <iomanip>
#include <iostream>

#include "common/flags.h"
#include "figure_common.h"

namespace {

struct Variant {
  const char* label;
  dcrd::OrderingPolicy ordering;
  bool fallback;
  int reroute_cap;
};

}  // namespace

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const auto scale = dcrd::figures::ParseScale(flags);
  flags.ExitOnUnqueried();
  dcrd::figures::PrintHeader(
      "Ablation: DCRD variants, 20 nodes, degree 5, Pf=0.08, "
      "heterogeneity 1.5",
      scale);

  const Variant variants[] = {
      {"DCRD (Theorem 1)", dcrd::OrderingPolicy::kTheorem1, true, 20},
      {"delay-only order", dcrd::OrderingPolicy::kDelayFirst, true, 20},
      {"reliability order", dcrd::OrderingPolicy::kReliabilityFirst, true, 20},
      {"no fallback", dcrd::OrderingPolicy::kTheorem1, false, 20},
      {"no upstream retry", dcrd::OrderingPolicy::kTheorem1, true, 0},
  };

  std::cout << "\n"
            << std::left << std::setw(22) << "variant" << std::right
            << std::setw(12) << "delivery" << std::setw(12) << "QoS"
            << std::setw(14) << "pkts/sub" << "\n";
  for (const Variant& variant : variants) {
    const dcrd::RunSummary pooled = dcrd::figures::RunFigureReps(
        scale, std::string("ablation:") + variant.label,
        [&scale, &variant](int rep) {
          dcrd::ScenarioConfig config;
          config.router = dcrd::RouterKind::kDcrd;
          config.node_count = 20;
          config.topology = dcrd::TopologyKind::kRandomDegree;
          config.degree = 5;
          config.failure_probability = 0.08;
          config.failure_heterogeneity = 1.5;
          config.loss_rate = 1e-4;
          config.dcrd_ordering = variant.ordering;
          config.dcrd_best_effort_fallback = variant.fallback;
          config.dcrd_reroute_retry_cap = variant.reroute_cap;
          config.sim_time = scale.sim_time;
          config.seed = scale.seed + static_cast<std::uint64_t>(rep);
          config.shards = scale.shards;
          return config;
        });
    std::cout << std::left << std::setw(22) << variant.label << std::right
              << std::fixed << std::setprecision(4) << std::setw(12)
              << pooled.delivery_ratio() << std::setw(12)
              << pooled.qos_ratio() << std::setw(14)
              << pooled.packets_per_subscriber() << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  return 0;
}
