// Figure 7 — CDF of DCRD packets that missed the deadline, Pf = 0.06.
//
// Two curves: a 20-node full mesh and a 20-node degree-8 overlay. The
// x-axis is actual delay divided by the deadline (starts at 1: only
// deadline-missing deliveries are in the population).
//
// Paper shape: ~50% of the missers arrive within 1.25x the deadline; ~78%
// within 1.5x on the full mesh, dropping to ~70% at degree 8; ~80% within
// 1.75x — i.e. even DCRD's late packets are only modestly late.
#include <fstream>
#include <iomanip>
#include <iostream>

#include "common/flags.h"
#include "figure_common.h"
#include "obs/analysis/delay_decomposition.h"
#include "obs/trace_export.h"

namespace {

// With --delay_audit, fig7 additionally decomposes its own per-cell traces
// and emits per-component lateness CDFs as CSV (long format: one row per
// CDF point). Files and stderr only — the stdout table must stay
// byte-identical with and without the knob.
void WriteComponentCdfs(const dcrd::figures::FigureScale& scale,
                        const std::vector<std::string>& stems) {
  if (scale.delay_audit.empty()) return;
  const std::string out_path = scale.delay_audit + ".fig7_components.csv";
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return;
  }
  out << "case,component,delay_us,fraction\n";
  for (const std::string& stem : stems) {
    dcrd::TraceAnalyzer analyzer;
    for (int rep = 0; rep < scale.repetitions; ++rep) {
      const std::string path = scale.delay_audit + ".trace." + stem +
                               ".DCRD.rep" + std::to_string(rep) + ".jsonl";
      std::ifstream in(path);
      if (!in) {
        std::cerr << "missing trace " << path << " (skipped)\n";
        continue;
      }
      dcrd::ForEachTraceJsonl(
          in, [&](const dcrd::TraceRecord& r) { analyzer.Add(r); });
    }
    const dcrd::DecompositionResult result = analyzer.Decompose();
    const auto write_cdf = [&](std::string_view component,
                               const dcrd::LogLinearHistogram& h) {
      if (h.count() == 0) return;
      std::uint64_t cumulative = 0;
      for (int b = 0; b < dcrd::LogLinearHistogram::kBucketCount; ++b) {
        if (h.CountAt(b) == 0) continue;
        cumulative += h.CountAt(b);
        const std::uint64_t hi =
            std::min(dcrd::LogLinearHistogram::BucketHi(b), h.max());
        out << stem << "," << component << "," << hi << ","
            << static_cast<double>(cumulative) /
                   static_cast<double>(h.count())
            << "\n";
      }
    };
    for (int i = 0; i < dcrd::kDelayComponentCount; ++i) {
      write_cdf(dcrd::DelayComponentName(i),
                result.component_histograms[static_cast<std::size_t>(i)]);
    }
    write_cdf("total", result.total_histogram);
  }
  std::cerr << "wrote " << out_path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const auto scale = dcrd::figures::ParseScale(flags);
  flags.ExitOnUnqueried();
  dcrd::figures::PrintHeader(
      "Figure 7: lateness CDF of deadline-missing DCRD packets, Pf=0.06",
      scale);

  const auto run_case = [&](const std::string& stem,
                            dcrd::TopologyKind topology, std::size_t degree) {
    return dcrd::figures::RunFigureReps(scale, stem, [&, topology,
                                                      degree](int rep) {
      dcrd::ScenarioConfig config;
      config.router = dcrd::RouterKind::kDcrd;
      config.node_count = 20;
      config.topology = topology;
      config.degree = degree;
      config.failure_probability = 0.06;
      config.loss_rate = 1e-4;
      config.sim_time = scale.sim_time;
      config.seed = scale.seed + static_cast<std::uint64_t>(rep);
      config.shards = scale.shards;
      return config;
    });
  };

  const dcrd::RunSummary mesh =
      run_case("fig7_mesh", dcrd::TopologyKind::kFullMesh, /*degree=*/0);
  const dcrd::RunSummary degree8 =
      run_case("fig7_degree8", dcrd::TopologyKind::kRandomDegree, 8);

  std::vector<double> grid;
  for (double x = 1.0; x <= 3.0 + 1e-9; x += 0.125) grid.push_back(x);
  const std::vector<double> cdf_mesh = dcrd::LatenessCdf(mesh, grid);
  const std::vector<double> cdf_degree8 = dcrd::LatenessCdf(degree8, grid);

  std::cout << "\nFig.7 lateness CDF (x = actual delay / deadline)\n"
            << std::left << std::setw(10) << "x" << std::right
            << std::setw(14) << "full-mesh" << std::setw(14) << "degree-8"
            << "\n";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::cout << std::left << std::setw(10) << grid[i] << std::right
              << std::fixed << std::setprecision(4) << std::setw(14)
              << cdf_mesh[i] << std::setw(14) << cdf_degree8[i] << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "(population sizes: full-mesh " << mesh.lateness_ratios.size()
            << ", degree-8 " << degree8.lateness_ratios.size()
            << " late deliveries)\n";
  WriteComponentCdfs(scale, {"fig7_mesh", "fig7_degree8"});
  return 0;
}
