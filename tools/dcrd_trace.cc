// dcrd_trace — query tool for flight-recorder JSONL traces.
//
// Usage:
//   dcrd_trace [--packet ID | --chrome OUT.json | --summary] TRACE.jsonl...
//
// Traces come from any figure/example binary run with --trace_out (one file
// per sweep cell). Multiple files are concatenated before querying, which is
// how a packet that crosses a run boundary would be reassembled — though in
// practice you point it at one cell's file.
//
//   --summary        per-kind event counts, time span, distinct
//                    packets/brokers (default when no mode is given)
//   --packet ID      full hop timeline of message ID: publish, per-hop
//                    sends/ACKs/retransmits, upstream reroutes, budget
//                    exhaustion, dedup suppressions, delivery or drop
//   --chrome PATH    write a Chrome trace_event JSON file (open in Perfetto
//                    or chrome://tracing; one track per broker)
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "obs/trace_export.h"
#include "obs/trace_record.h"

namespace {

int Usage() {
  std::cerr << "usage: dcrd_trace [--packet ID | --chrome OUT.json | "
               "--summary] TRACE.jsonl...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  const bool summary = flags.GetBool("summary", false);
  const bool has_packet = flags.Has("packet");
  const std::int64_t packet = flags.GetInt("packet", -1);
  const std::string chrome_out = flags.GetString("chrome", "");
  flags.ExitOnUnqueried();

  const std::vector<std::string>& files = flags.passthrough();
  if (files.empty()) return Usage();
  if (has_packet && packet < 0) {
    std::cerr << "--packet needs a non-negative message id\n";
    return 2;
  }

  std::vector<dcrd::TraceRecord> records;
  std::size_t dropped = 0;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
    std::size_t dropped_here = 0;
    std::vector<dcrd::TraceRecord> batch =
        dcrd::ReadTraceJsonl(in, &dropped_here);
    dropped += dropped_here;
    records.insert(records.end(), batch.begin(), batch.end());
  }
  if (dropped > 0) {
    std::cerr << dropped << " unparseable line(s) skipped\n";
  }

  if (!chrome_out.empty()) {
    std::ofstream out(chrome_out);
    if (!out) {
      std::cerr << "cannot write " << chrome_out << "\n";
      return 1;
    }
    dcrd::WriteChromeTrace(out, records);
    std::cerr << "wrote " << chrome_out << " (" << records.size()
              << " records)\n";
    return 0;
  }

  if (has_packet) {
    const std::size_t printed = dcrd::PrintPacketTimeline(
        std::cout, records, static_cast<std::uint64_t>(packet));
    if (printed == 0) {
      std::cerr << "no events for packet " << packet << "\n";
      return 1;
    }
    return 0;
  }

  // Default (and explicit --summary): the overview.
  (void)summary;
  dcrd::PrintTraceSummary(std::cout, records);
  return 0;
}
