// dcrd_trace — query and analysis tool for flight-recorder JSONL traces.
//
// Usage:
//   dcrd_trace [MODE...] TRACE.jsonl...
//
// Traces come from any figure/example binary run with --trace_out (one file
// per sweep cell; a sharded cell writes one file per shard, tagged
// `.shardK`). Multiple inputs — listed explicitly or as a shell-style
// pattern like `trace.shard*.jsonl`, which the tool expands itself so
// quoting survives CI scripts — are merged deterministically by
// (t_us, seq, shard): the same total order regardless of argument order, so
// every view below works unchanged on a multi-shard capture.
//
//   --summary        per-kind event counts, time span, distinct
//                    packets/brokers (default when no mode is given)
//   --packet ID      full hop timeline of message ID: publish, per-hop
//                    sends/ACKs/retransmits, upstream reroutes, budget
//                    exhaustion, dedup suppressions, delivery or drop
//   --broker ID      lifeline of broker ID: crashes, restarts, resync
//                    start/done, peer-death verdicts about it, and every
//                    traffic event it took part in
//   --chrome PATH    write a Chrome trace_event JSON file (open in Perfetto
//                    or chrome://tracing; one track per broker). With
//                    --shards, adds a "dcrd-exec" process: one wall-clock
//                    track per shard showing busy/stall spans per round
//                    bucket
//   --shards PROF    render a --shard_profile JSON (per-shard busy/stall
//                    totals, imbalance, critical-shard attribution, and the
//                    cross-shard traffic matrix as a heat table). Works
//                    standalone — no trace files needed
//   --timeseries TS  render a --timeseries JSON capture (counter totals,
//                    gauge ranges, the windowed deadline-SLO table). Works
//                    standalone; with --chrome it adds "dcrd-telemetry"
//                    counter tracks, with --report it adds the
//                    continuous-telemetry panel
//   --decompose      causal delay decomposition: per-component totals,
//                    per-epoch means, per-link/per-broker hotspots
//   --audit MODEL    model-vs-observed audit against a --delay_audit JSONL
//                    file from the same run (implies the decomposition)
//   --report OUT     write a self-contained HTML report (decomposition
//                    charts; audit table when --audit is also given)
//
// Input is streamed line by line — a multi-gigabyte trace never lives in
// memory twice, and the merge buffers one record per file. A malformed line
// is a hard error (exit 1, with the file, line number, and offending text);
// unknown flags exit 2.
#include <glob.h>

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "obs/analysis/delay_decomposition.h"
#include "obs/analysis/html_report.h"
#include "obs/analysis/model_audit.h"
#include "obs/shard_profiler.h"
#include "obs/timeseries.h"
#include "obs/trace_export.h"
#include "obs/trace_record.h"

namespace {

int Usage() {
  std::cerr << "usage: dcrd_trace [--summary | --packet ID | --broker ID | "
               "--chrome OUT | --shards PROFILE.json | "
               "--timeseries SERIES.json | --decompose | "
               "--audit MODEL.jsonl | --report OUT.html] TRACE.jsonl...\n";
  return 2;
}

// Expands shell-style patterns (a sharded cell's `trace.shard*.jsonl`) so a
// quoted pattern works the same as an explicit list. GLOB_NOCHECK hands a
// non-matching pattern back verbatim, so plain paths pass through — a
// missing file still surfaces as "cannot open", not as silence.
std::vector<std::string> ExpandGlobs(const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    glob_t matches{};
    if (::glob(arg.c_str(), GLOB_NOCHECK, nullptr, &matches) == 0) {
      for (std::size_t i = 0; i < matches.gl_pathc; ++i) {
        paths.emplace_back(matches.gl_pathv[i]);
      }
    } else {
      paths.push_back(arg);
    }
    globfree(&matches);
  }
  return paths;
}

// Value-less mode flags (--summary, --decompose). Flags::Parse is greedy —
// `--decompose TRACE.jsonl` stores the first operand as the flag's value —
// so a value that is not a boolean literal is really the first file: hand
// it back to the operand list.
bool BoolMode(const dcrd::Flags& flags, const std::string& name,
              std::vector<std::string>& operands) {
  if (!flags.Has(name)) return false;
  const std::string value = flags.GetString(name, "true");
  if (value == "false" || value == "0" || value == "no") return false;
  if (value == "true" || value == "1" || value == "yes") return true;
  operands.push_back(value);
  return true;
}

// Streams every trace file through `fn` as one deterministic
// (t_us, seq, shard)-ordered merge; hard-fails on the first malformed line
// with a message a human can act on. A single file passes through in file
// order — identical to the pre-merge behaviour.
bool StreamTraces(const std::vector<std::string>& files,
                  const std::function<void(const dcrd::TraceRecord&)>& fn) {
  std::vector<std::ifstream> streams;
  streams.reserve(files.size());
  std::vector<std::istream*> ins;
  ins.reserve(files.size());
  for (const std::string& path : files) {
    streams.emplace_back(path);
    if (!streams.back()) {
      std::cerr << "dcrd_trace: cannot open " << path << "\n";
      return false;
    }
    ins.push_back(&streams.back());
  }
  std::size_t bad_file = 0;
  std::size_t bad_line = 0;
  std::string bad_text;
  if (!dcrd::ForEachMergedTraceJsonl(ins, fn, &bad_file, &bad_line,
                                     &bad_text)) {
    std::cerr << "dcrd_trace: " << files[bad_file] << ":" << bad_line
              << ": malformed trace record: " << bad_text << "\n";
    return false;
  }
  return true;
}

void PrintDecomposition(std::ostream& os,
                        const dcrd::DecompositionResult& result) {
  const dcrd::LogLinearHistogram& total = result.total_histogram;
  os << "decomposition: " << total.count() << " deliveries";
  if (total.count() > 0) {
    os << ", mean "
       << static_cast<double>(total.sum()) / static_cast<double>(total.count())
       << "us, p50 " << total.ValueAtQuantile(0.5) << "us, p99 "
       << total.ValueAtQuantile(0.99) << "us";
  }
  os << "\n";
  for (int i = 0; i < dcrd::kDelayComponentCount; ++i) {
    const dcrd::LogLinearHistogram& h =
        result.component_histograms[static_cast<std::size_t>(i)];
    os << "  " << dcrd::DelayComponentName(i) << ": total " << h.sum()
       << "us";
    if (h.count() > 0 && total.sum() > 0) {
      os << " ("
         << 100.0 * static_cast<double>(h.sum()) /
                static_cast<double>(total.sum())
         << "% of delay), p99 " << h.ValueAtQuantile(0.99) << "us";
    }
    os << "\n";
  }
  os << "  epochs:\n";
  for (const dcrd::EpochDelayStats& epoch : result.epochs) {
    os << "    epoch " << epoch.epoch << " @" << epoch.start_t_us << "us: "
       << epoch.deliveries << " deliveries";
    if (epoch.deliveries > 0) {
      for (int i = 0; i < dcrd::kDelayComponentCount; ++i) {
        os << (i == 0 ? ", mean " : " + ")
           << static_cast<double>(
                  epoch.component_sums_us[static_cast<std::size_t>(i)]) /
                  static_cast<double>(epoch.deliveries)
           << (i + 1 == dcrd::kDelayComponentCount ? "us" : "");
      }
    }
    os << "\n";
  }
  for (const dcrd::LinkDelayStats& link : result.links) {
    os << "  link " << link.link << ": " << link.hops << " causal hops, wire "
       << link.wire_us << "us (queueing " << link.queueing_us
       << "us, baseline " << link.baseline_us << "us)\n";
  }
  for (const dcrd::BrokerDelayStats& broker : result.brokers) {
    os << "  broker " << broker.node << ": " << broker.wait_segments
       << " wait segments, " << broker.wait_us << "us timer wait\n";
  }
  os << "  incomplete chains: " << result.incomplete_chains
     << ", duplicate deliveries: " << result.duplicate_deliveries
     << ", timer mismatches: " << result.timer_accounting_mismatches << "\n";
  if (result.skipped_no_publish > 0) {
    std::cerr << "warning: " << result.skipped_no_publish
              << " delivery(ies) had no publish record — the trace looks "
                 "lossy (overwritten ring or truncated capture); their "
                 "delays are excluded\n";
  }
}

void PrintAudit(std::ostream& os, const dcrd::AuditReport& report) {
  os << "audit: " << report.matched << "/" << report.observed
     << " deliveries joined to " << report.cells.size() << " model cells ("
     << report.unmatched << " unmatched), " << report.flagged_cells << "/"
     << report.populated_cells << " populated cells flagged, max Eq.3 "
     << "recombination error " << report.max_recombine_error_us << "us\n";
  for (const dcrd::AuditCell& cell : report.cells) {
    if (cell.n == 0) continue;
    os << "  epoch@" << cell.epoch_t_us << "us topic " << cell.topic
       << " sub " << cell.sub << ": n=" << cell.n << " expected "
       << cell.expected_d_us << "us observed " << cell.mean_us << "us (sd "
       << cell.stddev_us << "us) error " << cell.error_us << "us"
       << (cell.flagged ? " FLAGGED" : "") << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const dcrd::Flags flags = dcrd::Flags::Parse(argc, argv);
  std::vector<std::string> files;
  const bool summary = BoolMode(flags, "summary", files);
  const bool decompose = BoolMode(flags, "decompose", files);
  const bool has_packet = flags.Has("packet");
  const std::int64_t packet = flags.GetInt("packet", -1);
  const bool has_broker = flags.Has("broker");
  const std::int64_t broker = flags.GetInt("broker", -1);
  const std::string chrome_out = flags.GetString("chrome", "");
  const std::string shards_profile = flags.GetString("shards", "");
  const std::string timeseries_in = flags.GetString("timeseries", "");
  const std::string audit_model = flags.GetString("audit", "");
  const std::string report_out = flags.GetString("report", "");
  flags.ExitOnUnqueried();

  files.insert(files.end(), flags.passthrough().begin(),
               flags.passthrough().end());
  files = ExpandGlobs(files);
  if (files.empty() && shards_profile.empty() && timeseries_in.empty()) {
    return Usage();
  }
  if (has_packet && packet < 0) {
    std::cerr << "--packet needs a non-negative message id\n";
    return 2;
  }
  if (has_broker && broker < 0) {
    std::cerr << "--broker needs a non-negative broker id\n";
    return 2;
  }

  // The shard-execution profile: printed on its own, and threaded into the
  // Chrome export (per-shard busy/stall tracks) when both are requested.
  dcrd::ShardProfile profile;
  bool have_profile = false;
  if (!shards_profile.empty()) {
    std::ifstream in(shards_profile);
    if (!in) {
      std::cerr << "dcrd_trace: cannot open " << shards_profile << "\n";
      return 1;
    }
    std::string error;
    if (!dcrd::LoadShardProfileJson(in, &profile, &error)) {
      std::cerr << "dcrd_trace: " << shards_profile
                << ": malformed shard profile: " << error << "\n";
      return 1;
    }
    have_profile = true;
    dcrd::PrintShardProfile(std::cout, profile);
  }

  // The time-series capture: rendered as terminal tables on its own, and
  // threaded into the Chrome export (telemetry counter tracks) and the HTML
  // report (continuous-telemetry panel) when those are also requested.
  dcrd::TimeSeriesStore series;
  bool have_series = false;
  if (!timeseries_in.empty()) {
    std::ifstream in(timeseries_in);
    if (!in) {
      std::cerr << "dcrd_trace: cannot open " << timeseries_in << "\n";
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    if (!dcrd::LoadTimeSeriesJson(text.str(), &series, &error)) {
      std::cerr << "dcrd_trace: " << timeseries_in
                << ": malformed time series: " << error << "\n";
      return 1;
    }
    have_series = true;
    dcrd::PrintTimeSeries(std::cout, series);
  }

  // The timeline and Chrome exports need the records in memory; every other
  // mode streams.
  const bool need_records = has_packet || has_broker || !chrome_out.empty();
  const bool need_analysis =
      decompose || !audit_model.empty() || !report_out.empty();

  std::vector<dcrd::TraceRecord> records;
  dcrd::TraceAnalyzer analyzer;
  dcrd::TraceSummaryAccumulator summary_acc;
  const bool want_summary =
      summary ||
      (!need_records && !need_analysis && !have_profile && !have_series);
  if (!files.empty() &&
      !StreamTraces(files, [&](const dcrd::TraceRecord& record) {
        if (need_records) records.push_back(record);
        if (need_analysis) analyzer.Add(record);
        if (want_summary) summary_acc.Add(record);
      })) {
    return 1;
  }

  if (!chrome_out.empty()) {
    std::ofstream out(chrome_out);
    if (!out) {
      std::cerr << "cannot write " << chrome_out << "\n";
      return 1;
    }
    dcrd::WriteChromeTrace(out, records, have_profile ? &profile : nullptr,
                           have_series ? &series : nullptr);
    std::cerr << "wrote " << chrome_out << " (" << records.size()
              << " records)\n";
  }

  if (has_packet) {
    const std::size_t printed = dcrd::PrintPacketTimeline(
        std::cout, records, static_cast<std::uint64_t>(packet));
    if (printed == 0) {
      std::cerr << "no events for packet " << packet << "\n";
      return 1;
    }
  }

  if (has_broker) {
    const std::size_t printed = dcrd::PrintBrokerTimeline(
        std::cout, records, static_cast<std::uint32_t>(broker));
    if (printed == 0) {
      std::cerr << "no events for broker " << broker << "\n";
      return 1;
    }
  }

  if (need_analysis) {
    const dcrd::DecompositionResult result = analyzer.Decompose();
    if (decompose || report_out.empty()) {
      PrintDecomposition(std::cout, result);
    }

    dcrd::AuditReport audit;
    bool have_audit = false;
    if (!audit_model.empty()) {
      std::ifstream in(audit_model);
      if (!in) {
        std::cerr << "dcrd_trace: cannot open " << audit_model << "\n";
        return 1;
      }
      dcrd::ModelAuditor auditor;
      std::size_t bad_line = 0;
      std::string bad_text;
      if (!dcrd::ForEachModelRow(
              in,
              [&](const dcrd::ModelRow& row) { auditor.AddModelRow(row); },
              &bad_line, &bad_text)) {
        std::cerr << "dcrd_trace: " << audit_model << ":" << bad_line
                  << ": malformed model row: " << bad_text << "\n";
        return 1;
      }
      for (const dcrd::DeliveryDecomposition& d : result.deliveries) {
        auditor.Observe(d.topic, d.subscriber, d.publish_t_us, d.total_us);
      }
      audit = auditor.Finish();
      have_audit = true;
      PrintAudit(std::cout, audit);
    }

    if (!report_out.empty()) {
      std::ofstream out(report_out);
      if (!out) {
        std::cerr << "cannot write " << report_out << "\n";
        return 1;
      }
      std::string title = files.empty() ? timeseries_in : files.front();
      if (files.size() > 1) {
        title += " (+" + std::to_string(files.size() - 1) + " more)";
      }
      dcrd::WriteHtmlReport(out, result, have_audit ? &audit : nullptr, title,
                            have_series ? &series : nullptr);
      std::cerr << "wrote " << report_out << " (" << result.deliveries.size()
                << " deliveries decomposed)\n";
    }

    if (have_audit && audit.recombine_failures > 0) {
      std::cerr << "dcrd_trace: " << audit.recombine_failures
                << " model row(s) failed Eq.3 recombination — the model "
                   "file is corrupt or from a different algebra\n";
      return 1;
    }
  }

  if (want_summary) {
    summary_acc.Print(std::cout);
  }
  return 0;
}
