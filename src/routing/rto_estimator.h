// Per-link adaptive retransmission-timeout estimation (Jacobson/Karels).
//
// The paper arms every ACK timer from the monitored alpha_hat, which is
// refreshed only every 5 minutes; under delay inflation (gray failures,
// queuing, jitter) that fixed timer fires while the ACK is still in flight
// and every such firing is a spurious retransmission. The standard cure —
// RFC 6298 smoothed RTT estimation — is implemented here: per link, keep
//
//   SRTT   <- (1-1/8) SRTT   + 1/8 sample
//   RTTVAR <- (1-1/4) RTTVAR + 1/4 |SRTT - sample|
//   RTO     = SRTT + max(G, 4 RTTVAR),   clamped to [min_rto, max_rto]
//
// seeded from the monitored alpha_hat until the first real sample arrives.
// Retransmissions back off exponentially (RTO << attempt) with a small
// deterministic jitter keyed on (copy id, attempt), so the simulation stays
// bit-reproducible and concurrent copies on one link do not retransmit in
// lock-step.
//
// The simulator's ACKs identify which transmission they answer, so every
// RTT sample is unambiguous and Karn's ambiguity rule is unnecessary —
// samples from retransmitted copies are safe to fold in.
#pragma once

#include <cstdint>

#include "common/dense_map.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"

namespace dcrd {

struct RtoConfig {
  SimDuration min_rto = SimDuration::Millis(2);
  SimDuration max_rto = SimDuration::Seconds(2);
  // RFC 6298's clock granularity G: variance floor added to SRTT.
  SimDuration granularity = SimDuration::Micros(100);
  // Half-width of the deterministic per-(copy, attempt) timeout spread,
  // as a fraction of the backed-off RTO.
  double jitter = 0.1;
  // EWMA gains (RFC 6298 defaults).
  double srtt_gain = 1.0 / 8.0;
  double rttvar_gain = 1.0 / 4.0;
};

// Estimator state is kept per *directed* link — the transport's directed
// index (2*link + direction). The two directions of one physical link are
// driven by different senders, and under sharded execution by different
// threads' replicas; directed state keeps each sender's estimate a pure
// function of its own sample stream, which the shard-count byte-identity
// gate requires (an undirected estimator would interleave the two
// directions' samples in scheduler order).
class RtoEstimator {
 public:
  explicit RtoEstimator(RtoConfig config = {}) : config_(config) {}

  // Folds one observed ACK round-trip on directed link `directed` into the
  // estimate.
  void OnSample(std::size_t directed, SimDuration rtt);

  // Current RTO for `directed`; `seed` (the alpha_hat-derived fixed
  // timeout) is used until the first sample arrives.
  [[nodiscard]] SimDuration Rto(std::size_t directed, SimDuration seed) const;

  // Timeout to arm for transmission `attempt` (0-based) of `copy_id`:
  // Rto(directed, seed) << attempt, jittered and clamped.
  [[nodiscard]] SimDuration TimeoutFor(std::size_t directed, SimDuration seed,
                                       int attempt,
                                       std::uint64_t copy_id) const;

  [[nodiscard]] bool HasSample(std::size_t directed) const {
    return state_.Contains(directed);
  }
  [[nodiscard]] std::uint64_t sample_count() const { return sample_count_; }
  [[nodiscard]] const RtoConfig& config() const { return config_; }

 private:
  struct State {
    double srtt_us = 0.0;
    double rttvar_us = 0.0;
  };

  [[nodiscard]] SimDuration Clamp(SimDuration rto) const;

  RtoConfig config_;
  // Directed indices are dense small integers, so per-direction state is a
  // flat array indexed directly — no hashing on the per-ACK sample path.
  DenseIndexMap<State> state_;
  std::uint64_t sample_count_ = 0;
};

}  // namespace dcrd
