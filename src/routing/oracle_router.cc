#include "routing/oracle_router.h"

#include "graph/shortest_path.h"

namespace dcrd {

std::vector<SourceRoutedRouter::Route> OracleRouter::RoutesFor(
    const Message& message) {
  const SubscriptionTable& subs = *context().subscriptions;
  const FailureSchedule& failures = context().network->failures();
  const NodeFailureSchedule& node_failures =
      context().network->node_failures();
  const Graph& topology = graph();
  const SimTime now = context().network->scheduler().now();
  // A hop is admissible at its entry instant only if the link and both its
  // endpoint brokers are up — matching OverlayNetwork::Transmit exactly.
  const LinkUpAtFn up_at = [&](LinkId link, SimTime t) {
    const EdgeSpec& edge = topology.edge(link);
    return failures.IsUp(link, t) && node_failures.IsUp(edge.a, t) &&
           node_failures.IsUp(edge.b, t);
  };

  // A down publisher cannot transmit at all this instant.
  if (!node_failures.IsUp(message.publisher, now)) return {};

  std::vector<Route> routes;
  for (const Subscription& sub : subs.subscriptions(message.topic)) {
    // Ground-truth delays: the oracle is omniscient, not estimate-bound.
    const auto path = TimeAwareShortestPath(graph(), message.publisher,
                                            sub.subscriber, now, up_at);
    if (!path.has_value()) continue;  // momentarily partitioned: undeliverable
    routes.push_back(Route{sub.subscriber, path->nodes, 0});
  }
  return routes;
}

}  // namespace dcrd
