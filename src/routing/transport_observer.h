// Observation hook for hop-level packet events.
//
// The simulation-wide invariant checker (sim/invariant_checker.h) needs to
// see every data-copy arrival — including suppressed duplicates — to verify
// routing-loop freedom and exactly-once hand-up, without the routers or the
// transport knowing anything about it. Routers thread the observer from
// RouterContext into their HopTransport; a null observer costs one branch.
#pragma once

#include <cstdint>

#include "common/ids.h"

namespace dcrd {

class Packet;

class TransportObserver {
 public:
  virtual ~TransportObserver() = default;

  // Called for every data-copy arrival at `at` from neighbour `from`,
  // duplicates included; `handed_up` is true when the transport passed the
  // packet to the protocol (first sight of this copy id).
  virtual void OnCopyArrival(std::uint64_t copy_id, NodeId at, NodeId from,
                             const Packet& packet, bool handed_up) = 0;
};

}  // namespace dcrd
