// Multipath baseline (paper Section IV-B, item 4), generalised to k paths.
//
// "Publishers send duplicate packets for every subscriber ... a single
// packet to a single subscriber is sent through two paths: one shortest
// delay path and another path that [is] selected from the top 5 shortest
// delay paths that has the fewest overlapping links with the shortest delay
// path."
//
// `path_count = 2` (the default) is exactly the paper's baseline. Larger
// counts greedily add, from the Yen top-5, the candidate sharing the fewest
// links with everything already selected (ties broken toward lower delay) —
// the redundancy/traffic trade-off the ext4_redundancy bench sweeps.
//
// Path sets are recomputed from monitored estimates at every epoch; like
// the trees, Multipath never reroutes after a hop gives up.
#pragma once

#include <unordered_map>
#include <vector>

#include "graph/yen_ksp.h"
#include "routing/source_routed.h"

namespace dcrd {

class MultipathRouter final : public SourceRoutedRouter {
 public:
  // How many shortest paths Yen's algorithm ranks when picking diversity
  // paths; the paper uses 5.
  static constexpr std::size_t kCandidatePaths = 5;

  explicit MultipathRouter(RouterContext context, std::size_t path_count = 2)
      : SourceRoutedRouter(context), path_count_(path_count) {
    DCRD_CHECK(path_count_ >= 1);
    DCRD_CHECK(path_count_ <= kCandidatePaths);
  }

  [[nodiscard]] std::string_view name() const override { return "Multipath"; }

  // Current path set for (topic, subscriber): element 0 is the shortest
  // monitored-delay path; fewer than path_count entries when the graph
  // lacks alternatives. Exposed for tests; CHECK-fails when the subscriber
  // has no path set (not subscribed at the last rebuild).
  [[nodiscard]] const std::vector<std::vector<NodeId>>& PathsFor(
      TopicId topic, NodeId subscriber) const {
    const auto it = paths_[topic.underlying()].find(subscriber);
    DCRD_CHECK(it != paths_[topic.underlying()].end())
        << subscriber << " has no path set for " << topic;
    return it->second;
  }
  [[nodiscard]] std::size_t path_count() const { return path_count_; }

 protected:
  void RebuildRoutes() override;
  std::vector<Route> RoutesFor(const Message& message) override;

 private:
  std::size_t path_count_;
  // Keyed by subscriber id (not list index): the subscription table may
  // mutate under churn between rebuilds; a subscriber joining mid-epoch
  // simply has no path set until the next rebuild and is skipped.
  std::vector<std::unordered_map<NodeId, std::vector<std::vector<NodeId>>>>
      paths_;
};

}  // namespace dcrd
