#include "routing/source_routed.h"

#include <algorithm>
#include <map>

namespace dcrd {

SourceRoutedRouter::SourceRoutedRouter(RouterContext context)
    : context_(context),
      transport_(*context_.network,
                 [this](NodeId at, const Packet& packet, NodeId /*from*/) {
                   OnArrival(at, packet);
                 },
                 context_.MakeTransportConfig()) {
  DCRD_CHECK(context_.network != nullptr);
  DCRD_CHECK(context_.subscriptions != nullptr);
  DCRD_CHECK(context_.sink != nullptr);
}

void SourceRoutedRouter::Rebuild(const MonitoredView& view) {
  view_ = &view;
  transport_.ClearDedupState();
  RebuildRoutes();
}

const SourceRoutedRouter::CachedRoutes& SourceRoutedRouter::CacheRoutes(
    const Message& message) {
  PurgeStaleRoutes();
  CachedRoutes cached;
  cached.inserted = context_.network->scheduler().now();
  cached.routes = RoutesFor(message);
  const auto [it, inserted] =
      route_cache_.emplace(message.id.value, std::move(cached));
  DCRD_CHECK(inserted) << "duplicate message id " << message.id;
  cache_order_.push_back(message.id.value);
  return it->second;
}

void SourceRoutedRouter::OnRemotePublish(const Message& message) {
  // Routes are a pure function of the epoch view (trees, multipath) or of
  // the failure schedules at `now` (ORACLE), so every shard computes the
  // same cache entry the owning shard does — only the sends are skipped.
  CacheRoutes(message);
}

void SourceRoutedRouter::Publish(const Message& message) {
  const CachedRoutes& it_routes = CacheRoutes(message);

  // Group subscribers by (first hop, tag) and launch one copy per group.
  const NodeId origin = message.publisher;
  std::map<std::pair<NodeId, std::uint8_t>, std::vector<NodeId>> groups;
  for (const Route& route : it_routes.routes) {
    if (route.nodes.size() < 2) {
      // Subscriber co-located with the publisher: immediate delivery.
      context_.sink->OnDelivered(message, route.subscriber,
                                 context_.network->scheduler().now());
      continue;
    }
    DCRD_CHECK(route.nodes.front() == origin);
    groups[{route.nodes[1], route.tag}].push_back(route.subscriber);
  }
  for (auto& [key, subscribers] : groups) {
    const auto [next, tag] = key;
    Packet packet(message, std::move(subscribers));
    packet.set_flow_label(tag);
    packet.RecordOnPath(origin);
    const auto link = graph().FindEdge(origin, next);
    DCRD_CHECK(link.has_value()) << "route uses missing edge " << origin
                                 << "-" << next;
    const SimDuration timeout = context_.AckTimeout(view().alpha(*link));
    transport_.SendReliable(origin, *link, std::move(packet),
                            context_.max_transmissions, timeout,
                            /*done=*/nullptr);
  }
}

NodeId SourceRoutedRouter::NextHop(const Message& message, NodeId at,
                                   NodeId subscriber, std::uint8_t tag) const {
  const auto it = route_cache_.find(message.id.value);
  if (it == route_cache_.end()) return NodeId();
  for (const Route& route : it->second.routes) {
    if (route.subscriber != subscriber || route.tag != tag) continue;
    const auto pos = std::find(route.nodes.begin(), route.nodes.end(), at);
    if (pos == route.nodes.end() || pos + 1 == route.nodes.end()) {
      return NodeId();
    }
    return *(pos + 1);
  }
  return NodeId();
}

void SourceRoutedRouter::OnArrival(NodeId at, const Packet& packet) {
  std::vector<NodeId> remaining;
  for (NodeId subscriber : packet.destinations()) {
    if (subscriber == at) {
      context_.sink->OnDelivered(packet.message(), subscriber,
                                 context_.network->scheduler().now());
    } else {
      remaining.push_back(subscriber);
    }
  }
  if (!remaining.empty()) ForwardGroups(at, packet, remaining);
}

void SourceRoutedRouter::ForwardGroups(NodeId at, const Packet& packet,
                                       const std::vector<NodeId>& remaining) {
  std::map<NodeId, std::vector<NodeId>> groups;
  for (NodeId subscriber : remaining) {
    const NodeId next =
        NextHop(packet.message(), at, subscriber, packet.flow_label());
    if (!next.valid()) continue;  // purged route: abandon, as on a real node
    groups[next].push_back(subscriber);
  }
  for (auto& [next, subscribers] : groups) {
    Packet copy = packet.WithDestinations(std::move(subscribers));
    copy.RecordOnPath(at);
    const auto link = graph().FindEdge(at, next);
    DCRD_CHECK(link.has_value());
    const SimDuration timeout = context_.AckTimeout(view().alpha(*link));
    transport_.SendReliable(at, *link, std::move(copy),
                            context_.max_transmissions, timeout,
                            /*done=*/nullptr);
  }
}

void SourceRoutedRouter::PurgeStaleRoutes() {
  const SimTime now = context_.network->scheduler().now();
  while (!cache_order_.empty()) {
    const auto it = route_cache_.find(cache_order_.front());
    if (it != route_cache_.end() &&
        now - it->second.inserted < cache_ttl_) {
      break;
    }
    if (it != route_cache_.end()) route_cache_.erase(it);
    cache_order_.pop_front();
  }
}

}  // namespace dcrd
