// Reliable hop-by-hop packet transport (data + ACK machinery).
//
// Every protocol in the paper moves packets the same way at the link level:
// send a copy to a chosen neighbour, wait for a hop ACK, retransmit up to m
// times, then report success or give-up to the protocol above. This class
// owns that machinery — copy ids, ACK emission, duplicate suppression,
// timeout timers — so DCRD, the trees, Multipath and ORACLE all share one
// audited implementation and differ only in *where* they send next.
//
// Semantics:
//  * Each SendReliable call allocates a copy id carried by every
//    retransmission of that copy.
//  * The receiving side ACKs every arrival (including duplicates) but hands
//    the packet to the protocol's arrival handler only once per copy id.
//  * `done(acked)` fires exactly once: true as soon as the ACK returns,
//    false after the m-th transmission's timeout expires. A data copy can
//    have been delivered even when done(false) fires (ACK lost) — protocols
//    must tolerate duplicates, exactly as over a real network.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/ids.h"
#include "event/scheduler.h"
#include "net/overlay_network.h"
#include "pubsub/packet.h"

namespace dcrd {

class HopTransport {
 public:
  // Invoked (once per copy) when a data packet reaches `at`; `from` is the
  // transmitting neighbour.
  using ArrivalHandler =
      std::function<void(NodeId at, const Packet& packet, NodeId from)>;

  HopTransport(OverlayNetwork& network, ArrivalHandler on_arrival)
      : network_(network), on_arrival_(std::move(on_arrival)) {}

  HopTransport(const HopTransport&) = delete;
  HopTransport& operator=(const HopTransport&) = delete;

  // Sends `packet` from `from` over `link`, retrying until `max_tx` total
  // transmissions, each armed with `ack_timeout`. `done` may start further
  // sends; it is always invoked from a scheduler event (never re-entrantly).
  void SendReliable(NodeId from, LinkId link, Packet packet, int max_tx,
                    SimDuration ack_timeout, std::function<void(bool)> done);

  // Drops receiver-side duplicate-suppression state. Copy ids are globally
  // unique so clearing can never resurrect a copy; the engine calls this at
  // monitoring epochs purely to bound memory over multi-hour runs.
  void ClearDedupState() { seen_copies_.clear(); }

  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }

 private:
  struct Pending {
    NodeId from;
    LinkId link;
    Packet packet;
    int transmissions_left;
    SimDuration ack_timeout;
    std::function<void(bool)> done;
    EventHandle timer;
  };

  void TransmitOnce(std::uint64_t copy_id);
  void HandleTimeout(std::uint64_t copy_id);
  void HandleDataArrival(std::uint64_t copy_id, NodeId at, NodeId from,
                         LinkId link, const Packet& packet);
  void HandleAckArrival(std::uint64_t copy_id);

  OverlayNetwork& network_;
  ArrivalHandler on_arrival_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::unordered_set<std::uint64_t> seen_copies_;
  std::uint64_t next_copy_id_ = 1;
};

}  // namespace dcrd
