// Reliable hop-by-hop packet transport (data + ACK machinery).
//
// Every protocol in the paper moves packets the same way at the link level:
// send a copy to a chosen neighbour, wait for a hop ACK, retransmit up to m
// times, then report success or give-up to the protocol above. This class
// owns that machinery — copy ids, ACK emission, duplicate suppression,
// timeout timers — so DCRD, the trees, Multipath and ORACLE all share one
// audited implementation and differ only in *where* they send next.
//
// Semantics:
//  * Each SendReliable call allocates a copy id carried by every
//    retransmission of that copy. Copy ids are allocated per sending
//    broker ((broker+1) << 40 | broker-local counter) so the id a copy
//    gets is independent of how sends from *other* brokers interleave —
//    a shard-partition invariance the sharded engine requires.
//  * The receiving side ACKs every arrival (including duplicates) but hands
//    the packet to the protocol's arrival handler only once per copy id.
//    The ACK leg itself is resolved at *send* time on the sender's shard
//    (OverlayNetwork::ResolveAckAt): its outcome is a pure function of
//    schedules and the copy's content key, so the sender can precompute
//    the HandleAckArrival instant locally and ACKs never cross a shard
//    boundary. Data arrivals destined to a remote shard travel as kData
//    exchange messages and re-enter through AcceptRemoteData.
//  * `done(acked)` fires exactly once: true as soon as the ACK returns,
//    false after the m-th transmission's timeout expires. A data copy can
//    have been delivered even when done(false) fires (ACK lost) — protocols
//    must tolerate duplicates, exactly as over a real network.
//
// Timer modes:
//  * Fixed (default, paper parity): every transmission of a copy arms the
//    caller-supplied `ack_timeout` (2*alpha_hat-style), bit-identical to
//    the paper's model.
//  * Adaptive (config.adaptive_rto): timers come from a per-link
//    Jacobson/Karels RTO estimator fed by observed ACK round-trips and
//    seeded from `ack_timeout` until the first sample, with exponential
//    backoff plus deterministic jitter across the m retransmissions (see
//    rto_estimator.h). ACKs identify the transmission they answer, so the
//    transport also counts *spurious* retransmissions — copies retransmitted
//    although an earlier transmission's ACK was merely late.
//
// Storage layout (the hot part): per-copy sender state lives in a pooled
// slab (slot_map.h) whose handles ride inside the scheduler/network
// callbacks, in-flight wire payloads live in a second slab so callback
// captures stay within the inline budget, and the receiver-side dedup
// generations plus ACK tombstones are open-addressing tables
// (dense_map.h). A send/ACK round trip therefore performs zero heap
// allocations once the slabs have reached the run's in-flight high-water
// mark — a property enforced by the allocation-counter regression tests.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "common/dense_map.h"
#include "common/ids.h"
#include "obs/broker_health.h"
#include "common/inline_function.h"
#include "common/slot_map.h"
#include "event/scheduler.h"
#include "net/overlay_network.h"
#include "pubsub/packet.h"
#include "routing/rto_estimator.h"
#include "routing/transport_observer.h"

namespace dcrd {

class FlightRecorder;
class LogLinearHistogram;

struct HopTransportConfig {
  bool adaptive_rto = false;
  RtoConfig rto;
  // Peer-death detection (off by default). After `peer_death_threshold`
  // consecutive copy give-ups on a directed link with no intervening ACK,
  // the sender declares the peer dead: every copy still pending on that
  // link fails fast (done(false), so the protocol reroutes immediately per
  // Algorithm 2), new sends on it fail without burning transmissions, and
  // a control-class probe loop with exponential backoff + deterministic
  // jitter runs until the peer answers, which revives the link. The
  // silence window is the Jacobson/Karels RTO state's own m-timeout
  // budget — no second timer hierarchy.
  bool peer_death = false;
  int peer_death_threshold = 2;
  // Probe backoff: first probe after the link RTO, doubling per unanswered
  // attempt (capped at 6 doublings), clamped to `probe_max_interval`, with
  // a ±`probe_jitter` spread keyed on (directed link, attempt) so probers
  // never synchronize.
  SimDuration probe_max_interval = SimDuration::Seconds(10);
  double probe_jitter = 0.25;
  TransportObserver* observer = nullptr;
  // Optional flight recorder receiving enqueue/send/retransmit/ACK/
  // dedup/budget-exhausted lifecycle events. Must outlive the transport.
  FlightRecorder* recorder = nullptr;
  // Optional histogram fed one sample per unambiguous hop ACK round trip
  // (microseconds). Must outlive the transport.
  LogLinearHistogram* rtt_histogram = nullptr;
};

// Cumulative counters, readable at any time (pending_copies is the live
// in-flight count; it must be 0 after the scheduler drains).
struct TransportStats {
  std::uint64_t transmissions = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t spurious_retransmissions = 0;
  std::uint64_t rtt_samples = 0;
  std::size_t pending_copies = 0;
  // Crash–recovery bookkeeping (all 0 unless the knobs are on).
  std::uint64_t peer_deaths = 0;     // directed links declared dead
  std::uint64_t peer_probes = 0;     // probe transmissions sent
  std::uint64_t peer_revivals = 0;   // dead links revived by an answer
  std::uint64_t crash_copies_killed = 0;  // pendings killed by own crash
};

class HopTransport {
 public:
  // Invoked (once per copy) when a data packet reaches `at`; `from` is the
  // transmitting neighbour.
  using ArrivalHandler =
      std::function<void(NodeId at, const Packet& packet, NodeId from)>;

  // Completion callback; inline storage only (see inline_function.h), so
  // protocol captures stay id-sized by construction.
  using DoneCallback = InlineFunction<void(bool)>;

  // Hard cap on per-copy transmissions (paper parameter m). The per-copy
  // send-instant log is a fixed array of this size, so growing the budget
  // beyond it is a compile-time decision, not silent regrowth.
  static constexpr int kMaxTransmissionBudget = 16;

  HopTransport(OverlayNetwork& network, ArrivalHandler on_arrival,
               HopTransportConfig config = {})
      : network_(network),
        on_arrival_(std::move(on_arrival)),
        config_(config),
        rto_(config.rto),
        seen_copies_(network.graph().node_count()),
        prev_seen_copies_(network.graph().node_count()),
        next_copy_seq_(network.graph().node_count(), 0) {
    if (config_.peer_death) {
      peer_.resize(network.graph().edge_count() * 2);
    }
    network_.SetRemoteDataSink(
        [this](XMsg& msg) { AcceptRemoteData(msg); });
  }

  HopTransport(const HopTransport&) = delete;
  HopTransport& operator=(const HopTransport&) = delete;

  // Sends `packet` from `from` over `link`, retrying until `max_tx` total
  // transmissions. `ack_timeout` is the fixed per-transmission timer in
  // fixed mode and the estimator seed in adaptive mode. `done` may start
  // further sends; it is always invoked from a scheduler event (never
  // re-entrantly).
  void SendReliable(NodeId from, LinkId link, Packet packet, int max_tx,
                    SimDuration ack_timeout, DoneCallback done);

  // Ages receiver-side duplicate-suppression state to bound memory over
  // multi-hour runs. Rotation (not a hard clear): a spurious retransmission
  // of an already-handed-up copy can still be in flight when the monitoring
  // epoch turns over, so the previous generation stays consulted for one
  // more epoch. A copy id is only forgotten after two consecutive epochs
  // without an arrival — far longer than any transmission stays airborne.
  void ClearDedupState() {
    // Swap instead of move: both tables keep their steady-state capacity,
    // so the rotation itself allocates nothing. Dedup state is kept per
    // receiving broker so a crash can void exactly one broker's memory.
    for (std::size_t node = 0; node < seen_copies_.size(); ++node) {
      swap(prev_seen_copies_[node], seen_copies_[node]);
      seen_copies_[node].clear();
    }
    // Ack-tombstones follow the same bound: an ACK more than an epoch late
    // is not worth accounting for.
    expired_.clear();
  }

  // Fail-stop crash of `node`: every copy it was retransmitting dies
  // without a done() (the sender's state died with it — the protocol layer
  // drops its episodes in the same instant), its duplicate-suppression
  // memory is voided (a post-restart retransmission will be handed up
  // again — the crash-aware invariant checker budgets for exactly this),
  // and its own peer-death bookkeeping resets. Returns the number of
  // pending copies killed, for the kBrokerDown trace record.
  std::size_t OnBrokerCrash(NodeId node);

  // True when the sender `from` currently believes the far end of `link`
  // is alive (always true with peer-death detection off). Routers consult
  // this in next-hop selection so known-dead peers are skipped instead of
  // burning a full m-transmission budget.
  [[nodiscard]] bool PeerAlive(NodeId from, LinkId link) const {
    if (peer_.empty()) return true;
    return !peer_[DirectedIndex(from, link)].dead;
  }

  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] TransportStats stats() const {
    TransportStats out = stats_;
    out.rtt_samples = rto_.sample_count();
    out.pending_copies = pending_.size();
    return out;
  }
  [[nodiscard]] const RtoEstimator& rto() const { return rto_; }

  // Accumulates per-broker health into `out` (indexed by broker id, caller-
  // zeroed): live in-flight copies by sending broker, dedup table sizes
  // (current + previous generation) by receiving broker, and — in adaptive
  // mode — each broker's largest sampled outgoing-link RTO. Read-only and
  // allocation-free; the time-series sampler calls it every sim-time tick.
  void SampleBrokerHealth(std::vector<BrokerHealth>& out) const;

 private:
  struct Pending {
    NodeId from;
    LinkId link;
    Packet packet;
    int transmissions_left = 0;
    SimDuration ack_timeout;  // fixed timer / adaptive seed
    DoneCallback done;
    EventHandle timer;
    std::uint64_t copy_id = 0;
    int transmissions_made = 0;
    // Send instant per transmission index; fixed-size so the slab entry
    // never regrows.
    std::array<SimTime, kMaxTransmissionBudget> tx_times{};
  };

  // Accounting stub left behind when a copy's send budget expires before
  // its ACK returns; lets the straggling ACK still be classified. `from`
  // is kept because the RTO estimator is keyed per directed link.
  struct Expired {
    NodeId from;
    LinkId link;
    int transmissions_made = 0;
    std::array<SimTime, kMaxTransmissionBudget> tx_times{};
  };

  // Payload of one in-flight data transmission. Pooled so the arrival
  // callback captures only {this, handle}; the packet snapshot is recycled
  // slab storage, not a heap-owning lambda capture.
  struct WireCopy {
    Packet packet;
    std::uint64_t copy_id = 0;
    int tx_index = 0;
    NodeId to;
    NodeId from;
    LinkId link;
  };

  // Sender-side liveness belief about the far end of one directed link.
  // `round` is the ABA guard: every revive or crash-reset bumps it, and a
  // probe timer that captured an older round is a no-op when it fires, so
  // a stale timer can never probe (or revive) on behalf of a newer death.
  struct PeerState {
    int consecutive_failures = 0;
    int probe_attempts = 0;
    bool dead = false;
    std::uint32_t round = 0;
    SimDuration probe_base;
    EventHandle probe_timer;
  };

  // `in_timer_event` == the call is running inside the copy's own timeout
  // dispatch: the retransmission timer is then re-armed in place
  // (RearmCurrentAfter) instead of released and re-scheduled — the capture
  // is identical across the whole m-transmission chain, so the callback
  // slot, not just its contents, is reused.
  void TransmitOnce(SlotHandle pending_slot, bool in_timer_event);
  void HandleTimeout(SlotHandle pending_slot);
  void HandleDataArrival(SlotHandle wire_slot);
  void HandleAckArrival(SlotHandle pending_slot, std::uint64_t copy_id,
                        int tx_index);
  // Re-enters a data copy that crossed the exchange from another shard:
  // snapshots the payload into the wire slab and schedules the arrival
  // under the canonical key the sending shard computed.
  void AcceptRemoteData(XMsg& msg);

  // Globally unique, partition-invariant copy id for a copy sent by
  // `from`: broker id in the top bits, broker-local counter below.
  [[nodiscard]] std::uint64_t MakeCopyId(NodeId from) {
    std::uint64_t& seq = next_copy_seq_[from.underlying()];
    DCRD_CHECK(seq < (std::uint64_t{1} << 40))
        << "per-broker copy counter overflow";
    return (static_cast<std::uint64_t>(from.underlying()) + 1) << 40 | seq++;
  }

  [[nodiscard]] std::size_t DirectedIndex(NodeId from, LinkId link) const {
    const EdgeSpec& edge = network_.graph().edge(link);
    return link.underlying() * 2 + (from == edge.a ? 0 : 1);
  }
  // A copy on (from, link) exhausted its budget / was acknowledged.
  void NoteHopFailure(NodeId from, LinkId link, SimDuration seed);
  void NoteHopSuccess(NodeId from, LinkId link);
  void DeclarePeerDead(NodeId from, LinkId link, SimDuration seed);
  // Fails every pending copy on (from, link) fast: done(false) each, so
  // the protocol reroutes now instead of after m timeouts.
  std::size_t FailFastPending(NodeId from, LinkId link);
  // `rearm` == running inside the probe timer's own dispatch; the probe
  // chain then re-arms its slot in place. The reused capture's `round` is
  // still current: SendProbe only reaches ScheduleProbe after checking
  // round == state.round, and nothing bumps the round in between.
  void ScheduleProbe(NodeId from, LinkId link, bool rearm);
  void SendProbe(NodeId from, LinkId link, std::uint32_t round);
  [[nodiscard]] SimDuration ProbeInterval(std::size_t didx,
                                          const PeerState& state) const;

  OverlayNetwork& network_;
  ArrivalHandler on_arrival_;
  HopTransportConfig config_;
  RtoEstimator rto_;
  TransportStats stats_;
  SlotMap<Pending> pending_;
  SlotMap<WireCopy> wire_;
  // Packet scratch for the arrival path: the wire slot is released before
  // the protocol handler runs (the handler may send, growing the slab), so
  // the payload is swapped here first. Buffer capacity circulates between
  // the scratch and the slab — no allocation either way.
  Packet arrival_scratch_;
  DenseIdMap<Expired> expired_;
  // Receiver-side dedup, one generation pair per broker: a broker crash
  // clears that broker's entries alone. Copy ids are globally unique and
  // target exactly one receiver, so partitioning by receiver is
  // behaviour-preserving when no one ever crashes.
  std::vector<DenseIdSet> seen_copies_;
  std::vector<DenseIdSet> prev_seen_copies_;
  // Directed-link peer liveness (sized only when peer_death is on).
  std::vector<PeerState> peer_;
  // Scratch for fail-fast sweeps (collect-then-act over the slot map);
  // capacity persists across sweeps.
  std::vector<SlotHandle> sweep_scratch_;
  // Per-sending-broker copy-id counters (see MakeCopyId).
  std::vector<std::uint64_t> next_copy_seq_;
};

}  // namespace dcrd
