#include "routing/hop_transport.h"

#include <utility>

namespace dcrd {

void HopTransport::SendReliable(NodeId from, LinkId link, Packet packet,
                                int max_tx, SimDuration ack_timeout,
                                std::function<void(bool)> done) {
  DCRD_CHECK(max_tx >= 1);
  const std::uint64_t copy_id = next_copy_id_++;
  Pending pending{from,          link, std::move(packet), max_tx,
                  ack_timeout,   std::move(done), EventHandle{},
                  copy_id,       0,    {}};
  pending.tx_times.reserve(static_cast<std::size_t>(max_tx));
  pending_.emplace(copy_id, std::move(pending));
  TransmitOnce(copy_id);
}

void HopTransport::TransmitOnce(std::uint64_t copy_id) {
  auto it = pending_.find(copy_id);
  DCRD_CHECK(it != pending_.end());
  Pending& pending = it->second;
  DCRD_CHECK(pending.transmissions_left > 0);
  --pending.transmissions_left;
  const int tx_index = pending.transmissions_made++;
  pending.tx_times.push_back(network_.scheduler().now());
  ++stats_.transmissions;
  if (tx_index > 0) ++stats_.retransmissions;

  const NodeId from = pending.from;
  const LinkId link = pending.link;
  const NodeId to = network_.graph().edge(link).OtherEnd(from);
  // The copy sent on the wire is snapshotted here; the lambda owns it so a
  // later SendReliable cannot mutate a packet already in flight.
  const Packet on_wire = pending.packet;
  network_.Transmit(from, link, TrafficClass::kData,
                    [this, copy_id, tx_index, to, from, link, on_wire] {
                      HandleDataArrival(copy_id, tx_index, to, from, link,
                                        on_wire);
                    });
  const SimDuration timeout =
      config_.adaptive_rto
          ? rto_.TimeoutFor(link, pending.ack_timeout, tx_index, copy_id)
          : pending.ack_timeout;
  pending.timer = network_.scheduler().ScheduleAfter(
      timeout, [this, copy_id] { HandleTimeout(copy_id); });
}

void HopTransport::HandleTimeout(std::uint64_t copy_id) {
  auto it = pending_.find(copy_id);
  if (it == pending_.end()) return;  // ACK won the race
  Pending& pending = it->second;
  if (pending.transmissions_left > 0) {
    TransmitOnce(copy_id);
    return;
  }
  // Budget exhausted. A badly late ACK may still straggle home — leave a
  // tombstone so it can feed the RTO estimator and have the copy's
  // retransmissions classified as spurious instead of silently dropping
  // the accounting on the floor.
  expired_.emplace(copy_id,
                   Expired{pending.link, pending.transmissions_made,
                           std::move(pending.tx_times)});
  auto done = std::move(pending.done);
  pending_.erase(it);
  if (done) done(false);
}

void HopTransport::HandleDataArrival(std::uint64_t copy_id, int tx_index,
                                     NodeId at, NodeId from, LinkId link,
                                     const Packet& packet) {
  // Always ACK — the sender may have missed an earlier ACK. The ACK names
  // the transmission it answers, which disambiguates RTT samples and lets
  // the sender recognise spurious retransmissions.
  network_.Transmit(at, link, TrafficClass::kAck, [this, copy_id, tx_index] {
    HandleAckArrival(copy_id, tx_index);
  });
  // Hand to the protocol only on first sight of this copy. Insert into the
  // current generation even when the previous one already knows the copy,
  // so repeat stragglers keep their suppression entry alive across
  // rotations.
  const bool in_prev = prev_seen_copies_.count(copy_id) != 0;
  const bool handed_up = seen_copies_.insert(copy_id).second && !in_prev;
  if (config_.observer != nullptr) {
    config_.observer->OnCopyArrival(copy_id, at, from, packet, handed_up);
  }
  if (!handed_up) return;
  on_arrival_(at, packet, from);
}

void HopTransport::HandleAckArrival(std::uint64_t copy_id, int tx_index) {
  auto it = pending_.find(copy_id);
  if (it == pending_.end()) {
    // Not in flight any more: a duplicate ACK, or the first ACK of a copy
    // whose budget already expired. The latter still carries information —
    // the hop was alive, just slower than m timeouts.
    const auto expired_it = expired_.find(copy_id);
    if (expired_it == expired_.end()) return;
    const Expired& expired = expired_it->second;
    rto_.OnSample(expired.link,
                  network_.scheduler().now() -
                      expired.tx_times[static_cast<std::size_t>(tx_index)]);
    if (expired.transmissions_made - 1 > tx_index) {
      stats_.spurious_retransmissions += static_cast<std::uint64_t>(
          expired.transmissions_made - 1 - tx_index);
    }
    expired_.erase(expired_it);  // later ACKs of this copy are duplicates
    return;
  }
  Pending& pending = it->second;
  // Unambiguous round-trip sample: this ACK answers transmission tx_index.
  rto_.OnSample(pending.link, network_.scheduler().now() -
                                  pending.tx_times[static_cast<std::size_t>(
                                      tx_index)]);
  // Every transmission after tx_index happened although the hop was alive
  // and this ACK was already on its way — those were spurious.
  if (pending.transmissions_made - 1 > tx_index) {
    stats_.spurious_retransmissions +=
        static_cast<std::uint64_t>(pending.transmissions_made - 1 - tx_index);
  }
  network_.scheduler().Cancel(pending.timer);
  auto done = std::move(pending.done);
  pending_.erase(it);
  if (done) done(true);
}

}  // namespace dcrd
