#include "routing/hop_transport.h"

#include <utility>

namespace dcrd {

void HopTransport::SendReliable(NodeId from, LinkId link, Packet packet,
                                int max_tx, SimDuration ack_timeout,
                                std::function<void(bool)> done) {
  DCRD_CHECK(max_tx >= 1);
  const std::uint64_t copy_id = next_copy_id_++;
  pending_.emplace(copy_id, Pending{from, link, std::move(packet), max_tx,
                                    ack_timeout, std::move(done),
                                    EventHandle{}});
  TransmitOnce(copy_id);
}

void HopTransport::TransmitOnce(std::uint64_t copy_id) {
  auto it = pending_.find(copy_id);
  DCRD_CHECK(it != pending_.end());
  Pending& pending = it->second;
  DCRD_CHECK(pending.transmissions_left > 0);
  --pending.transmissions_left;

  const NodeId from = pending.from;
  const LinkId link = pending.link;
  const NodeId to = network_.graph().edge(link).OtherEnd(from);
  // The copy sent on the wire is snapshotted here; the lambda owns it so a
  // later SendReliable cannot mutate a packet already in flight.
  const Packet on_wire = pending.packet;
  network_.Transmit(from, link, TrafficClass::kData,
                    [this, copy_id, to, from, link, on_wire] {
                      HandleDataArrival(copy_id, to, from, link, on_wire);
                    });
  pending.timer = network_.scheduler().ScheduleAfter(
      pending.ack_timeout, [this, copy_id] { HandleTimeout(copy_id); });
}

void HopTransport::HandleTimeout(std::uint64_t copy_id) {
  auto it = pending_.find(copy_id);
  if (it == pending_.end()) return;  // ACK won the race
  Pending& pending = it->second;
  if (pending.transmissions_left > 0) {
    TransmitOnce(copy_id);
    return;
  }
  auto done = std::move(pending.done);
  pending_.erase(it);
  if (done) done(false);
}

void HopTransport::HandleDataArrival(std::uint64_t copy_id, NodeId at,
                                     NodeId from, LinkId link,
                                     const Packet& packet) {
  // Always ACK — the sender may have missed an earlier ACK.
  network_.Transmit(at, link, TrafficClass::kAck,
                    [this, copy_id] { HandleAckArrival(copy_id); });
  // Hand to the protocol only on first sight of this copy.
  if (!seen_copies_.insert(copy_id).second) return;
  on_arrival_(at, packet, from);
}

void HopTransport::HandleAckArrival(std::uint64_t copy_id) {
  auto it = pending_.find(copy_id);
  if (it == pending_.end()) return;  // duplicate ACK or already timed out
  network_.scheduler().Cancel(it->second.timer);
  auto done = std::move(it->second.done);
  pending_.erase(it);
  if (done) done(true);
}

}  // namespace dcrd
