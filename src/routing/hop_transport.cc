#include "routing/hop_transport.h"

#include <algorithm>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"

namespace dcrd {

void HopTransport::SendReliable(NodeId from, LinkId link, Packet packet,
                                int max_tx, SimDuration ack_timeout,
                                DoneCallback done) {
  DCRD_CHECK(max_tx >= 1);
  DCRD_CHECK(max_tx <= kMaxTransmissionBudget)
      << "transmission budget " << max_tx << " exceeds the compile-time cap "
      << kMaxTransmissionBudget;
  const SlotHandle slot = pending_.Acquire();
  Pending& pending = *pending_.Get(slot);
  pending.from = from;
  pending.link = link;
  // Move-assignment; the slot's previous packet buffers are released into
  // `packet`'s husk, the slab keeps no stale heap state.
  pending.packet = std::move(packet);
  pending.transmissions_left = max_tx;
  pending.ack_timeout = ack_timeout;
  pending.done = std::move(done);
  pending.timer = EventHandle{};
  pending.copy_id = MakeCopyId(from);
  pending.transmissions_made = 0;
  if (config_.recorder != nullptr) {
    config_.recorder->Record(TraceEventKind::kEnqueue,
                             pending.packet.message().id.value,
                             pending.copy_id, from,
                             network_.graph().edge(link).OtherEnd(from), link,
                             0, static_cast<std::uint16_t>(max_tx));
  }
  if (!PeerAlive(from, link)) {
    // The far end is known dead: fail without burning a single
    // transmission so the protocol reroutes immediately. Routed through
    // the ordinary budget-exhaustion path (zero transmissions made) so
    // done() still fires from a scheduler event, never re-entrantly.
    pending.transmissions_left = 0;
    pending.timer = network_.scheduler().ScheduleAfter(
        SimDuration::Zero(), [this, slot] { HandleTimeout(slot); });
    return;
  }
  TransmitOnce(slot, /*in_timer_event=*/false);
}

void HopTransport::TransmitOnce(SlotHandle pending_slot, bool in_timer_event) {
  Pending* pending = pending_.Get(pending_slot);
  DCRD_CHECK(pending != nullptr);
  DCRD_CHECK(pending->transmissions_left > 0);
  --pending->transmissions_left;
  const int tx_index = pending->transmissions_made++;
  pending->tx_times[static_cast<std::size_t>(tx_index)] =
      network_.scheduler().now();
  ++stats_.transmissions;
  if (tx_index > 0) ++stats_.retransmissions;

  const std::uint64_t copy_id = pending->copy_id;
  const std::uint64_t packet_id = pending->packet.message().id.value;
  const NodeId from = pending->from;
  const LinkId link = pending->link;
  const NodeId to = network_.graph().edge(link).OtherEnd(from);
  if (config_.recorder != nullptr) {
    config_.recorder->Record(tx_index == 0 ? TraceEventKind::kHopSend
                                           : TraceEventKind::kRetransmit,
                             packet_id, copy_id, from, to, link, 0,
                             static_cast<std::uint16_t>(tx_index));
  }
  const TraceContext trace{packet_id, copy_id};
  const Resolution res =
      network_.ResolveSend(from, link, TrafficClass::kData, trace);
  if (res.delivered) {
    if (network_.IsLocalNode(to)) {
      // The copy sent on the wire is snapshotted into the wire slab; the
      // slab owns it so a later SendReliable cannot mutate a packet already
      // in flight, and the callback capture stays two words.
      const SlotHandle wire_slot = wire_.Acquire();
      WireCopy& wire = *wire_.Get(wire_slot);
      wire.packet = pending->packet;  // copy-assign: reuses buffer capacity
      wire.copy_id = copy_id;
      wire.tx_index = tx_index;
      wire.to = to;
      wire.from = from;
      wire.link = link;
      network_.scheduler().ScheduleKeyed(
          res.at, res.k1, res.k2,
          [this, wire_slot] { HandleDataArrival(wire_slot); });
    } else {
      // Receiver owned by another shard: the snapshot travels as an
      // exchange message instead of a wire slot.
      XMsg& msg = network_.ExportTo(to);
      msg.kind = XMsgKind::kData;
      msg.at = res.at.micros();
      msg.k1 = res.k1;
      msg.k2 = res.k2;
      msg.to = to;
      msg.from = from;
      msg.link = link;
      msg.copy_id = copy_id;
      msg.tx_index = tx_index;
      msg.packet = pending->packet;  // copy-assign into pooled storage
    }
    // The receiver will ACK the copy the instant it lands; that ACK's fate
    // is already decidable here (pure schedules + the copy's content key),
    // so resolve it now and schedule HandleAckArrival locally — the whole
    // round trip without anything crossing back over the exchange.
    const std::uint64_t ack_key =
        (copy_id << 4) | static_cast<std::uint64_t>(tx_index);
    const Resolution ack =
        network_.ResolveAckAt(to, link, res.at, ack_key, trace);
    if (ack.delivered) {
      network_.scheduler().ScheduleKeyed(
          ack.at, ack.k1, ack.k2, [this, pending_slot, copy_id, tx_index] {
            HandleAckArrival(pending_slot, copy_id, tx_index);
          });
    }
  }
  const SimDuration timeout =
      config_.adaptive_rto
          ? rto_.TimeoutFor(DirectedIndex(from, link), pending->ack_timeout,
                            tx_index, copy_id)
          : pending->ack_timeout;
  if (config_.recorder != nullptr) {
    // kTimerArmed repurposes `peer` to carry the armed timeout in
    // microseconds (the real peer is derivable from node+link). Clamp below
    // the kNoId sentinel; sim timeouts are far under 71 minutes in practice.
    const std::int64_t timeout_us = timeout.micros();
    const std::uint32_t timeout_field =
        timeout_us < 0 ? 0u
        : timeout_us >= static_cast<std::int64_t>(TraceRecord::kNoId)
            ? TraceRecord::kNoId - 1
            : static_cast<std::uint32_t>(timeout_us);
    config_.recorder->Record(TraceEventKind::kTimerArmed, packet_id, copy_id,
                             from, NodeId(timeout_field), link,
                             config_.adaptive_rto ? 1 : 0,
                             static_cast<std::uint16_t>(tx_index));
  }
  // Retransmissions ride the scheduler's re-arm path: the timeout action
  // stays in its slab slot for the whole m-transmission chain.
  pending->timer =
      in_timer_event
          ? network_.scheduler().RearmCurrentAfter(timeout)
          : network_.scheduler().ScheduleAfter(timeout, [this, pending_slot] {
              HandleTimeout(pending_slot);
            });
}

void HopTransport::HandleTimeout(SlotHandle pending_slot) {
  Pending* pending = pending_.Get(pending_slot);
  if (pending == nullptr) return;  // ACK won the race
  if (pending->transmissions_left > 0) {
    TransmitOnce(pending_slot, /*in_timer_event=*/true);
    return;
  }
  // Budget exhausted. A badly late ACK may still straggle home — leave a
  // tombstone so it can feed the RTO estimator and have the copy's
  // retransmissions classified as spurious instead of silently dropping
  // the accounting on the floor.
  Expired& expired = *expired_.TryEmplace(pending->copy_id).first;
  expired.from = pending->from;
  expired.link = pending->link;
  expired.transmissions_made = pending->transmissions_made;
  expired.tx_times = pending->tx_times;
  if (config_.recorder != nullptr) {
    config_.recorder->Record(
        TraceEventKind::kBudgetExhausted, pending->packet.message().id.value,
        pending->copy_id, pending->from,
        network_.graph().edge(pending->link).OtherEnd(pending->from),
        pending->link, 0,
        static_cast<std::uint16_t>(pending->transmissions_made));
  }
  const NodeId from = pending->from;
  const LinkId link = pending->link;
  const SimDuration seed = pending->ack_timeout;
  const int made = pending->transmissions_made;
  DoneCallback done = std::move(pending->done);
  // Release before invoking: `done` may start further sends that reuse the
  // slot or grow the slab.
  pending_.Release(pending_slot);
  // Count the silent budget toward peer-death detection *before* invoking
  // done, so a reroute triggered by this give-up already sees the link
  // marked dead. Fast-failed copies (zero transmissions) are not new
  // evidence of silence.
  if (config_.peer_death && made > 0) NoteHopFailure(from, link, seed);
  if (done) done(false);
}

void HopTransport::HandleDataArrival(SlotHandle wire_slot) {
  WireCopy* wire = wire_.Get(wire_slot);
  DCRD_CHECK(wire != nullptr);
  const std::uint64_t copy_id = wire->copy_id;
  const NodeId at = wire->to;
  const NodeId from = wire->from;
  const LinkId link = wire->link;
  // Park the payload in the scratch slot and recycle the wire slot before
  // any handler runs: the arrival handler may send onward, and slab growth
  // would invalidate `wire`. Swapping circulates buffer capacity between
  // scratch and slab instead of allocating.
  std::swap(arrival_scratch_, wire->packet);
  wire_.Release(wire_slot);
  const Packet& packet = arrival_scratch_;

  // The receiver's unconditional ACK — "always ACK, the sender may have
  // missed an earlier one" — was already resolved and scheduled by the
  // sender at transmission time (see TransmitOnce): its outcome depends
  // only on schedules and the copy's content key, never on receiver state,
  // so nothing needs to be emitted here.
  // Hand to the protocol only on first sight of this copy. Insert into the
  // current generation even when the previous one already knows the copy,
  // so repeat stragglers keep their suppression entry alive across
  // rotations.
  const bool in_prev = prev_seen_copies_[at.underlying()].Contains(copy_id);
  const bool handed_up =
      seen_copies_[at.underlying()].Insert(copy_id) && !in_prev;
  if (config_.observer != nullptr) {
    config_.observer->OnCopyArrival(copy_id, at, from, packet, handed_up);
  }
  if (!handed_up) {
    if (config_.recorder != nullptr) {
      config_.recorder->Record(TraceEventKind::kDedupSuppress,
                               packet.message().id.value, copy_id, at, from,
                               link);
    }
    return;
  }
  on_arrival_(at, packet, from);
}

void HopTransport::HandleAckArrival(SlotHandle pending_slot,
                                    std::uint64_t copy_id, int tx_index) {
  Pending* pending = pending_.Get(pending_slot);
  // Generation check doubles as the identity check: a live slot reused by a
  // later copy has a new generation, so a stale ACK cannot match it.
  if (pending == nullptr || pending->copy_id != copy_id) {
    // Not in flight any more: a duplicate ACK, or the first ACK of a copy
    // whose budget already expired. The latter still carries information —
    // the hop was alive, just slower than m timeouts.
    const Expired* expired = expired_.Find(copy_id);
    if (expired == nullptr) return;
    const SimDuration rtt =
        network_.scheduler().now() -
        expired->tx_times[static_cast<std::size_t>(tx_index)];
    rto_.OnSample(DirectedIndex(expired->from, expired->link), rtt);
    if (config_.rtt_histogram != nullptr) {
      config_.rtt_histogram->Record(rtt.micros());
    }
    if (config_.recorder != nullptr) {
      // aux8=1: the ACK outlived its copy's budget (counts as an RTT sample
      // but closed nothing).
      config_.recorder->Record(
          TraceEventKind::kAck, TraceRecord::kNoPacket, copy_id, NodeId(),
          NodeId(), expired->link, 1, static_cast<std::uint16_t>(tx_index));
    }
    if (expired->transmissions_made - 1 > tx_index) {
      stats_.spurious_retransmissions += static_cast<std::uint64_t>(
          expired->transmissions_made - 1 - tx_index);
    }
    expired_.Erase(copy_id);  // later ACKs of this copy are duplicates
    return;
  }
  // Unambiguous round-trip sample: this ACK answers transmission tx_index.
  const SimDuration rtt =
      network_.scheduler().now() -
      pending->tx_times[static_cast<std::size_t>(tx_index)];
  rto_.OnSample(DirectedIndex(pending->from, pending->link), rtt);
  if (config_.rtt_histogram != nullptr) {
    config_.rtt_histogram->Record(rtt.micros());
  }
  if (config_.recorder != nullptr) {
    config_.recorder->Record(
        TraceEventKind::kAck, pending->packet.message().id.value, copy_id,
        pending->from,
        network_.graph().edge(pending->link).OtherEnd(pending->from),
        pending->link, 0, static_cast<std::uint16_t>(tx_index));
  }
  // Every transmission after tx_index happened although the hop was alive
  // and this ACK was already on its way — those were spurious.
  if (pending->transmissions_made - 1 > tx_index) {
    stats_.spurious_retransmissions += static_cast<std::uint64_t>(
        pending->transmissions_made - 1 - tx_index);
  }
  network_.scheduler().Cancel(pending->timer);
  const NodeId from = pending->from;
  const LinkId link = pending->link;
  DoneCallback done = std::move(pending->done);
  pending_.Release(pending_slot);
  if (config_.peer_death) NoteHopSuccess(from, link);
  if (done) done(true);
}

void HopTransport::AcceptRemoteData(XMsg& msg) {
  // Same staging as a local send's snapshot, minus the sender-side state
  // (that stayed on the origin shard, where the precomputed ACK will find
  // it). Copy-assignment circulates buffer capacity between the exchange
  // slot and the wire slab — no allocation in steady state.
  const SlotHandle wire_slot = wire_.Acquire();
  WireCopy& wire = *wire_.Get(wire_slot);
  wire.packet = msg.packet;
  wire.copy_id = msg.copy_id;
  wire.tx_index = msg.tx_index;
  wire.to = msg.to;
  wire.from = msg.from;
  wire.link = msg.link;
  network_.scheduler().ScheduleKeyed(
      SimTime::FromMicros(msg.at), msg.k1, msg.k2,
      [this, wire_slot] { HandleDataArrival(wire_slot); });
}

std::size_t HopTransport::OnBrokerCrash(NodeId node) {
  // 1. The crashed broker's retransmission state dies: release its pending
  // copies without invoking done — the protocol layer drops the matching
  // episodes in the same instant, so nothing waits on these. Timers are
  // cancelled; a handle that somehow fired anyway goes stale on Release.
  sweep_scratch_.clear();
  pending_.ForEachLiveHandle([&](SlotHandle handle) {
    const Pending* pending = pending_.Get(handle);
    if (pending != nullptr && pending->from == node) {
      sweep_scratch_.push_back(handle);
    }
  });
  std::size_t killed = 0;
  for (const SlotHandle handle : sweep_scratch_) {
    Pending* pending = pending_.Get(handle);
    if (pending == nullptr) continue;
    network_.scheduler().Cancel(pending->timer);
    pending->done = DoneCallback();  // drop, never invoke
    pending_.Release(handle);
    ++killed;
  }
  stats_.crash_copies_killed += killed;
  // 2. Duplicate-suppression memory is volatile: void exactly this
  // broker's generations. A retransmission of a copy it ACKed pre-crash
  // will be handed up a second time after restart — legal, and budgeted
  // for by the crash-aware invariant checker. (Its ACK tombstones become
  // unreachable — copy ids are never reused — and age out with the next
  // epoch rotation.)
  seen_copies_[node.underlying()].clear();
  prev_seen_copies_[node.underlying()].clear();
  // 3. Its own peer-liveness beliefs and probe loops are volatile too.
  if (!peer_.empty()) {
    for (const Neighbor& neighbor : network_.graph().neighbors(node)) {
      PeerState& state = peer_[DirectedIndex(node, neighbor.link)];
      network_.scheduler().Cancel(state.probe_timer);
      state.probe_timer = EventHandle{};
      state.dead = false;
      state.consecutive_failures = 0;
      state.probe_attempts = 0;
      ++state.round;
    }
  }
  return killed;
}

void HopTransport::NoteHopFailure(NodeId from, LinkId link,
                                  SimDuration seed) {
  PeerState& state = peer_[DirectedIndex(from, link)];
  if (state.dead) return;  // probes own recovery from here
  if (++state.consecutive_failures < config_.peer_death_threshold) return;
  DeclarePeerDead(from, link, seed);
}

void HopTransport::NoteHopSuccess(NodeId from, LinkId link) {
  PeerState& state = peer_[DirectedIndex(from, link)];
  state.consecutive_failures = 0;
  if (!state.dead) return;
  // An answer (data-path ACK or probe reply) revives the link.
  state.dead = false;
  ++state.round;  // stale probe timers for the dead period go inert
  network_.scheduler().Cancel(state.probe_timer);
  state.probe_timer = EventHandle{};
  ++stats_.peer_revivals;
  if (config_.recorder != nullptr) {
    config_.recorder->Record(
        TraceEventKind::kPeerAlive, TraceRecord::kNoPacket, 0, from,
        network_.graph().edge(link).OtherEnd(from), link, 0,
        static_cast<std::uint16_t>(state.probe_attempts));
  }
  state.probe_attempts = 0;
}

void HopTransport::DeclarePeerDead(NodeId from, LinkId link,
                                   SimDuration seed) {
  PeerState& state = peer_[DirectedIndex(from, link)];
  state.dead = true;
  state.probe_attempts = 0;
  ++state.round;
  // Probe cadence grows from the link's own RTO estimate (adaptive) or the
  // protocol's ACK timeout (fixed) — the same silence window that tripped
  // the detection.
  state.probe_base =
      config_.adaptive_rto ? rto_.Rto(DirectedIndex(from, link), seed) : seed;
  if (state.probe_base <= SimDuration::Zero()) {
    state.probe_base = SimDuration::Millis(1);
  }
  ++stats_.peer_deaths;
  const std::size_t failed = FailFastPending(from, link);
  if (config_.recorder != nullptr) {
    config_.recorder->Record(
        TraceEventKind::kPeerDead, TraceRecord::kNoPacket, 0, from,
        network_.graph().edge(link).OtherEnd(from), link, 0,
        static_cast<std::uint16_t>(failed));
  }
  ScheduleProbe(from, link, /*rearm=*/false);
}

std::size_t HopTransport::FailFastPending(NodeId from, LinkId link) {
  sweep_scratch_.clear();
  pending_.ForEachLiveHandle([&](SlotHandle handle) {
    const Pending* pending = pending_.Get(handle);
    if (pending != nullptr && pending->from == from &&
        pending->link == link) {
      sweep_scratch_.push_back(handle);
    }
  });
  // Slot order reflects the whole transport's allocation history, which
  // differs between shard counts (a shard's map only ever saw its local
  // brokers' traffic). The done() callbacks below reroute — assigning new
  // copy ids and RTO jitter in invocation order — so sweep in copy-id
  // order, which is identical in every partition, to keep N-shard runs
  // bit-identical to 1-shard runs.
  std::sort(sweep_scratch_.begin(), sweep_scratch_.end(),
            [this](SlotHandle a, SlotHandle b) {
              return pending_.Get(a)->copy_id < pending_.Get(b)->copy_id;
            });
  // A done() below may re-enter SendReliable (reroute) and mutate the slot
  // map; handles collected above that get recycled meanwhile go stale and
  // are skipped. The re-entrant send sees the link already dead, so it
  // takes the zero-transmission fast-fail path, never this sweep again.
  std::size_t failed = 0;
  for (const SlotHandle handle : sweep_scratch_) {
    Pending* pending = pending_.Get(handle);
    if (pending == nullptr) continue;
    network_.scheduler().Cancel(pending->timer);
    if (config_.recorder != nullptr) {
      config_.recorder->Record(
          TraceEventKind::kBudgetExhausted,
          pending->packet.message().id.value, pending->copy_id,
          pending->from, network_.graph().edge(link).OtherEnd(from), link, 1,
          static_cast<std::uint16_t>(pending->transmissions_made));
    }
    DoneCallback done = std::move(pending->done);
    pending_.Release(handle);
    ++failed;
    if (done) done(false);
  }
  return failed;
}

void HopTransport::ScheduleProbe(NodeId from, LinkId link, bool rearm) {
  const std::size_t didx = DirectedIndex(from, link);
  PeerState& state = peer_[didx];
  const std::uint32_t round = state.round;
  // Whole dead periods re-arm one probe action in place; a fresh slot is
  // only taken when a new death starts a chain.
  state.probe_timer =
      rearm ? network_.scheduler().RearmCurrentAfter(ProbeInterval(didx, state))
            : network_.scheduler().ScheduleAfter(
                  ProbeInterval(didx, state),
                  [this, from, link, round] { SendProbe(from, link, round); });
}

void HopTransport::SendProbe(NodeId from, LinkId link, std::uint32_t round) {
  PeerState& state = peer_[DirectedIndex(from, link)];
  // ABA guard: a revive, crash reset, or newer death bumped the round and
  // this timer is stale.
  if (!state.dead || state.round != round) return;
  ++state.probe_attempts;
  ++stats_.peer_probes;
  // Control-class echo: the probe reaching the peer triggers a reply; the
  // reply reaching the prober revives the link. Either leg dying in a
  // crashed/failed hop simply leaves the timer loop running. The echo
  // round trip is shard-safe — the peer may live on another shard.
  network_.TransmitEcho(from, link, [this, from, link, round] {
    PeerState& s = peer_[DirectedIndex(from, link)];
    if (s.dead && s.round == round) NoteHopSuccess(from, link);
  });
  ScheduleProbe(from, link, /*rearm=*/true);
}

void HopTransport::SampleBrokerHealth(std::vector<BrokerHealth>& out) const {
  pending_.ForEachLiveHandle([&](SlotHandle handle) {
    const Pending* pending = pending_.Get(handle);
    const std::size_t broker = pending->from.underlying();
    if (broker < out.size()) ++out[broker].pending_copies;
  });
  const std::size_t nodes = std::min(out.size(), seen_copies_.size());
  for (std::size_t node = 0; node < nodes; ++node) {
    out[node].dedup_entries +=
        seen_copies_[node].size() + prev_seen_copies_[node].size();
  }
  if (config_.adaptive_rto) {
    const Graph& graph = network_.graph();
    for (std::size_t e = 0; e < graph.edge_count(); ++e) {
      const LinkId link(static_cast<LinkId::underlying_type>(e));
      const EdgeSpec& edge = graph.edge(link);
      for (int dir = 0; dir < 2; ++dir) {
        const std::size_t didx = e * 2 + static_cast<std::size_t>(dir);
        // Unfed estimators report 0 (never the seed): a broker whose links
        // live on another shard then contributes nothing to the sum-merge.
        if (!rto_.HasSample(didx)) continue;
        const NodeId from = dir == 0 ? edge.a : edge.b;
        if (from.underlying() >= out.size()) continue;
        const std::uint64_t rto_us = static_cast<std::uint64_t>(
            rto_.Rto(didx, SimDuration::Micros(0)).micros());
        std::uint64_t& slot = out[from.underlying()].rto_us;
        if (rto_us > slot) slot = rto_us;
      }
    }
  }
}

SimDuration HopTransport::ProbeInterval(std::size_t didx,
                                        const PeerState& state) const {
  const int shift = state.probe_attempts < 6 ? state.probe_attempts : 6;
  double us = static_cast<double>(state.probe_base.micros()) *
              static_cast<double>(1 << shift);
  const double cap = static_cast<double>(config_.probe_max_interval.micros());
  if (us > cap) us = cap;
  // Deterministic jitter keyed on (directed link, attempt): reproducible,
  // yet concurrent probers never fire in lock-step.
  std::uint64_t s = (didx + 1) * 0x9E3779B97F4A7C15ULL;
  s ^= 0xC2B2AE3D27D4EB4FULL *
       (static_cast<std::uint64_t>(state.probe_attempts) + 1);
  const double unit =
      static_cast<double>(SplitMix64(s) >> 11) * 0x1.0p-53;  // [0, 1)
  us *= 1.0 + config_.probe_jitter * (2.0 * unit - 1.0);
  if (us < 1.0) us = 1.0;
  return SimDuration::Micros(static_cast<std::int64_t>(us));
}

}  // namespace dcrd
