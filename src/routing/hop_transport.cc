#include "routing/hop_transport.h"

#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"

namespace dcrd {

void HopTransport::SendReliable(NodeId from, LinkId link, Packet packet,
                                int max_tx, SimDuration ack_timeout,
                                DoneCallback done) {
  DCRD_CHECK(max_tx >= 1);
  DCRD_CHECK(max_tx <= kMaxTransmissionBudget)
      << "transmission budget " << max_tx << " exceeds the compile-time cap "
      << kMaxTransmissionBudget;
  const SlotHandle slot = pending_.Acquire();
  Pending& pending = *pending_.Get(slot);
  pending.from = from;
  pending.link = link;
  // Move-assignment; the slot's previous packet buffers are released into
  // `packet`'s husk, the slab keeps no stale heap state.
  pending.packet = std::move(packet);
  pending.transmissions_left = max_tx;
  pending.ack_timeout = ack_timeout;
  pending.done = std::move(done);
  pending.timer = EventHandle{};
  pending.copy_id = next_copy_id_++;
  pending.transmissions_made = 0;
  if (config_.recorder != nullptr) {
    config_.recorder->Record(TraceEventKind::kEnqueue,
                             pending.packet.message().id.value,
                             pending.copy_id, from,
                             network_.graph().edge(link).OtherEnd(from), link,
                             0, static_cast<std::uint16_t>(max_tx));
  }
  TransmitOnce(slot);
}

void HopTransport::TransmitOnce(SlotHandle pending_slot) {
  Pending* pending = pending_.Get(pending_slot);
  DCRD_CHECK(pending != nullptr);
  DCRD_CHECK(pending->transmissions_left > 0);
  --pending->transmissions_left;
  const int tx_index = pending->transmissions_made++;
  pending->tx_times[static_cast<std::size_t>(tx_index)] =
      network_.scheduler().now();
  ++stats_.transmissions;
  if (tx_index > 0) ++stats_.retransmissions;

  const std::uint64_t copy_id = pending->copy_id;
  const std::uint64_t packet_id = pending->packet.message().id.value;
  const NodeId from = pending->from;
  const LinkId link = pending->link;
  const NodeId to = network_.graph().edge(link).OtherEnd(from);
  if (config_.recorder != nullptr) {
    config_.recorder->Record(tx_index == 0 ? TraceEventKind::kHopSend
                                           : TraceEventKind::kRetransmit,
                             packet_id, copy_id, from, to, link, 0,
                             static_cast<std::uint16_t>(tx_index));
  }
  // The copy sent on the wire is snapshotted into the wire slab; the slab
  // owns it so a later SendReliable cannot mutate a packet already in
  // flight, and the callback capture stays two words.
  const SlotHandle wire_slot = wire_.Acquire();
  WireCopy& wire = *wire_.Get(wire_slot);
  wire.packet = pending->packet;  // copy-assign: reuses slab buffer capacity
  wire.copy_id = copy_id;
  wire.tx_index = tx_index;
  wire.to = to;
  wire.from = from;
  wire.link = link;
  wire.sender = pending_slot;
  const bool delivered = network_.Transmit(
      from, link, TrafficClass::kData,
      [this, wire_slot] { HandleDataArrival(wire_slot); },
      TraceContext{packet_id, copy_id});
  if (!delivered) {
    // Dropped at the link: nothing will ever consume the snapshot. Recycle
    // the slot now (the sender's own timeout machinery reacts to the loss).
    wire_.Release(wire_slot);
  }
  const SimDuration timeout =
      config_.adaptive_rto
          ? rto_.TimeoutFor(link, pending->ack_timeout, tx_index, copy_id)
          : pending->ack_timeout;
  if (config_.recorder != nullptr) {
    // kTimerArmed repurposes `peer` to carry the armed timeout in
    // microseconds (the real peer is derivable from node+link). Clamp below
    // the kNoId sentinel; sim timeouts are far under 71 minutes in practice.
    const std::int64_t timeout_us = timeout.micros();
    const std::uint32_t timeout_field =
        timeout_us < 0 ? 0u
        : timeout_us >= static_cast<std::int64_t>(TraceRecord::kNoId)
            ? TraceRecord::kNoId - 1
            : static_cast<std::uint32_t>(timeout_us);
    config_.recorder->Record(TraceEventKind::kTimerArmed, packet_id, copy_id,
                             from, NodeId(timeout_field), link,
                             config_.adaptive_rto ? 1 : 0,
                             static_cast<std::uint16_t>(tx_index));
  }
  pending->timer = network_.scheduler().ScheduleAfter(
      timeout, [this, pending_slot] { HandleTimeout(pending_slot); });
}

void HopTransport::HandleTimeout(SlotHandle pending_slot) {
  Pending* pending = pending_.Get(pending_slot);
  if (pending == nullptr) return;  // ACK won the race
  if (pending->transmissions_left > 0) {
    TransmitOnce(pending_slot);
    return;
  }
  // Budget exhausted. A badly late ACK may still straggle home — leave a
  // tombstone so it can feed the RTO estimator and have the copy's
  // retransmissions classified as spurious instead of silently dropping
  // the accounting on the floor.
  Expired& expired = *expired_.TryEmplace(pending->copy_id).first;
  expired.link = pending->link;
  expired.transmissions_made = pending->transmissions_made;
  expired.tx_times = pending->tx_times;
  if (config_.recorder != nullptr) {
    config_.recorder->Record(
        TraceEventKind::kBudgetExhausted, pending->packet.message().id.value,
        pending->copy_id, pending->from,
        network_.graph().edge(pending->link).OtherEnd(pending->from),
        pending->link, 0,
        static_cast<std::uint16_t>(pending->transmissions_made));
  }
  DoneCallback done = std::move(pending->done);
  // Release before invoking: `done` may start further sends that reuse the
  // slot or grow the slab.
  pending_.Release(pending_slot);
  if (done) done(false);
}

void HopTransport::HandleDataArrival(SlotHandle wire_slot) {
  WireCopy* wire = wire_.Get(wire_slot);
  DCRD_CHECK(wire != nullptr);
  const std::uint64_t copy_id = wire->copy_id;
  const int tx_index = wire->tx_index;
  const NodeId at = wire->to;
  const NodeId from = wire->from;
  const LinkId link = wire->link;
  const SlotHandle sender = wire->sender;
  // Park the payload in the scratch slot and recycle the wire slot before
  // any handler runs: the arrival handler may send onward, and slab growth
  // would invalidate `wire`. Swapping circulates buffer capacity between
  // scratch and slab instead of allocating.
  std::swap(arrival_scratch_, wire->packet);
  wire_.Release(wire_slot);
  const Packet& packet = arrival_scratch_;

  // Always ACK — the sender may have missed an earlier ACK. The ACK names
  // the transmission it answers, which disambiguates RTT samples and lets
  // the sender recognise spurious retransmissions.
  network_.Transmit(
      at, link, TrafficClass::kAck,
      [this, sender, copy_id, tx_index] {
        HandleAckArrival(sender, copy_id, tx_index);
      },
      TraceContext{packet.message().id.value, copy_id});
  // Hand to the protocol only on first sight of this copy. Insert into the
  // current generation even when the previous one already knows the copy,
  // so repeat stragglers keep their suppression entry alive across
  // rotations.
  const bool in_prev = prev_seen_copies_.Contains(copy_id);
  const bool handed_up = seen_copies_.Insert(copy_id) && !in_prev;
  if (config_.observer != nullptr) {
    config_.observer->OnCopyArrival(copy_id, at, from, packet, handed_up);
  }
  if (!handed_up) {
    if (config_.recorder != nullptr) {
      config_.recorder->Record(TraceEventKind::kDedupSuppress,
                               packet.message().id.value, copy_id, at, from,
                               link);
    }
    return;
  }
  on_arrival_(at, packet, from);
}

void HopTransport::HandleAckArrival(SlotHandle pending_slot,
                                    std::uint64_t copy_id, int tx_index) {
  Pending* pending = pending_.Get(pending_slot);
  // Generation check doubles as the identity check: a live slot reused by a
  // later copy has a new generation, so a stale ACK cannot match it.
  if (pending == nullptr || pending->copy_id != copy_id) {
    // Not in flight any more: a duplicate ACK, or the first ACK of a copy
    // whose budget already expired. The latter still carries information —
    // the hop was alive, just slower than m timeouts.
    const Expired* expired = expired_.Find(copy_id);
    if (expired == nullptr) return;
    const SimDuration rtt =
        network_.scheduler().now() -
        expired->tx_times[static_cast<std::size_t>(tx_index)];
    rto_.OnSample(expired->link, rtt);
    if (config_.rtt_histogram != nullptr) {
      config_.rtt_histogram->Record(rtt.micros());
    }
    if (config_.recorder != nullptr) {
      // aux8=1: the ACK outlived its copy's budget (counts as an RTT sample
      // but closed nothing).
      config_.recorder->Record(
          TraceEventKind::kAck, TraceRecord::kNoPacket, copy_id, NodeId(),
          NodeId(), expired->link, 1, static_cast<std::uint16_t>(tx_index));
    }
    if (expired->transmissions_made - 1 > tx_index) {
      stats_.spurious_retransmissions += static_cast<std::uint64_t>(
          expired->transmissions_made - 1 - tx_index);
    }
    expired_.Erase(copy_id);  // later ACKs of this copy are duplicates
    return;
  }
  // Unambiguous round-trip sample: this ACK answers transmission tx_index.
  const SimDuration rtt =
      network_.scheduler().now() -
      pending->tx_times[static_cast<std::size_t>(tx_index)];
  rto_.OnSample(pending->link, rtt);
  if (config_.rtt_histogram != nullptr) {
    config_.rtt_histogram->Record(rtt.micros());
  }
  if (config_.recorder != nullptr) {
    config_.recorder->Record(
        TraceEventKind::kAck, pending->packet.message().id.value, copy_id,
        pending->from,
        network_.graph().edge(pending->link).OtherEnd(pending->from),
        pending->link, 0, static_cast<std::uint16_t>(tx_index));
  }
  // Every transmission after tx_index happened although the hop was alive
  // and this ACK was already on its way — those were spurious.
  if (pending->transmissions_made - 1 > tx_index) {
    stats_.spurious_retransmissions += static_cast<std::uint64_t>(
        pending->transmissions_made - 1 - tx_index);
  }
  network_.scheduler().Cancel(pending->timer);
  DoneCallback done = std::move(pending->done);
  pending_.Release(pending_slot);
  if (done) done(true);
}

}  // namespace dcrd
