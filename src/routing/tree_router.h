// Tree-based baselines (paper Section IV-B).
//
//  * Most Reliable Tree (R-Tree): per-publisher tree of shortest-hop-count
//    paths — fewer overlay hops means fewer chances for a 1-second failure
//    to cut the path, hence "most reliable".
//  * Shortest-Delay-Path Tree (D-Tree): per-publisher tree of shortest-delay
//    paths over the monitored delay estimates.
//
// Both are rebuilt only at monitoring epochs and never reroute: a hop that
// stays silent for m transmissions loses the packet for the whole subtree.
#pragma once

#include <vector>

#include "graph/shortest_path.h"
#include "routing/source_routed.h"

namespace dcrd {

enum class TreeKind {
  kShortestHop,    // R-Tree
  kShortestDelay,  // D-Tree
};

class TreeRouter final : public SourceRoutedRouter {
 public:
  TreeRouter(RouterContext context, TreeKind kind)
      : SourceRoutedRouter(context), kind_(kind) {}

  [[nodiscard]] std::string_view name() const override {
    return kind_ == TreeKind::kShortestHop ? "R-Tree" : "D-Tree";
  }

  // Exposes the current tree for a topic (tests assert tree shape).
  [[nodiscard]] const PathTree& TreeFor(TopicId topic) const {
    return trees_[topic.underlying()];
  }

 protected:
  void RebuildRoutes() override;
  std::vector<Route> RoutesFor(const Message& message) override;

 private:
  TreeKind kind_;
  std::vector<PathTree> trees_;  // indexed by topic id
};

}  // namespace dcrd
