#include "routing/multipath_router.h"

#include <unordered_set>

namespace dcrd {

namespace {

// Links shared between `candidate` and the union of already-selected links.
std::size_t OverlapWithSelected(
    const WeightedPath& candidate,
    const std::unordered_set<LinkId::underlying_type>& selected_links) {
  std::size_t shared = 0;
  for (LinkId link : candidate.links) {
    if (selected_links.contains(link.underlying())) ++shared;
  }
  return shared;
}

}  // namespace

void MultipathRouter::RebuildRoutes() {
  const SubscriptionTable& subs = *context().subscriptions;
  const LinkDelayFn monitored = [this](LinkId link) {
    return view().alpha(link);
  };
  paths_.assign(subs.topic_count(), {});
  for (std::size_t t = 0; t < subs.topic_count(); ++t) {
    const TopicId topic(static_cast<TopicId::underlying_type>(t));
    const NodeId publisher = subs.publisher(topic);
    for (const Subscription& sub : subs.subscriptions(topic)) {
      const auto candidates = YenKShortestPaths(
          graph(), publisher, sub.subscriber, kCandidatePaths, monitored);
      std::vector<std::vector<NodeId>> selected;
      std::vector<bool> used(candidates.size(), false);
      std::unordered_set<LinkId::underlying_type> selected_links;
      // Greedy diversity selection: primary first, then repeatedly the
      // least-overlapping remaining candidate (Yen order breaks ties
      // toward lower delay).
      while (selected.size() < path_count_) {
        std::size_t best = candidates.size();
        std::size_t best_overlap = SIZE_MAX;
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          if (used[i]) continue;
          const std::size_t overlap = selected.empty()
                                          ? 0
                                          : OverlapWithSelected(
                                                candidates[i], selected_links);
          if (selected.empty()) {
            best = i;  // primary = Yen's first (shortest delay)
            break;
          }
          if (overlap < best_overlap) {
            best_overlap = overlap;
            best = i;
          }
        }
        if (best == candidates.size()) break;  // graph exhausted
        used[best] = true;
        for (LinkId link : candidates[best].links) {
          selected_links.insert(link.underlying());
        }
        selected.push_back(candidates[best].nodes);
      }
      paths_[t].emplace(sub.subscriber, std::move(selected));
    }
  }
}

std::vector<SourceRoutedRouter::Route> MultipathRouter::RoutesFor(
    const Message& message) {
  const SubscriptionTable& subs = *context().subscriptions;
  const auto& topic_paths = paths_[message.topic.underlying()];
  std::vector<Route> routes;
  for (const Subscription& sub : subs.subscriptions(message.topic)) {
    const auto it = topic_paths.find(sub.subscriber);
    // Joined after the last rebuild: no path set yet, reachable from the
    // next epoch on.
    if (it == topic_paths.end()) continue;
    const auto& selected = it->second;
    for (std::size_t p = 0; p < selected.size(); ++p) {
      routes.push_back(
          Route{sub.subscriber, selected[p], static_cast<std::uint8_t>(p)});
    }
  }
  return routes;
}

}  // namespace dcrd
