// Shared forwarding engine for the fixed-route baselines.
//
// R-Tree, D-Tree, Multipath and ORACLE all share one behaviour (paper
// Section IV-B): routes are decided up front — per epoch for the trees and
// Multipath, per message for ORACLE — and a packet that loses a hop after m
// transmissions is simply abandoned; none of them reroutes around a failure.
// This base class implements that behaviour once: subclasses only produce
// the explicit route set for a message.
//
// Copies are grouped: subscribers whose routes leave the current broker via
// the same next hop (and the same route tag) share one packet, so the
// "packets sent / subscriber" metric reflects multicast sharing exactly as
// the paper's trees do.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "routing/hop_transport.h"
#include "routing/router.h"

namespace dcrd {

class SourceRoutedRouter : public Router {
 public:
  explicit SourceRoutedRouter(RouterContext context);

  void Rebuild(const MonitoredView& view) final;
  void Publish(const Message& message) final;
  // Replicates the route cache on shards that do not own the publisher:
  // NextHop() reads it at every intermediate broker, so a packet crossing a
  // shard boundary must find the same (deterministically recomputed) routes
  // there. No copies are launched and no co-located delivery fires — the
  // owning shard does both.
  void OnRemotePublish(const Message& message) final;
  [[nodiscard]] TransportStats transport_stats() const final {
    return transport_.stats();
  }
  void SampleBrokerHealth(std::vector<BrokerHealth>& out) const final {
    transport_.SampleBrokerHealth(out);
  }
  // The baselines keep no per-broker routing state beyond the transport
  // (routes ride in the packets), so a crash only voids transport state; a
  // restarted broker needs no resync.
  std::size_t OnBrokerCrash(NodeId node) final {
    return transport_.OnBrokerCrash(node);
  }

 protected:
  struct Route {
    NodeId subscriber;
    std::vector<NodeId> nodes;  // publisher..subscriber inclusive
    std::uint8_t tag = 0;       // distinguishes a subscriber's parallel routes
  };

  // Recomputes epoch routing structures from `view()`. Default: nothing
  // (ORACLE plans per message).
  virtual void RebuildRoutes() {}
  // All routes for a freshly published message.
  virtual std::vector<Route> RoutesFor(const Message& message) = 0;

  [[nodiscard]] const MonitoredView& view() const {
    DCRD_CHECK(view_ != nullptr) << "Rebuild() not called yet";
    return *view_;
  }
  [[nodiscard]] const RouterContext& context() const { return context_; }
  [[nodiscard]] const Graph& graph() const { return context_.network->graph(); }

 private:
  struct CachedRoutes {
    SimTime inserted;
    std::vector<Route> routes;
  };

  // Computes and caches RoutesFor(message); shared by Publish (which then
  // launches copies) and OnRemotePublish (which stops here).
  const CachedRoutes& CacheRoutes(const Message& message);
  void OnArrival(NodeId at, const Packet& packet);
  // Next hop for `subscriber` after node `at` on the tagged route of
  // `message`; invalid NodeId when unknown (purged cache / broken route).
  [[nodiscard]] NodeId NextHop(const Message& message, NodeId at,
                               NodeId subscriber, std::uint8_t tag) const;
  void ForwardGroups(NodeId at, const Packet& packet,
                     const std::vector<NodeId>& remaining);
  void PurgeStaleRoutes();

  RouterContext context_;
  const MonitoredView* view_ = nullptr;
  HopTransport transport_;
  std::unordered_map<std::uint64_t, CachedRoutes> route_cache_;
  std::deque<std::uint64_t> cache_order_;
  // Routes older than this are unreachable in practice (deadlines are tens
  // to hundreds of ms); purging keeps multi-hour runs at constant memory.
  SimDuration cache_ttl_ = SimDuration::Seconds(120);
};

}  // namespace dcrd
