#include "routing/tree_router.h"

namespace dcrd {

void TreeRouter::RebuildRoutes() {
  const SubscriptionTable& subs = *context().subscriptions;
  trees_.clear();
  trees_.reserve(subs.topic_count());
  const LinkDelayFn monitored = [this](LinkId link) {
    return view().alpha(link);
  };
  for (std::size_t t = 0; t < subs.topic_count(); ++t) {
    const NodeId publisher =
        subs.publisher(TopicId(static_cast<TopicId::underlying_type>(t)));
    trees_.push_back(kind_ == TreeKind::kShortestHop
                         ? ShortestHopTree(graph(), publisher, monitored)
                         : ShortestDelayTree(graph(), publisher, monitored));
  }
}

std::vector<SourceRoutedRouter::Route> TreeRouter::RoutesFor(
    const Message& message) {
  const SubscriptionTable& subs = *context().subscriptions;
  const PathTree& tree = trees_[message.topic.underlying()];
  std::vector<Route> routes;
  for (const Subscription& sub : subs.subscriptions(message.topic)) {
    if (!tree.Reachable(sub.subscriber)) continue;
    routes.push_back(Route{sub.subscriber, tree.PathTo(sub.subscriber), 0});
  }
  return routes;
}

}  // namespace dcrd
