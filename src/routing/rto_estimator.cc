#include "routing/rto_estimator.h"

#include <algorithm>
#include <cmath>

namespace dcrd {

void RtoEstimator::OnSample(std::size_t directed, SimDuration rtt) {
  const double sample_us = static_cast<double>(rtt.micros());
  const auto [slot, inserted] = state_.TryEmplace(directed);
  State& state = *slot;
  if (inserted) {
    // RFC 6298 initialisation: SRTT = R, RTTVAR = R/2.
    state.srtt_us = sample_us;
    state.rttvar_us = sample_us / 2.0;
  } else {
    state.rttvar_us = (1.0 - config_.rttvar_gain) * state.rttvar_us +
                      config_.rttvar_gain * std::abs(state.srtt_us - sample_us);
    state.srtt_us = (1.0 - config_.srtt_gain) * state.srtt_us +
                    config_.srtt_gain * sample_us;
  }
  ++sample_count_;
}

SimDuration RtoEstimator::Clamp(SimDuration rto) const {
  return std::clamp(rto, config_.min_rto, config_.max_rto);
}

SimDuration RtoEstimator::Rto(std::size_t directed, SimDuration seed) const {
  const State* state = state_.Find(directed);
  if (state == nullptr) return Clamp(seed);
  const double var_term =
      std::max(static_cast<double>(config_.granularity.micros()),
               4.0 * state->rttvar_us);
  return Clamp(SimDuration::Micros(
      static_cast<std::int64_t>(state->srtt_us + var_term + 0.5)));
}

SimDuration RtoEstimator::TimeoutFor(std::size_t directed, SimDuration seed,
                                     int attempt,
                                     std::uint64_t copy_id) const {
  const SimDuration base = Rto(directed, seed);
  // Exponential backoff, saturating well before the shift overflows.
  const int shift = std::min(attempt, 16);
  double timeout_us =
      static_cast<double>(base.micros()) * static_cast<double>(1ULL << shift);
  if (config_.jitter > 0.0) {
    // Deterministic spread in [1, 1+j], a pure hash of (copy, attempt).
    // One-sided on purpose: once RTTVAR has decayed on a steady link the
    // RTO sits barely above SRTT, so a jitter that could *shorten* the
    // timeout would fire just before the ACK and manufacture spurious
    // retransmissions on perfectly healthy links.
    std::uint64_t s = copy_id ^ (0xD6E8FEB86659FD93ULL *
                                 (static_cast<std::uint64_t>(attempt) + 1));
    const double unit = static_cast<double>(SplitMix64(s) >> 11) * 0x1.0p-53;
    timeout_us *= 1.0 + config_.jitter * unit;
  }
  timeout_us = std::min(timeout_us,
                        static_cast<double>(config_.max_rto.micros()));
  return Clamp(SimDuration::Micros(static_cast<std::int64_t>(timeout_us + 0.5)));
}

}  // namespace dcrd
