// Router interface and shared construction context.
//
// A Router implements one delivery protocol for the whole overlay (the
// simulator drives all brokers through one object, but per-broker state is
// kept strictly per-node so every forwarding decision uses only information
// that broker would locally have — the paper's "next-hop decision is based
// on local information only" property is preserved by construction, and the
// ORACLE router is the one deliberate exception).
#pragma once

#include <string_view>

#include "common/sim_time.h"
#include "net/link_monitor.h"
#include "net/overlay_network.h"
#include "pubsub/packet.h"
#include "pubsub/publisher.h"
#include "pubsub/subscriptions.h"
#include "routing/hop_transport.h"

namespace dcrd {

struct RouterContext {
  OverlayNetwork* network = nullptr;
  const SubscriptionTable* subscriptions = nullptr;
  DeliverySink* sink = nullptr;
  // Paper parameter m: transmissions attempted on a link before the node
  // declares the hop failed.
  int max_transmissions = 1;
  // Added on top of the expected ACK return time when arming timeout
  // timers.
  SimDuration ack_slack = SimDuration::Millis(1);
  // Replace the paper's fixed per-send timer with the per-link
  // Jacobson/Karels estimator (see rto_estimator.h). Off by default for
  // figure parity.
  bool adaptive_rto = false;
  RtoConfig rto;
  // Peer-death detection knobs, forwarded to every HopTransport (see
  // hop_transport.h). Off by default for figure parity.
  bool peer_death = false;
  int peer_death_threshold = 2;
  SimDuration probe_max_interval = SimDuration::Seconds(10);
  double probe_jitter = 0.25;
  // Hooked through to every HopTransport; used by the invariant checker.
  TransportObserver* transport_observer = nullptr;
  // Optional observability hooks, forwarded to every HopTransport (and used
  // directly by routers for protocol-level events like reroutes). Both must
  // outlive the router.
  FlightRecorder* recorder = nullptr;
  LogLinearHistogram* hop_rtt_histogram = nullptr;

  // Timeout to arm after transmitting over a link with (estimated) one-way
  // delay `alpha`: data takes alpha, the ACK takes alpha times the
  // network's ack-delay factor (0 in the paper's "senders immediately know"
  // model), plus slack. In adaptive mode this value only seeds the
  // estimator until the link's first real RTT sample.
  [[nodiscard]] SimDuration AckTimeout(SimDuration alpha) const {
    return SimDuration::FromMillisF(
               alpha.millis() * (1.0 + network->ack_delay_factor())) +
           ack_slack;
  }

  // The transport configuration every router passes to its HopTransport.
  [[nodiscard]] HopTransportConfig MakeTransportConfig() const {
    HopTransportConfig config;
    config.adaptive_rto = adaptive_rto;
    config.rto = rto;
    config.peer_death = peer_death;
    config.peer_death_threshold = peer_death_threshold;
    config.probe_max_interval = probe_max_interval;
    config.probe_jitter = probe_jitter;
    config.observer = transport_observer;
    config.recorder = recorder;
    config.rtt_histogram = hop_rtt_histogram;
    return config;
  }
};

// Gossip-resync bookkeeping for restarted brokers (all zero for routers
// with no rederivable routing state; DCRD fills it in).
struct ResyncStats {
  std::uint64_t resyncs_started = 0;
  std::uint64_t resyncs_completed = 0;
  SimDuration total_resync_time = SimDuration::Zero();
  SimDuration max_resync_time = SimDuration::Zero();
};

class Router {
 public:
  virtual ~Router() = default;

  // Installs fresh monitoring estimates; called once before the simulation
  // starts and at every monitoring epoch. Routing structures (trees,
  // multipath route pairs, DCRD sending lists) are rebuilt here and nowhere
  // else — between epochs routers run on stale state, as in the paper.
  virtual void Rebuild(const MonitoredView& view) = 0;

  // Injects a freshly published message at its publisher broker.
  virtual void Publish(const Message& message) = 0;

  // Sharded runs: the publish event replays on every shard, but only the
  // shard owning the publisher calls Publish; the others call this so the
  // router can replicate any *deterministic* publish-time bookkeeping that
  // downstream brokers read (the source-routed baselines cache the route
  // set here — intermediate hops on other shards look it up on arrival).
  // Must not send, deliver, or draw randomness. Default: nothing.
  virtual void OnRemotePublish(const Message& message) { (void)message; }

  [[nodiscard]] virtual std::string_view name() const = 0;

  // Cumulative hop-transport counters (retransmissions, spurious
  // retransmissions, in-flight copies). Routers owning a HopTransport
  // override this; the default is all-zero.
  [[nodiscard]] virtual TransportStats transport_stats() const { return {}; }

  // Protocol-level work still open (e.g. DCRD processing episodes); must be
  // 0 after the scheduler drains — the invariant checker asserts it.
  [[nodiscard]] virtual std::size_t open_episodes() const { return 0; }

  // Accumulates per-broker health (in-flight copies, dedup table sizes,
  // adaptive RTO) into `out`, indexed by broker id and zeroed by the
  // caller. Routers owning a HopTransport delegate to it; the default
  // leaves everything zero. Read-only — the time-series sampler calls this
  // from an observability event.
  virtual void SampleBrokerHealth(std::vector<BrokerHealth>& out) const {
    (void)out;
  }

  // Broker lifecycle (fail-stop crash–recovery; see net/broker_lifecycle.h).
  // OnBrokerCrash: `node` fail-stopped — drop every piece of volatile state
  // it held (transport pendings and dedup, open episodes, caches); returns
  // the number of in-flight copies killed, for the kBrokerDown trace
  // record. OnBrokerRestart: it came back empty — trigger whatever resync
  // the protocol needs before its routing state is trustworthy again.
  // Defaults are no-ops for routers with no per-broker volatile state.
  virtual std::size_t OnBrokerCrash(NodeId node) {
    (void)node;
    return 0;
  }
  virtual void OnBrokerRestart(NodeId node) { (void)node; }
  [[nodiscard]] virtual ResyncStats resync_stats() const { return {}; }
};

}  // namespace dcrd
