// ORACLE baseline (paper Section IV-B, item 3).
//
// "Routing tree with the shortest-delay path avoiding any failures since
// the condition of entire network is known. This oracle (or optimal)
// solution provides the performance upper bound."
//
// At every publish instant the oracle plans, per subscriber, the earliest-
// arrival path in the time-expanded network: a hop may only be entered at
// an instant the ground-truth failure schedule has it up — including
// failures that will only begin while the packet is in flight. The oracle
// is the single component allowed to read the schedule (and its future);
// packet loss Pl is genuinely random and even the oracle cannot dodge it.
#pragma once

#include "routing/source_routed.h"

namespace dcrd {

class OracleRouter final : public SourceRoutedRouter {
 public:
  explicit OracleRouter(RouterContext context)
      : SourceRoutedRouter(context) {}

  [[nodiscard]] std::string_view name() const override { return "ORACLE"; }

 protected:
  std::vector<Route> RoutesFor(const Message& message) override;
};

}  // namespace dcrd
