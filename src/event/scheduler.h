// Deterministic discrete-event scheduler.
//
// The scheduler owns the simulated clock and a priority queue of pending
// events. Events firing at the same instant are delivered in scheduling
// order (a monotonically increasing sequence number breaks ties), which is
// what makes whole-simulation runs bit-reproducible.
//
// Storage layout (the hot part): actions live in a generation-checked slot
// map — a dense slab recycled through a free list — and are InlineAction
// callbacks with fixed inline capture storage, so ScheduleAt/Cancel/Step
// perform zero heap allocations once the slab and heap have grown to the
// simulation's high-water mark. An EventHandle is {slot, generation}:
// cancelling is two array reads and a compare, and a stale handle (the
// event already ran, was cancelled, or its slot now belongs to a newer
// event) is rejected by the generation mismatch — no hash lookup anywhere.
//
// Timers (ACK timeouts, monitoring epochs, failure-schedule ticks) are
// scheduled events that can be cancelled; cancellation is O(1) — the heap
// entry goes stale and is skipped on pop. When stale entries outnumber
// live ones the heap is compacted in place (amortized O(1) per cancel), so
// timer-heavy workloads where most timers are cancelled — the hop ACK
// pattern — never sift dead weight through O(log n) pops.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/inline_function.h"
#include "common/logging.h"
#include "common/sim_time.h"
#include "common/slot_map.h"

namespace dcrd {

// Handle for a scheduled event; used to cancel pending timers. Default
// constructed handles refer to nothing and are safe to cancel.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const { return handle_.valid(); }

 private:
  friend class Scheduler;
  explicit EventHandle(SlotHandle handle) : handle_(handle) {}
  SlotHandle handle_;
};

class Scheduler {
 public:
  // Non-allocating callback: captures beyond the inline budget are compile
  // errors, keeping the event loop heap-free (see inline_function.h).
  using Action = InlineFunction<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t pending_count() const {
    return heap_.size() - tombstones_;
  }
  [[nodiscard]] bool empty() const { return pending_count() == 0; }
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  // Schedules `action` to run at absolute time `at` (must not be in the
  // past). Returns a handle usable with Cancel().
  EventHandle ScheduleAt(SimTime at, Action action);

  // Schedules `action` to run `delay` after the current time.
  EventHandle ScheduleAfter(SimDuration delay, Action action) {
    return ScheduleAt(now_ + delay, std::move(action));
  }

  // Cancels a pending event. Returns true if the event was still pending;
  // false if it already ran, was already cancelled, or the handle is empty.
  bool Cancel(EventHandle handle);

  // Runs events until the queue drains. Returns the number executed.
  std::uint64_t Run();

  // Runs events with timestamp <= deadline; the clock ends at `deadline`
  // even if the queue drained earlier (so periodic processes observe a
  // consistent end-of-simulation time). Returns the number executed.
  std::uint64_t RunUntil(SimTime deadline);

  // Executes at most one event. Returns false if the queue is empty.
  bool Step();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // tie-breaker; scheduling order at equal times
    SlotHandle slot;    // action storage; stale once run or cancelled
    // Ordered as a min-heap on (at, seq) via operator> in the comparator.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Pops stale (cancelled) entries off the heap top.
  void SkipCancelled();
  // Rebuilds the heap without stale entries once they outnumber live ones.
  // Pop order is untouched: entries are strictly ordered by unique
  // (at, seq), and only entries every pop would skip are removed.
  void CompactIfStale();

  SimTime now_ = SimTime::Zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  std::size_t tombstones_ = 0;
  // Min-heap on (at, seq) maintained with std::push_heap/pop_heap; a raw
  // vector so compaction can filter it in place, capacity retained.
  std::vector<Entry> heap_;
  // Action storage. A slot goes back on the free list the moment its event
  // runs or is cancelled; the generation bump makes outstanding EventHandles
  // to it stale.
  SlotMap<Action> actions_;
};

}  // namespace dcrd
