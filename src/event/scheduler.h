// Deterministic discrete-event scheduler.
//
// The scheduler owns the simulated clock and two tiers of pending events.
// Events firing at the same instant are delivered in ascending canonical
// key order. The key (k1, k2) is a pure function of the event's content:
//   k1 = (scheduling-time micros << 20) | origin
//   k2 = a per-origin monotone counter
// where `origin` identifies the entity that created the event (a broker id
// for network arrivals; kEngineOrigin — the maximal value, sorting last —
// for everything scheduled through the plain ScheduleAt/ScheduleAfter
// path). Locally created events therefore keep their scheduling order, as
// before; but because the key does not depend on *global* insertion order,
// an event injected from another engine shard sorts identically whether it
// was created locally (1-shard run) or handed across a shard boundary —
// the property the sharded engine's byte-identity gate rests on.
//
// Tier layout (the hot part): events inside the timer wheel's horizon —
// ~2.4 simulated hours, which covers every RTO retransmit timer,
// peer-death probe and epoch tick the protocols arm — live in a three-level
// hierarchical timer wheel (common/timer_wheel.h): O(1) insert, O(1)
// cancel, and dispatch that walks same-tick bucket lists in place instead
// of paying one O(log n) heap pop per event. The binary
// heap remains as the far-future overflow tier; its entries migrate into
// the wheel as the clock advances. The legacy heap-only backend is kept
// behind SchedulerBackend::kBinaryHeap so scripts/determinism_check.sh can
// byte-diff the two paths (--no_timer_wheel on the figure binaries).
//
// Actions live in a generation-checked slot map — a dense slab recycled
// through a free list — and are InlineAction callbacks with fixed inline
// capture storage, so ScheduleAt/Cancel/Step perform zero heap allocations
// once the slab, wheel pool and heap have grown to the simulation's
// high-water mark. An EventHandle is {slot, generation}: cancelling is two
// array reads and a compare, and a stale handle (the event already ran,
// was cancelled, or its slot now belongs to a newer event) is rejected by
// the generation mismatch — no hash lookup anywhere. Cancelled entries go
// stale in place (wheel bucket or heap) and are skipped at dispatch.
//
// Re-arm path: a periodic-style timer — the RTO retransmit chain, the
// peer-death probe loop — may call RearmCurrentAfter/At from inside its own
// callback. The action is left in place in the slab (no move, no
// release/acquire round trip); its slot's generation is bumped so every
// older handle goes stale, and a fresh queue entry is linked. This is the
// wheel idiom HopTransport's per-pending timer bookkeeping rides on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/inline_function.h"
#include "common/logging.h"
#include "common/sim_time.h"
#include "common/slot_map.h"
#include "common/timer_wheel.h"

namespace dcrd {

// Handle for a scheduled event; used to cancel pending timers. Default
// constructed handles refer to nothing and are safe to cancel.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const { return handle_.valid(); }

 private:
  friend class Scheduler;
  explicit EventHandle(SlotHandle handle) : handle_(handle) {}
  SlotHandle handle_;
};

// Storage backend for the pending-event queue. kTimerWheel is the default;
// kBinaryHeap is the pre-wheel path, kept alive so the determinism gate can
// prove the two produce byte-identical simulations.
enum class SchedulerBackend { kTimerWheel, kBinaryHeap };

class Scheduler {
 public:
  // Non-allocating callback: captures beyond the inline budget are compile
  // errors, keeping the event loop heap-free (see inline_function.h).
  using Action = InlineFunction<void()>;

  explicit Scheduler(SchedulerBackend backend = ProcessDefaultBackend())
      : use_wheel_(backend == SchedulerBackend::kTimerWheel) {}
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Origin field of k1 for events created through the plain ScheduleAt
  // path: the maximal 20-bit value, so same-instant engine housekeeping
  // sorts after every keyed network arrival of the same scheduling tick.
  static constexpr std::uint64_t kEngineOrigin = (1u << 20) - 1;

  // Packs the canonical-key major word. 44 bits of scheduling-time micros
  // (runs past ~278 simulated years would overflow — checked), 20 bits of
  // origin id.
  static std::uint64_t PackK1(std::int64_t sched_micros,
                              std::uint64_t origin) {
    DCRD_CHECK(sched_micros >= 0 &&
               sched_micros < (std::int64_t{1} << 43))
        << "scheduling time overflows the canonical key: " << sched_micros;
    DCRD_CHECK(origin <= kEngineOrigin) << "origin overflows 20 bits";
    return (static_cast<std::uint64_t>(sched_micros) << 20) | origin;
  }

  // Process-wide default backend, read by every subsequently constructed
  // Scheduler. Set once at startup (figure binaries: --no_timer_wheel),
  // before any worker thread starts — the sweep purity contract (DESIGN §7)
  // forbids flipping it mid-run.
  static void SetProcessDefaultBackend(SchedulerBackend backend);
  static SchedulerBackend ProcessDefaultBackend();

  // Pre-grows every tier to hold `n` simultaneously pending events,
  // front-loading slab/pool growth that would otherwise interleave with the
  // first simulated seconds.
  void Reserve(std::size_t n) {
    actions_.Reserve(n);
    wheel_.Reserve(n);
    heap_.reserve(use_wheel_ ? n / 8 + 8 : n);
  }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t pending_count() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  // Schedules `action` to run at absolute time `at` (must not be in the
  // past) under an explicit canonical key (see the header comment). The
  // sharded engine's network layer computes keys from event content so
  // cross-shard injections sort identically to their 1-shard counterparts.
  // Keys must be unique per (at, k1, k2) — dispatch enforces strict order.
  // Templated so the callable is constructed directly in its slab slot
  // (InlineFunction::Assign) instead of riding through a temporary Action's
  // relocate.
  template <typename F>
  EventHandle ScheduleKeyed(SimTime at, std::uint64_t k1, std::uint64_t k2,
                            F&& action) {
    DCRD_CHECK(at >= now_) << "scheduling into the past: " << at << " < "
                           << now_;
    Action* value;
    const SlotHandle slot = actions_.Acquire(&value);
    value->Assign(std::forward<F>(action));
    ++live_;
    Enqueue(at, k1, k2, slot);
    return EventHandle(slot);
  }

  // Schedules `action` to run at absolute time `at` (must not be in the
  // past). Returns a handle usable with Cancel(). Key: engine origin at the
  // current scheduling time, tie-broken by this scheduler's own counter —
  // locally created events keep their scheduling order.
  template <typename F>
  EventHandle ScheduleAt(SimTime at, F&& action) {
    return ScheduleKeyed(at, PackK1(now_.micros(), kEngineOrigin),
                         next_seq_++, std::forward<F>(action));
  }

  // Schedules `action` to run `delay` after the current time.
  template <typename F>
  EventHandle ScheduleAfter(SimDuration delay, F&& action) {
    return ScheduleAt(now_ + delay, std::forward<F>(action));
  }

  // Re-arms the currently executing event's action without touching it:
  // only legal from inside an event callback, at most once per dispatch.
  // The action stays in its slab slot (the handle returned by the original
  // ScheduleAt is already stale — the event fired); the returned handle
  // cancels or re-arms the new arming. Equivalent to ScheduleAt(at, <same
  // action>) for ordering purposes: the new entry takes the next sequence
  // number at the point of the call.
  EventHandle RearmCurrentAt(SimTime at);
  EventHandle RearmCurrentAfter(SimDuration delay) {
    return RearmCurrentAt(now_ + delay);
  }

  // Cancels a pending event. Returns true if the event was still pending;
  // false if it already ran, was already cancelled, or the handle is empty.
  bool Cancel(EventHandle handle);

  // Runs events until the queue drains. Returns the number executed.
  std::uint64_t Run();

  // Runs events with timestamp <= deadline; the clock ends at `deadline`
  // even if the queue drained earlier (so periodic processes observe a
  // consistent end-of-simulation time). Returns the number executed.
  std::uint64_t RunUntil(SimTime deadline);

  // Runs events with timestamp strictly < `horizon`, leaving the clock at
  // the last executed event (NOT advanced to the horizon) and — on the
  // wheel backend — never letting the wheel's internal clock reach the
  // horizon either. The sharded engine's window loop depends on both
  // halves: events injected afterwards at times >= horizon must land in
  // still-intact buckets and sort purely by their canonical keys. Returns
  // the number executed.
  std::uint64_t RunBefore(SimTime horizon);

  // Earliest pending timestamp, or SimTime::Max() when nothing is pending.
  // Cancelled entries that went stale in place are indistinguishable here,
  // so the result is a conservative lower bound on the next live event —
  // sufficient for the sharded engine's window computation (a stale
  // minimum just yields one conservative window; dispatch skips it and the
  // bound then advances).
  [[nodiscard]] SimTime NextEventTime() const;

  // Executes at most one event. Returns false if the queue is empty.
  bool Step();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t k1;  // canonical key, major word (see header comment)
    std::uint64_t k2;  // canonical key, minor word
    SlotHandle slot;   // action storage; stale once run or cancelled
    // Ordered as a min-heap on (at, k1, k2) via operator> in the comparator.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      if (a.k1 != b.k1) return a.k1 > b.k1;
      return a.k2 > b.k2;
    }
  };

  using WheelEntry = TimerWheel<SlotHandle>::Entry;

  // Links one pending entry into the owning tier. Inline: this sits inside
  // every ScheduleAt/ScheduleKeyed instantiation.
  void Enqueue(SimTime at, std::uint64_t k1, std::uint64_t k2,
               SlotHandle slot) {
    if (use_wheel_ && wheel_.TryInsert(at.micros(), k1, k2, slot)) return;
    // Far-future (beyond the wheel horizon), behind a wheel clock that ran
    // ahead of a RunUntil deadline, or the heap backend: the binary heap.
    heap_.push_back(Entry{at, k1, k2, slot});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  }
  // Runs `entry` (whose action must be live): advances the clock, renews
  // the slot so outstanding handles go stale, invokes the action in place,
  // and releases the slot unless the action re-armed itself.
  void Execute(SimTime at, SlotHandle slot);

  // Wheel backend: stages the next live event (wheel tier, or a stranded
  // heap entry that must bypass it) and returns a pointer to it; nullptr
  // when nothing is pending — or, with a finite `limit`, when nothing
  // strictly before `limit` is reachable without moving the wheel clock to
  // or past it (RunBefore's horizon contract). Performs heap->wheel
  // migration and wheel cascades, but never executes anything — callers
  // consume the staged entry with ConsumeStaged() before dispatching it.
  const WheelEntry* PrepareNext(std::int64_t limit = INT64_MAX);
  // True when Run/RunUntil may pop-and-execute straight off the wheel,
  // bypassing the staging slots (see scheduler.cc).
  [[nodiscard]] bool WheelOnlyRegime() const;
  void ConsumeStaged() {
    if (bypass_valid_) {
      bypass_valid_ = false;
    } else {
      staged_valid_ = false;
    }
  }
  // Moves heap-tier entries whose time entered the wheel horizon into the
  // wheel (dropping stale ones), preserving (at, k1, k2) order.
  void MigrateHeap();

  // Heap backend (and overflow-tier) helpers.
  void SkipCancelled();
  void CompactIfStale();
  bool StepHeap();

  SimTime now_ = SimTime::Zero();
  std::uint64_t next_seq_ = 1;  // k2 counter for the engine origin
  std::uint64_t events_executed_ = 0;
  std::size_t live_ = 0;        // pending (scheduled, not run/cancelled)
  std::size_t tombstones_ = 0;  // stale entries still linked in the heap
  const bool use_wheel_;

  // Near-horizon tier (wheel backend only) plus the staging slots backing
  // PrepareNext's peek semantics: staged_ holds the next wheel-tier entry,
  // bypass_ a stranded heap entry (scheduled behind the wheel clock after
  // a RunUntil stopped short) that must dispatch first. Staged entries are
  // re-validated against the slot map on every PrepareNext call, so a
  // Cancel landing between peeks is honored.
  TimerWheel<SlotHandle> wheel_;
  WheelEntry staged_;
  WheelEntry bypass_;
  bool staged_valid_ = false;
  bool bypass_valid_ = false;

  // Far-future tier (and the entire queue for the heap backend): min-heap
  // on (at, k1, k2) maintained with std::push_heap/pop_heap; a raw vector
  // so compaction can filter it in place, capacity retained.
  std::vector<Entry> heap_;

  // Action storage. A slot goes back on the free list the moment its event
  // runs or is cancelled (unless re-armed); the generation bump makes
  // outstanding EventHandles to it stale.
  SlotMap<Action> actions_;

  // Dispatch state for RearmCurrentAt: the renewed handle of the running
  // event's slot, and whether the callback re-armed it.
  SlotHandle running_slot_;
  bool in_dispatch_ = false;
  bool rearmed_ = false;
};

}  // namespace dcrd
