// Deterministic discrete-event scheduler.
//
// The scheduler owns the simulated clock and a priority queue of pending
// events. Events firing at the same instant are delivered in scheduling
// order (a monotonically increasing sequence number breaks ties), which is
// what makes whole-simulation runs bit-reproducible.
//
// Timers (ACK timeouts, monitoring epochs, failure-schedule ticks) are
// scheduled events that can be cancelled; cancellation is O(1) — the heap
// entry is tombstoned and skipped on pop.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/sim_time.h"

namespace dcrd {

// Handle for a scheduled event; used to cancel pending timers. Default
// constructed handles refer to nothing and are safe to cancel.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const { return seq_ != 0; }

 private:
  friend class Scheduler;
  explicit EventHandle(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Scheduler {
 public:
  using Action = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t pending_count() const {
    return heap_.size() - tombstones_;
  }
  [[nodiscard]] bool empty() const { return pending_count() == 0; }
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  // Schedules `action` to run at absolute time `at` (must not be in the
  // past). Returns a handle usable with Cancel().
  EventHandle ScheduleAt(SimTime at, Action action);

  // Schedules `action` to run `delay` after the current time.
  EventHandle ScheduleAfter(SimDuration delay, Action action) {
    return ScheduleAt(now_ + delay, std::move(action));
  }

  // Cancels a pending event. Returns true if the event was still pending;
  // false if it already ran, was already cancelled, or the handle is empty.
  bool Cancel(EventHandle handle);

  // Runs events until the queue drains. Returns the number executed.
  std::uint64_t Run();

  // Runs events with timestamp <= deadline; the clock ends at `deadline`
  // even if the queue drained earlier (so periodic processes observe a
  // consistent end-of-simulation time). Returns the number executed.
  std::uint64_t RunUntil(SimTime deadline);

  // Executes at most one event. Returns false if the queue is empty.
  bool Step();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // tie-breaker and cancellation key
    // Ordered as a min-heap on (at, seq) via operator> in the comparator.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Pops tombstoned entries off the heap top.
  void SkipCancelled();

  SimTime now_ = SimTime::Zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  std::size_t tombstones_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  // seq -> action; absence means cancelled/executed. A flat map would also
  // work, but the action lifetime bookkeeping is clearest with a hash map.
  std::unordered_map<std::uint64_t, Action> actions_;
};

}  // namespace dcrd
