#include "event/scheduler.h"

#include <algorithm>

namespace dcrd {

EventHandle Scheduler::ScheduleAt(SimTime at, Action action) {
  DCRD_CHECK(at >= now_) << "scheduling into the past: " << at << " < " << now_;
  const SlotHandle slot = actions_.Acquire();
  *actions_.Get(slot) = std::move(action);
  heap_.push_back(Entry{at, next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  return EventHandle(slot);
}

bool Scheduler::Cancel(EventHandle handle) {
  Action* action = actions_.Get(handle.handle_);
  if (action == nullptr) return false;  // ran, already cancelled, or empty
  // Drop the capture now (it may own resources); the slab slot is recycled.
  *action = nullptr;
  actions_.Release(handle.handle_);
  ++tombstones_;
  CompactIfStale();
  return true;
}

void Scheduler::CompactIfStale() {
  // An all-dead heap (mass cancellation, engine teardown) drops in O(1).
  if (tombstones_ == heap_.size()) {
    heap_.clear();
    tombstones_ = 0;
    return;
  }
  // Compact once live entries fall below 1/8 of the heap. The high
  // threshold keeps the rebuilt heap tiny (cheap make_heap) and each
  // rebuild removes >= 7/8 of the entries, so total compaction work is a
  // sharply geometric series — amortized O(1) per cancel. The 64-entry
  // floor keeps tiny heaps out of the path entirely.
  if (heap_.size() < 64 || tombstones_ < heap_.size() - heap_.size() / 8) {
    return;
  }
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& entry) {
                               return actions_.Get(entry.slot) == nullptr;
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>());
  tombstones_ = 0;  // exactly the stale entries were removed
}

void Scheduler::SkipCancelled() {
  while (!heap_.empty() && actions_.Get(heap_.front().slot) == nullptr) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    heap_.pop_back();
    DCRD_CHECK(tombstones_ > 0);
    --tombstones_;
  }
}

bool Scheduler::Step() {
  SkipCancelled();
  if (heap_.empty()) return false;
  const Entry entry = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
  heap_.pop_back();
  Action* stored = actions_.Get(entry.slot);
  DCRD_CHECK(stored != nullptr);
  // Move the action out before running it: it may reschedule (growing the
  // slab) or cancel other events re-entrantly.
  Action action = std::move(*stored);
  actions_.Release(entry.slot);
  now_ = entry.at;
  ++events_executed_;
  action();
  return true;
}

std::uint64_t Scheduler::Run() {
  // Expose the clock to DCRD_LOG for the whole run, not per Step — a
  // thread-local store per event would show up in the event-queue bench.
  internal::ScopedSimClock clock_guard(&now_);
  std::uint64_t count = 0;
  while (Step()) ++count;
  return count;
}

std::uint64_t Scheduler::RunUntil(SimTime deadline) {
  internal::ScopedSimClock clock_guard(&now_);
  std::uint64_t count = 0;
  while (true) {
    SkipCancelled();
    if (heap_.empty() || heap_.front().at > deadline) break;
    Step();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

}  // namespace dcrd
