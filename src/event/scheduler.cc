#include "event/scheduler.h"

#include <algorithm>

namespace dcrd {

namespace {

// Process-wide default, set once at startup before worker threads exist.
SchedulerBackend g_default_backend = SchedulerBackend::kTimerWheel;

}  // namespace

void Scheduler::SetProcessDefaultBackend(SchedulerBackend backend) {
  g_default_backend = backend;
}

SchedulerBackend Scheduler::ProcessDefaultBackend() {
  return g_default_backend;
}

EventHandle Scheduler::RearmCurrentAt(SimTime at) {
  DCRD_CHECK(in_dispatch_) << "RearmCurrent outside an event callback";
  DCRD_CHECK(!rearmed_) << "event re-armed twice in one dispatch";
  DCRD_CHECK(at >= now_) << "re-arming into the past: " << at << " < " << now_;
  rearmed_ = true;
  ++live_;
  Enqueue(at, PackK1(now_.micros(), kEngineOrigin), next_seq_++,
          running_slot_);
  return EventHandle(running_slot_);
}

bool Scheduler::Cancel(EventHandle handle) {
  Action* action = actions_.Get(handle.handle_);
  if (action == nullptr) return false;  // ran, already cancelled, or empty
  // Drop the capture now (it may own resources); the slab slot is recycled.
  // The queue entry (wheel bucket or heap) goes stale in place and is
  // skipped at dispatch/migration.
  *action = nullptr;
  actions_.ReleaseLive(handle.handle_);
  DCRD_CHECK(live_ > 0);
  --live_;
  if (!use_wheel_) {
    ++tombstones_;
    CompactIfStale();
  }
  return true;
}

void Scheduler::CompactIfStale() {
  // An all-dead heap (mass cancellation, engine teardown) drops in O(1).
  if (tombstones_ == heap_.size()) {
    heap_.clear();
    tombstones_ = 0;
    return;
  }
  // Compact once live entries fall below 1/8 of the heap. The high
  // threshold keeps the rebuilt heap tiny (cheap make_heap) and each
  // rebuild removes >= 7/8 of the entries, so total compaction work is a
  // sharply geometric series — amortized O(1) per cancel. The 64-entry
  // floor keeps tiny heaps out of the path entirely.
  if (heap_.size() < 64 || tombstones_ < heap_.size() - heap_.size() / 8) {
    return;
  }
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& entry) {
                               return actions_.Get(entry.slot) == nullptr;
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>());
  tombstones_ = 0;  // exactly the stale entries were removed
}

void Scheduler::SkipCancelled() {
  while (!heap_.empty() && actions_.Get(heap_.front().slot) == nullptr) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    heap_.pop_back();
    if (!use_wheel_) {
      DCRD_CHECK(tombstones_ > 0);
      --tombstones_;
    }
  }
}

void Scheduler::MigrateHeap() {
  // Heap entries whose time has come inside the wheel horizon move down a
  // tier; heap pop order is (at, k1, k2), so same-tick migrants append to
  // their bucket already key-ordered.
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    if (actions_.Get(top.slot) == nullptr) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
      heap_.pop_back();
      continue;  // stale: drop instead of migrating
    }
    if (!wheel_.Accepts(top.at.micros())) break;
    wheel_.Insert(top.at.micros(), top.k1, top.k2, top.slot);
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    heap_.pop_back();
  }
}

const Scheduler::WheelEntry* Scheduler::PrepareNext(std::int64_t limit) {
  for (;;) {
    // A bypass entry (stranded heap tier) always precedes the staged wheel
    // entry — it was staged precisely because its key is smaller.
    if (bypass_valid_) {
      if (actions_.Get(bypass_.payload) != nullptr) return &bypass_;
      bypass_valid_ = false;  // cancelled between peeks
    }
    if (staged_valid_) {
      if (actions_.Get(staged_.payload) == nullptr) {
        staged_valid_ = false;  // cancelled: skip and restage
        continue;
      }
      // A stranded heap entry may precede the staged wheel entry; compare
      // the full (at, k1, k2) key — a cross-shard injection can strand at
      // the staged entry's own tick.
      if (!heap_.empty()) {
        SkipCancelled();
        if (!heap_.empty()) {
          const Entry& front = heap_.front();
          const bool precedes =
              front.at.micros() != staged_.at
                  ? front.at.micros() < staged_.at
                  : front.k1 != staged_.k1 ? front.k1 < staged_.k1
                                           : front.k2 < staged_.k2;
          if (precedes) {
            const Entry top = heap_.front();
            std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
            heap_.pop_back();
            bypass_ = WheelEntry{top.at.micros(), top.k1, top.k2, top.slot};
            bypass_valid_ = true;
            return &bypass_;
          }
        }
      }
      return &staged_;
    }
    // Restage: migrate heap entries that entered the horizon, then pull the
    // earliest wheel entry reachable without crossing `limit`.
    MigrateHeap();
    if (wheel_.PopNextBefore(limit, &staged_)) {
      staged_valid_ = true;
      // Warm the action's cache lines under the staging bookkeeping; the
      // loop's staleness probe (cancelled entries go stale in place and are
      // filtered right here) then hits warm metadata.
      actions_.Prefetch(staged_.payload);
      continue;  // loop validates liveness and orders against the heap
    }
    SkipCancelled();
    if (heap_.empty()) return nullptr;
    const Entry top = heap_.front();
    if (top.at.micros() >= limit) return nullptr;  // horizon: leave in place
    if (top.at.micros() >= wheel_.current()) {
      // Beyond the horizon with nothing nearer: jump the (empty) wheel to
      // the heap front's block and let migration move it in. Legal under a
      // finite limit because the target tick was just checked against it.
      wheel_.JumpTo(top.at.micros());
      continue;
    }
    // Stranded behind the wheel clock (scheduled after a RunUntil stopped
    // the sim clock short of a tick the wheel had already advanced to):
    // dispatch straight off the heap until the wheel is reachable again.
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    heap_.pop_back();
    bypass_ = WheelEntry{top.at.micros(), top.k1, top.k2, top.slot};
    bypass_valid_ = true;
    return &bypass_;
  }
}

void Scheduler::Execute(SimTime at, SlotHandle slot) {
  DCRD_CHECK(at >= now_);
  // Renew before running: every outstanding handle (including the event's
  // own) goes stale, so a re-entrant Cancel cannot destroy the executing
  // callback, and RearmCurrentAt can relink the very same slot. The action
  // runs in place — chunked slab storage never relocates.
  Action* action = actions_.BeginDispatch(slot, &running_slot_);
  in_dispatch_ = true;
  rearmed_ = false;
  now_ = at;
  ++events_executed_;
  DCRD_CHECK(live_ > 0);
  --live_;
  (*action)();
  in_dispatch_ = false;
  if (!rearmed_) {
    // Drop the capture (it may own resources); the slab slot is recycled.
    *action = nullptr;
    actions_.ReleaseLive(running_slot_);
  }
}

bool Scheduler::StepHeap() {
  SkipCancelled();
  if (heap_.empty()) return false;
  const Entry entry = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
  heap_.pop_back();
  Execute(entry.at, entry.slot);
  return true;
}

bool Scheduler::Step() {
  if (!use_wheel_) return StepHeap();
  const WheelEntry* next = PrepareNext();
  if (next == nullptr) return false;
  const WheelEntry entry = *next;
  ConsumeStaged();
  Execute(SimTime::FromMicros(entry.at), entry.payload);
  return true;
}

// The wheel-only regime: no staged peek left over, no stranded bypass, an
// empty overflow tier, and a wheel clock that hasn't run ahead of the sim
// clock. Under it Run/RunUntil pop-and-execute straight off the wheel,
// skipping the staging round trip PrepareNext pays for peek semantics —
// and the regime is closed under dispatch: a callback's far-future insert
// lands in the heap with a strictly larger horizon prefix (later than the
// whole wheel), and during the drain the wheel clock equals the sim clock
// at every callback, so nothing can strand behind it.
bool Scheduler::WheelOnlyRegime() const {
  return !staged_valid_ && !bypass_valid_ && heap_.empty() &&
         wheel_.current() <= now_.micros();
}

std::uint64_t Scheduler::Run() {
  // Expose the clock to DCRD_LOG for the whole run, not per Step — a
  // thread-local store per event would show up in the event-queue bench.
  internal::ScopedSimClock clock_guard(&now_);
  std::uint64_t count = 0;
  if (use_wheel_) {
    for (;;) {
      if (WheelOnlyRegime()) {
        WheelEntry e;
        while (wheel_.PopNext(&e)) {
          actions_.Prefetch(e.payload);
          if (actions_.Get(e.payload) == nullptr) continue;  // cancelled
          Execute(SimTime::FromMicros(e.at), e.payload);
          ++count;
        }
        if (heap_.empty()) return count;  // fully drained
      }
      const WheelEntry* next = PrepareNext();
      if (next == nullptr) return count;
      const WheelEntry entry = *next;
      ConsumeStaged();
      Execute(SimTime::FromMicros(entry.at), entry.payload);
      ++count;
    }
  }
  while (Step()) ++count;
  return count;
}

std::uint64_t Scheduler::RunUntil(SimTime deadline) {
  internal::ScopedSimClock clock_guard(&now_);
  std::uint64_t count = 0;
  if (use_wheel_) {
    bool done = false;
    while (!done) {
      if (WheelOnlyRegime()) {
        WheelEntry e;
        while (wheel_.PopNext(&e)) {
          if (e.at > deadline.micros()) {
            // Popped past the deadline: park it in the staging slot, where
            // the next Run/RunUntil picks it up (possibly stale by then).
            staged_ = e;
            staged_valid_ = true;
            done = true;
            break;
          }
          actions_.Prefetch(e.payload);
          if (actions_.Get(e.payload) == nullptr) continue;  // cancelled
          Execute(SimTime::FromMicros(e.at), e.payload);
          ++count;
        }
        if (done || heap_.empty()) break;  // deadline or fully drained
      }
      const WheelEntry* next = PrepareNext();
      if (next == nullptr || next->at > deadline.micros()) break;
      const WheelEntry entry = *next;
      ConsumeStaged();
      Execute(SimTime::FromMicros(entry.at), entry.payload);
      ++count;
    }
  } else {
    while (true) {
      SkipCancelled();
      if (heap_.empty() || heap_.front().at > deadline) break;
      StepHeap();
      ++count;
    }
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

std::uint64_t Scheduler::RunBefore(SimTime horizon) {
  internal::ScopedSimClock clock_guard(&now_);
  const std::int64_t limit = horizon.micros();
  std::uint64_t count = 0;
  if (use_wheel_) {
    for (;;) {
      if (WheelOnlyRegime()) {
        WheelEntry e;
        while (wheel_.PopNextBefore(limit, &e)) {
          actions_.Prefetch(e.payload);
          if (actions_.Get(e.payload) == nullptr) continue;  // cancelled
          Execute(SimTime::FromMicros(e.at), e.payload);
          ++count;
        }
        if (heap_.empty()) return count;
      }
      const WheelEntry* next = PrepareNext(limit);
      if (next == nullptr) return count;
      DCRD_CHECK(next->at < limit);  // PrepareNext's horizon contract
      const WheelEntry entry = *next;
      ConsumeStaged();
      Execute(SimTime::FromMicros(entry.at), entry.payload);
      ++count;
    }
  }
  while (true) {
    SkipCancelled();
    if (heap_.empty() || heap_.front().at >= horizon) break;
    StepHeap();
    ++count;
  }
  return count;
}

SimTime Scheduler::NextEventTime() const {
  std::int64_t best = INT64_MAX;
  if (bypass_valid_) best = std::min(best, bypass_.at);
  if (staged_valid_) best = std::min(best, staged_.at);
  std::int64_t wheel_at = 0;
  if (use_wheel_ && wheel_.PeekNextAt(&wheel_at)) {
    best = std::min(best, wheel_at);
  }
  if (!heap_.empty()) best = std::min(best, heap_.front().at.micros());
  return best == INT64_MAX ? SimTime::Max() : SimTime::FromMicros(best);
}

}  // namespace dcrd
