#include "event/scheduler.h"

namespace dcrd {

EventHandle Scheduler::ScheduleAt(SimTime at, Action action) {
  DCRD_CHECK(at >= now_) << "scheduling into the past: " << at << " < " << now_;
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq});
  actions_.emplace(seq, std::move(action));
  return EventHandle(seq);
}

bool Scheduler::Cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  const auto erased = actions_.erase(handle.seq_);
  if (erased != 0) ++tombstones_;
  return erased != 0;
}

void Scheduler::SkipCancelled() {
  while (!heap_.empty() && !actions_.contains(heap_.top().seq)) {
    heap_.pop();
    DCRD_CHECK(tombstones_ > 0);
    --tombstones_;
  }
}

bool Scheduler::Step() {
  SkipCancelled();
  if (heap_.empty()) return false;
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = actions_.find(entry.seq);
  DCRD_CHECK(it != actions_.end());
  Action action = std::move(it->second);
  actions_.erase(it);
  now_ = entry.at;
  ++events_executed_;
  action();
  return true;
}

std::uint64_t Scheduler::Run() {
  std::uint64_t count = 0;
  while (Step()) ++count;
  return count;
}

std::uint64_t Scheduler::RunUntil(SimTime deadline) {
  std::uint64_t count = 0;
  while (true) {
    SkipCancelled();
    if (heap_.empty() || heap_.top().at > deadline) break;
    Step();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

}  // namespace dcrd
