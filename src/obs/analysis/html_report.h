// Self-contained HTML delay-provenance report.
//
// One file, inline CSS/JS/SVG, zero external dependencies — it opens from a
// CI artifact or an scp'd laptop file identically. The C++ side precomputes
// plot-ready series (per-epoch stacked means, per-component CDF points,
// audit cells) and embeds them as one JSON blob; the inline script only
// draws. Charts follow the repo's dataviz conventions: five categorical
// component colors in fixed order (validated for adjacent-pair CVD
// separation in light and dark modes), hairline grid, crosshair + tooltip
// hover on the area/line charts, a legend plus table views so identity and
// values are never carried by color alone, and a dark mode that uses
// per-mode color steps rather than an automatic flip.
#pragma once

#include <iosfwd>
#include <string_view>

#include "obs/analysis/delay_decomposition.h"
#include "obs/analysis/model_audit.h"

namespace dcrd {

struct TimeSeriesStore;

// `audit` may be null: the report then omits the model-audit section.
// `series` may be null: with a time-series store (obs/timeseries.h, loaded
// from a --timeseries capture of the same run) the report gains a
// continuous-telemetry panel — the windowed deadline-SLO chart (delivery
// ratio, violation rate, windowed p99 delay) rendered as static inline
// SVG, plus a strided window table.
void WriteHtmlReport(std::ostream& os, const DecompositionResult& result,
                     const AuditReport* audit, std::string_view title,
                     const TimeSeriesStore* series = nullptr);

}  // namespace dcrd
