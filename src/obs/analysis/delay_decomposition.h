// Causal delay decomposition over flight-recorder traces.
//
// The analyzer consumes TraceRecords (streamed or in-memory) and, for every
// delivered (packet, subscriber) pair, reconstructs the causal chain of
// copy-hops from the publisher to the subscriber and splits the end-to-end
// delay into components that sum *exactly* (int64 microseconds, no drift)
// to `deliver_t - publish_t`:
//
//   propagation     — per-hop clear-weather wire time: the minimum flight
//                     observed on that (link, direction, gray-state) across
//                     the whole trace. Gray episodes get their own baseline,
//                     so gray delay inflation counts as propagation of the
//                     degraded link rather than queueing.
//   queueing        — wire time above the propagation baseline
//                     (serialization queues, jitter excess).
//   retransmit_wait — time spent waiting on ACK timers: the span from a
//                     causal copy's first transmission to the transmission
//                     that went through, plus — at each holding broker — the
//                     union of the [enqueue, budget-exhausted] windows of
//                     sibling copies that failed before the causal copy was
//                     launched. Union-of-intervals is the attribution rule
//                     at ambiguity points: overlapping timers never double-
//                     count a microsecond.
//   reroute_detour  — wire time of hops whose enqueue coincides with a
//                     kReroute record (the upstream hand-back); their timer
//                     waits still count as retransmit_wait.
//   residual        — everything the chain cannot attribute: dedup and
//                     processing slack, reroute-retry gaps, and — when the
//                     causal chain cannot be completed from the evidence in
//                     the trace (e.g. a lossy ring capture) — the whole
//                     unexplained head of the delay.
//
// The walk is evidence-anchored: a broker's hand-up instant equals the
// timestamp of its next action on the packet (enqueue/reroute/deliver all
// happen in the same scheduler instant as the arrival), and the copy that
// caused it is identified by its ACK timestamp (exact under the paper's
// out-of-band ACK model, ack_delay_factor = 0). Where an ACK was lost the
// walk falls back to transmission-time plausibility and the residual
// absorbs any unattributed span — the exact-sum invariant never breaks.
//
// Everything here is offline/post-hoc: the analyzer never touches the
// simulator, its RNG streams, or stdout.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/trace_record.h"

namespace dcrd {

struct DelayComponents {
  std::int64_t propagation_us = 0;
  std::int64_t queueing_us = 0;
  std::int64_t retransmit_wait_us = 0;
  std::int64_t reroute_detour_us = 0;
  std::int64_t residual_us = 0;

  [[nodiscard]] std::int64_t Sum() const {
    return propagation_us + queueing_us + retransmit_wait_us +
           reroute_detour_us + residual_us;
  }
};

inline constexpr int kDelayComponentCount = 5;
std::string_view DelayComponentName(int component);
std::int64_t DelayComponentValue(const DelayComponents& components,
                                 int component);

// One delivered (packet, subscriber) pair, decomposed. Only the first
// arrival of a pair is decomposed (matching the metrics collector's
// delivery accounting); duplicates are counted but not re-walked.
struct DeliveryDecomposition {
  std::uint64_t packet = 0;
  std::uint32_t subscriber = TraceRecord::kNoId;
  std::uint32_t publisher = TraceRecord::kNoId;
  std::uint16_t topic = 0;
  std::int64_t publish_t_us = 0;
  std::int64_t deliver_t_us = 0;
  std::int64_t total_us = 0;  // deliver - publish; components sum to this
  int epoch = 0;              // index of the last kRebuild <= publish time
  int hops = 0;               // causal chain length (0 = self-delivery)
  int timeouts = 0;           // retransmission timers fired on the chain
  bool rerouted = false;      // chain includes an upstream reroute hop
  bool chain_complete = false;  // walked back to the publisher
  DelayComponents components;
};

// Per-epoch component sums: one stacked-area slice of the report.
struct EpochDelayStats {
  int epoch = 0;
  std::int64_t start_t_us = 0;
  std::uint64_t deliveries = 0;
  std::array<std::int64_t, kDelayComponentCount> component_sums_us{};
};

// Per-link wire accounting across all causal hops that crossed the link.
struct LinkDelayStats {
  std::uint32_t link = TraceRecord::kNoId;
  std::uint64_t hops = 0;
  std::int64_t wire_us = 0;      // total flight time attributed to the link
  std::int64_t queueing_us = 0;  // portion above the propagation baseline
  std::int64_t baseline_us = -1;  // min clear-weather flight; -1 = unknown
};

// Per-broker hold accounting: timer waits attributed at the broker that
// was holding the packet while its copies timed out.
struct BrokerDelayStats {
  std::uint32_t node = TraceRecord::kNoId;
  std::uint64_t wait_segments = 0;
  std::int64_t wait_us = 0;
};

struct DecompositionResult {
  std::vector<DeliveryDecomposition> deliveries;
  std::vector<EpochDelayStats> epochs;    // ascending epoch index
  std::vector<LinkDelayStats> links;      // ascending link id
  std::vector<BrokerDelayStats> brokers;  // ascending node id
  // Rebuild instants seen in the trace; epoch i starts at epoch_starts[i].
  std::vector<std::int64_t> epoch_starts_us;
  // Whole-trace distributions, one histogram per component plus the total,
  // for CDF plots and quantile tables.
  LogLinearHistogram total_histogram;
  std::array<LogLinearHistogram, kDelayComponentCount> component_histograms;
  // Deliveries whose packet has no kPublish record (lossy/clipped trace):
  // their delay is unknowable, so they are skipped — loudly, not silently.
  std::uint64_t skipped_no_publish = 0;
  // Chains the evidence could not walk back to the publisher; their
  // unexplained head landed in residual_us.
  std::uint64_t incomplete_chains = 0;
  std::uint64_t duplicate_deliveries = 0;
  // kTimerArmed consistency: retransmission gaps that disagree with the
  // armed timeout recorded when the timer was started. Expected 0; non-zero
  // means the trace is internally inconsistent (or lossy).
  std::uint64_t timer_accounting_mismatches = 0;
};

// Feed records in any order, then call Decompose() once. Holds the trace's
// per-packet/per-copy indices in memory (bounded by trace size, not by a
// second full copy of the record vector).
class TraceAnalyzer {
 public:
  void Add(const TraceRecord& record);
  void AddAll(const std::vector<TraceRecord>& records);

  // Runs the decomposition over everything added so far. Call once, after
  // the last Add.
  [[nodiscard]] DecompositionResult Decompose() const;

 private:
  struct CopyEvents {
    std::uint64_t packet = TraceRecord::kNoPacket;
    std::uint32_t from = TraceRecord::kNoId;
    std::uint32_t to = TraceRecord::kNoId;
    std::uint32_t link = TraceRecord::kNoId;
    std::int64_t enqueue_t_us = -1;
    std::int64_t budget_exhausted_t_us = -1;
    std::int64_t ack_t_us = -1;
    int ack_tx = -1;
    std::vector<std::int64_t> tx_times_us;        // indexed by tx index
    std::vector<std::int64_t> armed_timeouts_us;  // indexed by tx index
    std::vector<std::int64_t> dedup_times_us;
  };
  struct DeliverEvent {
    std::int64_t t_us = 0;
    std::uint32_t subscriber = TraceRecord::kNoId;
  };
  struct RerouteEvent {
    std::int64_t t_us = 0;
    std::uint32_t node = TraceRecord::kNoId;
    std::uint32_t peer = TraceRecord::kNoId;
  };
  struct PacketEvents {
    bool has_publish = false;
    std::int64_t publish_t_us = 0;
    std::uint32_t publisher = TraceRecord::kNoId;
    std::uint16_t topic = 0;
    std::vector<std::uint64_t> copies;  // copy ids, in arrival order
    std::vector<DeliverEvent> delivers;
    std::vector<RerouteEvent> reroutes;
  };

  CopyEvents& CopyFor(std::uint64_t copy_id, std::uint64_t packet);

  std::unordered_map<std::uint64_t, PacketEvents> packets_;
  std::unordered_map<std::uint64_t, CopyEvents> copies_;
  std::vector<std::int64_t> rebuild_times_us_;
  // Per-link gray episodes as [start, end) intervals; open episodes extend
  // to the end of the trace.
  std::unordered_map<std::uint32_t,
                     std::vector<std::pair<std::int64_t, std::int64_t>>>
      gray_intervals_;
  std::unordered_map<std::uint32_t, std::int64_t> gray_open_;
  std::int64_t max_t_us_ = 0;
};

}  // namespace dcrd
