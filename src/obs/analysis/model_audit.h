// Model-vs-observed delay audit (Theorem 1 in vivo).
//
// The engine's --delay_audit sink dumps one JSONL row per reachable
// (topic, subscriber) pair at every monitoring epoch: the publisher's
// expected <d, r> and the Theorem-1 sending list it was computed from,
// exactly as routing used them (solver or distributed gossip alike).
//
// The auditor joins those rows against observed deliveries from the trace:
// a delivery belongs to the model row with the same (topic, subscriber)
// whose epoch stamp is the latest one at or before the publish instant —
// the estimates that were *active when the packet was sent*. Per cell it
// reports observed mean/stddev against the expected d, and flags cells
// whose disagreement is statistically inconsistent: the model d is a
// conditional expectation, so with n samples the observed mean should land
// within ~z standard errors plus a small absolute slack (quantization and
// the epoch-boundary races the join cannot resolve).
//
// Soundness conditions (violating any one voids a cell's flag, not the
// math): the trace and model files must come from the same run; link
// estimates must be the ones active at send time (guaranteed by the epoch
// join); and d models delivery *without* best-effort fallback detours —
// fallback-path deliveries inflate the observed mean by design.
//
// Each row's d is also recombined from its own sending list via Eq. 3
// (CombineOrdered); a recombination mismatch means the file is corrupt or
// was produced by a different algebra — it is reported separately from the
// statistical flags.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "dcrd/dr.h"

namespace dcrd {

// One --delay_audit JSONL row, parsed.
struct ModelRow {
  std::int64_t t_us = 0;  // epoch stamp: when these tables became active
  std::uint32_t topic = 0;
  std::uint32_t pub = 0;
  std::uint32_t sub = 0;
  std::int64_t deadline_us = 0;
  double d_us = 0.0;
  double r = 0.0;
  std::vector<ViaEntry> list;  // publisher's primary sending list
};

// Parses one row. Returns false (with a human-readable reason in *error)
// on any malformed input; never throws.
bool ParseModelRow(std::string_view line, ModelRow* out, std::string* error);

// Streams rows from `in`, invoking `fn` per row. Stops at the first
// malformed line and returns false, reporting its 1-based number and a
// truncated copy of the offending text. Blank lines are skipped.
bool ForEachModelRow(std::istream& in,
                     const std::function<void(const ModelRow&)>& fn,
                     std::size_t* bad_line = nullptr,
                     std::string* bad_text = nullptr);

struct AuditConfig {
  // A cell is flagged when |observed mean - d| exceeds
  // abs_slack_us + z_threshold * stddev / sqrt(n).
  double z_threshold = 4.0;
  double abs_slack_us = 250.0;
  // Recombining a row's list via Eq. 3 must reproduce its d to within this.
  // Not pure float noise: the solver stops its Gauss–Seidel sweeps at
  // tolerance_us (0.5 µs) and distributed gossip damps updates below its
  // threshold (50 µs), so the stored d legitimately lags a fresh
  // recombination by up to that slack. The check is an integrity gate —
  // corruption or a different algebra is off by milliseconds, not this.
  double recombine_tolerance_us = 100.0;
};

// One (epoch, topic, subscriber) audit cell.
struct AuditCell {
  std::int64_t epoch_t_us = 0;
  std::uint32_t topic = 0;
  std::uint32_t pub = 0;
  std::uint32_t sub = 0;
  std::int64_t deadline_us = 0;
  double expected_d_us = 0.0;
  double expected_r = 0.0;
  double recombined_d_us = 0.0;
  std::size_t list_length = 0;
  std::uint64_t n = 0;         // observed deliveries joined to this cell
  double mean_us = 0.0;        // observed mean delay
  double stddev_us = 0.0;      // observed sample stddev (0 when n < 2)
  double error_us = 0.0;       // mean - expected
  bool flagged = false;        // statistically inconsistent with the model
};

struct AuditReport {
  std::vector<AuditCell> cells;  // (epoch, topic, sub) ascending
  std::uint64_t observed = 0;    // deliveries offered to the join
  std::uint64_t matched = 0;     // joined to a model cell
  std::uint64_t unmatched = 0;   // no row for (topic, sub) at publish time
  std::uint64_t flagged_cells = 0;
  std::uint64_t populated_cells = 0;  // cells with n > 0
  double max_recombine_error_us = 0.0;
  std::uint64_t recombine_failures = 0;  // rows beyond recombine_tolerance
};

class ModelAuditor {
 public:
  void AddModelRow(const ModelRow& row);
  // One observed delivery: publish instant and end-to-end delay.
  void Observe(std::uint32_t topic, std::uint32_t sub,
               std::int64_t publish_t_us, std::int64_t delay_us);
  [[nodiscard]] AuditReport Finish(const AuditConfig& config = {}) const;

 private:
  struct CellAccumulator {
    ModelRow row;
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;  // Welford
  };
  // (topic, sub) -> epoch-sorted cell indices for the publish-time join.
  struct Key {
    std::uint32_t topic;
    std::uint32_t sub;
    friend bool operator<(const Key& a, const Key& b) {
      return a.topic != b.topic ? a.topic < b.topic : a.sub < b.sub;
    }
  };
  std::vector<CellAccumulator> cells_;
  std::map<Key, std::vector<std::size_t>> index_;
  std::uint64_t observed_ = 0;
  std::uint64_t unmatched_ = 0;
};

}  // namespace dcrd
