#include "obs/analysis/model_audit.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <limits>

namespace dcrd {

namespace {

// Minimal field extraction matched to WriteAuditSnapshot's output: flat
// object of numeric fields plus one "list" array of [n, l, d, r] tuples.
// Key lookup by `"key":` substring is unambiguous because every key is
// distinct and values are numbers (no nested quotes).
bool FindValue(std::string_view line, std::string_view key,
               std::string_view* value) {
  std::string needle;
  needle.reserve(key.size() + 3);
  needle.push_back('"');
  needle.append(key);
  needle.append("\":");
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) return false;
  *value = line.substr(pos + needle.size());
  return true;
}

bool ParseI64(std::string_view text, std::int64_t* out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr != begin;
}

bool ParseU32(std::string_view text, std::uint32_t* out) {
  std::int64_t v = 0;
  if (!ParseI64(text, &v) || v < 0 ||
      v > std::numeric_limits<std::uint32_t>::max()) {
    return false;
  }
  *out = static_cast<std::uint32_t>(v);
  return true;
}

// std::from_chars<double> is present in the toolchain, but strtod keeps the
// parser tolerant of the exact "%.17g" spellings (inf, exponents) without
// locale surprises — the writer never emits locale-dependent text.
bool ParseF64(std::string_view text, double* out, std::size_t* consumed) {
  std::string buffer(text.substr(0, 64));
  char* end = nullptr;
  const double v = std::strtod(buffer.c_str(), &end);
  if (end == buffer.c_str()) return false;
  *out = v;
  if (consumed != nullptr) {
    *consumed = static_cast<std::size_t>(end - buffer.c_str());
  }
  return true;
}

template <typename T, bool (*Parse)(std::string_view, T*)>
bool Field(std::string_view line, std::string_view key, T* out) {
  std::string_view value;
  return FindValue(line, key, &value) && Parse(value, out);
}

bool FieldF64(std::string_view line, std::string_view key, double* out) {
  std::string_view value;
  return FindValue(line, key, &value) && ParseF64(value, out, nullptr);
}

}  // namespace

bool ParseModelRow(std::string_view line, ModelRow* out,
                   std::string* error) {
  *out = ModelRow{};
  const auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (!Field<std::int64_t, ParseI64>(line, "t", &out->t_us)) {
    return fail("missing or malformed \"t\"");
  }
  if (!Field<std::uint32_t, ParseU32>(line, "topic", &out->topic)) {
    return fail("missing or malformed \"topic\"");
  }
  if (!Field<std::uint32_t, ParseU32>(line, "pub", &out->pub)) {
    return fail("missing or malformed \"pub\"");
  }
  if (!Field<std::uint32_t, ParseU32>(line, "sub", &out->sub)) {
    return fail("missing or malformed \"sub\"");
  }
  if (!Field<std::int64_t, ParseI64>(line, "deadline_us",
                                     &out->deadline_us)) {
    return fail("missing or malformed \"deadline_us\"");
  }
  if (!FieldF64(line, "d_us", &out->d_us)) {
    return fail("missing or malformed \"d_us\"");
  }
  if (!FieldF64(line, "r", &out->r)) {
    return fail("missing or malformed \"r\"");
  }
  std::string_view list;
  if (!FindValue(line, "list", &list) || list.empty() || list[0] != '[') {
    return fail("missing or malformed \"list\"");
  }
  list.remove_prefix(1);  // outer '['
  while (true) {
    while (!list.empty() && (list[0] == ',' || list[0] == ' ')) {
      list.remove_prefix(1);
    }
    if (list.empty()) return fail("unterminated \"list\"");
    if (list[0] == ']') break;
    if (list[0] != '[') return fail("malformed \"list\" entry");
    list.remove_prefix(1);
    ViaEntry entry;
    std::uint32_t neighbor = 0;
    std::uint32_t link = 0;
    const auto take_number = [&list](auto parse) {
      const std::size_t stop = list.find_first_of(",]");
      if (stop == std::string_view::npos) return false;
      if (!parse(list.substr(0, stop))) return false;
      list.remove_prefix(stop + 1);  // swallow the delimiter
      return true;
    };
    if (!take_number([&](std::string_view t) {
          return ParseU32(t, &neighbor);
        }) ||
        !take_number([&](std::string_view t) { return ParseU32(t, &link); }) ||
        !take_number([&](std::string_view t) {
          return ParseF64(t, &entry.d_via_us, nullptr);
        }) ||
        !take_number([&](std::string_view t) {
          return ParseF64(t, &entry.r_via, nullptr);
        })) {
      return fail("malformed \"list\" entry");
    }
    entry.neighbor = NodeId(neighbor);
    entry.link = LinkId(link);
    out->list.push_back(entry);
  }
  return true;
}

bool ForEachModelRow(std::istream& in,
                     const std::function<void(const ModelRow&)>& fn,
                     std::size_t* bad_line, std::string* bad_text) {
  std::string line;
  std::size_t line_number = 0;
  ModelRow row;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::string error;
    if (!ParseModelRow(line, &row, &error)) {
      if (bad_line != nullptr) *bad_line = line_number;
      if (bad_text != nullptr) {
        *bad_text = error + ": " + line.substr(0, 120);
      }
      return false;
    }
    fn(row);
  }
  return true;
}

void ModelAuditor::AddModelRow(const ModelRow& row) {
  const std::size_t index = cells_.size();
  CellAccumulator& cell = cells_.emplace_back();
  cell.row = row;
  std::vector<std::size_t>& slot = index_[Key{row.topic, row.sub}];
  // Rows arrive in epoch order from the engine; keep the slot sorted even
  // if a merged file interleaves epochs.
  slot.push_back(index);
  std::size_t i = slot.size();
  while (i > 1 && cells_[slot[i - 2]].row.t_us > cells_[slot[i - 1]].row.t_us) {
    std::swap(slot[i - 2], slot[i - 1]);
    --i;
  }
}

void ModelAuditor::Observe(std::uint32_t topic, std::uint32_t sub,
                           std::int64_t publish_t_us,
                           std::int64_t delay_us) {
  ++observed_;
  const auto it = index_.find(Key{topic, sub});
  if (it == index_.end()) {
    ++unmatched_;
    return;
  }
  // Latest epoch at or before the publish instant: the tables that were
  // active when the packet was sent.
  CellAccumulator* cell = nullptr;
  for (const std::size_t index : it->second) {
    if (cells_[index].row.t_us > publish_t_us) break;
    cell = &cells_[index];
  }
  if (cell == nullptr) {
    ++unmatched_;
    return;
  }
  ++cell->n;
  const double x = static_cast<double>(delay_us);
  const double delta = x - cell->mean;
  cell->mean += delta / static_cast<double>(cell->n);
  cell->m2 += delta * (x - cell->mean);
}

AuditReport ModelAuditor::Finish(const AuditConfig& config) const {
  AuditReport report;
  report.observed = observed_;
  report.unmatched = unmatched_;
  report.matched = observed_ - unmatched_;
  report.cells.reserve(cells_.size());
  for (const CellAccumulator& acc : cells_) {
    AuditCell cell;
    cell.epoch_t_us = acc.row.t_us;
    cell.topic = acc.row.topic;
    cell.pub = acc.row.pub;
    cell.sub = acc.row.sub;
    cell.deadline_us = acc.row.deadline_us;
    cell.expected_d_us = acc.row.d_us;
    cell.expected_r = acc.row.r;
    cell.list_length = acc.row.list.size();
    cell.recombined_d_us = CombineOrdered(acc.row.list).d_us;
    const double recombine_error =
        std::abs(cell.recombined_d_us - cell.expected_d_us);
    if (std::isfinite(recombine_error)) {
      report.max_recombine_error_us =
          std::max(report.max_recombine_error_us, recombine_error);
      if (recombine_error > config.recombine_tolerance_us) {
        ++report.recombine_failures;
      }
    } else {
      ++report.recombine_failures;
    }
    cell.n = acc.n;
    cell.mean_us = acc.mean;
    cell.stddev_us =
        acc.n > 1 ? std::sqrt(acc.m2 / static_cast<double>(acc.n - 1)) : 0.0;
    cell.error_us = cell.mean_us - cell.expected_d_us;
    if (acc.n > 0) {
      ++report.populated_cells;
      const double standard_error =
          cell.stddev_us / std::sqrt(static_cast<double>(acc.n));
      cell.flagged =
          std::abs(cell.error_us) >
          config.abs_slack_us + config.z_threshold * standard_error;
      if (cell.flagged) ++report.flagged_cells;
    }
    report.cells.push_back(cell);
  }
  std::sort(report.cells.begin(), report.cells.end(),
            [](const AuditCell& a, const AuditCell& b) {
              if (a.epoch_t_us != b.epoch_t_us) {
                return a.epoch_t_us < b.epoch_t_us;
              }
              if (a.topic != b.topic) return a.topic < b.topic;
              return a.sub < b.sub;
            });
  return report;
}

}  // namespace dcrd
