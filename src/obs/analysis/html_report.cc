#include "obs/analysis/html_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "obs/timeseries.h"

namespace dcrd {

namespace {

void JsonDouble(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

void JsonEscaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    if (static_cast<unsigned char>(c) >= 0x20) os << c;
  }
  os << '"';
}

// CDF as [value_us, cumulative_fraction] steps from the histogram's
// non-empty buckets (bucket upper bound, clamped into [min, max]).
void JsonCdf(std::ostream& os, const LogLinearHistogram& h) {
  os << "[";
  if (h.count() > 0) {
    os << "[" << h.min() << ",0]";
    std::uint64_t cumulative = 0;
    for (int b = 0; b < LogLinearHistogram::kBucketCount; ++b) {
      if (h.CountAt(b) == 0) continue;
      cumulative += h.CountAt(b);
      std::uint64_t x = LogLinearHistogram::BucketHi(b);
      if (x > h.max()) x = h.max();
      if (x < h.min()) x = h.min();
      os << ",[" << x << ",";
      JsonDouble(os, static_cast<double>(cumulative) /
                         static_cast<double>(h.count()));
      os << "]";
    }
  }
  os << "]";
}

void JsonData(std::ostream& os, const DecompositionResult& result,
              const AuditReport* audit, std::string_view title) {
  const LogLinearHistogram& total = result.total_histogram;
  os << "{\"title\":";
  JsonEscaped(os, title);
  os << ",\"components\":[";
  for (int i = 0; i < kDelayComponentCount; ++i) {
    if (i > 0) os << ",";
    JsonEscaped(os, DelayComponentName(i));
  }
  os << "],\"summary\":{\"deliveries\":" << total.count()
     << ",\"mean_us\":";
  JsonDouble(os, total.count() > 0 ? static_cast<double>(total.sum()) /
                                         static_cast<double>(total.count())
                                   : 0.0);
  os << ",\"p50_us\":" << total.ValueAtQuantile(0.5)
     << ",\"p99_us\":" << total.ValueAtQuantile(0.99)
     << ",\"incomplete_chains\":" << result.incomplete_chains
     << ",\"skipped_no_publish\":" << result.skipped_no_publish
     << ",\"duplicate_deliveries\":" << result.duplicate_deliveries
     << ",\"timer_mismatches\":" << result.timer_accounting_mismatches
     << ",\"component_totals\":[";
  std::int64_t component_totals[kDelayComponentCount] = {};
  for (const DeliveryDecomposition& d : result.deliveries) {
    for (int i = 0; i < kDelayComponentCount; ++i) {
      component_totals[i] += DelayComponentValue(d.components, i);
    }
  }
  for (int i = 0; i < kDelayComponentCount; ++i) {
    if (i > 0) os << ",";
    os << component_totals[i];
  }
  os << "]},\"epochs\":[";
  for (std::size_t e = 0; e < result.epochs.size(); ++e) {
    const EpochDelayStats& epoch = result.epochs[e];
    if (e > 0) os << ",";
    os << "{\"t_s\":";
    JsonDouble(os, static_cast<double>(epoch.start_t_us) / 1e6);
    os << ",\"n\":" << epoch.deliveries << ",\"means_us\":[";
    for (int i = 0; i < kDelayComponentCount; ++i) {
      if (i > 0) os << ",";
      JsonDouble(os, epoch.deliveries > 0
                         ? static_cast<double>(
                               epoch.component_sums_us[static_cast<
                                   std::size_t>(i)]) /
                               static_cast<double>(epoch.deliveries)
                         : 0.0);
    }
    os << "]}";
  }
  os << "],\"cdfs\":[";
  for (int i = 0; i < kDelayComponentCount; ++i) {
    if (i > 0) os << ",";
    JsonCdf(os, result.component_histograms[static_cast<std::size_t>(i)]);
  }
  os << "],\"total_cdf\":";
  JsonCdf(os, total);
  os << ",\"links\":[";
  for (std::size_t i = 0; i < result.links.size(); ++i) {
    const LinkDelayStats& l = result.links[i];
    if (i > 0) os << ",";
    os << "{\"link\":" << l.link << ",\"hops\":" << l.hops
       << ",\"wire_us\":" << l.wire_us << ",\"queue_us\":" << l.queueing_us
       << ",\"baseline_us\":" << l.baseline_us << "}";
  }
  os << "],\"brokers\":[";
  for (std::size_t i = 0; i < result.brokers.size(); ++i) {
    const BrokerDelayStats& b = result.brokers[i];
    if (i > 0) os << ",";
    os << "{\"node\":" << b.node << ",\"segments\":" << b.wait_segments
       << ",\"wait_us\":" << b.wait_us << "}";
  }
  os << "],\"audit\":";
  if (audit == nullptr) {
    os << "null";
  } else {
    // Bound the embedded table; a long sweep can have tens of thousands of
    // cells. Flagged cells are never dropped.
    constexpr std::size_t kMaxCells = 2000;
    os << "{\"observed\":" << audit->observed
       << ",\"matched\":" << audit->matched
       << ",\"unmatched\":" << audit->unmatched
       << ",\"flagged\":" << audit->flagged_cells
       << ",\"populated\":" << audit->populated_cells
       << ",\"cells_total\":" << audit->cells.size()
       << ",\"recombine_failures\":" << audit->recombine_failures
       << ",\"max_recombine_error_us\":";
    JsonDouble(os, audit->max_recombine_error_us);
    os << ",\"cells\":[";
    std::size_t emitted = 0;
    bool first = true;
    for (const AuditCell& cell : audit->cells) {
      if (!cell.flagged && emitted >= kMaxCells) continue;
      if (!first) os << ",";
      first = false;
      ++emitted;
      os << "{\"t_s\":";
      JsonDouble(os, static_cast<double>(cell.epoch_t_us) / 1e6);
      os << ",\"topic\":" << cell.topic << ",\"sub\":" << cell.sub
         << ",\"n\":" << cell.n << ",\"d_us\":";
      JsonDouble(os, cell.expected_d_us);
      os << ",\"r\":";
      JsonDouble(os, cell.expected_r);
      os << ",\"mean_us\":";
      JsonDouble(os, cell.mean_us);
      os << ",\"sd_us\":";
      JsonDouble(os, cell.stddev_us);
      os << ",\"err_us\":";
      JsonDouble(os, cell.error_us);
      os << ",\"flagged\":" << (cell.flagged ? "true" : "false") << "}";
    }
    os << "]}";
  }
  os << "}";
}

// Inline CSS: palette roles as custom properties, light defaults with dark
// steps under the OS media query and a data-theme override (toggle wins
// both ways). Series hexes are the validated five-slot categorical order.
constexpr std::string_view kCss = R"CSS(
  :root { color-scheme: light; }
  .viz-root {
    --surface-1: #fcfcfb; --page: #f9f9f7;
    --ink-1: #0b0b0b; --ink-2: #52514e; --ink-muted: #898781;
    --grid: #e1e0d9; --baseline: #c3c2b7;
    --border: rgba(11,11,11,0.10);
    --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
    --series-4: #eda100; --series-5: #e87ba4; --series-total: #0b0b0b;
    --critical: #d03b3b;
    font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
    color: var(--ink-1); background: var(--page);
    margin: 0 auto; max-width: 1080px; padding: 24px 20px 48px;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --surface-1: #1a1a19; --page: #0d0d0d;
      --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
      --grid: #2c2c2a; --baseline: #383835;
      --border: rgba(255,255,255,0.10);
      --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
      --series-4: #c98500; --series-5: #d55181; --series-total: #ffffff;
    }
  }
  :root[data-theme="dark"] .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-total: #ffffff;
  }
  .viz-root h1 { font-size: 20px; margin: 0 0 4px; }
  .viz-root h2 { font-size: 15px; margin: 0 0 2px; }
  .viz-root .subtitle { color: var(--ink-2); font-size: 13px; margin-bottom: 20px; }
  .viz-root .note { color: var(--ink-2); font-size: 12px; margin: 2px 0 10px; }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
  .tile { background: var(--surface-1); border: 1px solid var(--border);
          border-radius: 8px; padding: 10px 14px; min-width: 130px; }
  .tile .v { font-size: 22px; font-weight: 600; }
  .tile .k { font-size: 12px; color: var(--ink-2); }
  .card { background: var(--surface-1); border: 1px solid var(--border);
          border-radius: 8px; padding: 16px; margin-bottom: 20px; }
  .legend { display: flex; flex-wrap: wrap; gap: 14px; margin-top: 8px;
            font-size: 12px; color: var(--ink-2); }
  .legend .sw { display: inline-block; width: 10px; height: 10px;
                border-radius: 2px; margin-right: 5px; vertical-align: -1px; }
  svg { display: block; width: 100%; height: auto; }
  svg text { font-family: inherit; font-size: 11px; fill: var(--ink-muted);
             font-variant-numeric: tabular-nums; }
  table { border-collapse: collapse; width: 100%; font-size: 12px;
          font-variant-numeric: tabular-nums; }
  th { text-align: right; color: var(--ink-2); font-weight: 600;
       padding: 5px 8px; border-bottom: 1px solid var(--baseline); }
  td { text-align: right; padding: 4px 8px; border-bottom: 1px solid var(--grid); }
  th:first-child, td:first-child { text-align: left; }
  .flag { color: var(--critical); font-weight: 600; }
  details summary { cursor: pointer; font-size: 13px; color: var(--ink-2);
                    margin-top: 10px; }
  #tooltip { position: fixed; pointer-events: none; display: none;
             background: var(--surface-1); border: 1px solid var(--border);
             border-radius: 6px; padding: 8px 10px; font-size: 12px;
             box-shadow: 0 2px 10px rgba(0,0,0,0.15); z-index: 10;
             font-variant-numeric: tabular-nums; }
  #tooltip .t { color: var(--ink-2); margin-bottom: 4px; }
  #tooltip .row { display: flex; justify-content: space-between; gap: 14px; }
)CSS";

// Inline JS: pure drawing over the embedded DATA blob. SVG built as strings;
// crosshair + tooltip via one overlay per chart.
constexpr std::string_view kJs = R"JS(
  const C = DATA.components;
  const COLORS = ['var(--series-1)','var(--series-2)','var(--series-3)',
                  'var(--series-4)','var(--series-5)'];
  const NICE = {propagation:'Propagation', queueing:'Queueing',
                retransmit_wait:'Retransmit wait', reroute_detour:'Reroute detour',
                residual:'Residual'};
  const fmtMs = us => us == null ? '–' : (us/1000).toLocaleString('en-US',
      {maximumFractionDigits: us < 10000 ? 2 : 1}) + ' ms';
  const fmtN = n => n.toLocaleString('en-US');
  const el = id => document.getElementById(id);
  const tooltip = el('tooltip');
  function showTip(evt, html) {
    tooltip.innerHTML = html; tooltip.style.display = 'block';
    const pad = 14;
    let x = evt.clientX + pad, y = evt.clientY + pad;
    const r = tooltip.getBoundingClientRect();
    if (x + r.width > innerWidth - 8) x = evt.clientX - r.width - pad;
    if (y + r.height > innerHeight - 8) y = evt.clientY - r.height - pad;
    tooltip.style.left = x + 'px'; tooltip.style.top = y + 'px';
  }
  function hideTip() { tooltip.style.display = 'none'; }
  function legend(id, names, colors) {
    el(id).innerHTML = names.map((n, i) =>
      `<span><span class="sw" style="background:${colors[i]}"></span>${n}</span>`
    ).join('');
  }
  function ticks(lo, hi, n) {
    const span = hi - lo || 1, step0 = span / Math.max(1, n);
    const mag = Math.pow(10, Math.floor(Math.log10(step0)));
    const step = [1,2,5,10].map(m => m*mag).find(s => span/s <= n) || 10*mag;
    const out = [];
    for (let v = Math.ceil(lo/step)*step; v <= hi + 1e-9; v += step) out.push(v);
    return out;
  }

  // ---- Stacked area: per-epoch mean delay per delivery, by component ----
  (function stackedArea() {
    const E = DATA.epochs;
    const W = 1040, H = 300, L = 56, R = 16, T = 12, B = 30;
    if (E.length === 0) { el('stackCard').style.display = 'none'; return; }
    const xs = E.map(e => e.t_s);
    const stackTop = E.map(e => e.means_us.reduce((a,b) => a+b, 0));
    const xLo = xs[0], xHi = xs[xs.length-1] > xs[0] ? xs[xs.length-1] : xs[0]+1;
    const yHi = Math.max(1, ...stackTop) * 1.08;
    const X = t => L + (t - xLo) / (xHi - xLo) * (W - L - R);
    const Y = v => T + (1 - v / yHi) * (H - T - B);
    let svg = '';
    for (const v of ticks(0, yHi, 5)) {
      svg += `<line x1="${L}" x2="${W-R}" y1="${Y(v)}" y2="${Y(v)}"
        stroke="var(--grid)" stroke-width="1"/>`;
      svg += `<text x="${L-6}" y="${Y(v)+4}" text-anchor="end">${fmtMs(v)}</text>`;
    }
    // Cumulative bands, bottom-up; each band stroked in surface color on its
    // top edge for the 2px fill gap.
    const cum = E.map(() => 0);
    for (let i = 0; i < C.length; i++) {
      const lower = cum.slice();
      for (let k = 0; k < E.length; k++) cum[k] += E[k].means_us[i];
      let d = '';
      for (let k = 0; k < E.length; k++)
        d += (k ? 'L' : 'M') + X(xs[k]).toFixed(1) + ' ' + Y(cum[k]).toFixed(1);
      let top = d;
      for (let k = E.length - 1; k >= 0; k--)
        d += 'L' + X(xs[k]).toFixed(1) + ' ' + Y(lower[k]).toFixed(1);
      svg += `<path d="${d}Z" fill="${COLORS[i]}"/>`;
      svg += `<path d="${top}" fill="none" stroke="var(--surface-1)" stroke-width="2"/>`;
    }
    for (const v of ticks(xLo, xHi, 8)) {
      svg += `<text x="${X(v)}" y="${H-B+16}" text-anchor="middle">${v}s</text>`;
    }
    svg += `<line x1="${L}" x2="${W-R}" y1="${Y(0)}" y2="${Y(0)}"
      stroke="var(--baseline)" stroke-width="1"/>`;
    svg += `<line id="stackCross" x1="0" x2="0" y1="${T}" y2="${H-B}"
      stroke="var(--ink-muted)" stroke-width="1" stroke-dasharray="3 3"
      visibility="hidden"/>`;
    svg += `<rect x="${L}" y="${T}" width="${W-L-R}" height="${H-T-B}"
      fill="transparent" id="stackHover"/>`;
    el('stack').innerHTML = svg;
    el('stack').setAttribute('viewBox', `0 0 ${W} ${H}`);
    legend('stackLegend', C.map(c => NICE[c] || c), COLORS);
    const hover = el('stackHover'), cross = el('stackCross');
    hover.addEventListener('mousemove', evt => {
      const box = el('stack').getBoundingClientRect();
      const mx = (evt.clientX - box.left) / box.width * W;
      const t = xLo + (mx - L) / (W - L - R) * (xHi - xLo);
      let k = 0;
      for (let i = 0; i < xs.length; i++) if (xs[i] <= t) k = i;
      cross.setAttribute('x1', X(xs[k])); cross.setAttribute('x2', X(xs[k]));
      cross.setAttribute('visibility', 'visible');
      const rows = C.map((c, i) =>
        `<div class="row"><span><span class="sw legendless"
           style="display:inline-block;width:8px;height:8px;border-radius:2px;
           background:${COLORS[i]};margin-right:5px"></span>${NICE[c]||c}</span>
         <span>${fmtMs(E[k].means_us[i])}</span></div>`).join('');
      showTip(evt, `<div class="t">epoch @ ${xs[k]}s · ${fmtN(E[k].n)} deliveries</div>
        ${rows}<div class="row" style="margin-top:4px"><span>Total mean</span>
        <span>${fmtMs(E[k].means_us.reduce((a,b)=>a+b,0))}</span></div>`);
    });
    hover.addEventListener('mouseleave', () => {
      hideTip(); cross.setAttribute('visibility', 'hidden');
    });
    // Table view of the same data.
    el('epochTable').innerHTML =
      '<tr><th>Epoch start</th><th>Deliveries</th>' +
      C.map(c => `<th>${NICE[c]||c}</th>`).join('') + '<th>Total mean</th></tr>' +
      E.map(e => `<tr><td>${e.t_s}s</td><td>${fmtN(e.n)}</td>` +
        e.means_us.map(v => `<td>${fmtMs(v)}</td>`).join('') +
        `<td>${fmtMs(e.means_us.reduce((a,b)=>a+b,0))}</td></tr>`).join('');
  })();

  // ---- Per-component CDFs (log-x step curves) ----
  (function cdfs() {
    const W = 1040, H = 300, L = 56, R = 16, T = 12, B = 34;
    const curves = DATA.cdfs.map((pts, i) =>
        ({name: NICE[C[i]] || C[i], color: COLORS[i], pts}))
      .concat([{name: 'Total', color: 'var(--series-total)',
                pts: DATA.total_cdf, dash: '5 4'}])
      .filter(c => c.pts.length > 0);
    if (curves.length === 0) { el('cdfCard').style.display = 'none'; return; }
    let xMax = 1;
    for (const c of curves) for (const p of c.pts) xMax = Math.max(xMax, p[0]);
    const lx = v => Math.log10(Math.max(1, v));
    const X = v => L + lx(v) / lx(xMax) * (W - L - R);
    const Y = f => T + (1 - f) * (H - T - B);
    let svg = '';
    for (const f of [0, 0.25, 0.5, 0.75, 1]) {
      svg += `<line x1="${L}" x2="${W-R}" y1="${Y(f)}" y2="${Y(f)}"
        stroke="var(--grid)" stroke-width="1"/>`;
      svg += `<text x="${L-6}" y="${Y(f)+4}" text-anchor="end">${(f*100)}%</text>`;
    }
    for (let d = 0; d <= lx(xMax); d++) {
      const v = Math.pow(10, d);
      svg += `<line x1="${X(v)}" x2="${X(v)}" y1="${T}" y2="${H-B}"
        stroke="var(--grid)" stroke-width="1"/>`;
      svg += `<text x="${X(v)}" y="${H-B+16}" text-anchor="middle">${
        v < 1000 ? v + 'µs' : v < 1e6 ? (v/1000) + 'ms' : (v/1e6) + 's'}</text>`;
    }
    for (const c of curves) {
      let d = '', lastY = null;
      for (const [x, f] of c.pts) {
        const px = X(x).toFixed(1), py = Y(f).toFixed(1);
        if (d === '') d = `M${px} ${py}`;
        else d += `L${px} ${lastY}L${px} ${py}`;  // step
        lastY = py;
      }
      svg += `<path d="${d}" fill="none" stroke="${c.color}" stroke-width="2"
        ${c.dash ? `stroke-dasharray="${c.dash}"` : ''}/>`;
    }
    svg += `<line x1="${L}" x2="${W-R}" y1="${Y(0)}" y2="${Y(0)}"
      stroke="var(--baseline)" stroke-width="1"/>`;
    svg += `<line id="cdfCross" x1="0" x2="0" y1="${T}" y2="${H-B}"
      stroke="var(--ink-muted)" stroke-width="1" stroke-dasharray="3 3"
      visibility="hidden"/>`;
    svg += `<rect x="${L}" y="${T}" width="${W-L-R}" height="${H-T-B}"
      fill="transparent" id="cdfHover"/>`;
    el('cdf').innerHTML = svg;
    el('cdf').setAttribute('viewBox', `0 0 ${W} ${H}`);
    legend('cdfLegend', curves.map(c => c.name),
           curves.map(c => c.color));
    const fracAt = (pts, x) => {
      let f = 0;
      for (const p of pts) { if (p[0] <= x) f = p[1]; else break; }
      return f;
    };
    const hover = el('cdfHover'), cross = el('cdfCross');
    hover.addEventListener('mousemove', evt => {
      const box = el('cdf').getBoundingClientRect();
      const mx = (evt.clientX - box.left) / box.width * W;
      const x = Math.pow(10, (mx - L) / (W - L - R) * lx(xMax));
      cross.setAttribute('x1', mx); cross.setAttribute('x2', mx);
      cross.setAttribute('visibility', 'visible');
      const rows = curves.map(c =>
        `<div class="row"><span><span style="display:inline-block;width:8px;
           height:8px;border-radius:2px;background:${c.color};margin-right:5px">
         </span>${c.name}</span><span>${(fracAt(c.pts, x)*100).toFixed(1)}%</span>
         </div>`).join('');
      showTip(evt, `<div class="t">delay ≤ ${fmtMs(x)}</div>${rows}`);
    });
    hover.addEventListener('mouseleave', () => {
      hideTip(); cross.setAttribute('visibility', 'hidden');
    });
  })();

  // ---- Summary tiles ----
  (function tiles() {
    const S = DATA.summary;
    const tiles = [
      ['Deliveries decomposed', fmtN(S.deliveries)],
      ['Mean delay', fmtMs(S.mean_us)],
      ['p50 / p99', fmtMs(S.p50_us) + ' / ' + fmtMs(S.p99_us)],
      ['Incomplete chains', fmtN(S.incomplete_chains)],
      ['Timer mismatches', fmtN(S.timer_mismatches)],
    ];
    if (DATA.audit) tiles.push(['Flagged audit cells',
        fmtN(DATA.audit.flagged) + ' / ' + fmtN(DATA.audit.populated)]);
    el('tiles').innerHTML = tiles.map(([k, v]) =>
      `<div class="tile"><div class="v">${v}</div><div class="k">${k}</div></div>`
    ).join('');
    if (S.skipped_no_publish > 0) {
      el('lossyNote').textContent = 'Warning: ' + fmtN(S.skipped_no_publish) +
        ' delivery(ies) had no publish record — the trace looks lossy and ' +
        'those delays are excluded.';
    }
  })();

  // ---- Audit table ----
  (function audit() {
    const A = DATA.audit;
    if (!A) { el('auditCard').style.display = 'none'; return; }
    el('auditSummary').textContent =
      `${fmtN(A.matched)} of ${fmtN(A.observed)} deliveries joined to ` +
      `${fmtN(A.cells_total)} model cells (${fmtN(A.unmatched)} unmatched); ` +
      `${fmtN(A.flagged)} of ${fmtN(A.populated)} populated cells flagged; ` +
      `max Eq.3 recombination error ${A.max_recombine_error_us} µs` +
      (A.recombine_failures > 0
        ? ` — ${fmtN(A.recombine_failures)} recombination FAILURES` : '') +
      (A.cells.length < A.cells_total
        ? ` (table truncated to ${fmtN(A.cells.length)} rows;` +
          ' all flagged rows kept)' : '');
    el('auditTable').innerHTML =
      '<tr><th>Epoch</th><th>Topic</th><th>Sub</th><th>n</th>' +
      '<th>Expected d</th><th>Observed mean</th><th>Stddev</th>' +
      '<th>Error</th><th>r</th><th>Status</th></tr>' +
      A.cells.map(c => `<tr><td>${c.t_s}s</td><td>${c.topic}</td>
        <td>${c.sub}</td><td>${fmtN(c.n)}</td><td>${fmtMs(c.d_us)}</td>
        <td>${c.n ? fmtMs(c.mean_us) : '–'}</td>
        <td>${c.n > 1 ? fmtMs(c.sd_us) : '–'}</td>
        <td>${c.n ? fmtMs(c.err_us) : '–'}</td>
        <td>${c.r == null ? '–' : c.r.toFixed(4)}</td>
        <td>${c.flagged ? '<span class="flag">⚠ flagged</span>' : 'ok'}</td>
        </tr>`).join('');
  })();

  // ---- Link / broker tables ----
  (function hotspots() {
    el('linkTable').innerHTML =
      '<tr><th>Link</th><th>Causal hops</th><th>Wire time</th>' +
      '<th>Queueing</th><th>Baseline</th></tr>' +
      DATA.links.map(l => `<tr><td>link ${l.link}</td><td>${fmtN(l.hops)}</td>
        <td>${fmtMs(l.wire_us)}</td><td>${fmtMs(l.queue_us)}</td>
        <td>${l.baseline_us < 0 ? '–' : fmtMs(l.baseline_us)}</td></tr>`).join('');
    el('brokerTable').innerHTML =
      '<tr><th>Broker</th><th>Wait segments</th><th>Timer wait</th></tr>' +
      DATA.brokers.map(b => `<tr><td>broker ${b.node}</td>
        <td>${fmtN(b.segments)}</td><td>${fmtMs(b.wait_us)}</td></tr>`).join('');
    if (DATA.links.length === 0 && DATA.brokers.length === 0) {
      el('hotspotCard').style.display = 'none';
    }
  })();
)JS";

// Continuous-telemetry panel, rendered as static inline SVG (no JS): the
// windowed deadline-SLO chart — delivery ratio and violation rate on a
// shared [0, 1+] axis, windowed p99 delay on its own — plus a strided
// window table. Server-side rendering keeps the panel byte-deterministic
// and the report self-contained even with scripts disabled.
void WriteTimeSeriesPanel(std::ostream& os, const TimeSeriesStore& series) {
  const std::vector<SloWindow> slo = ComputeSloSeries(series);
  os << "<section class=\"card\" id=\"timeseriesCard\">\n"
     << "<h2>Continuous telemetry (deadline SLO)</h2>\n"
     << "<div class=\"note\">Per-window delivery ratio and deadline-"
        "violation rate sampled every "
     << series.interval_us / 1000 << " ms of sim time; " << slo.size()
     << " windows.</div>\n";
  if (slo.empty()) {
    os << "<div class=\"note\">No SLO counters in this time series.</div>\n"
       << "</section>\n";
    return;
  }
  const double t0 = static_cast<double>(slo.front().t_us);
  const double t1 = static_cast<double>(slo.back().t_us);
  const double span = t1 > t0 ? t1 - t0 : 1.0;
  constexpr double kW = 880.0, kH = 160.0, kPad = 8.0;
  const auto x_of = [&](std::int64_t t) {
    return kPad + (static_cast<double>(t) - t0) / span * (kW - 2 * kPad);
  };
  const auto polyline = [&](const char* var, auto value_of, double vmax) {
    os << "<polyline fill=\"none\" stroke=\"var(" << var
       << ")\" stroke-width=\"1.5\" points=\"";
    char pt[48];
    for (const SloWindow& w : slo) {
      const double v = std::min(value_of(w) / vmax, 1.0);
      std::snprintf(pt, sizeof(pt), "%.1f,%.1f ", x_of(w.t_us),
                    kH - kPad - v * (kH - 2 * kPad));
      os << pt;
    }
    os << "\"/>\n";
  };
  // Ratio chart: shared axis topping out just above 1 so a perfect run
  // draws a visible line instead of hugging the frame.
  os << "<svg viewBox=\"0 0 " << kW << " " << kH
     << "\" role=\"img\" aria-label=\"Delivery ratio and violation rate per "
        "window\" style=\"width:100%;height:auto\">\n"
     << "<rect x=\"0\" y=\"0\" width=\"" << kW << "\" height=\"" << kH
     << "\" fill=\"none\" stroke=\"var(--grid)\"/>\n";
  polyline("--series-1",
           [](const SloWindow& w) { return w.delivery_ratio; }, 1.05);
  polyline("--series-2",
           [](const SloWindow& w) { return w.violation_rate; }, 1.05);
  os << "</svg>\n"
     << "<div class=\"legend\"><span><span class=\"sw\" "
        "style=\"background:var(--series-1)\"></span>delivery ratio</span> "
        "<span><span class=\"sw\" "
        "style=\"background:var(--series-2)\"></span>violation rate</span>"
        "</div>\n";
  std::uint64_t p99_max = 1;
  for (const SloWindow& w : slo) p99_max = std::max(p99_max, w.delay_p99_us);
  os << "<svg viewBox=\"0 0 " << kW << " " << kH
     << "\" role=\"img\" aria-label=\"Windowed p99 delivery delay\" "
        "style=\"width:100%;height:auto\">\n"
     << "<rect x=\"0\" y=\"0\" width=\"" << kW << "\" height=\"" << kH
     << "\" fill=\"none\" stroke=\"var(--grid)\"/>\n";
  polyline("--series-3",
           [](const SloWindow& w) {
             return static_cast<double>(w.delay_p99_us);
           },
           static_cast<double>(p99_max));
  os << "</svg>\n"
     << "<div class=\"legend\"><span><span class=\"sw\" "
        "style=\"background:var(--series-3)\"></span>windowed p99 delay "
        "(max "
     << p99_max << "us)</span></div>\n";
  // Strided table: at most ~20 rows so paper-scale runs stay skimmable.
  const std::size_t stride = slo.size() > 20 ? (slo.size() + 19) / 20 : 1;
  os << "<details><summary>Window table (every " << stride
     << ")</summary><table>"
     << "<tr><th>t (ms)</th><th>published</th><th>delivered</th>"
        "<th>on time</th><th>ratio</th><th>violation</th>"
        "<th>p50 (us)</th><th>p99 (us)</th></tr>";
  char cells[192];
  for (std::size_t i = 0; i < slo.size(); i += stride) {
    const SloWindow& w = slo[i];
    std::snprintf(cells, sizeof(cells),
                  "<tr><td>%lld</td><td>%llu</td><td>%llu</td>"
                  "<td>%llu</td><td>%.4f</td><td>%.4f</td>"
                  "<td>%llu</td><td>%llu</td></tr>",
                  static_cast<long long>(w.t_us / 1000),
                  static_cast<unsigned long long>(w.published),
                  static_cast<unsigned long long>(w.delivered),
                  static_cast<unsigned long long>(w.on_time),
                  w.delivery_ratio, w.violation_rate,
                  static_cast<unsigned long long>(w.delay_p50_us),
                  static_cast<unsigned long long>(w.delay_p99_us));
    os << cells;
  }
  os << "</table></details>\n</section>\n";
}

}  // namespace

void WriteHtmlReport(std::ostream& os, const DecompositionResult& result,
                     const AuditReport* audit, std::string_view title,
                     const TimeSeriesStore* series) {
  os << "<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
     << "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n"
     << "<title>";
  for (const char c : title) {
    if (c == '<' || c == '>' || c == '&') continue;
    os << c;
  }
  os << "</title>\n<style>" << kCss << "</style>\n</head>\n<body>\n"
     << "<div class=\"viz-root\">\n"
     << "<header><h1>Delay provenance report</h1>\n"
     << "<div class=\"subtitle\" id=\"subtitle\"></div></header>\n"
     << "<div class=\"note\" id=\"lossyNote\"></div>\n"
     << "<section class=\"tiles\" id=\"tiles\"></section>\n"
     << "<section class=\"card\" id=\"stackCard\">\n"
     << "<h2>Delay decomposition by epoch</h2>\n"
     << "<div class=\"note\">Mean delay per delivered packet, stacked by "
        "component, per monitoring epoch.</div>\n"
     << "<svg id=\"stack\" role=\"img\" aria-label=\"Stacked area chart of "
        "mean delay components per epoch\"></svg>\n"
     << "<div class=\"legend\" id=\"stackLegend\"></div>\n"
     << "<details><summary>Data table</summary>"
        "<table id=\"epochTable\"></table></details>\n"
     << "</section>\n"
     << "<section class=\"card\" id=\"cdfCard\">\n"
     << "<h2>Per-component delay CDFs</h2>\n"
     << "<div class=\"note\">Distribution of each component across all "
        "decomposed deliveries (log delay axis).</div>\n"
     << "<svg id=\"cdf\" role=\"img\" aria-label=\"CDF curves per delay "
        "component\"></svg>\n"
     << "<div class=\"legend\" id=\"cdfLegend\"></div>\n"
     << "</section>\n"
     << "<section class=\"card\" id=\"auditCard\">\n"
     << "<h2>Model vs observed (Theorem 1 audit)</h2>\n"
     << "<div class=\"note\" id=\"auditSummary\"></div>\n"
     << "<table id=\"auditTable\"></table>\n"
     << "</section>\n"
     << "<section class=\"card\" id=\"hotspotCard\">\n"
     << "<h2>Hotspots</h2>\n"
     << "<div class=\"note\">Where causal time was spent: wire time per "
        "link, timer waits per broker.</div>\n"
     << "<table id=\"linkTable\"></table>\n<br>\n"
     << "<table id=\"brokerTable\"></table>\n"
     << "</section>\n";
  if (series != nullptr) WriteTimeSeriesPanel(os, *series);
  os << "</div>\n<div id=\"tooltip\"></div>\n"
     << "<script>\nconst DATA = ";
  JsonData(os, result, audit, title);
  os << ";\n";
  os << "document.getElementById('subtitle').textContent = DATA.title;\n"
     << kJs << "</script>\n</body>\n</html>\n";
}

}  // namespace dcrd
