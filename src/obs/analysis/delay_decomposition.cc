#include "obs/analysis/delay_decomposition.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <utility>

namespace dcrd {

std::string_view DelayComponentName(int component) {
  switch (component) {
    case 0: return "propagation";
    case 1: return "queueing";
    case 2: return "retransmit_wait";
    case 3: return "reroute_detour";
    case 4: return "residual";
    default: return "unknown";
  }
}

std::int64_t DelayComponentValue(const DelayComponents& components,
                                 int component) {
  switch (component) {
    case 0: return components.propagation_us;
    case 1: return components.queueing_us;
    case 2: return components.retransmit_wait_us;
    case 3: return components.reroute_detour_us;
    case 4: return components.residual_us;
    default: return 0;
  }
}

TraceAnalyzer::CopyEvents& TraceAnalyzer::CopyFor(std::uint64_t copy_id,
                                                  std::uint64_t packet) {
  CopyEvents& copy = copies_[copy_id];
  if (copy.packet == TraceRecord::kNoPacket && packet != TraceRecord::kNoPacket) {
    copy.packet = packet;
    packets_[packet].copies.push_back(copy_id);
  }
  return copy;
}

void TraceAnalyzer::Add(const TraceRecord& r) {
  if (r.t_us > max_t_us_) max_t_us_ = r.t_us;
  auto set_tx = [](std::vector<std::int64_t>& v, std::uint16_t index,
                   std::int64_t value) {
    if (v.size() <= index) v.resize(index + std::size_t{1}, -1);
    v[index] = value;
  };
  switch (r.kind) {
    case TraceEventKind::kPublish: {
      PacketEvents& p = packets_[r.packet];
      p.has_publish = true;
      p.publish_t_us = r.t_us;
      p.publisher = r.node;
      p.topic = r.aux16;
      break;
    }
    case TraceEventKind::kEnqueue: {
      CopyEvents& c = CopyFor(r.copy, r.packet);
      c.from = r.node;
      c.to = r.peer;
      c.link = r.link;
      c.enqueue_t_us = r.t_us;
      break;
    }
    case TraceEventKind::kHopSend:
    case TraceEventKind::kRetransmit: {
      CopyEvents& c = CopyFor(r.copy, r.packet);
      c.from = r.node;
      c.to = r.peer;
      c.link = r.link;
      set_tx(c.tx_times_us, r.aux16, r.t_us);
      break;
    }
    case TraceEventKind::kTimerArmed: {
      CopyEvents& c = CopyFor(r.copy, r.packet);
      // `peer` carries the armed timeout in microseconds for this kind.
      set_tx(c.armed_timeouts_us, r.aux16,
             static_cast<std::int64_t>(r.peer));
      break;
    }
    case TraceEventKind::kAck: {
      // Post-expiry ACKs (aux8=1) carry no packet identity and closed
      // nothing; only the pending-closing ACK anchors the copy's arrival.
      if (r.aux8 != 0 || r.packet == TraceRecord::kNoPacket) break;
      CopyEvents& c = CopyFor(r.copy, r.packet);
      if (c.ack_tx < 0) {
        c.ack_t_us = r.t_us;
        c.ack_tx = static_cast<int>(r.aux16);
      }
      break;
    }
    case TraceEventKind::kBudgetExhausted: {
      CopyEvents& c = CopyFor(r.copy, r.packet);
      c.budget_exhausted_t_us = r.t_us;
      break;
    }
    case TraceEventKind::kDedupSuppress: {
      CopyEvents& c = CopyFor(r.copy, r.packet);
      c.dedup_times_us.push_back(r.t_us);
      break;
    }
    case TraceEventKind::kReroute: {
      packets_[r.packet].reroutes.push_back({r.t_us, r.node, r.peer});
      break;
    }
    case TraceEventKind::kDeliver: {
      PacketEvents& p = packets_[r.packet];
      p.delivers.push_back({r.t_us, r.node});
      if (p.publisher == TraceRecord::kNoId) p.publisher = r.peer;
      break;
    }
    case TraceEventKind::kRebuild:
      rebuild_times_us_.push_back(r.t_us);
      break;
    case TraceEventKind::kGrayStart:
      gray_open_.emplace(r.link, r.t_us);
      break;
    case TraceEventKind::kGrayEnd: {
      auto it = gray_open_.find(r.link);
      const std::int64_t start = it != gray_open_.end() ? it->second : 0;
      if (it != gray_open_.end()) gray_open_.erase(it);
      gray_intervals_[r.link].push_back({start, r.t_us});
      break;
    }
    case TraceEventKind::kDrop:
    case TraceEventKind::kLinkDown:
    case TraceEventKind::kLinkUp:
      break;  // not needed for delay attribution
  }
}

void TraceAnalyzer::AddAll(const std::vector<TraceRecord>& records) {
  for (const TraceRecord& record : records) Add(record);
}

namespace {

// Union length of [lo, hi) intervals; the attribution rule for overlapping
// retransmit timers — a microsecond covered by two timers counts once.
std::int64_t IntervalUnionLength(
    std::vector<std::pair<std::int64_t, std::int64_t>>& intervals) {
  if (intervals.empty()) return 0;
  std::sort(intervals.begin(), intervals.end());
  std::int64_t total = 0;
  std::int64_t lo = intervals.front().first;
  std::int64_t hi = intervals.front().second;
  for (const auto& [next_lo, next_hi] : intervals) {
    if (next_lo > hi) {
      total += hi - lo;
      lo = next_lo;
      hi = next_hi;
    } else if (next_hi > hi) {
      hi = next_hi;
    }
  }
  return total + (hi - lo);
}

}  // namespace

DecompositionResult TraceAnalyzer::Decompose() const {
  DecompositionResult result;

  // Epoch boundaries: sorted rebuild instants (the engine stamps one at
  // t=0). A trace with no rebuild records is a single epoch starting at 0.
  result.epoch_starts_us = rebuild_times_us_;
  std::sort(result.epoch_starts_us.begin(), result.epoch_starts_us.end());
  result.epoch_starts_us.erase(
      std::unique(result.epoch_starts_us.begin(),
                  result.epoch_starts_us.end()),
      result.epoch_starts_us.end());
  if (result.epoch_starts_us.empty()) result.epoch_starts_us.push_back(0);

  auto epoch_of = [&result](std::int64_t t) {
    const auto it = std::upper_bound(result.epoch_starts_us.begin(),
                                     result.epoch_starts_us.end(), t);
    const auto index = it - result.epoch_starts_us.begin() - 1;
    return index < 0 ? 0 : static_cast<int>(index);
  };

  auto in_gray = [this](std::uint32_t link, std::int64_t t) {
    const auto it = gray_intervals_.find(link);
    if (it != gray_intervals_.end()) {
      for (const auto& [lo, hi] : it->second) {
        if (t >= lo && t < hi) return true;
      }
    }
    const auto open = gray_open_.find(link);
    return open != gray_open_.end() && t >= open->second;
  };

  // Pass 1 — propagation baselines: the minimum ACK-measured flight per
  // (link, sending direction, gray state). Under the out-of-band ACK model
  // an ACK's arrival instant equals the data's arrival instant, so
  // ack_t - tx_time is a pure wire measurement; queueing and jitter only
  // ever raise it, so the minimum is the clear-weather propagation floor.
  std::map<std::tuple<std::uint32_t, std::uint32_t, bool>, std::int64_t>
      baselines;
  for (const auto& [copy_id, c] : copies_) {
    (void)copy_id;
    if (c.ack_tx < 0 ||
        static_cast<std::size_t>(c.ack_tx) >= c.tx_times_us.size()) {
      continue;
    }
    const std::int64_t tx_t = c.tx_times_us[static_cast<std::size_t>(c.ack_tx)];
    if (tx_t < 0 || c.ack_t_us < tx_t) continue;
    const std::int64_t flight = c.ack_t_us - tx_t;
    const auto key = std::make_tuple(c.link, c.from, in_gray(c.link, tx_t));
    const auto it = baselines.find(key);
    if (it == baselines.end() || flight < it->second) baselines[key] = flight;
  }

  // Pass 1b — timer accounting: every armed timeout must equal the gap to
  // the next transmission (or to budget exhaustion after the last one).
  for (const auto& [copy_id, c] : copies_) {
    (void)copy_id;
    const std::size_t n = c.tx_times_us.size();
    for (std::size_t k = 0; k < c.armed_timeouts_us.size(); ++k) {
      const std::int64_t armed = c.armed_timeouts_us[k];
      // kNoId-1 marks a timeout clamped at record time; unverifiable.
      if (armed < 0 || armed >= TraceRecord::kNoId - 1) continue;
      if (k >= n || c.tx_times_us[k] < 0) continue;
      const std::int64_t fired_at = c.tx_times_us[k] + armed;
      if (k + 1 < n && c.tx_times_us[k + 1] >= 0) {
        if (c.tx_times_us[k + 1] != fired_at) {
          ++result.timer_accounting_mismatches;
        }
      } else if (k + 1 == n && c.budget_exhausted_t_us >= 0 &&
                 c.ack_tx < 0) {
        if (c.budget_exhausted_t_us != fired_at) {
          ++result.timer_accounting_mismatches;
        }
      }
    }
  }

  std::map<std::uint32_t, LinkDelayStats> link_stats;
  std::map<std::uint32_t, BrokerDelayStats> broker_stats;
  std::map<int, EpochDelayStats> epoch_stats;

  // Pass 2 — walk every first delivery backwards to its publisher.
  for (const auto& [packet_id, p] : packets_) {
    if (p.delivers.empty()) continue;
    if (!p.has_publish) {
      // Count distinct subscribers whose delay is unknowable.
      std::set<std::uint32_t> subs;
      for (const DeliverEvent& d : p.delivers) subs.insert(d.subscriber);
      result.skipped_no_publish += subs.size();
      continue;
    }
    // First arrival per subscriber; later arrivals are duplicates.
    std::map<std::uint32_t, std::int64_t> first_arrival;
    for (const DeliverEvent& d : p.delivers) {
      const auto [it, inserted] = first_arrival.emplace(d.subscriber, d.t_us);
      if (!inserted) {
        ++result.duplicate_deliveries;
        if (d.t_us < it->second) it->second = d.t_us;
      }
    }

    for (const auto& [subscriber, deliver_t] : first_arrival) {
      DeliveryDecomposition out;
      out.packet = packet_id;
      out.subscriber = subscriber;
      out.publisher = p.publisher;
      out.topic = p.topic;
      out.publish_t_us = p.publish_t_us;
      out.deliver_t_us = deliver_t;
      out.total_us = deliver_t - p.publish_t_us;
      out.epoch = epoch_of(p.publish_t_us);
      DelayComponents& comp = out.components;

      if (subscriber == p.publisher) {
        // Self-delivery: handed up in the publish instant; any delay (there
        // should be none) is processing residual.
        out.chain_complete = true;
        comp.residual_us = out.total_us;
      } else {
        std::uint32_t cur_node = subscriber;
        std::int64_t cur_t = deliver_t;
        // Each iteration consumes one copy-hop; +2 slack for safety.
        std::size_t budget = p.copies.size() + 2;
        while (budget-- > 0) {
          // Select the copy whose arrival at cur_node caused the hand-up at
          // cur_t. Exact match: its pending-closing ACK timestamp equals
          // cur_t (out-of-band ACKs make ack time == arrival time).
          // Fallback (ACK lost): the copy into cur_node with the latest
          // transmission strictly before cur_t.
          const CopyEvents* causal = nullptr;
          int causal_tx = -1;
          bool causal_exact = false;
          for (const std::uint64_t copy_id : p.copies) {
            const auto cit = copies_.find(copy_id);
            if (cit == copies_.end()) continue;
            const CopyEvents& c = cit->second;
            if (c.to != cur_node || c.tx_times_us.empty()) continue;
            const bool exact =
                c.ack_tx >= 0 && c.ack_t_us == cur_t &&
                static_cast<std::size_t>(c.ack_tx) < c.tx_times_us.size() &&
                c.tx_times_us[static_cast<std::size_t>(c.ack_tx)] >= 0;
            int tx = -1;
            if (exact) {
              tx = c.ack_tx;
            } else {
              for (std::size_t k = c.tx_times_us.size(); k-- > 0;) {
                const std::int64_t t = c.tx_times_us[k];
                if (t >= 0 && t < cur_t) {
                  tx = static_cast<int>(k);
                  break;
                }
              }
            }
            if (tx < 0) continue;
            const std::int64_t tx_t =
                c.tx_times_us[static_cast<std::size_t>(tx)];
            const bool better =
                causal == nullptr || (exact && !causal_exact) ||
                (exact == causal_exact &&
                 tx_t > causal->tx_times_us[static_cast<std::size_t>(
                            causal_tx)]);
            if (better) {
              causal = &c;
              causal_tx = tx;
              causal_exact = exact;
            }
          }
          if (causal == nullptr) break;  // evidence exhausted

          const std::int64_t tx_t =
              causal->tx_times_us[static_cast<std::size_t>(causal_tx)];
          const std::int64_t first_tx_t =
              causal->tx_times_us.front() >= 0 ? causal->tx_times_us.front()
                                               : tx_t;
          // Wait at hop entry: first transmission -> successful one.
          const std::int64_t hop_wait = tx_t - first_tx_t;
          // Wire: successful transmission -> arrival.
          const std::int64_t flight = cur_t - tx_t;
          const bool reroute_hop = std::any_of(
              p.reroutes.begin(), p.reroutes.end(),
              [&](const RerouteEvent& e) {
                return e.node == causal->from && e.peer == causal->to &&
                       e.t_us == causal->enqueue_t_us;
              });
          if (hop_wait > 0) {
            comp.retransmit_wait_us += hop_wait;
            out.timeouts += causal_tx;
            BrokerDelayStats& b = broker_stats[causal->from];
            b.node = causal->from;
            ++b.wait_segments;
            b.wait_us += hop_wait;
          }
          if (reroute_hop) {
            comp.reroute_detour_us += flight;
            out.rerouted = true;
          } else {
            const auto key = std::make_tuple(causal->link, causal->from,
                                             in_gray(causal->link, tx_t));
            const auto bit = baselines.find(key);
            const std::int64_t prop =
                bit != baselines.end() ? std::min(bit->second, flight)
                                       : flight;
            comp.propagation_us += prop;
            comp.queueing_us += flight - prop;
            if (causal->link != TraceRecord::kNoId) {
              LinkDelayStats& l = link_stats[causal->link];
              l.link = causal->link;
              ++l.hops;
              l.wire_us += flight;
              l.queueing_us += flight - prop;
              if (bit != baselines.end() &&
                  (l.baseline_us < 0 || bit->second < l.baseline_us)) {
                l.baseline_us = bit->second;
              }
            }
          }
          ++out.hops;

          const std::uint32_t up_node = causal->from;
          const std::int64_t enqueue_t =
              causal->enqueue_t_us >= 0 ? causal->enqueue_t_us : first_tx_t;

          // Hand-up anchor at the upstream broker: the latest evidenced
          // arrival of any copy into up_node at or before this enqueue. For
          // the publisher the anchor is the publish instant itself.
          std::int64_t anchor;
          if (up_node == p.publisher) {
            anchor = p.publish_t_us;
          } else {
            anchor = -1;
            for (const std::uint64_t copy_id : p.copies) {
              const auto cit = copies_.find(copy_id);
              if (cit == copies_.end()) continue;
              const CopyEvents& c2 = cit->second;
              if (c2.to != up_node) continue;
              std::int64_t evidence = std::numeric_limits<std::int64_t>::max();
              if (c2.ack_tx >= 0) evidence = c2.ack_t_us;
              for (const std::int64_t d : c2.dedup_times_us) {
                evidence = std::min(evidence, d);
              }
              if (evidence <= enqueue_t && evidence > anchor) {
                anchor = evidence;
              }
            }
            if (anchor < 0) anchor = enqueue_t;  // no evidence: zero hold
          }

          // Hold span [anchor, enqueue]: credit the union of sibling-copy
          // failure windows (their timers ran while the packet sat here) to
          // retransmit_wait; the rest is processing/dedup residual.
          if (enqueue_t > anchor) {
            std::vector<std::pair<std::int64_t, std::int64_t>> windows;
            int fired = 0;
            for (const std::uint64_t copy_id : p.copies) {
              const auto cit = copies_.find(copy_id);
              if (cit == copies_.end()) continue;
              const CopyEvents& c3 = cit->second;
              if (c3.from != up_node || c3.budget_exhausted_t_us < 0 ||
                  c3.enqueue_t_us < 0) {
                continue;
              }
              const std::int64_t lo = std::max(c3.enqueue_t_us, anchor);
              const std::int64_t hi =
                  std::min(c3.budget_exhausted_t_us, enqueue_t);
              if (lo >= hi) continue;
              windows.push_back({lo, hi});
              for (std::size_t k = 1; k < c3.tx_times_us.size(); ++k) {
                const std::int64_t t = c3.tx_times_us[k];
                if (t > lo && t <= hi) ++fired;
              }
              if (c3.budget_exhausted_t_us <= enqueue_t) ++fired;
            }
            const std::int64_t wait = IntervalUnionLength(windows);
            comp.retransmit_wait_us += wait;
            comp.residual_us += (enqueue_t - anchor) - wait;
            out.timeouts += fired;
            if (wait > 0) {
              BrokerDelayStats& b = broker_stats[up_node];
              b.node = up_node;
              ++b.wait_segments;
              b.wait_us += wait;
            }
          }

          if (up_node == p.publisher) {
            out.chain_complete = true;
            break;
          }
          if (anchor >= cur_t) break;  // no progress: stop, leave residual
          cur_node = up_node;
          cur_t = anchor;
        }
      }

      // Exact-sum closure: whatever the walk could not attribute — an
      // incomplete chain's head, or nothing at all when the chain closed —
      // lands in residual. Components now sum to total by construction.
      const std::int64_t unattributed = out.total_us - comp.Sum();
      comp.residual_us += unattributed;
      if (!out.chain_complete && out.subscriber != out.publisher) {
        ++result.incomplete_chains;
      }

      result.total_histogram.Record(out.total_us);
      for (int i = 0; i < kDelayComponentCount; ++i) {
        result.component_histograms[static_cast<std::size_t>(i)].Record(
            DelayComponentValue(comp, i));
      }
      EpochDelayStats& epoch = epoch_stats[out.epoch];
      epoch.epoch = out.epoch;
      epoch.start_t_us =
          result.epoch_starts_us[static_cast<std::size_t>(out.epoch)];
      ++epoch.deliveries;
      for (int i = 0; i < kDelayComponentCount; ++i) {
        epoch.component_sums_us[static_cast<std::size_t>(i)] +=
            DelayComponentValue(comp, i);
      }
      result.deliveries.push_back(std::move(out));
    }
  }

  // Deterministic output order regardless of hash-map iteration.
  std::sort(result.deliveries.begin(), result.deliveries.end(),
            [](const DeliveryDecomposition& a,
               const DeliveryDecomposition& b) {
              if (a.deliver_t_us != b.deliver_t_us) {
                return a.deliver_t_us < b.deliver_t_us;
              }
              if (a.packet != b.packet) return a.packet < b.packet;
              return a.subscriber < b.subscriber;
            });
  // Stacked-area continuity: emit every epoch, including empty ones.
  for (std::size_t e = 0; e < result.epoch_starts_us.size(); ++e) {
    EpochDelayStats& epoch = epoch_stats[static_cast<int>(e)];
    epoch.epoch = static_cast<int>(e);
    epoch.start_t_us = result.epoch_starts_us[e];
  }
  for (auto& [index, epoch] : epoch_stats) {
    (void)index;
    result.epochs.push_back(epoch);
  }
  for (auto& [link, stats] : link_stats) {
    (void)link;
    result.links.push_back(stats);
  }
  for (auto& [node, stats] : broker_stats) {
    (void)node;
    result.brokers.push_back(stats);
  }
  return result;
}

}  // namespace dcrd
