#include "obs/timeseries.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <ostream>
#include <utility>

#include "common/logging.h"
#include "event/scheduler.h"
#include "obs/json_util.h"

namespace dcrd {

namespace {

// SLO ratios are the only non-integer values in the export; fixed %.6f
// keeps the byte output deterministic across libstdc++ versions.
std::string FormatRatio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return std::string(buf);
}

const char* PolicyName(MergePolicy policy) {
  return policy == MergePolicy::kReplicated ? "replicated" : "sum";
}

bool ParsePolicy(const std::string& s, MergePolicy* out) {
  if (s == "sum") {
    *out = MergePolicy::kSum;
    return true;
  }
  if (s == "replicated") {
    *out = MergePolicy::kReplicated;
    return true;
  }
  return false;
}

// Index of a named counter/histogram in the store, or npos.
constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

std::size_t FindName(const std::vector<std::string>& names,
                     const std::string& name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  return kNotFound;
}

}  // namespace

TimeSeriesSampler::TimeSeriesSampler(const MetricsRegistry& registry,
                                     Scheduler& scheduler,
                                     const TimeSeriesConfig& config,
                                     BrokerHealthSource health)
    : registry_(registry),
      scheduler_(scheduler),
      interval_(config.interval),
      end_(config.end),
      health_(std::move(health)) {
  DCRD_CHECK(interval_.micros() > 0);
  store_.interval_us = interval_.micros();
  store_.node_count = config.node_count;

  // Sample budget: t = 0 baseline, one per interval through `end`, plus the
  // FinalizeAt tail. Everything below reserves against it so steady-state
  // sampling never reallocates.
  const std::size_t budget =
      static_cast<std::size_t>(end_.micros() / interval_.micros()) + 2;
  store_.t_us.reserve(budget);

  store_.counter_names.reserve(registry.counter_count());
  store_.counter_policies.reserve(registry.counter_count());
  store_.counter_deltas.resize(registry.counter_count());
  prev_counters_.assign(registry.counter_count(), 0);
  for (std::size_t i = 0; i < registry.counter_count(); ++i) {
    store_.counter_names.push_back(registry.counter_name(i));
    store_.counter_policies.push_back(registry.counter_policy(i));
    store_.counter_deltas[i].reserve(budget);
  }

  store_.gauge_names.reserve(registry.gauge_count());
  store_.gauge_policies.reserve(registry.gauge_count());
  store_.gauge_values.resize(registry.gauge_count());
  for (std::size_t i = 0; i < registry.gauge_count(); ++i) {
    store_.gauge_names.push_back(registry.gauge_name(i));
    store_.gauge_policies.push_back(registry.gauge_policy(i));
    store_.gauge_values[i].reserve(budget);
  }

  const std::size_t pool_reserve = config.histogram_pool_reserve != 0
                                       ? config.histogram_pool_reserve
                                       : budget * 48;
  store_.histogram_names.reserve(registry.histogram_count());
  store_.histogram_deltas.resize(registry.histogram_count());
  shadows_.resize(registry.histogram_count());
  for (std::size_t i = 0; i < registry.histogram_count(); ++i) {
    store_.histogram_names.push_back(registry.histogram_name(i));
    TimeSeriesStore::HistogramDeltas& deltas = store_.histogram_deltas[i];
    deltas.bucket.reserve(pool_reserve);
    deltas.count.reserve(pool_reserve);
    deltas.end_offset.reserve(budget);
    deltas.count_delta.reserve(budget);
    deltas.sum_delta.reserve(budget);
    shadows_[i].buckets.assign(LogLinearHistogram::kBucketCount, 0);
  }

  if (store_.node_count > 0) {
    store_.broker_pending.reserve(budget * store_.node_count);
    store_.broker_dedup.reserve(budget * store_.node_count);
    store_.broker_rto_us.reserve(budget * store_.node_count);
    health_scratch_.resize(store_.node_count);
  }

  SampleNow();  // t = 0 baseline
  ScheduleNext();
}

void TimeSeriesSampler::SampleNow() {
  AppendSample(scheduler_.now().micros());
}

void TimeSeriesSampler::FinalizeAt(SimTime t) {
  if (!store_.t_us.empty() && t.micros() == store_.t_us.back()) return;
  DCRD_CHECK(store_.t_us.empty() || t.micros() > store_.t_us.back());
  AppendSample(t.micros());
}

void TimeSeriesSampler::AppendSample(std::int64_t t_us) {
  store_.t_us.push_back(t_us);

  for (std::size_t i = 0; i < store_.counter_deltas.size(); ++i) {
    const std::uint64_t value = registry_.counter_value(i);
    store_.counter_deltas[i].push_back(value - prev_counters_[i]);
    prev_counters_[i] = value;
  }

  for (std::size_t i = 0; i < store_.gauge_values.size(); ++i) {
    store_.gauge_values[i].push_back(registry_.gauge_value(i));
  }

  for (std::size_t i = 0; i < store_.histogram_deltas.size(); ++i) {
    const LogLinearHistogram& h = registry_.histogram(i);
    TimeSeriesStore::HistogramDeltas& deltas = store_.histogram_deltas[i];
    HistogramShadow& shadow = shadows_[i];
    for (int b = 0; b < LogLinearHistogram::kBucketCount; ++b) {
      const std::uint64_t now = h.CountAt(b);
      const std::uint64_t prev = shadow.buckets[static_cast<std::size_t>(b)];
      if (now != prev) {
        deltas.bucket.push_back(static_cast<std::uint32_t>(b));
        deltas.count.push_back(now - prev);
        shadow.buckets[static_cast<std::size_t>(b)] = now;
      }
    }
    deltas.end_offset.push_back(deltas.bucket.size());
    deltas.count_delta.push_back(h.count() - shadow.count);
    deltas.sum_delta.push_back(h.sum() - shadow.sum);
    shadow.count = h.count();
    shadow.sum = h.sum();
  }

  if (store_.node_count > 0) {
    for (BrokerHealth& b : health_scratch_) b = BrokerHealth{};
    if (health_) health_(health_scratch_);
    for (const BrokerHealth& b : health_scratch_) {
      store_.broker_pending.push_back(b.pending_copies);
      store_.broker_dedup.push_back(b.dedup_entries);
      store_.broker_rto_us.push_back(b.rto_us);
    }
  }
}

void TimeSeriesSampler::ScheduleNext() {
  if (scheduler_.now() + interval_ > end_) return;
  scheduler_.ScheduleAfter(interval_, [this] {
    SampleNow();
    ScheduleNext();
  });
}

namespace {

void MergeColumn(std::vector<std::uint64_t>& into,
                 const std::vector<std::uint64_t>& from, MergePolicy policy) {
  DCRD_CHECK(into.size() == from.size());
  if (policy == MergePolicy::kReplicated) return;  // shard 0 speaks for all
  for (std::size_t i = 0; i < into.size(); ++i) into[i] += from[i];
}

// Merges per-sample bucket-delta runs across shards. Within one sample each
// shard's run is ascending by bucket, so a per-sample scatter into a dense
// scratch array and an ascending re-emit reproduces exactly what a single
// shard observing all the traffic would have recorded.
TimeSeriesStore::HistogramDeltas MergeHistogramDeltas(
    const std::vector<const TimeSeriesStore::HistogramDeltas*>& parts,
    std::size_t samples) {
  TimeSeriesStore::HistogramDeltas out;
  out.end_offset.reserve(samples);
  out.count_delta.assign(samples, 0);
  out.sum_delta.assign(samples, 0);
  std::array<std::uint64_t, LogLinearHistogram::kBucketCount> scratch{};
  std::vector<std::uint32_t> touched;
  for (std::size_t s = 0; s < samples; ++s) {
    touched.clear();
    for (const TimeSeriesStore::HistogramDeltas* part : parts) {
      DCRD_CHECK(part->end_offset.size() == samples);
      const std::size_t begin = s == 0 ? 0 : part->end_offset[s - 1];
      const std::size_t end = part->end_offset[s];
      for (std::size_t k = begin; k < end; ++k) {
        const std::uint32_t b = part->bucket[k];
        if (scratch[b] == 0) touched.push_back(b);
        scratch[b] += part->count[k];
      }
      out.count_delta[s] += part->count_delta[s];
      out.sum_delta[s] += part->sum_delta[s];
    }
    std::sort(touched.begin(), touched.end());
    for (const std::uint32_t b : touched) {
      out.bucket.push_back(b);
      out.count.push_back(scratch[b]);
      scratch[b] = 0;
    }
    out.end_offset.push_back(out.bucket.size());
  }
  return out;
}

}  // namespace

TimeSeriesStore MergeTimeSeriesStores(
    const std::vector<const TimeSeriesStore*>& stores) {
  DCRD_CHECK(!stores.empty());
  TimeSeriesStore out = *stores.front();
  for (std::size_t s = 1; s < stores.size(); ++s) {
    const TimeSeriesStore& other = *stores[s];
    DCRD_CHECK(other.interval_us == out.interval_us);
    DCRD_CHECK(other.node_count == out.node_count);
    DCRD_CHECK(other.t_us == out.t_us);
    DCRD_CHECK(other.counter_names == out.counter_names);
    DCRD_CHECK(other.gauge_names == out.gauge_names);
    DCRD_CHECK(other.histogram_names == out.histogram_names);
    for (std::size_t i = 0; i < out.counter_deltas.size(); ++i) {
      MergeColumn(out.counter_deltas[i], other.counter_deltas[i],
                  out.counter_policies[i]);
    }
    for (std::size_t i = 0; i < out.gauge_values.size(); ++i) {
      MergeColumn(out.gauge_values[i], other.gauge_values[i],
                  out.gauge_policies[i]);
    }
    MergeColumn(out.broker_pending, other.broker_pending, MergePolicy::kSum);
    MergeColumn(out.broker_dedup, other.broker_dedup, MergePolicy::kSum);
    MergeColumn(out.broker_rto_us, other.broker_rto_us, MergePolicy::kSum);
  }
  if (stores.size() > 1) {
    for (std::size_t i = 0; i < out.histogram_deltas.size(); ++i) {
      std::vector<const TimeSeriesStore::HistogramDeltas*> parts;
      parts.reserve(stores.size());
      for (const TimeSeriesStore* store : stores) {
        parts.push_back(&store->histogram_deltas[i]);
      }
      out.histogram_deltas[i] = MergeHistogramDeltas(parts, out.samples());
    }
  }
  return out;
}

std::vector<SloWindow> ComputeSloSeries(const TimeSeriesStore& store) {
  const std::size_t published =
      FindName(store.counter_names, "slo.pairs_published");
  const std::size_t delivered =
      FindName(store.counter_names, "slo.pairs_delivered");
  const std::size_t on_time =
      FindName(store.counter_names, "slo.pairs_on_time");
  if (published == kNotFound || delivered == kNotFound ||
      on_time == kNotFound) {
    return {};
  }
  const std::size_t delay_hist =
      FindName(store.histogram_names, "delivery.delay_us");

  std::vector<SloWindow> windows;
  if (store.samples() < 2) return windows;
  windows.reserve(store.samples() - 1);
  LogLinearHistogram scratch;
  for (std::size_t s = 1; s < store.samples(); ++s) {
    SloWindow w;
    w.t_us = store.t_us[s];
    w.published = store.counter_deltas[published][s];
    w.delivered = store.counter_deltas[delivered][s];
    w.on_time = store.counter_deltas[on_time][s];
    w.delivery_ratio =
        w.published == 0
            ? 1.0
            : static_cast<double>(w.delivered) / static_cast<double>(w.published);
    w.violation_rate =
        w.delivered == 0
            ? 0.0
            : static_cast<double>(w.delivered - w.on_time) /
                  static_cast<double>(w.delivered);
    if (delay_hist != kNotFound) {
      const TimeSeriesStore::HistogramDeltas& deltas =
          store.histogram_deltas[delay_hist];
      const std::size_t begin = deltas.end_offset[s - 1];
      const std::size_t end = deltas.end_offset[s];
      if (end > begin) {
        // Rebuild the window's distribution from raw-bucket deltas. Min and
        // max are bucket bounds rather than exact observations, so wide-
        // bucket quantiles may clamp slightly differently than a live
        // histogram's — deterministic either way.
        HistogramSnapshot snap;
        snap.count = deltas.count_delta[s];
        snap.sum = deltas.sum_delta[s];
        snap.buckets.reserve(end - begin);
        for (std::size_t k = begin; k < end; ++k) {
          const int b = static_cast<int>(deltas.bucket[k]);
          snap.buckets.push_back({LogLinearHistogram::BucketLo(b),
                                  LogLinearHistogram::BucketHi(b),
                                  deltas.count[k]});
        }
        snap.min = snap.buckets.front().lo;
        snap.max = snap.buckets.back().hi;
        scratch.Clear();
        scratch.AbsorbSnapshot(snap);
        w.delay_p50_us = scratch.ValueAtQuantile(0.50);
        w.delay_p90_us = scratch.ValueAtQuantile(0.90);
        w.delay_p99_us = scratch.ValueAtQuantile(0.99);
      }
    }
    windows.push_back(w);
  }
  return windows;
}

namespace {

void WriteSeriesSection(
    std::ostream& os, const char* value_key,
    const std::vector<std::string>& names,
    const std::vector<MergePolicy>& policies,
    const std::vector<std::vector<std::uint64_t>>& columns) {
  os << '{';
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i != 0) os << ',';
    os << "\n    ";
    WriteJsonEscaped(os, names[i]);
    os << ":{\"policy\":\"" << PolicyName(policies[i]) << "\",\"" << value_key
       << "\":";
    WriteU64Array(os, columns[i]);
    os << '}';
  }
  if (!names.empty()) os << "\n  ";
  os << '}';
}

}  // namespace

void WriteTimeSeriesJson(std::ostream& os, const TimeSeriesStore& store) {
  os << "{\n";
  os << "  \"schema\":\"dcrd-timeseries-v1\",\n";
  os << "  \"interval_us\":" << store.interval_us << ",\n";
  os << "  \"samples\":" << store.samples() << ",\n";
  os << "  \"node_count\":" << store.node_count << ",\n";
  os << "  \"t_us\":";
  WriteI64Array(os, store.t_us);
  os << ",\n  \"counters\":";
  WriteSeriesSection(os, "deltas", store.counter_names,
                     store.counter_policies, store.counter_deltas);
  os << ",\n  \"gauges\":";
  WriteSeriesSection(os, "values", store.gauge_names, store.gauge_policies,
                     store.gauge_values);
  os << ",\n  \"histograms\":{";
  for (std::size_t i = 0; i < store.histogram_names.size(); ++i) {
    if (i != 0) os << ',';
    const TimeSeriesStore::HistogramDeltas& deltas = store.histogram_deltas[i];
    os << "\n    ";
    WriteJsonEscaped(os, store.histogram_names[i]);
    os << ":{\"count_deltas\":";
    WriteU64Array(os, deltas.count_delta);
    os << ",\"sum_deltas\":";
    WriteU64Array(os, deltas.sum_delta);
    // Per-sample arrays of [bucket_lo, count] pairs; bucket identity is the
    // lo value (like HistogramSnapshot), not the internal index.
    os << ",\"buckets\":[";
    for (std::size_t s = 0; s < store.samples(); ++s) {
      if (s != 0) os << ',';
      const std::size_t begin = s == 0 ? 0 : deltas.end_offset[s - 1];
      const std::size_t end = deltas.end_offset[s];
      os << '[';
      for (std::size_t k = begin; k < end; ++k) {
        if (k != begin) os << ',';
        os << '['
           << LogLinearHistogram::BucketLo(static_cast<int>(deltas.bucket[k]))
           << ',' << deltas.count[k] << ']';
      }
      os << ']';
    }
    os << "]}";
  }
  if (!store.histogram_names.empty()) os << "\n  ";
  os << "},\n";
  os << "  \"brokers\":{\"pending_copies\":";
  WriteU64Array(os, store.broker_pending);
  os << ",\"dedup_entries\":";
  WriteU64Array(os, store.broker_dedup);
  os << ",\"rto_us\":";
  WriteU64Array(os, store.broker_rto_us);
  os << "},\n";
  const std::vector<SloWindow> slo = ComputeSloSeries(store);
  os << "  \"slo\":[";
  for (std::size_t i = 0; i < slo.size(); ++i) {
    const SloWindow& w = slo[i];
    if (i != 0) os << ',';
    os << "\n    {\"t_us\":" << w.t_us << ",\"published\":" << w.published
       << ",\"delivered\":" << w.delivered << ",\"on_time\":" << w.on_time
       << ",\"delivery_ratio\":" << FormatRatio(w.delivery_ratio)
       << ",\"violation_rate\":" << FormatRatio(w.violation_rate)
       << ",\"delay_p50_us\":" << w.delay_p50_us
       << ",\"delay_p90_us\":" << w.delay_p90_us
       << ",\"delay_p99_us\":" << w.delay_p99_us << '}';
  }
  if (!slo.empty()) os << "\n  ";
  os << "]\n}\n";
}

namespace {

bool LoadSeriesSection(JsonCursor& cursor, const char* value_key,
                       std::vector<std::string>* names,
                       std::vector<MergePolicy>* policies,
                       std::vector<std::vector<std::uint64_t>>* columns) {
  return cursor.ReadObject([&](const std::string& name) {
    names->push_back(name);
    policies->push_back(MergePolicy::kSum);
    columns->emplace_back();
    return cursor.ReadObject([&](const std::string& key) {
      if (key == "policy") {
        std::string text;
        if (!cursor.ReadString(&text)) return false;
        if (!ParsePolicy(text, &policies->back())) {
          cursor.Fail("unknown merge policy '" + text + "'");
          return false;
        }
        return true;
      }
      if (key == value_key) return cursor.ReadU64Array(&columns->back());
      return cursor.SkipValue();
    });
  });
}

}  // namespace

bool LoadTimeSeriesJson(std::string_view text, TimeSeriesStore* out,
                        std::string* error) {
  JsonCursor cursor;
  cursor.text = text;
  *out = TimeSeriesStore{};
  std::string schema;
  bool parsed = cursor.ReadObject([&](const std::string& key) {
    if (key == "schema") return cursor.ReadString(&schema);
    if (key == "interval_us") return cursor.ReadI64(&out->interval_us);
    if (key == "node_count") {
      std::uint64_t value = 0;
      if (!cursor.ReadU64(&value)) return false;
      out->node_count = static_cast<std::size_t>(value);
      return true;
    }
    if (key == "t_us") {
      return cursor.ReadArray([&] {
        std::int64_t value = 0;
        if (!cursor.ReadI64(&value)) return false;
        out->t_us.push_back(value);
        return true;
      });
    }
    if (key == "counters") {
      return LoadSeriesSection(cursor, "deltas", &out->counter_names,
                               &out->counter_policies, &out->counter_deltas);
    }
    if (key == "gauges") {
      return LoadSeriesSection(cursor, "values", &out->gauge_names,
                               &out->gauge_policies, &out->gauge_values);
    }
    if (key == "histograms") {
      return cursor.ReadObject([&](const std::string& name) {
        out->histogram_names.push_back(name);
        out->histogram_deltas.emplace_back();
        TimeSeriesStore::HistogramDeltas& deltas =
            out->histogram_deltas.back();
        return cursor.ReadObject([&](const std::string& key2) {
          if (key2 == "count_deltas") {
            return cursor.ReadU64Array(&deltas.count_delta);
          }
          if (key2 == "sum_deltas") {
            return cursor.ReadU64Array(&deltas.sum_delta);
          }
          if (key2 == "buckets") {
            return cursor.ReadArray([&] {
              const bool sample_ok = cursor.ReadArray([&] {
                std::uint64_t lo = 0;
                std::uint64_t count = 0;
                if (!cursor.Expect('[') || !cursor.ReadU64(&lo)) return false;
                if (!cursor.Expect(',') || !cursor.ReadU64(&count)) {
                  return false;
                }
                if (!cursor.Expect(']')) return false;
                deltas.bucket.push_back(static_cast<std::uint32_t>(
                    LogLinearHistogram::BucketIndex(lo)));
                deltas.count.push_back(count);
                return true;
              });
              deltas.end_offset.push_back(deltas.bucket.size());
              return sample_ok;
            });
          }
          return cursor.SkipValue();
        });
      });
    }
    if (key == "brokers") {
      return cursor.ReadObject([&](const std::string& key2) {
        if (key2 == "pending_copies") {
          return cursor.ReadU64Array(&out->broker_pending);
        }
        if (key2 == "dedup_entries") {
          return cursor.ReadU64Array(&out->broker_dedup);
        }
        if (key2 == "rto_us") return cursor.ReadU64Array(&out->broker_rto_us);
        return cursor.SkipValue();
      });
    }
    // "samples" and "slo" are derived; skip them (and unknown keys).
    return cursor.SkipValue();
  });
  if (!parsed || !cursor.ok()) {
    if (error != nullptr) {
      *error = cursor.error.empty() ? "malformed time-series JSON"
                                    : cursor.error;
    }
    return false;
  }
  if (schema != "dcrd-timeseries-v1") {
    if (error != nullptr) *error = "unknown schema '" + schema + "'";
    return false;
  }
  return true;
}

void PrintTimeSeries(std::ostream& os, const TimeSeriesStore& store) {
  const std::size_t n = store.samples();
  os << "time series: " << n << " samples, interval "
     << store.interval_us / 1000 << " ms, " << store.counter_names.size()
     << " counters, " << store.gauge_names.size() << " gauges, "
     << store.histogram_names.size() << " histograms, " << store.node_count
     << " brokers\n";
  if (n == 0) return;
  os << "  span: t=" << store.t_us.front() << "us .. t=" << store.t_us.back()
     << "us\n";

  os << "counter totals (sum of sampled deltas):\n";
  for (std::size_t i = 0; i < store.counter_names.size(); ++i) {
    std::uint64_t total = 0;
    for (const std::uint64_t d : store.counter_deltas[i]) total += d;
    os << "  " << store.counter_names[i] << " = " << total << " ["
       << PolicyName(store.counter_policies[i]) << "]\n";
  }

  if (!store.gauge_names.empty()) {
    os << "gauge ranges (min..max, final):\n";
    for (std::size_t i = 0; i < store.gauge_names.size(); ++i) {
      const std::vector<std::uint64_t>& values = store.gauge_values[i];
      std::uint64_t lo = values.empty() ? 0 : values.front();
      std::uint64_t hi = lo;
      for (const std::uint64_t v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      os << "  " << store.gauge_names[i] << " = " << lo << ".." << hi
         << ", final " << (values.empty() ? 0 : values.back()) << "\n";
    }
  }

  const std::vector<SloWindow> slo = ComputeSloSeries(store);
  if (!slo.empty()) {
    // Stride the table down to at most ~24 rows so long runs stay readable.
    const std::size_t stride = slo.size() > 24 ? (slo.size() + 23) / 24 : 1;
    os << "SLO windows (every " << stride << "):\n";
    os << "  t_ms       pub     dlv  on_time   ratio  viol     p50us    "
          "p99us\n";
    for (std::size_t i = 0; i < slo.size(); i += stride) {
      const SloWindow& w = slo[i];
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  %-9lld %7llu %7llu %8llu  %.4f  %.4f  %8llu %8llu\n",
                    static_cast<long long>(w.t_us / 1000),
                    static_cast<unsigned long long>(w.published),
                    static_cast<unsigned long long>(w.delivered),
                    static_cast<unsigned long long>(w.on_time),
                    w.delivery_ratio, w.violation_rate,
                    static_cast<unsigned long long>(w.delay_p50_us),
                    static_cast<unsigned long long>(w.delay_p99_us));
      os << line;
    }
  }
}

}  // namespace dcrd
