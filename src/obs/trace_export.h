// Trace formatting, parsing and export.
//
// Three representations of a trace:
//  * JSONL — one JSON object per line, the flight recorder's sink format.
//    FormatTraceJsonl writes into a caller-provided buffer (no allocation;
//    the recorder's flush path depends on that), ParseTraceJsonl inverts it.
//  * Chrome trace_event JSON — loadable in Perfetto / chrome://tracing.
//    One track (tid) per broker under a single "dcrd-sim" process. A copy's
//    wire lifetime (first hop-send to ACK or budget exhaustion) becomes an
//    async begin/end pair keyed by the copy id; everything else is an
//    instant event on its broker's track.
//  * Human text — one line per record, used by the postmortem dump and the
//    dcrd_trace packet-timeline view.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace_record.h"

namespace dcrd {

// Upper bound on one formatted JSONL/human line, incl. the trailing
// newline/NUL. Every numeric field is bounded (u64 <= 20 digits), so 256 is
// comfortably above the worst case.
inline constexpr std::size_t kMaxTraceLineBytes = 256;

// Writes `record` as one JSONL line (trailing '\n', NUL-terminated) into
// `buf`; returns the line length excluding the NUL. `cap` must be at least
// kMaxTraceLineBytes.
int FormatTraceJsonl(const TraceRecord& record, char* buf, std::size_t cap);

// Writes `record` as one human-readable line (no trailing newline) into
// `buf`; returns the length. `cap` must be at least kMaxTraceLineBytes.
int FormatTraceHuman(const TraceRecord& record, char* buf, std::size_t cap);

// Parses a FormatTraceJsonl line back into `out`. Returns false on a
// malformed or unrecognised line (blank lines are malformed too).
bool ParseTraceJsonl(std::string_view line, TraceRecord* out);

// Reads a whole JSONL stream, skipping blank lines; unparseable lines are
// counted into *dropped_lines when given, otherwise ignored silently.
std::vector<TraceRecord> ReadTraceJsonl(std::istream& in,
                                        std::size_t* dropped_lines = nullptr);

// Streaming reader: parses the JSONL stream one line at a time (bounded
// memory — the whole trace is never materialised) and invokes `fn` per
// record. Blank lines are skipped. Stops at the first malformed line,
// returning false with the 1-based line number in *bad_line and the
// offending text (truncated) in *bad_text when given. Returns true when the
// whole stream parsed.
bool ForEachTraceJsonl(std::istream& in,
                       const std::function<void(const TraceRecord&)>& fn,
                       std::size_t* bad_line = nullptr,
                       std::string* bad_text = nullptr);

// Deterministic K-way merge over several JSONL streams — the reader for a
// sharded run's per-shard trace files. Each stream must be sorted by
// (t_us, seq), which every FlightRecorder file is by construction (sim time
// is monotone per shard, seq is the recorder's running count). Records are
// delivered in (t_us, seq, shard) order; streams whose shard stamps differ
// therefore merge identically regardless of argument order (same-shard ties
// fall back to stream index). Memory is one buffered record per stream. On
// a malformed line, returns false with the offending stream's index in
// *bad_file plus the usual line/text diagnostics.
bool ForEachMergedTraceJsonl(
    const std::vector<std::istream*>& ins,
    const std::function<void(const TraceRecord&)>& fn,
    std::size_t* bad_file = nullptr, std::size_t* bad_line = nullptr,
    std::string* bad_text = nullptr);

// Writes the records as a Chrome trace_event JSON document ("traceEvents"
// array). Records need not be sorted; the export sorts by time internally.
// With a non-null `profile` (a shard-execution profile from the same run,
// see obs/shard_profiler.h) the document gains a second process,
// "dcrd-exec", with one wall-clock track per shard: alternating busy/stall
// complete spans per round bucket, so a Perfetto timeline shows which shard
// straggled and which shards waited at the barrier. With a non-null
// `series` (a time-series store from the same run, obs/timeseries.h) it
// gains a third process, "dcrd-telemetry", carrying Perfetto counter
// tracks ("ph":"C") on the sim-time axis: per-window counter rates, gauge
// levels, aggregate broker health, and the deadline-SLO series.
struct ShardProfile;
struct TimeSeriesStore;
void WriteChromeTrace(std::ostream& os,
                      const std::vector<TraceRecord>& records,
                      const ShardProfile* profile = nullptr,
                      const TimeSeriesStore* series = nullptr);

// Prints every event belonging to `packet_id` (publish, per-hop sends and
// ACKs, reroutes, drops, deliveries) in time order — the "what happened to
// this packet" view. Returns the number of events printed.
std::size_t PrintPacketTimeline(std::ostream& os,
                                const std::vector<TraceRecord>& records,
                                std::uint64_t packet_id);

// Prints every event involving broker `broker_id` (as acting node or peer)
// in time order — the broker lifeline: crashes, restarts, resyncs, peer
// verdicts about it, and the traffic it handled. Returns the number of
// events printed.
std::size_t PrintBrokerTimeline(std::ostream& os,
                                const std::vector<TraceRecord>& records,
                                std::uint32_t broker_id);

// Prints per-kind event counts, the time span, and distinct packet/broker
// counts — dcrd_trace's default view.
void PrintTraceSummary(std::ostream& os,
                       const std::vector<TraceRecord>& records);

// Incremental form of PrintTraceSummary for streaming input: feed records
// one at a time, print at the end. Also watches for evidence that the trace
// is incomplete (a delivery whose publish record is missing — the signature
// of a ring-overwritten / truncated capture) so lossy dumps are called out
// instead of silently summarised.
class TraceSummaryAccumulator {
 public:
  void Add(const TraceRecord& record);
  // Packets seen with a kDeliver but no kPublish record.
  [[nodiscard]] std::size_t orphan_delivery_packets() const;
  void Print(std::ostream& os) const;

 private:
  std::array<std::uint64_t, kTraceEventKindCount> counts_{};
  std::set<std::uint64_t> packets_;
  std::set<std::uint64_t> published_;
  std::set<std::uint64_t> delivered_;
  std::set<std::uint32_t> brokers_;
  std::uint64_t total_ = 0;
  std::int64_t t_min_ = 0;
  std::int64_t t_max_ = 0;
};

}  // namespace dcrd
