// Trace formatting, parsing and export.
//
// Three representations of a trace:
//  * JSONL — one JSON object per line, the flight recorder's sink format.
//    FormatTraceJsonl writes into a caller-provided buffer (no allocation;
//    the recorder's flush path depends on that), ParseTraceJsonl inverts it.
//  * Chrome trace_event JSON — loadable in Perfetto / chrome://tracing.
//    One track (tid) per broker under a single "dcrd-sim" process. A copy's
//    wire lifetime (first hop-send to ACK or budget exhaustion) becomes an
//    async begin/end pair keyed by the copy id; everything else is an
//    instant event on its broker's track.
//  * Human text — one line per record, used by the postmortem dump and the
//    dcrd_trace packet-timeline view.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "obs/trace_record.h"

namespace dcrd {

// Upper bound on one formatted JSONL/human line, incl. the trailing
// newline/NUL. Every numeric field is bounded (u64 <= 20 digits), so 256 is
// comfortably above the worst case.
inline constexpr std::size_t kMaxTraceLineBytes = 256;

// Writes `record` as one JSONL line (trailing '\n', NUL-terminated) into
// `buf`; returns the line length excluding the NUL. `cap` must be at least
// kMaxTraceLineBytes.
int FormatTraceJsonl(const TraceRecord& record, char* buf, std::size_t cap);

// Writes `record` as one human-readable line (no trailing newline) into
// `buf`; returns the length. `cap` must be at least kMaxTraceLineBytes.
int FormatTraceHuman(const TraceRecord& record, char* buf, std::size_t cap);

// Parses a FormatTraceJsonl line back into `out`. Returns false on a
// malformed or unrecognised line (blank lines are malformed too).
bool ParseTraceJsonl(std::string_view line, TraceRecord* out);

// Reads a whole JSONL stream, skipping blank lines; unparseable lines are
// counted into *dropped_lines when given, otherwise ignored silently.
std::vector<TraceRecord> ReadTraceJsonl(std::istream& in,
                                        std::size_t* dropped_lines = nullptr);

// Writes the records as a Chrome trace_event JSON document ("traceEvents"
// array). Records need not be sorted; the export sorts by time internally.
void WriteChromeTrace(std::ostream& os,
                      const std::vector<TraceRecord>& records);

// Prints every event belonging to `packet_id` (publish, per-hop sends and
// ACKs, reroutes, drops, deliveries) in time order — the "what happened to
// this packet" view. Returns the number of events printed.
std::size_t PrintPacketTimeline(std::ostream& os,
                                const std::vector<TraceRecord>& records,
                                std::uint64_t packet_id);

// Prints per-kind event counts, the time span, and distinct packet/broker
// counts — dcrd_trace's default view.
void PrintTraceSummary(std::ostream& os,
                       const std::vector<TraceRecord>& records);

}  // namespace dcrd
