// Per-broker health sample, filled by the transport/router layer and
// consumed by the time-series sampler (obs/timeseries.h). Its own tiny
// header so routing code can implement the sampling hook without pulling in
// the whole time-series store.
#pragma once

#include <cstdint>

namespace dcrd {

// One broker's instantaneous health. All zero for a broker with nothing in
// flight — and, under sharded execution, on every shard that does not own
// the broker, which is what makes per-broker columns sum-mergeable across
// shards.
struct BrokerHealth {
  std::uint64_t pending_copies = 0;  // in-flight copies this broker is sending
  std::uint64_t dedup_entries = 0;   // receiver-side dedup table size
  // Largest live adaptive RTO (us) over the broker's outgoing links; 0
  // until the estimator has a real sample (and always 0 in fixed-timer
  // mode), so unfed estimators contribute nothing to the shard merge.
  std::uint64_t rto_us = 0;
};

}  // namespace dcrd
