// Continuous telemetry: fixed-interval sim-time sampling of the metrics
// registry into a columnar in-memory store (DESIGN.md §14).
//
// The sampler rides the scheduler like engine.cc's LinkStateSampler: a
// chain-scheduled, strictly read-only event every `interval` of sim time.
// Each sample snapshots counter DELTAS (since the previous sample), gauge
// LEVELS, raw-bucket histogram deltas, and per-broker health gauges
// (BrokerHealth) into columns that were fully reserved up front — the
// steady-state sampling path performs zero heap allocations (pinned by
// tests/perf/timeseries_alloc_test.cc) and never writes to stdout or
// touches RNG state, so enabling it leaves figure output byte-identical.
//
// Shard story: sharded runs construct one sampler per shard at the same
// setup point (keeping engine-origin event sequence numbers replicated) and
// fold the per-shard stores with MergeTimeSeriesStores at join, using the
// same MergePolicy rules as the metrics registry — kSum series add
// element-wise (non-owner shards contribute exactly 0), kReplicated series
// take shard 0's column. Deltas make this exact: a sum of per-shard deltas
// over the same window equals the 1-shard delta, so the merged series is
// byte-identical to a 1-shard run's.
//
// The windowed deadline-SLO view (per-window delivery ratio, deadline
// violation rate, delay quantiles) is a pure function over the stored
// deltas, computed by ComputeSloSeries at export time from the merged
// store — never during the run.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "obs/broker_health.h"
#include "obs/metrics_registry.h"

namespace dcrd {

class Scheduler;

struct TimeSeriesConfig {
  // Sampling cadence. Samples land at t = 0, interval, 2*interval, ...
  SimDuration interval = SimDuration::Seconds(1);
  // Last scheduled sample time; FinalizeAt appends the post-drain tail.
  SimTime end = SimTime::FromMicros(0);
  // Brokers to sample via the health source; 0 disables broker columns.
  std::size_t node_count = 0;
  // Reserve for each histogram's delta pool, in (bucket, count) entries.
  // 0 picks a default proportional to the sample budget.
  std::size_t histogram_pool_reserve = 0;
};

// Columnar store: one row per sample, one column per metric. Counters are
// stored as per-window deltas, gauges as sampled levels. Histogram deltas
// are a shared pool of (bucket index, count delta) pairs plus per-sample
// exclusive end offsets — dense enough to replay any window's distribution
// exactly, compact enough to reserve up front.
struct TimeSeriesStore {
  std::int64_t interval_us = 0;
  std::size_t node_count = 0;

  // Metric identities, copied from the registry in registration order.
  std::vector<std::string> counter_names;
  std::vector<MergePolicy> counter_policies;
  std::vector<std::string> gauge_names;
  std::vector<MergePolicy> gauge_policies;
  std::vector<std::string> histogram_names;

  std::vector<std::int64_t> t_us;  // sample times, ascending
  // Column-major: counter_deltas[c][s] is metric c's delta over window s.
  std::vector<std::vector<std::uint64_t>> counter_deltas;
  std::vector<std::vector<std::uint64_t>> gauge_values;

  struct HistogramDeltas {
    // Pool of non-empty bucket deltas, grouped by sample, buckets ascending
    // within a sample. `bucket` is a LogLinearHistogram bucket index.
    std::vector<std::uint32_t> bucket;
    std::vector<std::uint64_t> count;
    std::vector<std::size_t> end_offset;     // per sample, exclusive
    std::vector<std::uint64_t> count_delta;  // per sample
    std::vector<std::uint64_t> sum_delta;    // per sample
  };
  std::vector<HistogramDeltas> histogram_deltas;  // parallel to names

  // Per-broker health columns, sample-major: sample s, broker b lives at
  // [s * node_count + b]. Empty when node_count == 0. All kSum.
  std::vector<std::uint64_t> broker_pending;
  std::vector<std::uint64_t> broker_dedup;
  std::vector<std::uint64_t> broker_rto_us;

  [[nodiscard]] std::size_t samples() const { return t_us.size(); }
};

// Chain-scheduled sampler. Constructing it takes the t = 0 baseline sample
// and schedules the chain; SampleNow() drives it manually in tests.
class TimeSeriesSampler {
 public:
  // Fills `out` (pre-sized to node_count, zeroed) with per-broker health.
  using BrokerHealthSource = std::function<void(std::vector<BrokerHealth>&)>;

  // `registry` must already hold every metric the series should cover —
  // metrics registered later are not sampled. Both references must outlive
  // the sampler. `health` may be null (broker columns sample as zero).
  TimeSeriesSampler(const MetricsRegistry& registry, Scheduler& scheduler,
                    const TimeSeriesConfig& config,
                    BrokerHealthSource health = nullptr);

  // Appends one sample at scheduler.now(). Zero-allocation steady state.
  void SampleNow();

  // Appends the tail sample covering (last sample, t] — the post-drain
  // window up to global quiescence. No-op if t equals the last sample time
  // (t must not precede it). Call exactly once, after the run.
  void FinalizeAt(SimTime t);

  [[nodiscard]] const TimeSeriesStore& store() const { return store_; }

 private:
  void AppendSample(std::int64_t t_us);
  void ScheduleNext();

  const MetricsRegistry& registry_;
  Scheduler& scheduler_;
  const SimDuration interval_;
  const SimTime end_;
  BrokerHealthSource health_;
  TimeSeriesStore store_;

  // Previous-value shadows for delta computation.
  std::vector<std::uint64_t> prev_counters_;
  struct HistogramShadow {
    std::vector<std::uint64_t> buckets;  // kBucketCount entries
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  std::vector<HistogramShadow> shadows_;
  std::vector<BrokerHealth> health_scratch_;
};

// Folds per-shard stores into one by MergePolicy (see file comment). Every
// store must carry identical metric names/policies and sample times — true
// by construction for shard replicas, DCRD_CHECKed otherwise. A single-
// element merge is the identity; the 1-shard export path still goes
// through it so both paths share one code path.
[[nodiscard]] TimeSeriesStore MergeTimeSeriesStores(
    const std::vector<const TimeSeriesStore*>& stores);

// One window of the deadline-SLO view, derived from sample s >= 1 covering
// (t_us[s-1], t_us[s]]. Pairs here are (message, matched subscriber) pairs;
// "on time" means delivered within that subscriber's delay requirement.
struct SloWindow {
  std::int64_t t_us = 0;  // window end
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;
  std::uint64_t on_time = 0;
  double delivery_ratio = 1.0;   // delivered / published; 1 when idle
  double violation_rate = 0.0;   // (delivered - on_time) / delivered
  // Windowed delay quantiles from the delivery.delay_us histogram deltas;
  // zero for an empty window.
  std::uint64_t delay_p50_us = 0;
  std::uint64_t delay_p90_us = 0;
  std::uint64_t delay_p99_us = 0;
};

// Pure function of the (merged) store. Returns an empty vector when the
// slo.* counters are absent from the store.
[[nodiscard]] std::vector<SloWindow> ComputeSloSeries(
    const TimeSeriesStore& store);

// Serialises a store (plus its computed SLO series) as one JSON document,
// schema "dcrd-timeseries-v1". Deterministic byte output: integers only,
// except SLO ratios printed with fixed %.6f formatting.
void WriteTimeSeriesJson(std::ostream& os, const TimeSeriesStore& store);

// Parses a WriteTimeSeriesJson document. Returns false and sets *error on
// malformed input. Offline tooling path (dcrd_trace); allocates freely.
bool LoadTimeSeriesJson(std::string_view text, TimeSeriesStore* out,
                        std::string* error);

// Terminal rendering for `dcrd_trace --timeseries`: run shape, per-counter
// totals, gauge ranges, and the SLO window table (strided to fit a screen).
void PrintTimeSeries(std::ostream& os, const TimeSeriesStore& store);

}  // namespace dcrd
