// Minimal JSON reading/writing helpers shared by the observability file
// formats (shard profiles, time series).
//
// JsonCursor is a recursive-descent reader covering exactly the subset the
// dcrd schemas emit — objects, arrays, numbers, strings, true/false/null —
// with a SkipValue escape hatch for forward compatibility. Offline tooling
// path only: it allocates freely and is never near the simulation hot loop.
#pragma once

#include <cctype>
#include <charconv>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dcrd {

struct JsonCursor {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
  void Fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at byte " + std::to_string(pos);
    }
  }
  void SkipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }
  [[nodiscard]] bool Peek(char c) {
    SkipWs();
    return pos < text.size() && text[pos] == c;
  }
  bool Expect(char c) {
    SkipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    Fail(std::string("expected '") + c + "'");
    return false;
  }
  bool ReadString(std::string* out) {
    if (!Expect('"')) return false;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\' && pos < text.size()) {
        const char esc = text[pos++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          default: c = esc; break;
        }
      }
      out->push_back(c);
    }
    if (pos >= text.size()) {
      Fail("unterminated string");
      return false;
    }
    ++pos;  // closing quote
    return true;
  }
  bool ReadDouble(double* out) {
    SkipWs();
    const char* begin = text.data() + pos;
    const char* end = text.data() + text.size();
    const auto result = std::from_chars(begin, end, *out);
    if (result.ec != std::errc{}) {
      Fail("expected number");
      return false;
    }
    pos = static_cast<std::size_t>(result.ptr - text.data());
    return true;
  }
  bool ReadU64(std::uint64_t* out) {
    double value = 0;
    if (!ReadDouble(&value)) return false;
    *out = value < 0 ? 0 : static_cast<std::uint64_t>(value);
    return true;
  }
  bool ReadI64(std::int64_t* out) {
    double value = 0;
    if (!ReadDouble(&value)) return false;
    *out = static_cast<std::int64_t>(value);
    return true;
  }
  // Skips any well-formed value — the forward-compatibility escape hatch
  // for keys a newer writer added.
  bool SkipValue() {
    SkipWs();
    if (pos >= text.size()) {
      Fail("unexpected end of input");
      return false;
    }
    const char c = text[pos];
    if (c == '"') {
      std::string ignored;
      return ReadString(&ignored);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos;
      SkipWs();
      if (Peek(close)) {
        ++pos;
        return true;
      }
      while (ok()) {
        if (c == '{') {
          std::string key;
          if (!ReadString(&key) || !Expect(':')) return false;
        }
        if (!SkipValue()) return false;
        SkipWs();
        if (Peek(',')) {
          ++pos;
          continue;
        }
        return Expect(close);
      }
      return false;
    }
    if (c == 't') {
      pos += 4;
      return true;
    }
    if (c == 'f') {
      pos += 5;
      return true;
    }
    if (c == 'n') {
      pos += 4;
      return true;
    }
    double ignored = 0;
    return ReadDouble(&ignored);
  }
  // Iterates an object's members: calls fn(key) positioned at the value;
  // fn must consume exactly the value.
  template <typename Fn>
  bool ReadObject(Fn&& fn) {
    if (!Expect('{')) return false;
    if (Peek('}')) {
      ++pos;
      return true;
    }
    while (ok()) {
      std::string key;
      if (!ReadString(&key) || !Expect(':')) return false;
      if (!fn(key)) return false;
      SkipWs();
      if (Peek(',')) {
        ++pos;
        continue;
      }
      return Expect('}');
    }
    return false;
  }
  // Iterates an array: calls fn() positioned at each element.
  template <typename Fn>
  bool ReadArray(Fn&& fn) {
    if (!Expect('[')) return false;
    if (Peek(']')) {
      ++pos;
      return true;
    }
    while (ok()) {
      if (!fn()) return false;
      SkipWs();
      if (Peek(',')) {
        ++pos;
        continue;
      }
      return Expect(']');
    }
    return false;
  }
  bool ReadU64Array(std::vector<std::uint64_t>* out) {
    out->clear();
    return ReadArray([&] {
      std::uint64_t value = 0;
      if (!ReadU64(&value)) return false;
      out->push_back(value);
      return true;
    });
  }
};

inline void WriteU64Array(std::ostream& os,
                          const std::vector<std::uint64_t>& values) {
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ',';
    os << values[i];
  }
  os << ']';
}

inline void WriteI64Array(std::ostream& os,
                          const std::vector<std::int64_t>& values) {
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ',';
    os << values[i];
  }
  os << ']';
}

// Minimal JSON string escaping; names are code-chosen identifiers, but a
// stray quote must not corrupt the document.
inline void WriteJsonEscaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace dcrd
