#include "obs/metrics_registry.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

#include "common/logging.h"

namespace dcrd {

int LogLinearHistogram::BucketIndex(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);
  return (msb - (kSubBucketBits - 1)) * kSubBuckets +
         static_cast<int>((v >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
}

std::uint64_t LogLinearHistogram::BucketLo(int index) {
  DCRD_CHECK(index >= 0 && index < kBucketCount);
  const int group = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (group == 0) return static_cast<std::uint64_t>(sub);
  return static_cast<std::uint64_t>(kSubBuckets + sub) << (group - 1);
}

std::uint64_t LogLinearHistogram::BucketHi(int index) {
  DCRD_CHECK(index >= 0 && index < kBucketCount);
  if (index + 1 == kBucketCount) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return BucketLo(index + 1) - 1;
}

std::uint64_t LogLinearHistogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  // Nearest-rank with the same epsilon guard as stats.cc's Quantile, so the
  // histogram and the scalar path agree on which sample a quantile names.
  const double h = q * static_cast<double>(count_);
  std::uint64_t rank =
      h <= 1.0 ? 0 : static_cast<std::uint64_t>(std::ceil(h - 1e-9)) - 1;
  if (rank >= count_) rank = count_ - 1;

  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[static_cast<std::size_t>(i)];
    if (cumulative > rank) {
      const std::uint64_t lo = BucketLo(i);
      const std::uint64_t hi = BucketHi(i);
      std::uint64_t value = lo + (hi - lo) / 2;
      value = std::clamp(value, min_, max_);
      return value;
    }
  }
  return max_;
}

void LogLinearHistogram::MergeFrom(const LogLinearHistogram& other) {
  for (int i = 0; i < kBucketCount; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

HistogramSnapshot LogLinearHistogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_;
  snapshot.sum = sum_;
  snapshot.min = min_;
  snapshot.max = max_;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    snapshot.buckets.push_back({BucketLo(i), BucketHi(i), n});
  }
  return snapshot;
}

void LogLinearHistogram::AbsorbSnapshot(const HistogramSnapshot& snapshot) {
  for (const HistogramSnapshot::Bucket& bucket : snapshot.buckets) {
    // A bucket's lo value lands in that same bucket, so BucketIndex(lo)
    // recovers the index exactly.
    buckets_[static_cast<std::size_t>(BucketIndex(bucket.lo))] +=
        bucket.count;
  }
  count_ += snapshot.count;
  sum_ += snapshot.sum;
  if (snapshot.count > 0) {
    if (snapshot.min < min_) min_ = snapshot.min;
    if (snapshot.max > max_) max_ = snapshot.max;
  }
}

void LogLinearHistogram::Clear() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<std::uint64_t>::max();
  max_ = 0;
}

std::uint64_t* MetricsRegistry::AddCounter(std::string name,
                                           MergePolicy policy) {
  Counter& counter = counters_.emplace_back();
  counter.name = std::move(name);
  counter.policy = policy;
  return &counter.owned;
}

void MetricsRegistry::RegisterCounter(std::string name,
                                      const std::uint64_t* source,
                                      MergePolicy policy) {
  DCRD_CHECK(source != nullptr);
  Counter& counter = counters_.emplace_back();
  counter.name = std::move(name);
  counter.source = source;
  counter.policy = policy;
}

void MetricsRegistry::RegisterGauge(std::string name,
                                    std::function<std::uint64_t()> sample,
                                    MergePolicy policy) {
  DCRD_CHECK(sample != nullptr);
  Gauge& gauge = gauges_.emplace_back();
  gauge.name = std::move(name);
  gauge.sample = std::move(sample);
  gauge.policy = policy;
}

LogLinearHistogram* MetricsRegistry::AddHistogram(std::string name) {
  Histogram& histogram = histograms_.emplace_back();
  histogram.name = std::move(name);
  return &histogram.histogram;
}

void MetricsRegistry::SnapshotEpoch(SimTime t) {
  Epoch& epoch = epochs_.emplace_back();
  epoch.t_us = t.micros();
  epoch.counters.reserve(counters_.size());
  for (const Counter& counter : counters_) {
    epoch.counters.push_back(counter.value());
  }
  epoch.gauges.reserve(gauges_.size());
  for (const Gauge& gauge : gauges_) {
    epoch.gauges.push_back(gauge.sample());
  }
}

MetricsDoc MetricsRegistry::Collect() const {
  MetricsDoc doc;
  doc.epoch_t_us.reserve(epochs_.size());
  for (const Epoch& epoch : epochs_) doc.epoch_t_us.push_back(epoch.t_us);
  doc.counters.reserve(counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    MetricsDoc::Series& series = doc.counters.emplace_back();
    series.name = counters_[i].name;
    series.policy = counters_[i].policy;
    series.final_value = counters_[i].value();
    series.epochs.reserve(epochs_.size());
    for (const Epoch& epoch : epochs_) {
      series.epochs.push_back(epoch.counters[i]);
    }
  }
  doc.gauges.reserve(gauges_.size());
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    MetricsDoc::Series& series = doc.gauges.emplace_back();
    series.name = gauges_[i].name;
    series.policy = gauges_[i].policy;
    series.final_value = gauges_[i].sample();
    series.epochs.reserve(epochs_.size());
    for (const Epoch& epoch : epochs_) {
      series.epochs.push_back(epoch.gauges[i]);
    }
  }
  doc.histograms.reserve(histograms_.size());
  for (const Histogram& histogram : histograms_) {
    doc.histograms.push_back({histogram.name, histogram.histogram.Snapshot()});
  }
  return doc;
}

namespace {

// Folds `from` into `into` per the series' merge policy. Replicated series
// keep `into`'s (shard 0's) values untouched.
void MergeSeries(MetricsDoc::Series& into, const MetricsDoc::Series& from) {
  DCRD_CHECK(into.name == from.name && into.policy == from.policy &&
             into.epochs.size() == from.epochs.size())
      << "metric series disagree across shards: " << into.name;
  if (into.policy == MergePolicy::kReplicated) return;
  for (std::size_t e = 0; e < into.epochs.size(); ++e) {
    into.epochs[e] += from.epochs[e];
  }
  into.final_value += from.final_value;
}

}  // namespace

MetricsDoc MergeMetricsDocs(const std::vector<const MetricsDoc*>& docs) {
  DCRD_CHECK(!docs.empty());
  MetricsDoc merged = *docs.front();
  for (std::size_t d = 1; d < docs.size(); ++d) {
    const MetricsDoc& doc = *docs[d];
    DCRD_CHECK(doc.epoch_t_us == merged.epoch_t_us)
        << "epoch timestamps disagree across shards";
    DCRD_CHECK(doc.counters.size() == merged.counters.size() &&
               doc.gauges.size() == merged.gauges.size() &&
               doc.histograms.size() == merged.histograms.size());
    for (std::size_t i = 0; i < merged.counters.size(); ++i) {
      MergeSeries(merged.counters[i], doc.counters[i]);
    }
    for (std::size_t i = 0; i < merged.gauges.size(); ++i) {
      MergeSeries(merged.gauges[i], doc.gauges[i]);
    }
    for (std::size_t i = 0; i < merged.histograms.size(); ++i) {
      DCRD_CHECK(merged.histograms[i].name == doc.histograms[i].name);
      // Raw-bucket merge through a scratch histogram: AbsorbSnapshot maps
      // buckets back by lo value, so the merged snapshot is exactly what
      // one histogram fed every shard's samples would have produced.
      LogLinearHistogram scratch;
      scratch.AbsorbSnapshot(merged.histograms[i].snapshot);
      scratch.AbsorbSnapshot(doc.histograms[i].snapshot);
      merged.histograms[i].snapshot = scratch.Snapshot();
    }
  }
  return merged;
}

namespace {

// Minimal JSON string escaping; metric names are code-chosen identifiers,
// but a stray quote must not corrupt the document.
void WriteJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void WriteMetricsJson(std::ostream& os, const MetricsDoc& doc) {
  os << "{\n  \"epochs\": [";
  for (std::size_t e = 0; e < doc.epoch_t_us.size(); ++e) {
    os << (e == 0 ? "\n" : ",\n") << "    {\"t_us\": " << doc.epoch_t_us[e]
       << ", \"counters\": {";
    for (std::size_t i = 0; i < doc.counters.size(); ++i) {
      if (i > 0) os << ", ";
      WriteJsonString(os, doc.counters[i].name);
      os << ": " << doc.counters[i].epochs[e];
    }
    os << "}, \"gauges\": {";
    for (std::size_t i = 0; i < doc.gauges.size(); ++i) {
      if (i > 0) os << ", ";
      WriteJsonString(os, doc.gauges[i].name);
      os << ": " << doc.gauges[i].epochs[e];
    }
    os << "}}";
  }
  os << "\n  ],\n  \"counters\": {";
  for (std::size_t i = 0; i < doc.counters.size(); ++i) {
    if (i > 0) os << ", ";
    WriteJsonString(os, doc.counters[i].name);
    os << ": " << doc.counters[i].final_value;
  }
  os << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < doc.gauges.size(); ++i) {
    if (i > 0) os << ", ";
    WriteJsonString(os, doc.gauges[i].name);
    os << ": " << doc.gauges[i].final_value;
  }
  os << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < doc.histograms.size(); ++i) {
    // Rebuilt from the raw buckets so quantiles come out of the exact same
    // code path whether the doc was collected live or merged across shards.
    LogLinearHistogram h;
    h.AbsorbSnapshot(doc.histograms[i].snapshot);
    os << (i == 0 ? "\n" : ",\n") << "    ";
    WriteJsonString(os, doc.histograms[i].name);
    os << ": {\"count\": " << h.count();
    if (h.count() > 0) {
      const double mean =
          static_cast<double>(h.sum()) / static_cast<double>(h.count());
      os << ", \"min\": " << h.min() << ", \"max\": " << h.max()
         << ", \"mean\": " << mean << ", \"p50\": " << h.ValueAtQuantile(0.5)
         << ", \"p90\": " << h.ValueAtQuantile(0.9)
         << ", \"p99\": " << h.ValueAtQuantile(0.99)
         << ", \"p999\": " << h.ValueAtQuantile(0.999);
    }
    os << ", \"buckets\": [";
    bool first_bucket = true;
    for (int b = 0; b < LogLinearHistogram::kBucketCount; ++b) {
      if (h.CountAt(b) == 0) continue;
      if (!first_bucket) os << ", ";
      first_bucket = false;
      os << "[" << LogLinearHistogram::BucketLo(b) << ", "
         << LogLinearHistogram::BucketHi(b) << ", " << h.CountAt(b) << "]";
    }
    os << "]}";
  }
  os << "\n  }\n}\n";
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  WriteMetricsJson(os, Collect());
}

}  // namespace dcrd
