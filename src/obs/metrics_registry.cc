#include "obs/metrics_registry.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

#include "common/logging.h"

namespace dcrd {

int LogLinearHistogram::BucketIndex(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);
  return (msb - (kSubBucketBits - 1)) * kSubBuckets +
         static_cast<int>((v >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
}

std::uint64_t LogLinearHistogram::BucketLo(int index) {
  DCRD_CHECK(index >= 0 && index < kBucketCount);
  const int group = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (group == 0) return static_cast<std::uint64_t>(sub);
  return static_cast<std::uint64_t>(kSubBuckets + sub) << (group - 1);
}

std::uint64_t LogLinearHistogram::BucketHi(int index) {
  DCRD_CHECK(index >= 0 && index < kBucketCount);
  if (index + 1 == kBucketCount) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return BucketLo(index + 1) - 1;
}

std::uint64_t LogLinearHistogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  // Nearest-rank with the same epsilon guard as stats.cc's Quantile, so the
  // histogram and the scalar path agree on which sample a quantile names.
  const double h = q * static_cast<double>(count_);
  std::uint64_t rank =
      h <= 1.0 ? 0 : static_cast<std::uint64_t>(std::ceil(h - 1e-9)) - 1;
  if (rank >= count_) rank = count_ - 1;

  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[static_cast<std::size_t>(i)];
    if (cumulative > rank) {
      const std::uint64_t lo = BucketLo(i);
      const std::uint64_t hi = BucketHi(i);
      std::uint64_t value = lo + (hi - lo) / 2;
      value = std::clamp(value, min_, max_);
      return value;
    }
  }
  return max_;
}

void LogLinearHistogram::MergeFrom(const LogLinearHistogram& other) {
  for (int i = 0; i < kBucketCount; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

HistogramSnapshot LogLinearHistogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_;
  snapshot.sum = sum_;
  snapshot.min = min_;
  snapshot.max = max_;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    snapshot.buckets.push_back({BucketLo(i), BucketHi(i), n});
  }
  return snapshot;
}

void LogLinearHistogram::AbsorbSnapshot(const HistogramSnapshot& snapshot) {
  for (const HistogramSnapshot::Bucket& bucket : snapshot.buckets) {
    // A bucket's lo value lands in that same bucket, so BucketIndex(lo)
    // recovers the index exactly.
    buckets_[static_cast<std::size_t>(BucketIndex(bucket.lo))] +=
        bucket.count;
  }
  count_ += snapshot.count;
  sum_ += snapshot.sum;
  if (snapshot.count > 0) {
    if (snapshot.min < min_) min_ = snapshot.min;
    if (snapshot.max > max_) max_ = snapshot.max;
  }
}

void LogLinearHistogram::Clear() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<std::uint64_t>::max();
  max_ = 0;
}

std::uint64_t* MetricsRegistry::AddCounter(std::string name) {
  Counter& counter = counters_.emplace_back();
  counter.name = std::move(name);
  return &counter.owned;
}

void MetricsRegistry::RegisterCounter(std::string name,
                                      const std::uint64_t* source) {
  DCRD_CHECK(source != nullptr);
  Counter& counter = counters_.emplace_back();
  counter.name = std::move(name);
  counter.source = source;
}

void MetricsRegistry::RegisterGauge(std::string name,
                                    std::function<std::uint64_t()> sample) {
  DCRD_CHECK(sample != nullptr);
  Gauge& gauge = gauges_.emplace_back();
  gauge.name = std::move(name);
  gauge.sample = std::move(sample);
}

LogLinearHistogram* MetricsRegistry::AddHistogram(std::string name) {
  Histogram& histogram = histograms_.emplace_back();
  histogram.name = std::move(name);
  return &histogram.histogram;
}

void MetricsRegistry::SnapshotEpoch(SimTime t) {
  Epoch& epoch = epochs_.emplace_back();
  epoch.t_us = t.micros();
  epoch.counters.reserve(counters_.size());
  for (const Counter& counter : counters_) {
    epoch.counters.push_back(counter.value());
  }
  epoch.gauges.reserve(gauges_.size());
  for (const Gauge& gauge : gauges_) {
    epoch.gauges.push_back(gauge.sample());
  }
}

namespace {

// Minimal JSON string escaping; metric names are code-chosen identifiers,
// but a stray quote must not corrupt the document.
void WriteJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void MetricsRegistry::WriteJson(std::ostream& os) const {
  os << "{\n  \"epochs\": [";
  for (std::size_t e = 0; e < epochs_.size(); ++e) {
    const Epoch& epoch = epochs_[e];
    os << (e == 0 ? "\n" : ",\n") << "    {\"t_us\": " << epoch.t_us
       << ", \"counters\": {";
    for (std::size_t i = 0; i < epoch.counters.size(); ++i) {
      if (i > 0) os << ", ";
      WriteJsonString(os, counters_[i].name);
      os << ": " << epoch.counters[i];
    }
    os << "}, \"gauges\": {";
    for (std::size_t i = 0; i < epoch.gauges.size(); ++i) {
      if (i > 0) os << ", ";
      WriteJsonString(os, gauges_[i].name);
      os << ": " << epoch.gauges[i];
    }
    os << "}}";
  }
  os << "\n  ],\n  \"counters\": {";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i > 0) os << ", ";
    WriteJsonString(os, counters_[i].name);
    os << ": " << counters_[i].value();
  }
  os << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (i > 0) os << ", ";
    WriteJsonString(os, gauges_[i].name);
    os << ": " << gauges_[i].sample();
  }
  os << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const LogLinearHistogram& h = histograms_[i].histogram;
    os << (i == 0 ? "\n" : ",\n") << "    ";
    WriteJsonString(os, histograms_[i].name);
    os << ": {\"count\": " << h.count();
    if (h.count() > 0) {
      const double mean =
          static_cast<double>(h.sum()) / static_cast<double>(h.count());
      os << ", \"min\": " << h.min() << ", \"max\": " << h.max()
         << ", \"mean\": " << mean << ", \"p50\": " << h.ValueAtQuantile(0.5)
         << ", \"p90\": " << h.ValueAtQuantile(0.9)
         << ", \"p99\": " << h.ValueAtQuantile(0.99)
         << ", \"p999\": " << h.ValueAtQuantile(0.999);
    }
    os << ", \"buckets\": [";
    bool first_bucket = true;
    for (int b = 0; b < LogLinearHistogram::kBucketCount; ++b) {
      if (h.CountAt(b) == 0) continue;
      if (!first_bucket) os << ", ";
      first_bucket = false;
      os << "[" << LogLinearHistogram::BucketLo(b) << ", "
         << LogLinearHistogram::BucketHi(b) << ", " << h.CountAt(b) << "]";
    }
    os << "]}";
  }
  os << "\n  }\n}\n";
}

}  // namespace dcrd
