// Per-engine ring-buffer flight recorder.
//
// The recorder keeps the last `ring_capacity` TraceRecords in a
// preallocated ring. It is default-off: Record() is a single branch on
// `enabled_` before any work, so instrumented hot paths pay one predictable
// untaken branch when tracing is off (the <2% bench_micro_event_queue
// budget). When enabled, recording is an assignment into the preallocated
// ring — zero heap allocations in steady state, a property enforced by the
// alloc-counter regression tests.
//
// Two operating modes, chosen by whether a sink is attached:
//  * Ring only (postmortem mode): when the ring fills, the oldest record is
//    overwritten and counted in overwritten(). DumpPostmortem() renders the
//    last N surviving records — the "what just happened" view the invariant
//    checker and the engine's exception path use.
//  * Sink attached (full-trace mode): when the ring fills it is flushed to
//    the sink as JSONL (see trace_export.h) and emptied, so no record is
//    ever lost. Emission formats into a fixed stack buffer via snprintf and
//    writes with ostream::write — no allocation on the emit path either.
//
// The recorder only ever *reads* simulation state (the scheduler's clock);
// it never touches an RNG stream and never writes to stdout, so enabling it
// cannot perturb results — scripts/determinism_check.sh byte-diffs a traced
// against an untraced run to prove it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "event/scheduler.h"
#include "obs/trace_record.h"

namespace dcrd {

class FlightRecorder {
 public:
  struct Config {
    // Records kept before overwrite/flush. 1<<16 records = 2.5 MiB.
    std::size_t ring_capacity = std::size_t{1} << 16;
  };

  explicit FlightRecorder(const Scheduler& scheduler, Config config);
  explicit FlightRecorder(const Scheduler& scheduler)
      : FlightRecorder(scheduler, Config{}) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // Attaches a JSONL sink: the ring flushes into it when full (and on
  // Flush()). Pass nullptr to return to ring-only mode. The stream must
  // outlive the recorder or the next Flush.
  void set_sink(std::ostream* sink) { sink_ = sink; }

  // Names the engine shard this recorder serves. Every subsequent record is
  // stamped with it, and DumpPostmortem labels its header, so a lossy
  // multi-shard postmortem names the shard whose ring overwrote. Unsharded
  // recorders keep the default stamp 0 and an unlabeled header.
  void set_shard(int shard) {
    shard_ = static_cast<std::uint16_t>(shard);
    shard_labeled_ = true;
  }

  // Records one event at the scheduler's current sim time. The id wrappers
  // unwrap to their raw integers; pass default-constructed ids for fields
  // that do not apply. Hot path: one branch when disabled. Each record is
  // stamped with the recorder's shard and a running sequence number — the
  // tie-break that keeps multi-file merges deterministic.
  void Record(TraceEventKind kind, std::uint64_t packet, std::uint64_t copy,
              NodeId node, NodeId peer, LinkId link, std::uint8_t aux8 = 0,
              std::uint16_t aux16 = 0) {
    if (!enabled_) return;
    TraceRecord record;
    record.t_us = scheduler_.now().micros();
    record.packet = packet;
    record.copy = copy;
    record.node = node.underlying();
    record.peer = peer.underlying();
    record.link = link.underlying();
    record.seq = seq_++;
    record.kind = kind;
    record.aux8 = aux8;
    record.aux16 = aux16;
    record.shard = shard_;
    Append(record);
  }

  // Ring contents, oldest first. `at(0)` is the oldest surviving record.
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] const TraceRecord& at(std::size_t i) const {
    return ring_[(start_ + i) % ring_.size()];
  }

  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  // Records lost to ring wrap in ring-only mode (0 with a sink attached).
  [[nodiscard]] std::uint64_t overwritten() const { return overwritten_; }

  // Emits the ring to the sink as JSONL and empties it. No-op without a
  // sink. Called automatically when the ring fills in sink mode; call once
  // more at end of run to drain the tail.
  void Flush();

  // Renders the newest `last_n` records (or fewer, if the ring holds fewer)
  // to `os` in human-readable form, framed with `reason`. Used on invariant
  // violations and engine exceptions; not a hot path.
  void DumpPostmortem(std::ostream& os, std::size_t last_n,
                      std::string_view reason) const;

 private:
  void Append(const TraceRecord& record);

  const Scheduler& scheduler_;
  bool enabled_ = false;
  std::ostream* sink_ = nullptr;
  std::vector<TraceRecord> ring_;
  std::size_t start_ = 0;
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t overwritten_ = 0;
  std::uint32_t seq_ = 0;
  std::uint16_t shard_ = 0;
  bool shard_labeled_ = false;
};

}  // namespace dcrd
