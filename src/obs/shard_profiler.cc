#include "obs/shard_profiler.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <iterator>
#include <ostream>
#include <string>
#include <string_view>

#include "common/logging.h"
#include "obs/json_util.h"

namespace dcrd {
namespace {

// Scales a byte count to a short human unit for the heat table.
std::string HumanBytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= 10ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "M",
                  static_cast<std::uint64_t>(bytes / (1024 * 1024)));
  } else if (bytes >= 10ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "K",
                  static_cast<std::uint64_t>(bytes / 1024));
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, bytes);
  }
  return buf;
}

// Heat glyph for a cell relative to the hottest cell, darkest last.
char HeatGlyph(std::uint64_t value, std::uint64_t max) {
  static constexpr std::string_view kScale = " .:-=+*#%@";
  if (max == 0 || value == 0) return kScale.front();
  const std::size_t idx =
      1 + static_cast<std::size_t>((value - 1) * (kScale.size() - 2) / max);
  return kScale[std::min(idx, kScale.size() - 1)];
}

}  // namespace

std::uint64_t XMsgWireBytes(const XMsg& msg) {
  // Fixed envelope: kind + arrival tick + 128-bit canonical key + both
  // endpoints + link + copy/tx bookkeeping ≈ 48 bytes on a real wire.
  std::uint64_t bytes = 48;
  if (msg.kind == XMsgKind::kData) {
    // Payload the data copy would occupy: message header plus 4 bytes per
    // named subscriber and per recorded routing hop.
    bytes += 32 + 4 * static_cast<std::uint64_t>(
                          msg.packet.destinations().size()) +
             4 * static_cast<std::uint64_t>(msg.packet.routing_path().size());
  }
  return bytes;
}

ShardProfile MergeShardProfiles(
    const std::vector<const ShardProfiler*>& profilers,
    std::int64_t lookahead_us) {
  DCRD_CHECK(!profilers.empty());
  const int shards = profilers[0]->shards();
  DCRD_CHECK(static_cast<int>(profilers.size()) == shards);

  ShardProfile profile;
  profile.shards = shards;
  profile.lookahead_us = lookahead_us;
  profile.shard_totals.assign(static_cast<std::size_t>(shards), {});
  profile.matrix.assign(
      static_cast<std::size_t>(shards) * static_cast<std::size_t>(shards), {});

  // A shard that never closed its final round (should not happen — the
  // window loop closes every round before the done check) truncates the
  // merged series to the common minimum.
  std::size_t rounds = profilers[0]->rounds().size();
  for (const ShardProfiler* p : profilers) {
    DCRD_CHECK(p->shards() == shards);
    rounds = std::min(rounds, p->rounds().size());
  }
  profile.rounds = rounds;

  // Matrix: profiler `dst` owns column [*, dst]; out-totals for shard s are
  // its row sum, in-totals its column sum — so total in == total out by
  // construction and conservation is testable per shard.
  for (int dst = 0; dst < shards; ++dst) {
    const ShardProfiler& p = *profilers[static_cast<std::size_t>(dst)];
    for (int src = 0; src < shards; ++src) {
      ShardProfile::Edge& edge =
          profile.matrix[static_cast<std::size_t>(src) *
                             static_cast<std::size_t>(shards) +
                         static_cast<std::size_t>(dst)];
      edge.msgs = p.in_msgs_by_src()[static_cast<std::size_t>(src)];
      edge.bytes = p.in_bytes_by_src()[static_cast<std::size_t>(src)];
      profile.shard_totals[static_cast<std::size_t>(dst)].msgs_in += edge.msgs;
      profile.shard_totals[static_cast<std::size_t>(dst)].bytes_in +=
          edge.bytes;
      profile.shard_totals[static_cast<std::size_t>(src)].msgs_out += edge.msgs;
      profile.shard_totals[static_cast<std::size_t>(src)].bytes_out +=
          edge.bytes;
    }
  }

  for (int s = 0; s < shards; ++s) {
    const auto& samples = profilers[static_cast<std::size_t>(s)]->rounds();
    ShardProfile::Totals& totals =
        profile.shard_totals[static_cast<std::size_t>(s)];
    for (std::size_t r = 0; r < rounds; ++r) {
      totals.busy_ns += samples[r].busy_ns;
      totals.stall_ns += samples[r].stall_ns;
      totals.events += samples[r].events;
    }
  }

  // Fold the round series into ≤ kMaxShardProfileBuckets equal spans and
  // attribute each bucket to its critical (busiest) shard.
  const std::uint64_t buckets =
      std::min<std::uint64_t>(rounds, kMaxShardProfileBuckets);
  for (std::uint64_t b = 0; b < buckets; ++b) {
    ShardProfile::Bucket bucket;
    bucket.first_round = b * rounds / buckets;
    bucket.last_round = (b + 1) * rounds / buckets - 1;
    bucket.horizon_us = profilers[0]
                            ->rounds()[static_cast<std::size_t>(
                                bucket.last_round)]
                            .horizon_us;
    bucket.busy_ns.assign(static_cast<std::size_t>(shards), 0);
    bucket.stall_ns.assign(static_cast<std::size_t>(shards), 0);
    for (int s = 0; s < shards; ++s) {
      const auto& samples = profilers[static_cast<std::size_t>(s)]->rounds();
      for (std::uint64_t r = bucket.first_round; r <= bucket.last_round; ++r) {
        bucket.busy_ns[static_cast<std::size_t>(s)] +=
            samples[static_cast<std::size_t>(r)].busy_ns;
        bucket.stall_ns[static_cast<std::size_t>(s)] +=
            samples[static_cast<std::size_t>(r)].stall_ns;
      }
      if (bucket.busy_ns[static_cast<std::size_t>(s)] >
          bucket.busy_ns[static_cast<std::size_t>(bucket.critical_shard)]) {
        bucket.critical_shard = s;
      }
    }
    profile.buckets.push_back(std::move(bucket));
  }

  std::uint64_t max_busy = 0;
  std::uint64_t sum_busy = 0;
  for (const ShardProfile::Totals& totals : profile.shard_totals) {
    max_busy = std::max(max_busy, totals.busy_ns);
    sum_busy += totals.busy_ns;
  }
  profile.imbalance =
      sum_busy == 0 ? 1.0
                    : static_cast<double>(max_busy) * shards /
                          static_cast<double>(sum_busy);
  return profile;
}

void WriteShardProfileJson(std::ostream& os, const ShardProfile& profile) {
  const int shards = profile.shards;
  auto per_shard = [&](auto member) {
    std::vector<std::uint64_t> values;
    values.reserve(static_cast<std::size_t>(shards));
    for (const ShardProfile::Totals& totals : profile.shard_totals) {
      values.push_back(totals.*member);
    }
    return values;
  };

  os << "{\n";
  os << "  \"schema\": \"dcrd-shard-profile-v1\",\n";
  os << "  \"shards\": " << shards << ",\n";
  os << "  \"rounds\": " << profile.rounds << ",\n";
  os << "  \"lookahead_us\": " << profile.lookahead_us << ",\n";
  char imbalance[32];
  std::snprintf(imbalance, sizeof(imbalance), "%.6f", profile.imbalance);
  os << "  \"imbalance\": " << imbalance << ",\n";
  os << "  \"shard_busy_ns\": ";
  WriteU64Array(os, per_shard(&ShardProfile::Totals::busy_ns));
  os << ",\n  \"shard_stall_ns\": ";
  WriteU64Array(os, per_shard(&ShardProfile::Totals::stall_ns));
  os << ",\n  \"shard_events\": ";
  WriteU64Array(os, per_shard(&ShardProfile::Totals::events));
  os << ",\n  \"shard_msgs_in\": ";
  WriteU64Array(os, per_shard(&ShardProfile::Totals::msgs_in));
  os << ",\n  \"shard_bytes_in\": ";
  WriteU64Array(os, per_shard(&ShardProfile::Totals::bytes_in));
  os << ",\n  \"shard_msgs_out\": ";
  WriteU64Array(os, per_shard(&ShardProfile::Totals::msgs_out));
  os << ",\n  \"shard_bytes_out\": ";
  WriteU64Array(os, per_shard(&ShardProfile::Totals::bytes_out));
  os << ",\n  \"matrix_msgs\": [";
  for (int src = 0; src < shards; ++src) {
    if (src != 0) os << ',';
    os << "\n    [";
    for (int dst = 0; dst < shards; ++dst) {
      if (dst != 0) os << ',';
      os << profile.At(src, dst).msgs;
    }
    os << ']';
  }
  os << "\n  ],\n  \"matrix_bytes\": [";
  for (int src = 0; src < shards; ++src) {
    if (src != 0) os << ',';
    os << "\n    [";
    for (int dst = 0; dst < shards; ++dst) {
      if (dst != 0) os << ',';
      os << profile.At(src, dst).bytes;
    }
    os << ']';
  }
  os << "\n  ],\n  \"buckets\": [";
  for (std::size_t b = 0; b < profile.buckets.size(); ++b) {
    const ShardProfile::Bucket& bucket = profile.buckets[b];
    if (b != 0) os << ',';
    os << "\n    {\"first_round\": " << bucket.first_round
       << ", \"last_round\": " << bucket.last_round
       << ", \"horizon_us\": " << bucket.horizon_us
       << ", \"critical_shard\": " << bucket.critical_shard
       << ", \"busy_ns\": ";
    WriteU64Array(os, bucket.busy_ns);
    os << ", \"stall_ns\": ";
    WriteU64Array(os, bucket.stall_ns);
    os << '}';
  }
  os << "\n  ]\n}\n";
}

bool LoadShardProfileJson(std::istream& in, ShardProfile* out,
                          std::string* error) {
  std::string text(std::istreambuf_iterator<char>(in), {});
  JsonCursor cur;
  cur.text = text;
  ShardProfile profile;
  std::string schema;
  std::vector<std::uint64_t> busy, stall, events, msgs_in, bytes_in, msgs_out,
      bytes_out;
  std::vector<std::vector<std::uint64_t>> matrix_msgs, matrix_bytes;

  const bool parsed = cur.ReadObject([&](const std::string& key) {
    if (key == "schema") return cur.ReadString(&schema);
    if (key == "shards") {
      std::int64_t value = 0;
      if (!cur.ReadI64(&value)) return false;
      profile.shards = static_cast<int>(value);
      return true;
    }
    if (key == "rounds") return cur.ReadU64(&profile.rounds);
    if (key == "lookahead_us") return cur.ReadI64(&profile.lookahead_us);
    if (key == "imbalance") return cur.ReadDouble(&profile.imbalance);
    if (key == "shard_busy_ns") return cur.ReadU64Array(&busy);
    if (key == "shard_stall_ns") return cur.ReadU64Array(&stall);
    if (key == "shard_events") return cur.ReadU64Array(&events);
    if (key == "shard_msgs_in") return cur.ReadU64Array(&msgs_in);
    if (key == "shard_bytes_in") return cur.ReadU64Array(&bytes_in);
    if (key == "shard_msgs_out") return cur.ReadU64Array(&msgs_out);
    if (key == "shard_bytes_out") return cur.ReadU64Array(&bytes_out);
    if (key == "matrix_msgs" || key == "matrix_bytes") {
      auto& rows = key == "matrix_msgs" ? matrix_msgs : matrix_bytes;
      return cur.ReadArray([&] {
        rows.emplace_back();
        return cur.ReadU64Array(&rows.back());
      });
    }
    if (key == "buckets") {
      return cur.ReadArray([&] {
        ShardProfile::Bucket bucket;
        const bool read = cur.ReadObject([&](const std::string& field) {
          if (field == "first_round") return cur.ReadU64(&bucket.first_round);
          if (field == "last_round") return cur.ReadU64(&bucket.last_round);
          if (field == "horizon_us") return cur.ReadI64(&bucket.horizon_us);
          if (field == "critical_shard") {
            std::int64_t value = 0;
            if (!cur.ReadI64(&value)) return false;
            bucket.critical_shard = static_cast<int>(value);
            return true;
          }
          if (field == "busy_ns") return cur.ReadU64Array(&bucket.busy_ns);
          if (field == "stall_ns") return cur.ReadU64Array(&bucket.stall_ns);
          return cur.SkipValue();
        });
        if (read) profile.buckets.push_back(std::move(bucket));
        return read;
      });
    }
    return cur.SkipValue();
  });

  if (!parsed) {
    if (error != nullptr) *error = cur.error;
    return false;
  }
  if (schema != "dcrd-shard-profile-v1") {
    if (error != nullptr) {
      *error = "unrecognised schema \"" + schema + "\"";
    }
    return false;
  }
  const std::size_t shards = static_cast<std::size_t>(profile.shards);
  if (profile.shards <= 0 || busy.size() != shards || stall.size() != shards ||
      events.size() != shards || matrix_msgs.size() != shards ||
      matrix_bytes.size() != shards) {
    if (error != nullptr) *error = "per-shard array sizes disagree";
    return false;
  }
  profile.shard_totals.assign(shards, {});
  for (std::size_t s = 0; s < shards; ++s) {
    ShardProfile::Totals& totals = profile.shard_totals[s];
    totals.busy_ns = busy[s];
    totals.stall_ns = stall[s];
    totals.events = events[s];
    totals.msgs_in = s < msgs_in.size() ? msgs_in[s] : 0;
    totals.bytes_in = s < bytes_in.size() ? bytes_in[s] : 0;
    totals.msgs_out = s < msgs_out.size() ? msgs_out[s] : 0;
    totals.bytes_out = s < bytes_out.size() ? bytes_out[s] : 0;
  }
  profile.matrix.assign(shards * shards, {});
  for (std::size_t src = 0; src < shards; ++src) {
    if (matrix_msgs[src].size() != shards ||
        matrix_bytes[src].size() != shards) {
      if (error != nullptr) *error = "matrix row sizes disagree";
      return false;
    }
    for (std::size_t dst = 0; dst < shards; ++dst) {
      profile.matrix[src * shards + dst].msgs = matrix_msgs[src][dst];
      profile.matrix[src * shards + dst].bytes = matrix_bytes[src][dst];
    }
  }
  *out = std::move(profile);
  return true;
}

void PrintShardProfile(std::ostream& os, const ShardProfile& profile) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "shard-execution profile: %d shard(s), %" PRIu64
                " horizon round(s), lookahead %" PRId64 "us\n",
                profile.shards, profile.rounds, profile.lookahead_us);
  os << buf;
  std::snprintf(buf, sizeof(buf), "imbalance (max/mean busy): %.3f\n",
                profile.imbalance);
  os << buf;

  os << "shard      busy_ms     stall_ms       events      msgs_in"
        "     msgs_out     bytes_in    bytes_out\n";
  for (int s = 0; s < profile.shards; ++s) {
    const ShardProfile::Totals& t =
        profile.shard_totals[static_cast<std::size_t>(s)];
    std::snprintf(buf, sizeof(buf),
                  "%5d %12.3f %12.3f %12" PRIu64 " %12" PRIu64 " %12" PRIu64
                  " %12" PRIu64 " %12" PRIu64 "\n",
                  s, static_cast<double>(t.busy_ns) / 1e6,
                  static_cast<double>(t.stall_ns) / 1e6, t.events, t.msgs_in,
                  t.msgs_out, t.bytes_in, t.bytes_out);
    os << buf;
  }

  if (profile.shards > 1) {
    std::uint64_t max_bytes = 0;
    for (const ShardProfile::Edge& edge : profile.matrix) {
      max_bytes = std::max(max_bytes, edge.bytes);
    }
    os << "\ncross-shard traffic matrix (msgs bytes, heat by bytes), "
          "src rows -> dst cols:\n";
    os << " src\\dst";
    for (int dst = 0; dst < profile.shards; ++dst) {
      std::snprintf(buf, sizeof(buf), " %14d", dst);
      os << buf;
    }
    os << '\n';
    for (int src = 0; src < profile.shards; ++src) {
      std::snprintf(buf, sizeof(buf), "%8d", src);
      os << buf;
      for (int dst = 0; dst < profile.shards; ++dst) {
        const ShardProfile::Edge& edge = profile.At(src, dst);
        if (src == dst) {
          std::snprintf(buf, sizeof(buf), " %14s", "-");
        } else {
          char cell[64];
          std::snprintf(cell, sizeof(cell), "%" PRIu64 " %s%c", edge.msgs,
                        HumanBytes(edge.bytes).c_str(),
                        HeatGlyph(edge.bytes, max_bytes));
          std::snprintf(buf, sizeof(buf), " %14s", cell);
        }
        os << buf;
      }
      os << '\n';
    }
  }

  if (!profile.buckets.empty() && profile.shards > 1) {
    os << "\ncritical shard per round bucket (bucket:shard):\n ";
    for (std::size_t b = 0; b < profile.buckets.size(); ++b) {
      std::snprintf(buf, sizeof(buf), " %zu:%d", b,
                    profile.buckets[b].critical_shard);
      os << buf;
      if ((b + 1) % 16 == 0 && b + 1 < profile.buckets.size()) os << "\n ";
    }
    os << '\n';
  }
  os.flush();
}

}  // namespace dcrd
