// Shard-execution profiler: makes the sharded engine's runtime behaviour
// first-class data (DESIGN.md §13).
//
// One ShardProfiler per engine shard accumulates, lock-free and written by
// that shard's thread alone, a per-horizon-round wall-clock sample — busy
// vs barrier-stall nanoseconds, events executed, the round's horizon — plus
// a cross-shard traffic column: messages and modeled wire bytes drained
// from each source shard's exchange queue. At end of run the engine merges
// the per-shard accumulators into one ShardProfile: per-shard totals, the
// derived imbalance factor (max/mean busy time), a bucketed busy/stall
// series (≤ kMaxShardProfileBuckets round buckets) with critical-shard
// attribution per bucket, and the full (src shard, dst shard) traffic
// matrix — exactly the input a hot-topic-aware partitioner needs.
//
// Result-neutrality contract (the PR 4 discipline): the profiler only reads
// wall clocks and already-public engine state; it never touches an RNG
// stream, sim time, or stdout. Figure output is byte-identical with and
// without --shard_profile (scripts/determinism_check.sh enforces), and the
// disabled path in the engine's window loop is a single untaken null-check
// branch per round (bench_micro_shard_profile tracks the enabled cost).
//
// The profile serialises to JSON ("dcrd-shard-profile-v1", hand-rolled like
// every other emitter in this repo) via WriteShardProfileJson; dcrd_trace
// --shards loads it back with LoadShardProfileJson and renders the heat
// table with PrintShardProfile.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/shard_exchange.h"

namespace dcrd {

// Round buckets the merge folds the per-round series into; keeps profile
// files and Perfetto exec tracks bounded no matter how many horizon rounds
// a run took.
inline constexpr int kMaxShardProfileBuckets = 256;

// Deterministic wire-byte model of one exchange message: a fixed header
// plus, for data copies, the payload the packet would occupy on a real
// wire (message header + 4 bytes per named subscriber + 4 per routing-path
// entry). A model, not a measurement — its only job is to weight matrix
// cells consistently so "hot cut" comparisons are meaningful.
[[nodiscard]] std::uint64_t XMsgWireBytes(const XMsg& msg);

// One horizon round as one shard saw it. busy covers the drain and the
// window execution; stall covers both barrier waits (publish-horizon and
// post-window). busy + stall tiles the shard's wall clock between rounds.
struct ShardRoundSample {
  std::int64_t horizon_us = 0;   // the round's window stop H
  std::uint64_t busy_ns = 0;     // drain + RunWindow wall time
  std::uint64_t stall_ns = 0;    // both std::barrier waits
  std::uint64_t events = 0;      // scheduler events executed in the window
  std::uint64_t xmsgs_in = 0;    // exchange messages drained this round
  std::uint64_t xbytes_in = 0;   // modeled wire bytes drained this round
};

// Per-shard accumulator. Single-writer: only the owning shard's thread
// calls CountInbound/AddRound; the merge reads after the worker threads
// join. No locks, no atomics — the join is the synchronisation point.
class ShardProfiler {
 public:
  ShardProfiler(int shard, int shards)
      : shard_(shard),
        shards_(shards),
        in_msgs_by_src_(static_cast<std::size_t>(shards), 0),
        in_bytes_by_src_(static_cast<std::size_t>(shards), 0) {}

  ShardProfiler(const ShardProfiler&) = delete;
  ShardProfiler& operator=(const ShardProfiler&) = delete;

  // Tallies one message drained from `src_shard`'s queue (receiver-side
  // accounting: this shard owns matrix column [*, shard_], so the matrix
  // needs no cross-thread writes). Called from Sim::DrainInbound.
  void CountInbound(int src_shard, const XMsg& msg) {
    const std::uint64_t bytes = XMsgWireBytes(msg);
    in_msgs_by_src_[static_cast<std::size_t>(src_shard)] += 1;
    in_bytes_by_src_[static_cast<std::size_t>(src_shard)] += bytes;
    ++round_msgs_;
    round_bytes_ += bytes;
  }

  // Closes one horizon round: the wall-clock split measured by the window
  // loop plus whatever CountInbound tallied since the previous AddRound.
  void AddRound(std::int64_t horizon_us, std::uint64_t busy_ns,
                std::uint64_t stall_ns, std::uint64_t events) {
    ShardRoundSample sample;
    sample.horizon_us = horizon_us;
    sample.busy_ns = busy_ns;
    sample.stall_ns = stall_ns;
    sample.events = events;
    sample.xmsgs_in = round_msgs_;
    sample.xbytes_in = round_bytes_;
    rounds_.push_back(sample);
    round_msgs_ = 0;
    round_bytes_ = 0;
  }

  [[nodiscard]] int shard() const { return shard_; }
  [[nodiscard]] int shards() const { return shards_; }
  [[nodiscard]] const std::vector<ShardRoundSample>& rounds() const {
    return rounds_;
  }
  // Inbound traffic split by source shard — this shard's matrix column.
  [[nodiscard]] const std::vector<std::uint64_t>& in_msgs_by_src() const {
    return in_msgs_by_src_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& in_bytes_by_src() const {
    return in_bytes_by_src_;
  }

 private:
  const int shard_;
  const int shards_;
  std::vector<ShardRoundSample> rounds_;
  std::vector<std::uint64_t> in_msgs_by_src_;
  std::vector<std::uint64_t> in_bytes_by_src_;
  std::uint64_t round_msgs_ = 0;
  std::uint64_t round_bytes_ = 0;
};

// The merged end-of-run profile — what --shard_profile writes and
// dcrd_trace --shards reads.
struct ShardProfile {
  struct Totals {
    std::uint64_t busy_ns = 0;
    std::uint64_t stall_ns = 0;
    std::uint64_t events = 0;
    std::uint64_t msgs_in = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t msgs_out = 0;
    std::uint64_t bytes_out = 0;
  };
  struct Bucket {
    std::uint64_t first_round = 0;
    std::uint64_t last_round = 0;       // inclusive
    std::int64_t horizon_us = 0;        // horizon at the bucket's last round
    int critical_shard = 0;             // argmax busy_ns in the bucket
    std::vector<std::uint64_t> busy_ns;   // [shard]
    std::vector<std::uint64_t> stall_ns;  // [shard]
  };
  struct Edge {
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
  };

  int shards = 1;
  std::uint64_t rounds = 0;
  std::int64_t lookahead_us = 0;
  double imbalance = 1.0;              // max/mean per-shard busy time
  std::vector<Totals> shard_totals;    // [shard]
  std::vector<Bucket> buckets;         // ≤ kMaxShardProfileBuckets
  std::vector<Edge> matrix;            // [src * shards + dst]

  [[nodiscard]] const Edge& At(int src, int dst) const {
    return matrix[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(shards) +
                  static_cast<std::size_t>(dst)];
  }
};

// Folds the per-shard accumulators (one per shard, indexed by shard id)
// into the merged profile. All profilers must agree on the shard count;
// uneven round tails (a shard that never closed its last round) truncate
// to the common minimum.
[[nodiscard]] ShardProfile MergeShardProfiles(
    const std::vector<const ShardProfiler*>& profilers,
    std::int64_t lookahead_us);

// Writes the profile as a self-describing JSON document
// ("dcrd-shard-profile-v1").
void WriteShardProfileJson(std::ostream& os, const ShardProfile& profile);

// Inverse of WriteShardProfileJson. Returns false (with a human-readable
// message in *error when given) on malformed input or a schema mismatch.
bool LoadShardProfileJson(std::istream& in, ShardProfile* out,
                          std::string* error = nullptr);

// Renders the profile for humans: per-shard totals, imbalance, the
// critical-shard bucket attribution, and the cross-shard traffic matrix as
// a per-cut heat table (dcrd_trace --shards).
void PrintShardProfile(std::ostream& os, const ShardProfile& profile);

}  // namespace dcrd
