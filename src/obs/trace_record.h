// Fixed-size POD trace record: the unit the flight recorder stores.
//
// One record is one sim-time-stamped packet-lifecycle (or topology) event.
// The layout is deliberately flat — six integers and four small fields,
// 48 bytes, trivially copyable — so the recorder's ring buffer is a plain
// preallocated vector that is written by assignment and never touches the
// heap on the record path. Identifiers are stored as raw integers (the
// DenseId wrappers unwrap to uint32) with the id's own kInvalid sentinel
// meaning "not applicable to this event kind".
//
// `seq` and `shard` are stamped by the recorder, not the record site: seq
// is the recorder's running record count (ties at one sim instant resolve
// in recording order), shard the engine shard the recorder serves. Together
// they make a deterministic multi-file merge key — per-shard trace files
// from one sharded run interleave as (t_us, seq, shard), independent of
// file argument order (trace_export.h, ForEachMergedTraceJsonl).
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <type_traits>

namespace dcrd {

// Packet-lifecycle and topology event kinds. The enumerators are part of
// the JSONL trace format (see TraceEventName); append, never renumber.
enum class TraceEventKind : std::uint8_t {
  kPublish = 0,       // message enters the system at its publisher broker
  kEnqueue,           // a copy is handed to the hop transport (SendReliable)
  kHopSend,           // first transmission of a copy over a link
  kRetransmit,        // transmission index >= 1 of a copy
  kAck,               // hop ACK returned to the sender (aux8=1: post-expiry)
  kBudgetExhausted,   // m transmissions spent, copy given up (done(false))
  kReroute,           // DCRD sending list exhausted, packet sent upstream
  kDeliver,           // message handed up to a subscriber broker
  kDrop,              // transmission or responsibility dropped (aux8=reason)
  kDedupSuppress,     // duplicate copy arrival suppressed by the receiver
  kLinkDown,          // link transitioned up -> down at a failure epoch
  kLinkUp,            // link transitioned down -> up
  kGrayStart,         // gray episode began on a link
  kGrayEnd,           // gray episode ended
  kRebuild,           // routers recomputed sending lists (monitoring epoch)
  kTimerArmed,        // retransmission timer armed after a transmission.
                      // `peer` is repurposed to carry the armed timeout in
                      // microseconds (the real peer is derivable from
                      // node+link); aux16 = transmission index, aux8 = 1
                      // when the adaptive RTO chose the timeout.
  kBrokerDown,        // broker crashed at a failure epoch (volatile state
                      // lost); aux16 = number of pending copies killed
  kBrokerUp,          // broker restarted with empty volatile state
  kPeerDead,          // transport declared a peer dead (ACK silence);
                      // aux16 = pending copies failed fast on the link
  kPeerAlive,         // a probe answered: peer declared alive again;
                      // aux16 = probe attempts it took
  kResyncStart,       // restarted broker began gossip resync of <d,r> state
  kResyncDone,        // resync converged; sending lists trustworthy again.
                      // `copy` is repurposed to carry the resync duration
                      // in microseconds
};

inline constexpr int kTraceEventKindCount = 22;

// Why a kDrop happened; stored in TraceRecord::aux8.
enum class TraceDropReason : std::uint8_t {
  kNone = 0,
  kNodeDown,       // an endpoint broker was down at transmission entry
  kLinkDown,       // the link was down at transmission entry
  kLoss,           // background Bernoulli(Pl) loss
  kGray,           // gray episode's extra loss draw
  kUndeliverable,  // router gave up a responsibility (no next hop left)
  kCrash,          // a crashed broker dropped the transmission (at entry
                   // or mid-flight — fail-stop drops queued traffic too)
};

constexpr std::string_view TraceEventName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kPublish: return "publish";
    case TraceEventKind::kEnqueue: return "enqueue";
    case TraceEventKind::kHopSend: return "hop-send";
    case TraceEventKind::kRetransmit: return "retransmit";
    case TraceEventKind::kAck: return "ack";
    case TraceEventKind::kBudgetExhausted: return "budget-exhausted";
    case TraceEventKind::kReroute: return "reroute";
    case TraceEventKind::kDeliver: return "deliver";
    case TraceEventKind::kDrop: return "drop";
    case TraceEventKind::kDedupSuppress: return "dedup-suppress";
    case TraceEventKind::kLinkDown: return "link-down";
    case TraceEventKind::kLinkUp: return "link-up";
    case TraceEventKind::kGrayStart: return "gray-start";
    case TraceEventKind::kGrayEnd: return "gray-end";
    case TraceEventKind::kRebuild: return "rebuild";
    case TraceEventKind::kTimerArmed: return "timer-armed";
    case TraceEventKind::kBrokerDown: return "broker-down";
    case TraceEventKind::kBrokerUp: return "broker-up";
    case TraceEventKind::kPeerDead: return "peer-dead";
    case TraceEventKind::kPeerAlive: return "peer-alive";
    case TraceEventKind::kResyncStart: return "resync-start";
    case TraceEventKind::kResyncDone: return "resync-done";
  }
  return "unknown";
}

// Inverse of TraceEventName; false when `name` matches no kind.
constexpr bool TraceEventFromName(std::string_view name,
                                  TraceEventKind* out) {
  for (int i = 0; i < kTraceEventKindCount; ++i) {
    const auto kind = static_cast<TraceEventKind>(i);
    if (TraceEventName(kind) == name) {
      *out = kind;
      return true;
    }
  }
  return false;
}

constexpr std::string_view TraceDropReasonName(TraceDropReason reason) {
  switch (reason) {
    case TraceDropReason::kNone: return "none";
    case TraceDropReason::kNodeDown: return "node-down";
    case TraceDropReason::kLinkDown: return "link-down";
    case TraceDropReason::kLoss: return "loss";
    case TraceDropReason::kGray: return "gray";
    case TraceDropReason::kUndeliverable: return "undeliverable";
    case TraceDropReason::kCrash: return "crash";
  }
  return "unknown";
}

struct TraceRecord {
  static constexpr std::uint64_t kNoPacket =
      std::numeric_limits<std::uint64_t>::max();
  static constexpr std::uint32_t kNoId =
      std::numeric_limits<std::uint32_t>::max();

  std::int64_t t_us = 0;                 // sim time of the event
  std::uint64_t packet = kNoPacket;      // MessageId::value; kNoPacket = n/a
  std::uint64_t copy = 0;                // transport copy id; 0 = n/a
  std::uint32_t node = kNoId;            // acting broker (sender/receiver)
  std::uint32_t peer = kNoId;            // counterpart broker (kNoId = n/a)
  std::uint32_t link = kNoId;            // link involved (kNoId = n/a)
  std::uint32_t seq = 0;                 // recorder-stamped record ordinal
  TraceEventKind kind = TraceEventKind::kPublish;
  std::uint8_t aux8 = 0;                 // drop reason / late-ack flag
  std::uint16_t aux16 = 0;               // tx index / group size / class
  std::uint16_t shard = 0;               // recording shard (0 unsharded)
};

static_assert(std::is_trivially_copyable_v<TraceRecord>);
static_assert(sizeof(TraceRecord) == 48, "keep the record cache-friendly");

// Per-transmission identity threaded from the transport into the network so
// link-level drops can name the packet and copy they killed. Default
// (kNoPacket) marks traffic the tracer has no packet identity for (probes,
// control gossip).
struct TraceContext {
  std::uint64_t packet = TraceRecord::kNoPacket;
  std::uint64_t copy = 0;
};

}  // namespace dcrd
