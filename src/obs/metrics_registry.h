// Metrics registry: named counters, gauges, and log-linear histograms.
//
// The registry unifies the simulator's ad-hoc counters behind one named
// namespace and snapshots them per monitoring epoch, so a run can be
// post-processed from a single JSON document instead of scattered stdout
// figures. Three metric kinds:
//  * Counters — monotonically increasing uint64. Either owned by the
//    registry (AddCounter) or registered by const pointer onto a counter
//    that some subsystem already maintains (RegisterCounter); the latter
//    keeps existing accounting (TrafficCounters, router drop counts) as the
//    single source of truth.
//  * Gauges — sampled on demand through a callback (pending events, open
//    episodes, in-flight copies).
//  * Histograms — HDR-style log-linear distributions (LogLinearHistogram
//    below), fixed-size array storage, used for delivery delay and hop RTT.
//
// Recording into a histogram is two array writes and a handful of integer
// ops — no allocation, no floating point — so it is safe on the per-event
// hot path. SnapshotEpoch and WriteJson allocate; they run per monitoring
// epoch / at end of run only.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace dcrd {

// Raw-bucket view of a LogLinearHistogram: exactly the state WriteJson
// exports per histogram ([lo, hi, count] triples plus the scalar summary).
// A snapshot round-trips losslessly — AbsorbSnapshot rebuilds identical
// bucket contents — so per-cell histograms from separate sweep reps can be
// merged offline into whole-run distributions without re-running anything.
struct HistogramSnapshot {
  struct Bucket {
    std::uint64_t lo = 0;   // BucketLo of the source bucket (its identity)
    std::uint64_t hi = 0;   // BucketHi, carried for readers/validation
    std::uint64_t count = 0;
  };
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max = 0;
  std::vector<Bucket> buckets;  // non-empty buckets, ascending lo
};

// Log-linear ("HDR-style") histogram over non-negative integer values.
//
// Values below 32 get exact unit-width buckets; above that, each power-of-
// two octave is split into 32 linear sub-buckets, so the relative width of
// any bucket is at most 1/32 (~3.1%). 60 octave groups cover the full
// uint64 range in 1920 fixed buckets of std::array storage — no allocation
// ever, Clear() is a memset.
class LogLinearHistogram {
 public:
  static constexpr int kSubBucketBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;       // 32
  static constexpr int kGroups = 60;
  static constexpr int kBucketCount = kGroups * kSubBuckets;    // 1920

  // Maps a value to its bucket. Exact for v < 32; log-linear above.
  static int BucketIndex(std::uint64_t v);
  // Smallest value landing in bucket `index`.
  static std::uint64_t BucketLo(int index);
  // Largest value landing in bucket `index` (inclusive).
  static std::uint64_t BucketHi(int index);

  // Records one observation. Negative values clamp to zero (delay math can
  // produce -0-adjacent values from integer rounding; they mean "now").
  void Record(std::int64_t value) {
    const std::uint64_t v =
        value < 0 ? 0u : static_cast<std::uint64_t>(value);
    ++buckets_[static_cast<std::size_t>(BucketIndex(v))];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  // Undefined (0 / max) when count() == 0; callers check count() first.
  [[nodiscard]] std::uint64_t min() const { return min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] std::uint64_t CountAt(int index) const {
    return buckets_[static_cast<std::size_t>(index)];
  }

  // Nearest-rank quantile (same rank rule as stats.cc's Quantile, pinned
  // against it by the regression tests). Returns the matched bucket's
  // midpoint clamped into [min(), max()], so exact-width buckets report
  // exact values and wide buckets err by at most half a bucket (~1.6%).
  [[nodiscard]] std::uint64_t ValueAtQuantile(double q) const;

  // Adds `other`'s contents into this histogram. Exact: bucket counts, sum
  // and count add; min/max combine — merging per-rep histograms yields the
  // same quantiles as recording every sample into one histogram.
  void MergeFrom(const LogLinearHistogram& other);

  // Raw-bucket export/import (see HistogramSnapshot). AbsorbSnapshot maps
  // each bucket back by its lo value and adds its count; snapshots produced
  // by Snapshot()/WriteJson merge exactly.
  [[nodiscard]] HistogramSnapshot Snapshot() const;
  void AbsorbSnapshot(const HistogramSnapshot& snapshot);

  void Clear();

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

// How one metric combines across engine shards when per-shard registries
// are folded into a single document (DESIGN.md §14):
//  * kSum — disjoint owner-only quantities (deliveries, traffic counters,
//    in-flight copies). Non-owner shards contribute exactly 0, so the sum
//    over shards is byte-identical to the 1-shard value.
//  * kReplicated — quantities every shard computes identically from pure
//    functions of config/seed/epoch (published pairs, link up/gray state).
//    Shard 0 speaks for all; summing would count them N times.
// Histograms are always kSum (deliveries and RTT samples land on the owner
// shard only).
enum class MergePolicy { kSum, kReplicated };

// Shard-mergeable snapshot of a whole registry: names, policies, the
// per-epoch counter/gauge series, final values, and raw-bucket histogram
// snapshots. Produced by MetricsRegistry::Collect, folded with
// MergeMetricsDocs, serialised by WriteMetricsJson — both the 1-shard and
// the N-shard paths go through this type, so their output is identical by
// construction.
struct MetricsDoc {
  struct Series {
    std::string name;
    MergePolicy policy = MergePolicy::kSum;
    std::vector<std::uint64_t> epochs;  // parallel to epoch_t_us
    std::uint64_t final_value = 0;
  };
  struct HistogramEntry {
    std::string name;
    HistogramSnapshot snapshot;
  };
  std::vector<std::int64_t> epoch_t_us;
  std::vector<Series> counters;
  std::vector<Series> gauges;
  std::vector<HistogramEntry> histograms;
};

// Folds per-shard docs into one (see MergePolicy). Every doc must have the
// same metric names in the same order and the same epoch timestamps — true
// by construction for shard replicas, checked by DCRD_CHECK otherwise.
[[nodiscard]] MetricsDoc MergeMetricsDocs(
    const std::vector<const MetricsDoc*>& docs);

// Writes a doc in the registry's JSON format: per-epoch counter/gauge
// series, final values, and each histogram's summary stats, quantiles, and
// non-empty buckets as [lo, hi, count] triples.
void WriteMetricsJson(std::ostream& os, const MetricsDoc& doc);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Creates a registry-owned counter cell. The returned pointer is stable
  // for the registry's lifetime; increment it directly.
  std::uint64_t* AddCounter(std::string name,
                            MergePolicy policy = MergePolicy::kSum);

  // Registers an externally owned counter by const pointer. The source must
  // outlive the registry; it stays the single source of truth and is read
  // at snapshot / export time.
  void RegisterCounter(std::string name, const std::uint64_t* source,
                       MergePolicy policy = MergePolicy::kSum);

  // Registers a gauge sampled via `sample` at snapshot / export time.
  void RegisterGauge(std::string name, std::function<std::uint64_t()> sample,
                     MergePolicy policy = MergePolicy::kSum);

  // Creates a registry-owned histogram. Stable pointer, record directly.
  LogLinearHistogram* AddHistogram(std::string name);

  // Captures every counter and gauge value at sim time `t` into the epoch
  // series exported by WriteJson.
  void SnapshotEpoch(SimTime t);

  // Read access for the time-series sampler (obs/timeseries.h): metric
  // counts, names, policies, and live values, in registration order.
  [[nodiscard]] std::size_t counter_count() const { return counters_.size(); }
  [[nodiscard]] const std::string& counter_name(std::size_t i) const {
    return counters_[i].name;
  }
  [[nodiscard]] MergePolicy counter_policy(std::size_t i) const {
    return counters_[i].policy;
  }
  [[nodiscard]] std::uint64_t counter_value(std::size_t i) const {
    return counters_[i].value();
  }
  [[nodiscard]] std::size_t gauge_count() const { return gauges_.size(); }
  [[nodiscard]] const std::string& gauge_name(std::size_t i) const {
    return gauges_[i].name;
  }
  [[nodiscard]] MergePolicy gauge_policy(std::size_t i) const {
    return gauges_[i].policy;
  }
  [[nodiscard]] std::uint64_t gauge_value(std::size_t i) const {
    return gauges_[i].sample();
  }
  [[nodiscard]] std::size_t histogram_count() const {
    return histograms_.size();
  }
  [[nodiscard]] const std::string& histogram_name(std::size_t i) const {
    return histograms_[i].name;
  }
  [[nodiscard]] const LogLinearHistogram& histogram(std::size_t i) const {
    return histograms_[i].histogram;
  }

  // Snapshots the registry into a shard-mergeable document (final values
  // read now, like WriteJson's final sections).
  [[nodiscard]] MetricsDoc Collect() const;

  // Writes the whole registry as one JSON document: the per-epoch counter/
  // gauge series, final values, and each histogram's summary stats,
  // quantiles, and non-empty buckets as [lo, hi, count] triples.
  // Equivalent to WriteMetricsJson(os, Collect()).
  void WriteJson(std::ostream& os) const;

 private:
  struct Counter {
    std::string name;
    std::uint64_t owned = 0;              // cell for AddCounter counters
    const std::uint64_t* source = nullptr;  // external for RegisterCounter
    MergePolicy policy = MergePolicy::kSum;
    [[nodiscard]] std::uint64_t value() const {
      return source != nullptr ? *source : owned;
    }
  };
  struct Gauge {
    std::string name;
    std::function<std::uint64_t()> sample;
    MergePolicy policy = MergePolicy::kSum;
  };
  struct Histogram {
    std::string name;
    LogLinearHistogram histogram;
  };
  struct Epoch {
    std::int64_t t_us = 0;
    std::vector<std::uint64_t> counters;  // parallel to counters_
    std::vector<std::uint64_t> gauges;    // parallel to gauges_
  };

  // deques: stable element addresses across Add*/Register* calls.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<Epoch> epochs_;
};

}  // namespace dcrd
