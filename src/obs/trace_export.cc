#include "obs/trace_export.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <map>
#include <numeric>
#include <ostream>
#include <set>
#include <string>
#include <unordered_map>

#include "common/logging.h"
#include "obs/shard_profiler.h"
#include "obs/timeseries.h"

namespace dcrd {

namespace {

// Signed views of the sentinel-carrying fields: -1 on the wire instead of
// 2^64-1 / 2^32-1 keeps the JSONL readable and round-trippable.
long long PacketField(const TraceRecord& r) {
  return r.packet == TraceRecord::kNoPacket
             ? -1LL
             : static_cast<long long>(r.packet);
}
long long IdField(std::uint32_t id) {
  return id == TraceRecord::kNoId ? -1LL : static_cast<long long>(id);
}

// Extracts the raw token after `key` (up to ',' or '}') from a JSONL line.
bool FindRaw(std::string_view line, std::string_view key,
             std::string_view* out) {
  const auto pos = line.find(key);
  if (pos == std::string_view::npos) return false;
  const std::size_t begin = pos + key.size();
  std::size_t end = begin;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  *out = line.substr(begin, end - begin);
  return true;
}

bool ParseInt(std::string_view token, long long* out) {
  const auto result =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  return result.ec == std::errc() &&
         result.ptr == token.data() + token.size();
}

bool FindInt(std::string_view line, std::string_view key, long long* out) {
  std::string_view token;
  return FindRaw(line, key, &token) && ParseInt(token, out);
}

const char* ClassName(std::uint16_t cls) {
  switch (cls) {
    case 0: return "data";
    case 1: return "ack";
    case 2: return "control";
  }
  return "?";
}

}  // namespace

int FormatTraceJsonl(const TraceRecord& r, char* buf, std::size_t cap) {
  DCRD_CHECK(cap >= kMaxTraceLineBytes);
  const int n = std::snprintf(
      buf, cap,
      "{\"t\":%" PRId64 ",\"k\":\"%.*s\",\"pkt\":%lld,\"copy\":%llu,"
      "\"node\":%lld,\"peer\":%lld,\"link\":%lld,\"aux\":%u,\"x\":%u,"
      "\"seq\":%u,\"shard\":%u}\n",
      r.t_us, static_cast<int>(TraceEventName(r.kind).size()),
      TraceEventName(r.kind).data(), PacketField(r),
      static_cast<unsigned long long>(r.copy), IdField(r.node),
      IdField(r.peer), IdField(r.link), static_cast<unsigned>(r.aux8),
      static_cast<unsigned>(r.aux16), static_cast<unsigned>(r.seq),
      static_cast<unsigned>(r.shard));
  DCRD_CHECK(n > 0 && static_cast<std::size_t>(n) < cap);
  return n;
}

bool ParseTraceJsonl(std::string_view line, TraceRecord* out) {
  std::string_view kind_token;
  if (!FindRaw(line, "\"k\":\"", &kind_token)) return false;
  const auto quote = kind_token.find('"');
  if (quote == std::string_view::npos) return false;
  TraceEventKind kind;
  if (!TraceEventFromName(kind_token.substr(0, quote), &kind)) return false;

  long long t = 0, pkt = 0, copy = 0, node = 0, peer = 0, link = 0, aux = 0,
            x = 0;
  if (!FindInt(line, "\"t\":", &t) || !FindInt(line, "\"pkt\":", &pkt) ||
      !FindInt(line, "\"copy\":", &copy) ||
      !FindInt(line, "\"node\":", &node) ||
      !FindInt(line, "\"peer\":", &peer) ||
      !FindInt(line, "\"link\":", &link) ||
      !FindInt(line, "\"aux\":", &aux) || !FindInt(line, "\"x\":", &x)) {
    return false;
  }
  out->t_us = t;
  out->kind = kind;
  out->packet = pkt < 0 ? TraceRecord::kNoPacket
                        : static_cast<std::uint64_t>(pkt);
  out->copy = static_cast<std::uint64_t>(copy);
  out->node =
      node < 0 ? TraceRecord::kNoId : static_cast<std::uint32_t>(node);
  out->peer =
      peer < 0 ? TraceRecord::kNoId : static_cast<std::uint32_t>(peer);
  out->link =
      link < 0 ? TraceRecord::kNoId : static_cast<std::uint32_t>(link);
  out->aux8 = static_cast<std::uint8_t>(aux);
  out->aux16 = static_cast<std::uint16_t>(x);
  // seq/shard arrived with the sharded-tracing format revision; lines from
  // older captures simply lack them and parse with the 0 defaults.
  long long seq = 0, shard = 0;
  FindInt(line, "\"seq\":", &seq);
  FindInt(line, "\"shard\":", &shard);
  out->seq = static_cast<std::uint32_t>(seq);
  out->shard = static_cast<std::uint16_t>(shard);
  return true;
}

bool ForEachTraceJsonl(std::istream& in,
                       const std::function<void(const TraceRecord&)>& fn,
                       std::size_t* bad_line, std::string* bad_text) {
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    TraceRecord record;
    if (!ParseTraceJsonl(line, &record)) {
      if (bad_line != nullptr) *bad_line = line_no;
      if (bad_text != nullptr) *bad_text = line.substr(0, 120);
      return false;
    }
    fn(record);
  }
  return true;
}

bool ForEachMergedTraceJsonl(
    const std::vector<std::istream*>& ins,
    const std::function<void(const TraceRecord&)>& fn, std::size_t* bad_file,
    std::size_t* bad_line, std::string* bad_text) {
  // One buffered head record per stream; exhausted streams drop out. K is
  // a shard count (small), so a linear min scan beats a heap's bookkeeping.
  struct Head {
    std::size_t file;
    std::size_t line_no = 0;
    TraceRecord record;
    bool live = false;
  };
  std::vector<Head> heads(ins.size());
  std::string line;
  const auto refill = [&](Head& head) -> bool {
    std::istream& in = *ins[head.file];
    head.live = false;
    while (std::getline(in, line)) {
      ++head.line_no;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      if (!ParseTraceJsonl(line, &head.record)) {
        if (bad_file != nullptr) *bad_file = head.file;
        if (bad_line != nullptr) *bad_line = head.line_no;
        if (bad_text != nullptr) *bad_text = line.substr(0, 120);
        return false;
      }
      head.live = true;
      return true;
    }
    return true;  // clean EOF
  };
  for (std::size_t i = 0; i < heads.size(); ++i) {
    heads[i].file = i;
    if (!refill(heads[i])) return false;
  }
  // (t_us, seq, shard) is the canonical merge key; the stream index only
  // breaks ties between files that carry the same shard stamp (e.g. two
  // unsharded captures), where no argument-order-free order exists.
  const auto before = [](const TraceRecord& a, const TraceRecord& b) {
    if (a.t_us != b.t_us) return a.t_us < b.t_us;
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.shard < b.shard;
  };
  while (true) {
    Head* best = nullptr;
    for (Head& head : heads) {
      if (!head.live) continue;
      if (best == nullptr || before(head.record, best->record)) best = &head;
    }
    if (best == nullptr) return true;
    fn(best->record);
    if (!refill(*best)) return false;
  }
}

std::vector<TraceRecord> ReadTraceJsonl(std::istream& in,
                                        std::size_t* dropped_lines) {
  std::vector<TraceRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    TraceRecord record;
    if (ParseTraceJsonl(line, &record)) {
      records.push_back(record);
    } else if (dropped_lines != nullptr) {
      ++*dropped_lines;
    }
  }
  return records;
}

int FormatTraceHuman(const TraceRecord& r, char* buf, std::size_t cap) {
  DCRD_CHECK(cap >= kMaxTraceLineBytes);
  // Packet tag: "m<id>" or "m-" when the event carries no packet identity.
  char pkt[24];
  if (r.packet == TraceRecord::kNoPacket) {
    std::snprintf(pkt, sizeof(pkt), "m-");
  } else {
    std::snprintf(pkt, sizeof(pkt), "m%llu",
                  static_cast<unsigned long long>(r.packet));
  }
  const unsigned long long copy = static_cast<unsigned long long>(r.copy);
  int n = 0;
  switch (r.kind) {
    case TraceEventKind::kPublish:
      n = std::snprintf(buf, cap, "@%" PRId64 "us publish %s at n%lld",
                        r.t_us, pkt, IdField(r.node));
      break;
    case TraceEventKind::kEnqueue:
      n = std::snprintf(buf, cap,
                        "@%" PRId64 "us enqueue %s copy=%llu n%lld->n%lld "
                        "l%lld budget=%u",
                        r.t_us, pkt, copy, IdField(r.node), IdField(r.peer),
                        IdField(r.link), static_cast<unsigned>(r.aux16));
      break;
    case TraceEventKind::kHopSend:
    case TraceEventKind::kRetransmit:
      n = std::snprintf(buf, cap,
                        "@%" PRId64 "us %s %s copy=%llu tx=%u n%lld->n%lld "
                        "l%lld",
                        r.t_us,
                        r.kind == TraceEventKind::kHopSend ? "hop-send"
                                                           : "retransmit",
                        pkt, copy, static_cast<unsigned>(r.aux16),
                        IdField(r.node), IdField(r.peer), IdField(r.link));
      break;
    case TraceEventKind::kAck:
      n = std::snprintf(buf, cap,
                        "@%" PRId64 "us ack %s copy=%llu tx=%u n%lld<-n%lld "
                        "l%lld%s",
                        r.t_us, pkt, copy, static_cast<unsigned>(r.aux16),
                        IdField(r.node), IdField(r.peer), IdField(r.link),
                        r.aux8 != 0 ? " (late, budget already expired)" : "");
      break;
    case TraceEventKind::kBudgetExhausted:
      n = std::snprintf(buf, cap,
                        "@%" PRId64 "us budget-exhausted %s copy=%llu after "
                        "%u tx n%lld->n%lld l%lld",
                        r.t_us, pkt, copy, static_cast<unsigned>(r.aux16),
                        IdField(r.node), IdField(r.peer), IdField(r.link));
      break;
    case TraceEventKind::kReroute:
      n = std::snprintf(buf, cap,
                        "@%" PRId64 "us reroute %s n%lld -> upstream n%lld "
                        "l%lld (group=%u)",
                        r.t_us, pkt, IdField(r.node), IdField(r.peer),
                        IdField(r.link), static_cast<unsigned>(r.aux16));
      break;
    case TraceEventKind::kDeliver:
      n = std::snprintf(buf, cap,
                        "@%" PRId64 "us deliver %s at n%lld (publisher "
                        "n%lld)",
                        r.t_us, pkt, IdField(r.node), IdField(r.peer));
      break;
    case TraceEventKind::kDrop: {
      const auto reason = static_cast<TraceDropReason>(r.aux8);
      if (reason == TraceDropReason::kUndeliverable) {
        n = std::snprintf(buf, cap,
                          "@%" PRId64 "us drop[undeliverable] %s n%lld "
                          "(subscriber n%lld)",
                          r.t_us, pkt, IdField(r.node), IdField(r.peer));
      } else {
        n = std::snprintf(
            buf, cap,
            "@%" PRId64 "us drop[%.*s] %s copy=%llu n%lld->n%lld l%lld "
            "cls=%s",
            r.t_us, static_cast<int>(TraceDropReasonName(reason).size()),
            TraceDropReasonName(reason).data(), pkt, copy, IdField(r.node),
            IdField(r.peer), IdField(r.link), ClassName(r.aux16));
      }
      break;
    }
    case TraceEventKind::kDedupSuppress:
      n = std::snprintf(buf, cap,
                        "@%" PRId64 "us dedup-suppress %s copy=%llu at "
                        "n%lld (from n%lld)",
                        r.t_us, pkt, copy, IdField(r.node), IdField(r.peer));
      break;
    case TraceEventKind::kLinkDown:
    case TraceEventKind::kLinkUp:
    case TraceEventKind::kGrayStart:
    case TraceEventKind::kGrayEnd:
      n = std::snprintf(buf, cap, "@%" PRId64 "us %.*s l%lld n%lld-n%lld",
                        r.t_us,
                        static_cast<int>(TraceEventName(r.kind).size()),
                        TraceEventName(r.kind).data(), IdField(r.link),
                        IdField(r.node), IdField(r.peer));
      break;
    case TraceEventKind::kRebuild:
      n = std::snprintf(buf, cap,
                        "@%" PRId64 "us rebuild (sending lists recomputed)",
                        r.t_us);
      break;
    case TraceEventKind::kTimerArmed:
      // `peer` carries the armed timeout in microseconds (see
      // trace_record.h), not a broker id.
      n = std::snprintf(buf, cap,
                        "@%" PRId64 "us timer-armed %s copy=%llu tx=%u "
                        "n%lld l%lld timeout=%lldus%s",
                        r.t_us, pkt, copy, static_cast<unsigned>(r.aux16),
                        IdField(r.node), IdField(r.link), IdField(r.peer),
                        r.aux8 != 0 ? " (adaptive)" : "");
      break;
    case TraceEventKind::kBrokerDown:
      n = std::snprintf(buf, cap,
                        "@%" PRId64 "us broker-down n%lld (%u pending "
                        "copies killed, volatile state lost)",
                        r.t_us, IdField(r.node),
                        static_cast<unsigned>(r.aux16));
      break;
    case TraceEventKind::kBrokerUp:
      n = std::snprintf(buf, cap,
                        "@%" PRId64 "us broker-up n%lld (restarted empty)",
                        r.t_us, IdField(r.node));
      break;
    case TraceEventKind::kPeerDead:
      n = std::snprintf(buf, cap,
                        "@%" PRId64 "us peer-dead n%lld->n%lld l%lld (%u "
                        "pending failed fast)",
                        r.t_us, IdField(r.node), IdField(r.peer),
                        IdField(r.link), static_cast<unsigned>(r.aux16));
      break;
    case TraceEventKind::kPeerAlive:
      n = std::snprintf(buf, cap,
                        "@%" PRId64 "us peer-alive n%lld->n%lld l%lld "
                        "(after %u probes)",
                        r.t_us, IdField(r.node), IdField(r.peer),
                        IdField(r.link), static_cast<unsigned>(r.aux16));
      break;
    case TraceEventKind::kResyncStart:
      n = std::snprintf(buf, cap,
                        "@%" PRId64 "us resync-start n%lld (soliciting %u "
                        "neighbours)",
                        r.t_us, IdField(r.node),
                        static_cast<unsigned>(r.aux16));
      break;
    case TraceEventKind::kResyncDone:
      // `copy` carries the resync duration in microseconds (see
      // trace_record.h), not a copy id.
      n = std::snprintf(buf, cap,
                        "@%" PRId64 "us resync-done n%lld took=%lluus",
                        r.t_us, IdField(r.node), copy);
      break;
  }
  DCRD_CHECK(n > 0 && static_cast<std::size_t>(n) < cap);
  return n;
}

void WriteChromeTrace(std::ostream& os,
                      const std::vector<TraceRecord>& records,
                      const ShardProfile* profile,
                      const TimeSeriesStore* series) {
  // Time-sorted view; stable so same-instant events keep recording order.
  std::vector<std::size_t> order(records.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return records[a].t_us < records[b].t_us;
                   });

  std::set<std::uint32_t> brokers;
  for (const TraceRecord& r : records) {
    if (r.node != TraceRecord::kNoId) brokers.insert(r.node);
    // kTimerArmed repurposes `peer` for the timeout value — it must not
    // spawn a phantom broker track.
    if (r.kind != TraceEventKind::kTimerArmed &&
        r.peer != TraceRecord::kNoId) {
      brokers.insert(r.peer);
    }
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) os << ",\n";
    first = false;
    os << event;
  };

  emit("{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"dcrd-sim\"}}");
  for (const std::uint32_t broker : brokers) {
    emit("{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(broker) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"broker n" +
         std::to_string(broker) + "\"}}");
  }

  // A copy's wire lifetime: async begin at the first hop-send, async end at
  // the closing ACK or budget exhaustion. Async pairs tie by (cat, id), so
  // overlapping copies on one broker track never violate nesting.
  struct OpenCopy {
    std::uint32_t tid;
    std::string name;
  };
  std::unordered_map<std::uint64_t, OpenCopy> open;
  const auto async_event = [](char ph, std::uint64_t copy,
                              const OpenCopy& info, std::int64_t ts) {
    return std::string("{\"ph\":\"") + ph + "\",\"cat\":\"copy\",\"id\":\"" +
           std::to_string(copy) + "\",\"name\":\"" + info.name +
           "\",\"pid\":0,\"tid\":" + std::to_string(info.tid) +
           ",\"ts\":" + std::to_string(ts) + "}";
  };

  std::int64_t last_ts = 0;
  for (const std::size_t i : order) {
    const TraceRecord& r = records[i];
    last_ts = r.t_us;
    const std::uint32_t tid = r.node != TraceRecord::kNoId ? r.node : 0;
    switch (r.kind) {
      case TraceEventKind::kHopSend: {
        if (r.copy != 0 && !open.contains(r.copy)) {
          OpenCopy info{tid, std::string()};
          char name[48];
          std::snprintf(name, sizeof(name), "m%lld c%llu", PacketField(r),
                        static_cast<unsigned long long>(r.copy));
          info.name = name;
          emit(async_event('b', r.copy, info, r.t_us));
          open.emplace(r.copy, std::move(info));
        }
        break;
      }
      case TraceEventKind::kAck:
      case TraceEventKind::kBudgetExhausted: {
        const auto it = open.find(r.copy);
        if (it != open.end()) {
          emit(async_event('e', r.copy, it->second, r.t_us));
          open.erase(it);
        }
        break;
      }
      default: {
        // Everything else is an instant on its broker's track.
        std::string name(TraceEventName(r.kind));
        if (r.packet != TraceRecord::kNoPacket) {
          name += " m" + std::to_string(r.packet);
        }
        emit("{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"" +
             std::string(TraceEventName(r.kind)) + "\",\"name\":\"" + name +
             "\",\"pid\":0,\"tid\":" + std::to_string(tid) +
             ",\"ts\":" + std::to_string(r.t_us) + "}");
        break;
      }
    }
  }
  // Close copies still in flight when the trace ended so every begin has a
  // matching end (the nesting validation in the tests relies on it).
  for (const auto& [copy, info] : open) {
    emit(async_event('e', copy, info, last_ts));
  }

  // Shard-execution tracks (pid 1): one wall-clock timeline per shard, an
  // alternating busy/stall complete span per round bucket. Wall time, not
  // sim time — these spans answer "which shard straggled, who waited",
  // while the pid-0 tracks answer "what did the simulation do".
  if (profile != nullptr) {
    emit("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
         "\"args\":{\"name\":\"dcrd-exec\"}}");
    for (int s = 0; s < profile->shards; ++s) {
      emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(s) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"shard " +
           std::to_string(s) + " exec\"}}");
    }
    const auto span = [](int shard, const char* name, std::int64_t ts_us,
                         std::int64_t dur_us, const ShardProfile::Bucket& b) {
      return std::string("{\"ph\":\"X\",\"cat\":\"exec\",\"name\":\"") + name +
             "\",\"pid\":1,\"tid\":" + std::to_string(shard) +
             ",\"ts\":" + std::to_string(ts_us) +
             ",\"dur\":" + std::to_string(dur_us) +
             ",\"args\":{\"rounds\":\"" + std::to_string(b.first_round) + "-" +
             std::to_string(b.last_round) + "\",\"critical_shard\":" +
             std::to_string(b.critical_shard) + "}}";
    };
    for (int s = 0; s < profile->shards; ++s) {
      std::int64_t wall_us = 0;  // per-shard cumulative wall clock
      for (const ShardProfile::Bucket& bucket : profile->buckets) {
        const std::int64_t busy_us = static_cast<std::int64_t>(
            bucket.busy_ns[static_cast<std::size_t>(s)] / 1000);
        const std::int64_t stall_us = static_cast<std::int64_t>(
            bucket.stall_ns[static_cast<std::size_t>(s)] / 1000);
        emit(span(s, "busy", wall_us, busy_us, bucket));
        wall_us += busy_us;
        emit(span(s, "stall", wall_us, stall_us, bucket));
        wall_us += stall_us;
      }
    }
  }

  // Telemetry counter tracks (pid 2): Perfetto/Chrome "C" events on the
  // sim-time axis. Counter metrics plot their per-window delta (a rate at
  // the sampling cadence), gauges their level, broker health its aggregate
  // over brokers, and the SLO series its ratios — so a counter lane lines
  // up under the packet lifelines it explains.
  if (series != nullptr) {
    emit("{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\","
         "\"args\":{\"name\":\"dcrd-telemetry\"}}");
    const auto counter = [](const std::string& name, std::int64_t ts,
                            const std::string& value) {
      return "{\"ph\":\"C\",\"pid\":2,\"name\":\"" + name +
             "\",\"ts\":" + std::to_string(ts) + ",\"args\":{\"value\":" +
             value + "}}";
    };
    for (std::size_t s = 0; s < series->samples(); ++s) {
      const std::int64_t ts = series->t_us[s];
      for (std::size_t c = 0; c < series->counter_names.size(); ++c) {
        emit(counter(series->counter_names[c] + "/win", ts,
                     std::to_string(series->counter_deltas[c][s])));
      }
      for (std::size_t g = 0; g < series->gauge_names.size(); ++g) {
        emit(counter(series->gauge_names[g], ts,
                     std::to_string(series->gauge_values[g][s])));
      }
      if (series->node_count > 0) {
        std::uint64_t pending = 0, dedup = 0, rto_max = 0;
        const std::size_t base = s * series->node_count;
        for (std::size_t b = 0; b < series->node_count; ++b) {
          pending += series->broker_pending[base + b];
          dedup += series->broker_dedup[base + b];
          rto_max = std::max(rto_max, series->broker_rto_us[base + b]);
        }
        emit(counter("broker.pending_copies", ts, std::to_string(pending)));
        emit(counter("broker.dedup_entries", ts, std::to_string(dedup)));
        emit(counter("broker.rto_us.max", ts, std::to_string(rto_max)));
      }
    }
    for (const SloWindow& w : ComputeSloSeries(*series)) {
      char ratio[32];
      std::snprintf(ratio, sizeof(ratio), "%.6f", w.delivery_ratio);
      emit(counter("slo.delivery_ratio", w.t_us, ratio));
      std::snprintf(ratio, sizeof(ratio), "%.6f", w.violation_rate);
      emit(counter("slo.violation_rate", w.t_us, ratio));
      emit(counter("slo.delay_p99_us", w.t_us,
                   std::to_string(w.delay_p99_us)));
    }
  }
  os << "\n]}\n";
}

std::size_t PrintPacketTimeline(std::ostream& os,
                                const std::vector<TraceRecord>& records,
                                std::uint64_t packet_id) {
  std::vector<std::size_t> matching;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].packet == packet_id) matching.push_back(i);
  }
  std::stable_sort(matching.begin(), matching.end(),
                   [&](std::size_t a, std::size_t b) {
                     return records[a].t_us < records[b].t_us;
                   });
  os << "packet m" << packet_id << " — " << matching.size() << " event"
     << (matching.size() == 1 ? "" : "s") << "\n";
  char line[kMaxTraceLineBytes];
  for (const std::size_t i : matching) {
    const int n = FormatTraceHuman(records[i], line, sizeof(line));
    os << "  ";
    os.write(line, n);
    os << "\n";
  }
  return matching.size();
}

std::size_t PrintBrokerTimeline(std::ostream& os,
                                const std::vector<TraceRecord>& records,
                                std::uint32_t broker_id) {
  // A record involves the broker when it is the acting node or the
  // counterpart peer. kTimerArmed repurposes `peer` to carry the timeout in
  // microseconds, so only its `node` field identifies a broker.
  const auto involves = [broker_id](const TraceRecord& r) {
    if (r.node == broker_id) return true;
    return r.kind != TraceEventKind::kTimerArmed && r.peer == broker_id;
  };
  std::vector<std::size_t> matching;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (involves(records[i])) matching.push_back(i);
  }
  std::stable_sort(matching.begin(), matching.end(),
                   [&](std::size_t a, std::size_t b) {
                     return records[a].t_us < records[b].t_us;
                   });
  os << "broker n" << broker_id << " — " << matching.size() << " event"
     << (matching.size() == 1 ? "" : "s") << "\n";
  char line[kMaxTraceLineBytes];
  for (const std::size_t i : matching) {
    const int n = FormatTraceHuman(records[i], line, sizeof(line));
    os << "  ";
    os.write(line, n);
    os << "\n";
  }
  return matching.size();
}

void TraceSummaryAccumulator::Add(const TraceRecord& r) {
  ++counts_[static_cast<std::size_t>(r.kind)];
  if (r.packet != TraceRecord::kNoPacket) {
    packets_.insert(r.packet);
    if (r.kind == TraceEventKind::kPublish) published_.insert(r.packet);
    if (r.kind == TraceEventKind::kDeliver) delivered_.insert(r.packet);
  }
  if (r.node != TraceRecord::kNoId) brokers_.insert(r.node);
  if (total_ == 0) {
    t_min_ = t_max_ = r.t_us;
  } else {
    t_min_ = std::min(t_min_, r.t_us);
    t_max_ = std::max(t_max_, r.t_us);
  }
  ++total_;
}

std::size_t TraceSummaryAccumulator::orphan_delivery_packets() const {
  std::size_t orphans = 0;
  for (const std::uint64_t packet : delivered_) {
    if (!published_.contains(packet)) ++orphans;
  }
  return orphans;
}

void TraceSummaryAccumulator::Print(std::ostream& os) const {
  os << total_ << " events";
  if (total_ > 0) {
    os << " spanning @" << t_min_ << "us .. @" << t_max_ << "us";
  }
  os << "; " << packets_.size() << " packets, " << brokers_.size()
     << " brokers\n";
  for (int k = 0; k < kTraceEventKindCount; ++k) {
    if (counts_[static_cast<std::size_t>(k)] == 0) continue;
    os << "  " << TraceEventName(static_cast<TraceEventKind>(k)) << ": "
       << counts_[static_cast<std::size_t>(k)] << "\n";
  }
  if (const std::size_t orphans = orphan_delivery_packets(); orphans > 0) {
    os << "warning: " << orphans << " packet(s) were delivered but have no "
       << "publish record — the trace looks lossy (overwritten ring or "
       << "truncated capture)\n";
  }
}

void PrintTraceSummary(std::ostream& os,
                       const std::vector<TraceRecord>& records) {
  TraceSummaryAccumulator accumulator;
  for (const TraceRecord& record : records) accumulator.Add(record);
  accumulator.Print(os);
}

}  // namespace dcrd
