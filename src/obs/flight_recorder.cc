#include "obs/flight_recorder.h"

#include <ostream>

#include "common/logging.h"
#include "obs/trace_export.h"

namespace dcrd {

FlightRecorder::FlightRecorder(const Scheduler& scheduler, Config config)
    : scheduler_(scheduler) {
  DCRD_CHECK(config.ring_capacity > 0);
  ring_.resize(config.ring_capacity);
}

void FlightRecorder::Append(const TraceRecord& record) {
  if (size_ == ring_.size()) {
    if (sink_ != nullptr) {
      Flush();  // empties the ring; no record lost
    } else {
      start_ = (start_ + 1) % ring_.size();
      --size_;
      ++overwritten_;
    }
  }
  ring_[(start_ + size_) % ring_.size()] = record;
  ++size_;
  ++total_;
}

void FlightRecorder::Flush() {
  if (sink_ == nullptr) return;
  // Fixed stack buffer + ostream::write keeps the emit path allocation-free
  // (an ostringstream would regrow on the heap).
  char line[kMaxTraceLineBytes];
  for (std::size_t i = 0; i < size_; ++i) {
    const int n = FormatTraceJsonl(at(i), line, sizeof(line));
    sink_->write(line, n);
  }
  start_ = 0;
  size_ = 0;
}

void FlightRecorder::DumpPostmortem(std::ostream& os, std::size_t last_n,
                                    std::string_view reason) const {
  const std::size_t shown = last_n < size_ ? last_n : size_;
  os << "=== flight recorder postmortem";
  if (shard_labeled_) os << " [shard " << shard_ << "]";
  os << ": " << reason << " ===\n"
     << "recorded " << total_ << " events total";
  if (shard_labeled_) os << " on shard " << shard_;
  os << ", ring holds " << size_ << "/" << ring_.size();
  if (overwritten_ > 0) {
    os << " (" << overwritten_ << " overwritten";
    if (shard_labeled_) os << " on shard " << shard_;
    os << ")";
  }
  os << "; last " << shown << " shown\n";
  if (overwritten_ > 0) {
    os << "warning: this dump is LOSSY — " << overwritten_
       << " older record(s) were overwritten in ";
    os << (shard_labeled_ ? "this shard's ring" : "the ring");
    os << "; rerun with a trace sink (trace_out) or a larger ring for full "
          "history\n";
  }
  char line[kMaxTraceLineBytes];
  for (std::size_t i = size_ - shown; i < size_; ++i) {
    const int n = FormatTraceHuman(at(i), line, sizeof(line));
    os << "  ";
    os.write(line, n);
    os << "\n";
  }
  os << "=== end postmortem ===\n";
  os.flush();
}

}  // namespace dcrd
