// Per-link m-transmission model — Eq. 1 of the paper.
//
// Given the single-transmission expected delay alpha and delivery ratio
// gamma of an overlay link, a node that is willing to transmit up to m
// times before declaring the hop failed sees:
//
//   gamma^(m) = 1 - (1 - gamma)^m
//   alpha^(m) = sum_{k=1..m} k*alpha * gamma*(1-gamma)^(k-1) / gamma^(m)
//
// alpha^(m) is conditional on success within m transmissions (otherwise the
// delay is infinite and the expectation is undefined) — the same convention
// every <d,r> quantity in DCRD follows.
#pragma once

#include <limits>

#include "common/logging.h"

namespace dcrd {

struct LinkModel {
  double alpha_us = std::numeric_limits<double>::infinity();
  double gamma = 0.0;
};

// Eq. 1. Precondition: m >= 1, 0 <= gamma <= 1, alpha finite.
inline LinkModel MTransmissionModel(LinkModel single, int m) {
  DCRD_CHECK(m >= 1);
  DCRD_CHECK(single.gamma >= 0.0 && single.gamma <= 1.0);
  if (single.gamma == 0.0) return LinkModel{};  // never delivers
  const double q = 1.0 - single.gamma;

  double gamma_m = 1.0;  // 1 - q^m, accumulated below
  double qk = 1.0;       // q^k
  double numerator = 0.0;
  for (int k = 1; k <= m; ++k) {
    numerator += k * single.alpha_us * single.gamma * qk;
    qk *= q;
  }
  gamma_m = 1.0 - qk;
  return LinkModel{numerator / gamma_m, gamma_m};
}

}  // namespace dcrd
