#include "dcrd/dr.h"

#include <algorithm>
#include <cmath>

namespace dcrd {

namespace {

template <typename Less>
void SortUsable(std::vector<ViaEntry>& entries, Less less) {
  // Unreachable entries (r == 0 or infinite d) go to the back untouched;
  // including them in the comparators would produce inf*0 = NaN and break
  // strict weak ordering.
  const auto usable_end = std::stable_partition(
      entries.begin(), entries.end(), [](const ViaEntry& e) {
        return e.r_via > 0.0 && e.d_via_us < kInfiniteDelay;
      });
  std::stable_sort(entries.begin(), usable_end, less);
}

}  // namespace

void SortByTheorem1(std::vector<ViaEntry>& entries) {
  SortUsable(entries, [](const ViaEntry& a, const ViaEntry& b) {
    // d_a/r_a < d_b/r_b via cross-multiplication (exact, no division).
    const double lhs = a.d_via_us * b.r_via;
    const double rhs = b.d_via_us * a.r_via;
    if (lhs != rhs) return lhs < rhs;
    return a.neighbor < b.neighbor;
  });
}

void SortByPolicy(std::vector<ViaEntry>& entries, OrderingPolicy policy) {
  switch (policy) {
    case OrderingPolicy::kTheorem1:
      SortByTheorem1(entries);
      return;
    case OrderingPolicy::kDelayFirst:
      SortUsable(entries, [](const ViaEntry& a, const ViaEntry& b) {
        if (a.d_via_us != b.d_via_us) return a.d_via_us < b.d_via_us;
        return a.neighbor < b.neighbor;
      });
      return;
    case OrderingPolicy::kReliabilityFirst:
      SortUsable(entries, [](const ViaEntry& a, const ViaEntry& b) {
        if (a.r_via != b.r_via) return a.r_via > b.r_via;
        return a.neighbor < b.neighbor;
      });
      return;
  }
  DCRD_CHECK(false) << "unknown ordering policy";
}

DR CombineOrdered(const std::vector<ViaEntry>& entries) {
  double prefix_delay = 0.0;  // sum_{j<=i} d_via_j
  double all_fail = 1.0;      // prod_{j<i} (1 - r_via_j)
  double numerator = 0.0;
  for (const ViaEntry& entry : entries) {
    if (!(entry.d_via_us < kInfiniteDelay) || entry.r_via <= 0.0) continue;
    prefix_delay += entry.d_via_us;
    numerator += prefix_delay * entry.r_via * all_fail;
    all_fail *= 1.0 - entry.r_via;
  }
  const double r = 1.0 - all_fail;
  if (r <= 0.0) return DR{};
  return DR{numerator / r, r};
}

double ExpectedDelayOfOrder(const std::vector<ViaEntry>& entries) {
  return CombineOrdered(entries).d_us;
}

}  // namespace dcrd
