#include "dcrd/dcrd_router.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/flight_recorder.h"

namespace dcrd {

DcrdRouter::DcrdRouter(RouterContext context, DcrdConfig config)
    : context_(context),
      config_(config),
      transport_(*context_.network,
                 [this](NodeId at, const Packet& packet, NodeId from) {
                   OnArrival(at, packet, from);
                 },
                 context_.MakeTransportConfig()) {
  DCRD_CHECK(context_.network != nullptr);
  DCRD_CHECK(context_.subscriptions != nullptr);
  DCRD_CHECK(context_.sink != nullptr);
  config_.computation.max_transmissions = context_.max_transmissions;
  config_.distributed.max_transmissions = context_.max_transmissions;
  config_.distributed.ordering = config_.computation.ordering;
  processed_.resize(context_.network->graph().node_count());
  resync_until_.assign(context_.network->graph().node_count(), SimTime());
  resync_round_.assign(context_.network->graph().node_count(), 0);
}

void DcrdRouter::Rebuild(const MonitoredView& view) {
  view_ = &view;
  transport_.ClearDedupState();
  for (auto& processed : processed_) processed.clear();
  // Retry budgets reset with the epoch; anything still parked gets a fresh
  // chance against the newly measured topology.
  persisted_.clear();
  // Freshly rebuilt tables supersede any in-progress crash resync — the
  // restarted broker's state is now exactly as good as everyone else's.
  std::fill(resync_until_.begin(), resync_until_.end(), SimTime());

  const Graph& graph = context_.network->graph();
  const SubscriptionTable& subs = *context_.subscriptions;
  // Retire last epoch's gossip; stragglers on the wire are ignored.
  for (auto& topic_gossip : gossip_) {
    for (GossipTables& gossip : topic_gossip) {
      if (gossip.constrained) gossip.constrained->Stop();
      if (gossip.unconstrained) gossip.unconstrained->Stop();
    }
  }
  tables_.assign(subs.topic_count(), {});
  gossip_.assign(subs.topic_count(), {});
  subscriber_index_.assign(subs.topic_count(), {});
  for (std::size_t t = 0; t < subs.topic_count(); ++t) {
    const TopicId topic(static_cast<TopicId::underlying_type>(t));
    const NodeId publisher = subs.publisher(topic);
    const std::vector<double> publisher_dist =
        MonitoredDistancesFrom(graph, view, publisher);
    for (const Subscription& sub : subs.subscriptions(topic)) {
      if (config_.use_distributed_computation) {
        subscriber_index_[t].emplace(sub.subscriber, gossip_[t].size());
        std::vector<double> budgets(graph.node_count());
        for (std::size_t i = 0; i < graph.node_count(); ++i) {
          budgets[i] =
              static_cast<double>(sub.deadline.micros()) - publisher_dist[i];
        }
        budgets[sub.subscriber.underlying()] =
            std::max(budgets[sub.subscriber.underlying()], 1.0);
        GossipTables gossip;
        gossip.constrained = std::make_shared<DistributedDrComputation>(
            *context_.network, sub.subscriber, view, budgets,
            config_.distributed);
        gossip.constrained->Start();
        if (config_.best_effort_fallback) {
          gossip.unconstrained = std::make_shared<DistributedDrComputation>(
              *context_.network, sub.subscriber, view,
              std::vector<double>(graph.node_count(), kInfiniteDelay),
              config_.distributed);
          gossip.unconstrained->Start();
        }
        gossip_[t].push_back(std::move(gossip));
      } else {
        subscriber_index_[t].emplace(sub.subscriber, tables_[t].size());
        tables_[t].push_back(ComputeDestinationTables(
            graph, view, sub.subscriber,
            static_cast<double>(sub.deadline.micros()), publisher_dist,
            config_.computation));
      }
    }
  }
}

const std::vector<NodeTables>& DcrdRouter::GossipSnapshot(
    const GossipTables& gossip) const {
  const std::uint64_t version =
      gossip.constrained->version() +
      (gossip.unconstrained ? gossip.unconstrained->version() : 0);
  if (version == gossip.snapshot_version) return gossip.snapshot;
  gossip.snapshot = gossip.constrained->Snapshot();
  if (gossip.unconstrained) {
    const std::vector<NodeTables> free_tables =
        gossip.unconstrained->Snapshot();
    for (std::size_t v = 0; v < gossip.snapshot.size(); ++v) {
      std::vector<ViaEntry> fallback = free_tables[v].primary;
      const auto& primary = gossip.snapshot[v].primary;
      std::erase_if(fallback, [&](const ViaEntry& entry) {
        return std::any_of(primary.begin(), primary.end(),
                           [&](const ViaEntry& p) {
                             return p.neighbor == entry.neighbor;
                           });
      });
      gossip.snapshot[v].fallback = std::move(fallback);
    }
  }
  gossip.snapshot_version = version;
  return gossip.snapshot;
}

const NodeTables* DcrdRouter::GetNodeTables(TopicId topic, NodeId subscriber,
                                            NodeId node) const {
  const auto& index = subscriber_index_[topic.underlying()];
  const auto it = index.find(subscriber);
  if (it == index.end()) return nullptr;
  if (config_.use_distributed_computation) {
    const std::vector<NodeTables>& snapshot =
        GossipSnapshot(gossip_[topic.underlying()][it->second]);
    return &snapshot[node.underlying()];
  }
  return &tables_[topic.underlying()][it->second]
              .per_node[node.underlying()];
}

const DestinationTables* DcrdRouter::FindTables(TopicId topic,
                                                NodeId subscriber) const {
  DCRD_CHECK(!config_.use_distributed_computation)
      << "solver tables are not materialised in distributed mode";
  const auto& index = subscriber_index_[topic.underlying()];
  const auto it = index.find(subscriber);
  if (it == index.end()) return nullptr;
  return &tables_[topic.underlying()][it->second];
}

const DestinationTables& DcrdRouter::TablesFor(TopicId topic,
                                               NodeId subscriber) const {
  const DestinationTables* tables = FindTables(topic, subscriber);
  DCRD_CHECK(tables != nullptr)
      << subscriber << " not subscribed to " << topic;
  return *tables;
}

namespace {

// Shortest round-trippable form of a double (%.17g): the auditor recomputes
// d from the list entries and must see exactly the values routing used.
void WriteAuditDouble(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

void DcrdRouter::WriteAuditSnapshot(std::ostream& os, SimTime now) const {
  const SubscriptionTable& subs = *context_.subscriptions;
  for (std::size_t t = 0; t < subs.topic_count(); ++t) {
    const TopicId topic(static_cast<TopicId::underlying_type>(t));
    const NodeId publisher = subs.publisher(topic);
    for (const Subscription& sub : subs.subscriptions(topic)) {
      const NodeTables* tables =
          GetNodeTables(topic, sub.subscriber, publisher);
      if (tables == nullptr) continue;
      // Self-subscriptions deliver instantly at the publisher and
      // unreachable destinations produce no deliveries to audit; both would
      // only add meaningless rows.
      if (sub.subscriber == publisher) continue;
      if (!tables->dr.reachable() || !std::isfinite(tables->dr.d_us)) {
        continue;
      }
      os << "{\"t\":" << now.micros() << ",\"topic\":" << t
         << ",\"pub\":" << publisher.underlying()
         << ",\"sub\":" << sub.subscriber.underlying()
         << ",\"deadline_us\":" << sub.deadline.micros() << ",\"d_us\":";
      WriteAuditDouble(os, tables->dr.d_us);
      os << ",\"r\":";
      WriteAuditDouble(os, tables->dr.r);
      os << ",\"list\":[";
      bool first = true;
      for (const ViaEntry& entry : tables->primary) {
        if (!std::isfinite(entry.d_via_us) || entry.r_via <= 0.0) continue;
        if (!first) os << ",";
        first = false;
        os << "[" << entry.neighbor.underlying() << ","
           << entry.link.underlying() << ",";
        WriteAuditDouble(os, entry.d_via_us);
        os << ",";
        WriteAuditDouble(os, entry.r_via);
        os << "]";
      }
      os << "]}\n";
    }
  }
}

void DcrdRouter::Publish(const Message& message) {
  const SubscriptionTable& subs = *context_.subscriptions;
  std::vector<NodeId> destinations;
  for (const Subscription& sub : subs.subscriptions(message.topic)) {
    if (sub.subscriber == message.publisher) {
      context_.sink->OnDelivered(message, sub.subscriber,
                                 context_.network->scheduler().now());
    } else {
      destinations.push_back(sub.subscriber);
    }
  }
  if (destinations.empty()) return;
  Packet packet(message, std::move(destinations));
  auto& processed =
      processed_[message.publisher.underlying()][ProcessedKey(packet)];
  processed.insert(packet.destinations().begin(),
                   packet.destinations().end());
  StartEpisode(message.publisher, std::move(packet));
}

void DcrdRouter::OnArrival(NodeId at, const Packet& packet, NodeId /*from*/) {
  const bool rerouted_back = packet.OnRoutingPath(at);
  auto& processed = processed_[at.underlying()][ProcessedKey(packet)];

  std::vector<NodeId> remaining;
  for (NodeId subscriber : packet.destinations()) {
    // A fresh visit handles each (message, subscriber) responsibility only
    // once; a rerouted-back packet re-opens responsibilities this broker
    // already forwarded into the now-failed subtree.
    if (!rerouted_back && processed.contains(subscriber)) continue;
    processed.insert(subscriber);
    if (subscriber == at) {
      context_.sink->OnDelivered(packet.message(), subscriber,
                                 context_.network->scheduler().now());
    } else {
      remaining.push_back(subscriber);
    }
  }
  if (remaining.empty()) return;
  StartEpisode(at, packet.WithDestinations(std::move(remaining)));
}

void DcrdRouter::StartEpisode(NodeId node, Packet packet) {
  const std::uint64_t id = next_episode_id_++;
  Episode episode;
  episode.id = id;
  episode.node = node;
  episode.pending = packet.destinations();
  episode.base = std::move(packet);
  episodes_.emplace(id, std::move(episode));
  ProcessEpisode(id);
}

NodeId DcrdRouter::UpstreamOf(const Episode& episode) const {
  const auto& path = episode.base.routing_path();
  if (episode.base.OnRoutingPath(episode.node)) {
    return episode.base.UpstreamOf(episode.node);
  }
  return path.empty() ? NodeId() : path.back();
}

NodeId DcrdRouter::SelectNextHop(const Episode& episode,
                                 NodeId subscriber) const {
  const NodeTables* tables_ptr = GetNodeTables(
      episode.base.message().topic, subscriber, episode.node);
  // The subscriber left (churn) while this packet was in flight: nowhere
  // to send — the caller drops the responsibility.
  if (tables_ptr == nullptr) return NodeId();
  const auto tried_it = episode.tried.find(subscriber);
  const auto is_tried = [&](NodeId candidate) {
    return tried_it != episode.tried.end() && tried_it->second.contains(candidate);
  };

  NodeId choice;
  if (ResyncActive(episode.node)) {
    // Post-restart best-effort forwarding: this broker's <d,r> tables died
    // with its crash and gossip has not reconverged, so instead of a
    // sending list it walks its physical adjacency — any neighbour not on
    // the routing path, not tried this episode and not known-dead — with
    // the usual upstream backstop below. Delivery never waits for resync.
    for (const Neighbor& n :
         context_.network->graph().neighbors(episode.node)) {
      if (episode.base.OnRoutingPath(n.peer)) continue;
      if (is_tried(n.peer)) continue;
      if (!transport_.PeerAlive(episode.node, n.link)) continue;
      choice = n.peer;
      break;
    }
  } else {
    const NodeTables& node_tables = *tables_ptr;
    const auto scan = [&](const std::vector<ViaEntry>& list) {
      for (const ViaEntry& entry : list) {
        if (episode.base.OnRoutingPath(entry.neighbor)) continue;
        if (is_tried(entry.neighbor)) continue;
        return entry.neighbor;
      }
      return NodeId();
    };

    choice = scan(node_tables.primary);
    if (!choice.valid() && config_.best_effort_fallback) {
      choice = scan(node_tables.fallback);
    }
  }
  if (choice.valid()) return choice;

  // Sending list exhausted: reroute to the upstream node (Algorithm 2,
  // lines 10-12), bounded by the retry cap.
  const NodeId upstream = UpstreamOf(episode);
  if (!upstream.valid()) return NodeId();  // publisher: drop
  const auto attempts_it = episode.reroute_attempts.find(subscriber);
  if (attempts_it != episode.reroute_attempts.end() &&
      attempts_it->second >= config_.reroute_retry_cap) {
    return NodeId();
  }
  return upstream;
}

void DcrdRouter::ProcessEpisode(std::uint64_t episode_id) {
  auto it = episodes_.find(episode_id);
  if (it == episodes_.end()) return;
  Episode& episode = it->second;

  while (!episode.pending.empty()) {
    // Decide the next hop for the first pending subscriber, then pull in
    // every other pending subscriber that picks the same hop (Algorithm 2,
    // lines 13-19).
    const NodeId leader = episode.pending.front();
    const NodeId next = SelectNextHop(episode, leader);
    if (!next.valid()) {
      HandleUndeliverable(episode.node, episode.base, leader);
      episode.pending.erase(episode.pending.begin());
      continue;
    }
    std::vector<NodeId> group;
    std::vector<NodeId> still_pending;
    for (NodeId subscriber : episode.pending) {
      if (subscriber == leader || SelectNextHop(episode, subscriber) == next) {
        group.push_back(subscriber);
      } else {
        still_pending.push_back(subscriber);
      }
    }
    episode.pending = std::move(still_pending);

    const bool is_reroute = next == UpstreamOf(episode);
    if (is_reroute) {
      for (NodeId subscriber : group) ++episode.reroute_attempts[subscriber];
    }

    Packet copy = episode.base.WithDestinations(group);
    copy.RecordOnPath(episode.node);
    const auto link = context_.network->graph().FindEdge(episode.node, next);
    DCRD_CHECK(link.has_value())
        << "sending list refers to missing edge " << episode.node << "-"
        << next;
    if (is_reroute && context_.recorder != nullptr) {
      context_.recorder->Record(
          TraceEventKind::kReroute, episode.base.message().id.value, 0,
          episode.node, next, *link, 0,
          static_cast<std::uint16_t>(group.size()));
    }
    const SimDuration timeout = context_.AckTimeout(view_->alpha(*link));
    ++episode.in_flight;
    transport_.SendReliable(
        episode.node, *link, std::move(copy), context_.max_transmissions,
        timeout,
        [this, episode_id, next, group](bool acked) mutable {
          OnCopyResolved(episode_id, next, std::move(group), acked);
        });
  }
  FinishEpisodeIfIdle(episode_id);
}

void DcrdRouter::OnCopyResolved(std::uint64_t episode_id, NodeId next_hop,
                                std::vector<NodeId> subscribers, bool acked) {
  auto it = episodes_.find(episode_id);
  if (it == episodes_.end()) {
    // Only a broker crash erases an episode with copies still unresolved
    // (the crash kills the broker's own pendings without resolving them,
    // but a straggler resolution scheduled before the crash can still
    // land). Without crashes a vanished episode is a bookkeeping bug.
    DCRD_CHECK(context_.network->crashes().enabled())
        << "copy resolved for vanished episode " << episode_id;
    return;
  }
  Episode& episode = it->second;
  --episode.in_flight;

  if (!acked) {
    // Hop failed after m transmissions: mark tried (unless it was the
    // upstream reroute, which stays eligible under the retry cap) and put
    // the subscribers back on the pending list.
    const bool was_reroute = next_hop == UpstreamOf(episode);
    for (NodeId subscriber : subscribers) {
      if (!was_reroute) episode.tried[subscriber].insert(next_hop);
      episode.pending.push_back(subscriber);
    }
    ProcessEpisode(episode_id);
    return;
  }
  FinishEpisodeIfIdle(episode_id);
}

void DcrdRouter::RecordUndeliverable(NodeId node, const Packet& base,
                                     NodeId subscriber) {
  if (context_.recorder == nullptr) return;
  context_.recorder->Record(
      TraceEventKind::kDrop, base.message().id.value, 0, node, subscriber,
      LinkId(), static_cast<std::uint8_t>(TraceDropReason::kUndeliverable));
}

void DcrdRouter::HandleUndeliverable(NodeId node, const Packet& base,
                                     NodeId subscriber) {
  if (!config_.enable_persistence) {
    ++dropped_undeliverable_;
    RecordUndeliverable(node, base, subscriber);
    return;
  }
  const auto key = std::make_tuple(node, base.message().id.value, subscriber);
  int& attempts = persisted_[key];
  if (attempts >= config_.persistence_max_retries) {
    persisted_.erase(key);
    ++dropped_undeliverable_;
    RecordUndeliverable(node, base, subscriber);
    return;
  }
  ++attempts;
  ++persisted_packets_;
  const Message message = base.message();
  const int generation = attempts;
  context_.network->scheduler().ScheduleAfter(
      config_.persistence_retry_interval,
      [this, node, message, subscriber, generation] {
        // Parked packets are volatile state: if the broker crashed at any
        // point while this one waited, it died with the broker.
        const BrokerCrashSchedule& crashes = context_.network->crashes();
        const SimTime now = context_.network->scheduler().now();
        const SimTime parked_at = SimTime::FromMicros(
            now.micros() - config_.persistence_retry_interval.micros());
        if (crashes.enabled() && crashes.DownDuring(node, parked_at, now)) {
          ++dropped_undeliverable_;
          if (context_.recorder != nullptr) {
            context_.recorder->Record(
                TraceEventKind::kDrop, message.id.value, 0, node, subscriber,
                LinkId(), static_cast<std::uint8_t>(TraceDropReason::kCrash));
          }
          return;
        }
        ++persistence_retries_;
        // Fresh attempt: empty routing path so the whole overlay is
        // explorable again, and a new persistence generation so the
        // processed-set dedup downstream does not mistake the retry for a
        // duplicate of the failed attempt.
        Packet retry(message, {subscriber});
        retry.set_flow_label(static_cast<std::uint8_t>(generation));
        processed_[node.underlying()][ProcessedKey(retry)].insert(subscriber);
        StartEpisode(node, std::move(retry));
      });
}

std::size_t DcrdRouter::OnBrokerCrash(NodeId node) {
  // Transport first: pendings at `node` are killed without resolution and
  // its dedup windows cleared, so nothing below ever hears from them again.
  const std::size_t killed = transport_.OnBrokerCrash(node);
  // Open processing episodes at the broker die with it.
  std::erase_if(episodes_,
                [&](const auto& kv) { return kv.second.node == node; });
  processed_[node.underlying()].clear();
  // Persistency-mode parked packets were volatile state too. (The armed
  // retry timers re-check the crash schedule when they fire.)
  std::erase_if(persisted_, [&](const auto& kv) {
    return std::get<0>(kv.first) == node;
  });
  // A crash inside a resync window voids the resync; the next restart
  // opens a fresh one and the old completion timer goes stale.
  resync_until_[node.underlying()] = SimTime();
  ++resync_round_[node.underlying()];
  return killed;
}

SimDuration DcrdRouter::ResyncWindow(NodeId node) const {
  SimDuration slowest = SimDuration::Zero();
  for (const Neighbor& n : context_.network->graph().neighbors(node)) {
    const SimDuration alpha = view_ != nullptr
                                  ? view_->alpha(n.link)
                                  : context_.network->graph().edge(n.link).delay;
    slowest = std::max(slowest, context_.AckTimeout(alpha));
  }
  return std::max(SimDuration::Micros(3 * 2 * slowest.micros()),
                  SimDuration::Millis(1));
}

void DcrdRouter::OnBrokerRestart(NodeId node) {
  const SimTime started = context_.network->scheduler().now();
  const SimDuration window = ResyncWindow(node);
  resync_until_[node.underlying()] = started + window;
  const std::uint32_t round = ++resync_round_[node.underlying()];
  ++resync_stats_.resyncs_started;

  if (config_.use_distributed_computation) {
    // Reset the broker's slot in every gossip instance: its pre-crash
    // <d,r> contributions are forgotten, a fresh generation is announced,
    // and neighbours are re-solicited — stale stragglers from before the
    // crash carry the old generation and are dropped on arrival.
    for (auto& topic_gossip : gossip_) {
      for (GossipTables& gossip : topic_gossip) {
        if (gossip.constrained) gossip.constrained->OnNodeRestart(node);
        if (gossip.unconstrained) gossip.unconstrained->OnNodeRestart(node);
      }
    }
  } else {
    // Solver mode keeps the tables centrally, so model the state re-fetch
    // as one control round trip per neighbour (request up, snapshot back):
    // a fire-and-forget echo — the completion window below is timed
    // separately. The echo is shard-safe; a neighbour on another shard
    // resolves the snapshot leg on its own side.
    for (const Neighbor& n : context_.network->graph().neighbors(node)) {
      context_.network->TransmitEcho(node, n.link, {});
    }
  }

  // Resync bookkeeping replays on every shard; only the broker's owner
  // records, so the multi-shard trace carries each resync exactly once.
  if (context_.recorder != nullptr && context_.network->IsLocalNode(node)) {
    context_.recorder->Record(
        TraceEventKind::kResyncStart, 0, 0, node, NodeId(), LinkId(), 0,
        static_cast<std::uint16_t>(
            context_.network->graph().degree(node)));
  }
  context_.network->scheduler().ScheduleAfter(
      window, [this, node, round, started] {
        // Stale if the broker crashed again inside the window.
        if (resync_round_[node.underlying()] != round) return;
        resync_until_[node.underlying()] = SimTime();
        const SimDuration took =
            context_.network->scheduler().now() - started;
        ++resync_stats_.resyncs_completed;
        resync_stats_.total_resync_time += took;
        resync_stats_.max_resync_time =
            std::max(resync_stats_.max_resync_time, took);
        if (context_.recorder != nullptr &&
            context_.network->IsLocalNode(node)) {
          // The copy field carries the resync duration in microseconds.
          context_.recorder->Record(
              TraceEventKind::kResyncDone, 0,
              static_cast<std::uint64_t>(took.micros()), node, NodeId(),
              LinkId());
        }
      });
}

void DcrdRouter::FinishEpisodeIfIdle(std::uint64_t episode_id) {
  const auto it = episodes_.find(episode_id);
  if (it == episodes_.end()) return;
  if (it->second.pending.empty() && it->second.in_flight == 0) {
    episodes_.erase(it);
  }
}

}  // namespace dcrd
