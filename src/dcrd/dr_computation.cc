#include "dcrd/dr_computation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/shortest_path.h"

namespace dcrd {

std::vector<double> MonitoredDistancesFrom(const Graph& graph,
                                           const MonitoredView& view,
                                           NodeId source) {
  const PathTree tree = ShortestDelayTree(
      graph, source, [&view](LinkId link) { return view.alpha(link); });
  std::vector<double> distances(graph.node_count(), kInfiniteDelay);
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    const NodeId node(static_cast<NodeId::underlying_type>(i));
    if (tree.Reachable(node)) {
      distances[i] = static_cast<double>(tree.distance[i].micros());
    }
  }
  return distances;
}

namespace {

// Builds X's eligible entries toward the subscriber from the current dr
// estimates — neighbours with d_i < budget — lifted across the link with
// the m-transmission model (Eq. 1 + Eq. 2) and sorted under the configured
// ordering policy (Theorem 1 for DCRD proper).
std::vector<ViaEntry> CollectEligible(const Graph& graph,
                                      const MonitoredView& view,
                                      const std::vector<DR>& dr, NodeId x,
                                      double budget_us, int m,
                                      OrderingPolicy ordering) {
  std::vector<ViaEntry> eligible;
  for (const Neighbor& nb : graph.neighbors(x)) {
    const DR& dr_i = dr[nb.peer.underlying()];
    if (!dr_i.reachable() || !(dr_i.d_us < budget_us)) continue;
    const LinkModel single{static_cast<double>(view.alpha(nb.link).micros()),
                           view.gamma(nb.link)};
    const LinkModel lifted = MTransmissionModel(single, m);
    if (lifted.gamma <= 0.0) continue;
    eligible.push_back(LiftAcrossLink(nb.peer, nb.link, lifted, dr_i));
  }
  SortByPolicy(eligible, ordering);
  return eligible;
}

// Runs the synchronous Gauss–Seidel sweeps to the <d,r> fixed point under
// per-node delay budgets (pass +infinity budgets for the unconstrained
// fixed point). Returns the dr vector plus convergence bookkeeping.
struct FixedPoint {
  std::vector<DR> dr;
  int sweeps_used = 0;
  bool converged = false;
};

FixedPoint SolveFixedPoint(const Graph& graph, const MonitoredView& view,
                           NodeId subscriber,
                           const std::vector<double>& budget_us,
                           const std::vector<std::uint32_t>& order,
                           const DrComputationConfig& config) {
  FixedPoint result;
  result.dr.assign(graph.node_count(), DR{});
  result.dr[subscriber.underlying()] = DR{0.0, 1.0};

  for (; result.sweeps_used < config.max_sweeps && !result.converged;
       ++result.sweeps_used) {
    double max_delta = 0.0;
    for (std::uint32_t idx : order) {
      const NodeId x(idx);
      if (x == subscriber) continue;
      const std::vector<ViaEntry> eligible =
          CollectEligible(graph, view, result.dr, x, budget_us[idx],
                          config.max_transmissions, config.ordering);
      const DR updated = CombineOrdered(eligible);
      const DR previous = result.dr[idx];
      if (updated.reachable() != previous.reachable()) {
        max_delta = kInfiniteDelay;
      } else if (updated.reachable()) {
        max_delta = std::max(max_delta, std::abs(updated.d_us - previous.d_us));
        max_delta =
            std::max(max_delta, std::abs(updated.r - previous.r) * 1e6);
      }
      result.dr[idx] = updated;
    }
    result.converged = max_delta <= config.tolerance_us;
  }
  return result;
}

}  // namespace

DestinationTables ComputeDestinationTables(
    const Graph& graph, const MonitoredView& view, NodeId subscriber,
    double deadline_us, const std::vector<double>& publisher_dist_us,
    const DrComputationConfig& config) {
  const std::size_t n = graph.node_count();
  DCRD_CHECK(subscriber.underlying() < n);
  DCRD_CHECK(publisher_dist_us.size() == n);

  DestinationTables tables;
  tables.subscriber = subscriber;
  tables.deadline_us = deadline_us;
  tables.budget_us.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    tables.budget_us[i] = deadline_us - publisher_dist_us[i];
  }
  // The subscriber delivers to itself within any budget.
  tables.budget_us[subscriber.underlying()] =
      std::max(tables.budget_us[subscriber.underlying()], 1.0);

  // Sweep order: nodes by monitored distance to the subscriber, closest
  // first, so each sweep propagates information one "ring" further out.
  const std::vector<double> to_subscriber =
      MonitoredDistancesFrom(graph, view, subscriber);
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return to_subscriber[a] < to_subscriber[b];
                   });

  // Budget-constrained fixed point: the paper's <d,r> and sending lists.
  const FixedPoint constrained =
      SolveFixedPoint(graph, view, subscriber, tables.budget_us, order, config);
  tables.sweeps_used = constrained.sweeps_used;
  tables.converged = constrained.converged;

  // Unconstrained fixed point for the best-effort fallback lists. Budget
  // starvation makes a node advertise r = 0, which would otherwise make it
  // invisible to its neighbours' fallback lists too — the unconstrained
  // values restore "can this neighbour deliver at all, however late".
  FixedPoint unconstrained;
  if (config.build_fallback) {
    const std::vector<double> no_budget(n, kInfiniteDelay);
    unconstrained =
        SolveFixedPoint(graph, view, subscriber, no_budget, order, config);
  }

  // Final materialisation pass: sending lists from the converged values.
  tables.per_node.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId x(static_cast<NodeId::underlying_type>(i));
    NodeTables& node = tables.per_node[i];
    if (x == subscriber) {
      node.dr = DR{0.0, 1.0};
      continue;
    }
    node.dr = constrained.dr[i];
    node.primary =
        CollectEligible(graph, view, constrained.dr, x, tables.budget_us[i],
                        config.max_transmissions, config.ordering);
    if (config.build_fallback) {
      std::vector<ViaEntry> fallback = CollectEligible(
          graph, view, unconstrained.dr, x, kInfiniteDelay,
          config.max_transmissions, config.ordering);
      // Drop neighbours the primary list already covers.
      std::erase_if(fallback, [&](const ViaEntry& entry) {
        return std::any_of(node.primary.begin(), node.primary.end(),
                           [&](const ViaEntry& p) {
                             return p.neighbor == entry.neighbor;
                           });
      });
      node.fallback = std::move(fallback);
    }
  }
  return tables;
}

}  // namespace dcrd
