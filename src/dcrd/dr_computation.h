// Distributed <d,r> computation and sending-list construction
// (paper Sections III-B and III-C, Algorithm 1).
//
// The paper's nodes run an asynchronous recursion seeded at the subscriber
// (<0,1>), each node recomputing its <d,r> from its neighbours' values and
// re-sharing. We emulate that with synchronous Gauss–Seidel sweeps over the
// nodes, ordered by monitored distance to the subscriber (information flows
// outward from S, so this ordering converges in about
// diameter-many sweeps); iteration stops when no node's d moved by more
// than `tolerance_us`, or at `max_sweeps` — the cap mirrors the fact that a
// real deployment stops gossiping when updates stop changing anything.
//
// Eligibility (Sec. III-C): neighbour i enters X's sending list toward S
// only if d_i < D_XS, with D_XS = D_PS - (monitored shortest delay P->X).
// The optional *fallback list* holds the remaining finite-<d,r> neighbours,
// Theorem-1 sorted; the router walks it only after the primary list is
// exhausted so that packets which can no longer meet the deadline are still
// delivered (the paper's "delivery ratio" counts late packets, so DCRD must
// keep forwarding past deadline-infeasible states). Fallback entries never
// contribute to the advertised <d_X, r_X>.
#pragma once

#include <vector>

#include "common/ids.h"
#include "dcrd/dr.h"
#include "graph/graph.h"
#include "net/link_monitor.h"

namespace dcrd {

struct DrComputationConfig {
  int max_transmissions = 1;  // paper parameter m
  int max_sweeps = 64;
  double tolerance_us = 0.5;
  bool build_fallback = true;
  // Sending-list order; kTheorem1 is DCRD, the others are ablations.
  OrderingPolicy ordering = OrderingPolicy::kTheorem1;
};

// Per-node routing state toward one subscriber.
struct NodeTables {
  DR dr;                           // <d_X, r_X>
  std::vector<ViaEntry> primary;   // the sending list (Theorem-1 order)
  std::vector<ViaEntry> fallback;  // best-effort extension (Theorem-1 order)
};

// All per-node state for one (publisher, subscriber, deadline) destination.
struct DestinationTables {
  NodeId subscriber;
  double deadline_us = 0.0;             // D_PS
  std::vector<double> budget_us;        // D_XS per node (-inf if P can't reach X)
  std::vector<NodeTables> per_node;
  int sweeps_used = 0;
  bool converged = false;
};

// `publisher_dist_us[x]` is the monitored shortest delay from the publisher
// to node x (infinity when unreachable); the caller computes it once per
// topic and shares it across that topic's subscribers.
DestinationTables ComputeDestinationTables(
    const Graph& graph, const MonitoredView& view, NodeId subscriber,
    double deadline_us, const std::vector<double>& publisher_dist_us,
    const DrComputationConfig& config);

// Monitored shortest delay from `source` to every node, in microseconds
// (infinity when unreachable) — the helper for both D_XS budgets and sweep
// ordering.
std::vector<double> MonitoredDistancesFrom(const Graph& graph,
                                           const MonitoredView& view,
                                           NodeId source);

}  // namespace dcrd
