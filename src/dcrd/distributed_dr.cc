#include "dcrd/distributed_dr.h"

#include <cmath>

namespace dcrd {

DistributedDrComputation::DistributedDrComputation(
    OverlayNetwork& network, NodeId subscriber, const MonitoredView& view,
    std::vector<double> budget_us, DistributedDrConfig config)
    : network_(network),
      subscriber_(subscriber),
      view_(view),
      budget_us_(std::move(budget_us)),
      config_(config) {
  const Graph& graph = network_.graph();
  DCRD_CHECK(budget_us_.size() == graph.node_count());
  states_.resize(graph.node_count());
  generation_.assign(graph.node_count(), 0);
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    states_[v].heard.assign(
        graph.neighbors(NodeId(static_cast<NodeId::underlying_type>(v)))
            .size(),
        DR{});
  }
}

void DistributedDrComputation::Start() {
  states_[subscriber_.underlying()].self = DR{0.0, 1.0};
  ++version_;
  last_change_ = network_.scheduler().now();
  Broadcast(subscriber_);
  ScheduleRebroadcasts(subscriber_);
}

std::vector<ViaEntry> DistributedDrComputation::EligibleEntries(
    NodeId node) const {
  const Graph& graph = network_.graph();
  const NodeState& state = states_[node.underlying()];
  std::vector<ViaEntry> eligible;
  const auto& neighbors = graph.neighbors(node);
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    const DR& heard = state.heard[i];
    if (!heard.reachable() || !(heard.d_us < budget_us_[node.underlying()])) {
      continue;
    }
    const LinkModel single{
        static_cast<double>(view_.alpha(neighbors[i].link).micros()),
        view_.gamma(neighbors[i].link)};
    const LinkModel lifted =
        MTransmissionModel(single, config_.max_transmissions);
    if (lifted.gamma <= 0.0) continue;
    eligible.push_back(LiftAcrossLink(neighbors[i].peer, neighbors[i].link,
                                      lifted, heard));
  }
  SortByPolicy(eligible, config_.ordering);
  return eligible;
}

void DistributedDrComputation::Recompute(NodeId node) {
  if (node == subscriber_) return;  // <0,1> is axiomatic
  NodeState& state = states_[node.underlying()];
  const DR updated = CombineOrdered(EligibleEntries(node));
  const DR previous = state.self;
  const bool changed =
      updated.reachable() != previous.reachable() ||
      (updated.reachable() &&
       (std::abs(updated.d_us - previous.d_us) > config_.update_threshold_us ||
        std::abs(updated.r - previous.r) * 1e6 >
            config_.update_threshold_us));
  if (!changed) return;
  state.self = updated;
  ++version_;
  last_change_ = network_.scheduler().now();
  Broadcast(node);
  ScheduleRebroadcasts(node);
}

void DistributedDrComputation::Broadcast(NodeId node) {
  if (stopped_) return;
  const Graph& graph = network_.graph();
  const DR value = states_[node.underlying()].self;
  // The callback holds shared ownership: a protocol retired mid-flight
  // stays alive until its last update lands (and is then ignored).
  auto self = shared_from_this();
  const std::uint32_t generation = generation_[node.underlying()];
  for (const Neighbor& nb : graph.neighbors(node)) {
    ++updates_sent_;
    const NodeId peer = nb.peer;
    network_.Transmit(node, nb.link, TrafficClass::kControl,
                      [self, peer, node, value, generation] {
                        if (self->stopped_) return;
                        self->HandleUpdate(peer, node, value, generation);
                      });
  }
}

void DistributedDrComputation::ScheduleRebroadcasts(NodeId node) {
  NodeState& state = states_[node.underlying()];
  if (config_.rebroadcasts <= 0) return;
  // Top up the per-node counter; a single timer chain drains it.
  state.pending_rebroadcasts = config_.rebroadcasts;
  if (state.rebroadcast_timer_armed) return;
  state.rebroadcast_timer_armed = true;
  auto self = shared_from_this();
  network_.scheduler().ScheduleAfter(
      config_.rebroadcast_gap, [self, node] { self->RebroadcastTick(node); });
}

void DistributedDrComputation::RebroadcastTick(NodeId node) {
  if (stopped_) return;
  NodeState& state = states_[node.underlying()];
  state.rebroadcast_timer_armed = false;
  if (state.pending_rebroadcasts <= 0) return;
  --state.pending_rebroadcasts;
  Broadcast(node);
  if (state.pending_rebroadcasts > 0) {
    state.rebroadcast_timer_armed = true;
    auto self = shared_from_this();
    network_.scheduler().ScheduleAfter(
        config_.rebroadcast_gap,
        [self, node] { self->RebroadcastTick(node); });
  }
}

void DistributedDrComputation::OnNodeRestart(NodeId node) {
  if (stopped_) return;
  NodeState& state = states_[node.underlying()];
  ++generation_[node.underlying()];
  state.heard.assign(state.heard.size(), DR{});
  state.self = node == subscriber_ ? DR{0.0, 1.0} : DR{};
  state.pending_rebroadcasts = 0;
  ++version_;
  last_change_ = network_.scheduler().now();
  // Re-announce the reset value (fresh generation) and solicit every
  // neighbour: the request pays one hop, the peer answers with whatever it
  // holds when the request lands.
  Broadcast(node);
  ScheduleRebroadcasts(node);
  auto self = shared_from_this();
  for (const Neighbor& nb : network_.graph().neighbors(node)) {
    const NodeId peer = nb.peer;
    const LinkId link = nb.link;
    network_.Transmit(
        node, link, TrafficClass::kControl, [self, peer, link, node] {
          if (self->stopped_) return;
          const DR value = self->states_[peer.underlying()].self;
          const std::uint32_t generation =
              self->generation_[peer.underlying()];
          ++self->updates_sent_;
          self->network_.Transmit(peer, link, TrafficClass::kControl,
                                  [self, node, peer, value, generation] {
                                    if (self->stopped_) return;
                                    self->HandleUpdate(node, peer, value,
                                                       generation);
                                  });
        });
  }
}

void DistributedDrComputation::HandleUpdate(NodeId at, NodeId from,
                                            const DR& value,
                                            std::uint32_t generation) {
  // A pre-crash straggler: the sender restarted (and bumped its
  // generation) after launching this update — its payload describes state
  // the crash destroyed, so it must not overwrite fresher announcements.
  if (generation != generation_[from.underlying()]) return;
  ++updates_received_;
  const Graph& graph = network_.graph();
  const auto& neighbors = graph.neighbors(at);
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    if (neighbors[i].peer == from) {
      states_[at.underlying()].heard[i] = value;
      ++version_;  // heard-values feed the sending lists directly
      Recompute(at);
      return;
    }
  }
  DCRD_CHECK(false) << "update from non-neighbour " << from << " at " << at;
}

std::vector<NodeTables> DistributedDrComputation::Snapshot() const {
  const Graph& graph = network_.graph();
  std::vector<NodeTables> tables(graph.node_count());
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    const NodeId node(static_cast<NodeId::underlying_type>(v));
    tables[v].dr = node == subscriber_ ? DR{0.0, 1.0} : states_[v].self;
    if (node != subscriber_) tables[v].primary = EligibleEntries(node);
  }
  return tables;
}

}  // namespace dcrd
