// The distributed <d,r> computation as an actual network protocol
// (paper Section III-B, run literally).
//
// "The recursive computation process starts when a subscriber S subscribes
//  to a topic ... S then shares its parameters <0,1> with its immediate
//  neighbors. Other nodes who have received the parameters regarding
//  subscriber S from its neighbors start the computation of its own <d,r>
//  distributively."
//
// DcrdRouter uses a centralized fixed-point solver (dr_computation.h) as a
// fast, deterministic stand-in for this protocol; this class runs the real
// thing — <d,r> updates travel as control messages over the overlay links,
// paying propagation delay and exposed to the loss and failure processes —
// so we can (a) verify the solver computes exactly what the protocol
// converges to, and (b) measure what the paper never reports: convergence
// latency and control-message cost per (subscriber, epoch).
//
// Protocol: every node caches the last <d,r> heard from each neighbour.
// On an update it recomputes its own <d,r> (Eq. 2 + Eq. 3 over the cached
// values, budget-filtered, policy-ordered) and, if the value moved by more
// than `update_threshold_us` (or flipped reachability), broadcasts the new
// value to all neighbours. Quiescence is natural: no change, no broadcast.
// A lost update leaves a neighbour stale — with `rebroadcasts > 0` each
// node re-announces its current value that many times at `rebroadcast_gap`
// intervals after a change, the standard cheap anti-entropy.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dcrd/dr_computation.h"
#include "net/overlay_network.h"

namespace dcrd {

struct DistributedDrConfig {
  int max_transmissions = 1;  // paper parameter m (for Eq. 1 lifting)
  double update_threshold_us = 0.5;
  OrderingPolicy ordering = OrderingPolicy::kTheorem1;
  // Anti-entropy: extra announcements of the current value after a change.
  int rebroadcasts = 0;
  SimDuration rebroadcast_gap = SimDuration::Millis(100);
};

class DistributedDrComputation
    : public std::enable_shared_from_this<DistributedDrComputation> {
 public:
  // `budget_us` are the D_XS values (see dr_computation.h); the view
  // supplies the (alpha, gamma) estimates every node uses for Eq. 1/2.
  // Always hold instances in a shared_ptr: in-flight update messages keep
  // the protocol alive via shared_from_this, so an epoch turnover that
  // drops its reference cannot dangle (call Stop() first so stragglers are
  // ignored).
  DistributedDrComputation(OverlayNetwork& network, NodeId subscriber,
                           const MonitoredView& view,
                           std::vector<double> budget_us,
                           DistributedDrConfig config = {});

  // Injects <0,1> at the subscriber. Run the scheduler (to quiescence or a
  // deadline) afterwards; the protocol schedules everything else itself.
  void Start();

  // Retires the protocol: updates already on the wire are dropped on
  // arrival and no further messages are sent.
  void Stop() { stopped_ = true; }

  // Fail-stop recovery: `node` restarted with empty volatile state. Its
  // slot is reset (self and every heard value forgotten), its announcement
  // generation bumps — updates it sent before the crash are dropped on
  // arrival instead of resurrecting pre-crash state — and it re-announces
  // itself and solicits every neighbour's current value, so its <d,r>
  // reconverges without waiting for the next natural change wave.
  void OnNodeRestart(NodeId node);

  // Current (possibly still converging) per-node state. per_node[i].primary
  // is the sending list Algorithm 1 would install at node i.
  [[nodiscard]] std::vector<NodeTables> Snapshot() const;

  // Monotonic change counter: bumps whenever any node's state moves.
  // Callers cache Snapshot() results against it (see DcrdRouter's
  // distributed mode).
  [[nodiscard]] std::uint64_t version() const { return version_; }

  [[nodiscard]] std::uint64_t updates_sent() const { return updates_sent_; }
  [[nodiscard]] std::uint64_t updates_received() const {
    return updates_received_;
  }
  // Time of the last local <d,r> change — the convergence instant once the
  // scheduler has drained.
  [[nodiscard]] SimTime last_change() const { return last_change_; }

 private:
  struct NodeState {
    DR self;
    std::vector<DR> heard;  // last value heard per neighbour index
    int pending_rebroadcasts = 0;
    bool rebroadcast_timer_armed = false;
  };

  void Recompute(NodeId node);
  void Broadcast(NodeId node);
  void ScheduleRebroadcasts(NodeId node);
  void RebroadcastTick(NodeId node);
  // `generation` is the sender's announcement generation at send time; a
  // mismatch with its current generation marks a pre-crash straggler.
  void HandleUpdate(NodeId at, NodeId from, const DR& value,
                    std::uint32_t generation);
  [[nodiscard]] std::vector<ViaEntry> EligibleEntries(NodeId node) const;

  OverlayNetwork& network_;
  NodeId subscriber_;
  const MonitoredView& view_;
  std::vector<double> budget_us_;
  DistributedDrConfig config_;
  std::vector<NodeState> states_;
  // Per-node announcement generation; bumped by OnNodeRestart.
  std::vector<std::uint32_t> generation_;
  std::uint64_t updates_sent_ = 0;
  std::uint64_t updates_received_ = 0;
  std::uint64_t version_ = 0;
  bool stopped_ = false;
  SimTime last_change_ = SimTime::Zero();
};

}  // namespace dcrd
