// The <d, r> algebra at the heart of DCRD (Section III-B/III-C).
//
//   d — expected delay from the moment a node holds a packet until the
//       packet reaches subscriber S, conditional on eventual delivery;
//   r — probability the node delivers to S (with expected delay d).
//
// Eq. 2 lifts a neighbour's <d_i, r_i> across the connecting link;
// Eq. 3 folds an *ordered* sending list into the node's own <d_X, r_X>;
// Theorem 1 says the fold is minimised by ordering entries ascending in
// d_via / r_via — implemented by SortByTheorem1 and verified exhaustively
// against all permutations in the tests.
#pragma once

#include <limits>
#include <vector>

#include "common/ids.h"
#include "dcrd/link_model.h"

namespace dcrd {

struct DR {
  double d_us = std::numeric_limits<double>::infinity();
  double r = 0.0;

  [[nodiscard]] bool reachable() const { return r > 0.0; }
  friend bool operator==(const DR&, const DR&) = default;
};

inline constexpr double kInfiniteDelay = std::numeric_limits<double>::infinity();

// One sending-list entry: reaching S via `neighbor`, Eq. 2 applied.
struct ViaEntry {
  NodeId neighbor;
  LinkId link;
  double d_via_us = kInfiniteDelay;  // alpha^(m) + d_i
  double r_via = 0.0;                // gamma^(m) * r_i
};

// Eq. 2: lift <d_i, r_i> across a link with m-transmission model `link_m`.
inline ViaEntry LiftAcrossLink(NodeId neighbor, LinkId link,
                               const LinkModel& link_m, const DR& dr_i) {
  return ViaEntry{neighbor, link, link_m.alpha_us + dr_i.d_us,
                  link_m.gamma * dr_i.r};
}

// Theorem 1 ordering: ascending d_via/r_via; ties broken by neighbor id so
// list construction is deterministic. Entries with r_via == 0 sort last.
void SortByTheorem1(std::vector<ViaEntry>& entries);

// Sending-list ordering policies. kTheorem1 is DCRD; the others exist for
// the ablation bench, quantifying what the proof buys in vivo:
//   kDelayFirst       — ascending expected delay d_via (what a naive
//                       implementation sorts by),
//   kReliabilityFirst — descending delivery ratio r_via.
enum class OrderingPolicy { kTheorem1, kDelayFirst, kReliabilityFirst };

// Sorts under the chosen policy (unreachable entries always go last; ties
// break by neighbor id).
void SortByPolicy(std::vector<ViaEntry>& entries, OrderingPolicy policy);

// Eq. 3 over an ordered list: the node tries entry 1 first, then entry 2,
// and so on; the numerator accumulates (sum of d up to i) * P(first success
// at i), the denominator is the overall success probability.
DR CombineOrdered(const std::vector<ViaEntry>& entries);

// Expected delay of the *given* order — CombineOrdered's d without the
// Theorem-1 precondition. Used by tests to compare orderings.
double ExpectedDelayOfOrder(const std::vector<ViaEntry>& entries);

}  // namespace dcrd
