// The DCRD router — Algorithms 1 and 2 of the paper.
//
// Per monitoring epoch (Algorithm 1): for every (topic, subscriber) pair the
// router recomputes the distributed <d,r> tables and Theorem-1 sending lists
// from the freshly monitored link estimates.
//
// Per packet (Algorithm 2): the holding broker walks the subscriber's
// sending list — first entry not yet on the packet's routing path and not
// already tried in this processing episode — sends one copy per distinct
// next hop (subscribers sharing a next hop share the copy), and arms an ACK
// timer of 2*alpha_hat + slack. A hop that stays silent for m transmissions
// is marked tried and the walk continues; when the list is exhausted the
// packet is rerouted to the broker's *upstream* node (read from the routing
// path), which resumes from its own sending list. Only the publisher with
// an exhausted list drops a packet.
//
// Two deliberate refinements over the paper's pseudocode, both documented in
// DESIGN.md:
//  * a transient per-episode tried-set so one episode walks the list
//    strictly left-to-right (the printed Algorithm 2 would re-pick a
//    neighbour that just timed out);
//  * an optional best-effort fallback list used after the deadline-eligible
//    list is exhausted, so packets that can no longer meet the deadline are
//    still delivered (the paper's delivery-ratio metric counts them).
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dcrd/distributed_dr.h"
#include "dcrd/dr_computation.h"
#include "routing/hop_transport.h"
#include "routing/router.h"

namespace dcrd {

struct DcrdConfig {
  DrComputationConfig computation;
  // Walk the fallback list after the primary list is exhausted.
  bool best_effort_fallback = true;
  // A reroute hop to the upstream node is retried at most this many times
  // per subscriber per episode before the packet is declared undeliverable
  // (the upstream link itself may be failed; failures last ~1 s, so the cap
  // only fires on pathological outages).
  int reroute_retry_cap = 20;
  // The paper's persistency mode (Section III): instead of dropping a
  // packet whose every option is exhausted, the broker stores it and
  // re-attempts delivery after `persistence_retry_interval`, up to
  // `persistence_max_retries` times — "persist all packets, and then send
  // them when the failures are recovered". Off by default, as in the
  // paper's evaluation; the ext2_persistence bench measures its cost and
  // benefit under long outages.
  bool enable_persistence = false;
  SimDuration persistence_retry_interval = SimDuration::Seconds(1);
  int persistence_max_retries = 60;
  // Run the Section III-B recursion as the real gossip protocol instead of
  // the centralized solver: <d,r> updates travel as control messages after
  // every epoch (counted in the kControl counters) and routing uses the
  // current — possibly still converging — state. With
  // best_effort_fallback a second, budget-free gossip per destination
  // feeds the fallback lists (doubling control traffic), mirroring the
  // solver's unconstrained fixed point.
  bool use_distributed_computation = false;
  // Router defaults damp gossip chatter (50 us threshold ~= sub-tenth-of-a-
  // percent d error) and repair one lost update per change burst.
  DistributedDrConfig distributed{
      /*max_transmissions=*/1, /*update_threshold_us=*/50.0,
      /*ordering=*/OrderingPolicy::kTheorem1, /*rebroadcasts=*/1,
      /*rebroadcast_gap=*/SimDuration::Millis(100)};
};

class DcrdRouter final : public Router {
 public:
  DcrdRouter(RouterContext context, DcrdConfig config = {});

  void Rebuild(const MonitoredView& view) override;
  void Publish(const Message& message) override;
  [[nodiscard]] std::string_view name() const override { return "DCRD"; }

  // Tables for a (topic, subscriber); CHECK-fails when absent. Tests use
  // this to assert sending-list structure.
  [[nodiscard]] const DestinationTables& TablesFor(TopicId topic,
                                                   NodeId subscriber) const;

  // Writes the model state the delay auditor needs, one JSONL row per
  // currently reachable (topic, subscriber) pair: the publisher node's
  // expected <d, r> and its primary (Theorem-1) sending list, stamped with
  // `now` (the epoch the rows belong to). Works in both solver and
  // distributed modes — the row reflects whatever tables routing actually
  // uses at this instant. Read-only; never touches an RNG stream.
  void WriteAuditSnapshot(std::ostream& os, SimTime now) const;
  [[nodiscard]] std::uint64_t dropped_undeliverable() const {
    return dropped_undeliverable_;
  }
  [[nodiscard]] std::uint64_t persisted_packets() const {
    return persisted_packets_;
  }
  [[nodiscard]] std::uint64_t persistence_retries() const {
    return persistence_retries_;
  }
  [[nodiscard]] TransportStats transport_stats() const override {
    return transport_.stats();
  }
  [[nodiscard]] std::size_t open_episodes() const override {
    return episodes_.size();
  }
  void SampleBrokerHealth(std::vector<BrokerHealth>& out) const override {
    transport_.SampleBrokerHealth(out);
  }

  // Fail-stop crash–recovery (see net/broker_lifecycle.h). A crash destroys
  // every piece of the broker's volatile state: transport pendings and
  // dedup windows, open processing episodes, the per-node processed map and
  // any packets parked by persistency mode. A restart opens a gossip-resync
  // window: in distributed mode the broker's <d,r> protocol state is reset
  // and re-announced with a fresh generation; in solver mode one control
  // round trip per neighbour models the table re-fetch. Until the window
  // closes the broker forwards best-effort along its physical adjacency —
  // delivery never waits for convergence.
  std::size_t OnBrokerCrash(NodeId node) override;
  void OnBrokerRestart(NodeId node) override;
  [[nodiscard]] ResyncStats resync_stats() const override {
    return resync_stats_;
  }

 private:
  struct Episode {
    std::uint64_t id = 0;
    NodeId node;
    Packet base;  // as received; the routing path does not yet include node
    std::vector<NodeId> pending;  // subscribers awaiting a next-hop decision
    int in_flight = 0;            // copies awaiting ACK or timeout
    std::map<NodeId, std::set<NodeId>> tried;  // per-subscriber tried hops
    std::map<NodeId, int> reroute_attempts;    // per-subscriber upstream retries
  };

  void OnArrival(NodeId at, const Packet& packet, NodeId from);
  void StartEpisode(NodeId node, Packet packet);
  // Persistency mode: parks the (message, subscriber) at `node` and arms a
  // retry timer; gives up into dropped_undeliverable_ past the retry cap.
  void HandleUndeliverable(NodeId node, const Packet& base, NodeId subscriber);
  // Flight-recorder kDrop[undeliverable] hook, fired exactly where
  // dropped_undeliverable_ increments.
  void RecordUndeliverable(NodeId node, const Packet& base, NodeId subscriber);
  // Dedup key for the per-node processed map: message id tagged with the
  // persistence generation, so a stored-and-retried packet is not mistaken
  // for a duplicate of its own failed first attempt.
  [[nodiscard]] static std::uint64_t ProcessedKey(const Packet& packet) {
    return (packet.message().id.value << 8) | packet.flow_label();
  }
  // Drives Algorithm 2's while-loop for one episode: groups pending
  // subscribers by chosen next hop and launches the copies.
  void ProcessEpisode(std::uint64_t episode_id);
  void OnCopyResolved(std::uint64_t episode_id, NodeId next_hop,
                      std::vector<NodeId> subscribers, bool acked);
  // The first sending-list entry for `subscriber` that is neither on the
  // routing path nor tried; falls back to the upstream node; invalid NodeId
  // when the packet must be dropped.
  [[nodiscard]] NodeId SelectNextHop(const Episode& episode,
                                     NodeId subscriber) const;
  // Like TablesFor but returns nullptr when the subscriber is unknown —
  // e.g. it unsubscribed (churn) while this packet was in flight.
  [[nodiscard]] const DestinationTables* FindTables(TopicId topic,
                                                    NodeId subscriber) const;
  // Per-node routing state for (topic, subscriber, node) from whichever
  // source is active (solver tables or gossip snapshot); nullptr when the
  // subscriber is unknown.
  [[nodiscard]] const NodeTables* GetNodeTables(TopicId topic,
                                                NodeId subscriber,
                                                NodeId node) const;
  [[nodiscard]] NodeId UpstreamOf(const Episode& episode) const;
  void FinishEpisodeIfIdle(std::uint64_t episode_id);
  // True while `node` is inside its post-restart resync window.
  [[nodiscard]] bool ResyncActive(NodeId node) const {
    return context_.network->scheduler().now() <
           resync_until_[node.underlying()];
  }
  // How long a restarted broker distrusts its tables: three request/reply
  // exchanges with its slowest neighbour (solicitation round trip plus two
  // gossip rounds of slack), floored at 1 ms.
  [[nodiscard]] SimDuration ResyncWindow(NodeId node) const;

  RouterContext context_;
  DcrdConfig config_;
  HopTransport transport_;
  const MonitoredView* view_ = nullptr;

  // tables_[topic][subscriber index within the topic's subscription list]
  std::vector<std::vector<DestinationTables>> tables_;
  // (topic, subscriber node) -> index into tables_[topic] / gossip_[topic]
  std::vector<std::unordered_map<NodeId, std::size_t>> subscriber_index_;

  // Distributed mode: one gossip pair per destination plus a lazily
  // refreshed snapshot cache (rebuilt only when the protocol's version
  // moved).
  struct GossipTables {
    std::shared_ptr<DistributedDrComputation> constrained;
    std::shared_ptr<DistributedDrComputation> unconstrained;  // fallback
    mutable std::vector<NodeTables> snapshot;
    mutable std::uint64_t snapshot_version = ~0ULL;
  };
  [[nodiscard]] const std::vector<NodeTables>& GossipSnapshot(
      const GossipTables& gossip) const;
  std::vector<std::vector<GossipTables>> gossip_;

  std::unordered_map<std::uint64_t, Episode> episodes_;
  std::uint64_t next_episode_id_ = 1;
  // Per-node duplicate suppression, keyed by (message, destination): a
  // broker processes each (message, subscriber) responsibility at most once
  // per epoch on a *fresh* visit. Keying by message alone would be wrong —
  // two copies of one message covering disjoint subscriber groups can
  // legitimately reconverge at a broker after failure-driven divergence,
  // and the second group must still be forwarded. Rerouted-back packets
  // bypass the check via routing-path membership (the broker must re-handle
  // responsibilities its failed subtree returned). Cleared at monitoring
  // epochs to bound memory.
  std::vector<std::unordered_map<std::uint64_t, std::set<NodeId>>>
      processed_;
  // Persistency-mode state: retry attempts per (node, message, subscriber).
  std::map<std::tuple<NodeId, std::uint64_t, NodeId>, int> persisted_;
  std::uint64_t dropped_undeliverable_ = 0;
  std::uint64_t persisted_packets_ = 0;
  std::uint64_t persistence_retries_ = 0;
  // Crash–recovery resync state, one slot per broker. `resync_until_` is
  // the end of the node's current best-effort window (SimTime() = none);
  // `resync_round_` guards the completion timer against the ABA of a
  // second crash landing inside the first window.
  std::vector<SimTime> resync_until_;
  std::vector<std::uint32_t> resync_round_;
  ResyncStats resync_stats_;
};

}  // namespace dcrd
