#include "sim/metrics.h"

#include <algorithm>

namespace dcrd {

void RunSummary::Absorb(const RunSummary& other) {
  expected_pairs += other.expected_pairs;
  delivered_pairs += other.delivered_pairs;
  qos_pairs += other.qos_pairs;
  duplicate_deliveries += other.duplicate_deliveries;
  data_transmissions += other.data_transmissions;
  ack_transmissions += other.ack_transmissions;
  control_transmissions += other.control_transmissions;
  messages_published += other.messages_published;
  retransmissions += other.retransmissions;
  spurious_retransmissions += other.spurious_retransmissions;
  rtt_samples += other.rtt_samples;
  broker_crashes += other.broker_crashes;
  broker_restarts += other.broker_restarts;
  dropped_crash += other.dropped_crash;
  crash_copies_killed += other.crash_copies_killed;
  peer_deaths += other.peer_deaths;
  peer_probes += other.peer_probes;
  peer_revivals += other.peer_revivals;
  resyncs_started += other.resyncs_started;
  resyncs_completed += other.resyncs_completed;
  total_resync_time_us += other.total_resync_time_us;
  max_resync_time_us = std::max(max_resync_time_us, other.max_resync_time_us);
  crash_excused_duplicates += other.crash_excused_duplicates;
  trace_records_overwritten += other.trace_records_overwritten;
  invariant_violation_count += other.invariant_violation_count;
  invariant_violations.insert(invariant_violations.end(),
                              other.invariant_violations.begin(),
                              other.invariant_violations.end());
  lateness_ratios.insert(lateness_ratios.end(), other.lateness_ratios.begin(),
                         other.lateness_ratios.end());
  delay_ms_samples.insert(delay_ms_samples.end(),
                          other.delay_ms_samples.begin(),
                          other.delay_ms_samples.end());
}

void MetricsCollector::OnPublished(const Message& message) {
  PendingMessage pending;
  pending.publish_time = message.publish_time;
  pending.topic = message.topic;
  for (const Subscription& sub :
       subscriptions_.subscriptions(message.topic)) {
    pending.awaiting.emplace(sub.subscriber, sub.deadline);
  }
  ++summary_.messages_published;
  summary_.expected_pairs += pending.awaiting.size();
  open_.emplace(message.id.value, std::move(pending));
}

void MetricsCollector::OnDelivered(const Message& message, NodeId subscriber,
                                   SimTime arrival) {
  const auto it = open_.find(message.id.value);
  if (it == open_.end()) {
    ++summary_.duplicate_deliveries;
    return;
  }
  const auto awaiting_it = it->second.awaiting.find(subscriber);
  if (awaiting_it == it->second.awaiting.end()) {
    ++summary_.duplicate_deliveries;
    return;
  }
  const SimDuration deadline = awaiting_it->second;
  it->second.awaiting.erase(awaiting_it);
  ++summary_.delivered_pairs;
  const SimDuration delay = arrival - it->second.publish_time;
  summary_.delay_ms_samples.push_back(delay.millis());
  if (delay <= deadline) {
    ++summary_.qos_pairs;
  } else {
    summary_.lateness_ratios.push_back(delay.RatioTo(deadline));
  }
  if (it->second.awaiting.empty()) open_.erase(it);
}

RunSummary MetricsCollector::Summarize(
    std::uint64_t data_transmissions, std::uint64_t ack_transmissions,
    std::uint64_t control_transmissions) const {
  RunSummary out = summary_;
  out.data_transmissions = data_transmissions;
  out.ack_transmissions = ack_transmissions;
  out.control_transmissions = control_transmissions;
  return out;
}

}  // namespace dcrd
