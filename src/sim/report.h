// Result serialisation: CSV files for sweeps and lateness CDFs, so figure
// data can be re-plotted outside the terminal tables.
//
// Layout per sweep CSV: one row per x-value; first column is the x-label,
// then one column per (router, metric) pair named `<router>_<metric>`.
#pragma once

#include <ostream>
#include <string>

#include "sim/experiment.h"

namespace dcrd {

// Writes delivery_ratio / qos_ratio / packets_per_subscriber columns for
// every router in the sweep.
void WriteSweepCsv(std::ostream& os, const SweepResult& sweep);

// Writes `x,cdf` rows for the pooled lateness distribution of one summary.
void WriteLatenessCdfCsv(std::ostream& os, const RunSummary& summary,
                         const std::vector<double>& grid);

// Convenience: WriteSweepCsv into `<directory>/<stem>.csv`. Returns the
// path written, or an empty string (with a warning on stderr) on I/O error.
std::string SaveSweepCsv(const std::string& directory,
                         const std::string& stem, const SweepResult& sweep);

}  // namespace dcrd
