#include "sim/scenario.h"

#include <sstream>

namespace dcrd {

const char* RouterName(RouterKind kind) {
  switch (kind) {
    case RouterKind::kDcrd: return "DCRD";
    case RouterKind::kRTree: return "R-Tree";
    case RouterKind::kDTree: return "D-Tree";
    case RouterKind::kOracle: return "ORACLE";
    case RouterKind::kMultipath: return "Multipath";
  }
  return "?";
}

std::string ScenarioConfig::Describe() const {
  std::ostringstream os;
  os << RouterName(router) << " n=" << node_count << " "
     << (topology == TopologyKind::kFullMesh
             ? std::string("full-mesh")
             : "degree-" + std::to_string(degree))
     << " Pf=" << failure_probability << " Pl=" << loss_rate
     << " m=" << max_transmissions << " qos=" << qos_factor
     << " T=" << sim_time.seconds() << "s seed=" << seed;
  // Appended only when enabled so descriptions of existing experiments
  // stay byte-identical.
  if (broker_mtbf > SimDuration::Zero()) {
    os << " mtbf=" << broker_mtbf.seconds() << "s mttr="
       << broker_mttr.seconds() << "s";
  }
  if (peer_death_detection) os << " peer-death";
  return os.str();
}

}  // namespace dcrd
