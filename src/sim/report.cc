#include "sim/report.h"

#include <filesystem>
#include <fstream>
#include <iostream>

#include "common/logging.h"

namespace dcrd {

namespace {

// CSV-safe router token: lowercase, '-' dropped.
std::string RouterToken(RouterKind kind) {
  std::string token;
  for (const char c : std::string(RouterName(kind))) {
    if (c == '-') continue;
    token.push_back(static_cast<char>(std::tolower(c)));
  }
  return token;
}

}  // namespace

void WriteSweepCsv(std::ostream& os, const SweepResult& sweep) {
  os << "x";
  for (const RouterKind router : sweep.routers) {
    const std::string token = RouterToken(router);
    os << "," << token << "_delivery" << "," << token << "_qos" << ","
       << token << "_pkts_per_sub";
  }
  os << "\n";
  for (const SweepPoint& point : sweep.points) {
    os << point.x;
    for (const RunSummary& summary : point.per_router) {
      os << "," << summary.delivery_ratio() << "," << summary.qos_ratio()
         << "," << summary.packets_per_subscriber();
    }
    os << "\n";
  }
}

void WriteLatenessCdfCsv(std::ostream& os, const RunSummary& summary,
                         const std::vector<double>& grid) {
  os << "x,cdf\n";
  const std::vector<double> cdf = LatenessCdf(summary, grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    os << grid[i] << "," << cdf[i] << "\n";
  }
}

std::string SaveSweepCsv(const std::string& directory,
                         const std::string& stem, const SweepResult& sweep) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  const std::filesystem::path path =
      std::filesystem::path(directory) / (stem + ".csv");
  std::ofstream file(path);
  if (!file) {
    DCRD_LOG(kWarn) << "cannot write " << path;
    return {};
  }
  WriteSweepCsv(file, sweep);
  return path.string();
}

}  // namespace dcrd
