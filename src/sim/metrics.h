// Metrics collection — paper Section IV-C.
//
//   Delivery Ratio      — delivered (message, subscriber) pairs over
//                         published pairs, late arrivals included.
//   QoS Delivery Ratio  — pairs delivered within the subscriber's deadline.
//   Packets Sent / Subscriber — data transmissions (every hop, every
//                         retransmission, every reroute) over published
//                         pairs; ACKs excluded, matching the paper's
//                         "R-Tree sends one packet per subscriber in a full
//                         mesh" calibration.
//   Lateness samples    — for deadline-missing deliveries, actual delay
//                         divided by the deadline (the Fig. 7 CDF, x >= 1).
//
// Only the first arrival of a (message, subscriber) pair counts; duplicates
// from lost ACKs or multipath are tallied separately.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "pubsub/publisher.h"
#include "pubsub/subscriptions.h"

namespace dcrd {

struct RunSummary {
  std::uint64_t expected_pairs = 0;
  std::uint64_t delivered_pairs = 0;
  std::uint64_t qos_pairs = 0;
  std::uint64_t duplicate_deliveries = 0;
  std::uint64_t data_transmissions = 0;
  std::uint64_t ack_transmissions = 0;
  std::uint64_t control_transmissions = 0;  // gossip updates (distributed mode)
  std::uint64_t messages_published = 0;
  // Hop-transport health (see TransportStats): retransmissions that the
  // receiver had in fact already acknowledged are "spurious" — pure timer
  // waste, the quantity adaptive RTO exists to reduce.
  std::uint64_t retransmissions = 0;
  std::uint64_t spurious_retransmissions = 0;
  std::uint64_t rtt_samples = 0;
  // Broker crash–recovery (all 0 unless the crash / peer-death knobs are
  // on). broker_crashes counts up->down transitions the run observed;
  // dropped_crash is the network counter of transmissions a crashed broker
  // killed; the peer_* fields mirror TransportStats; the resync fields
  // mirror ResyncStats (durations in microseconds so Absorb can sum);
  // crash_excused_duplicates comes from the invariant checker.
  std::uint64_t broker_crashes = 0;
  std::uint64_t broker_restarts = 0;
  std::uint64_t dropped_crash = 0;
  std::uint64_t crash_copies_killed = 0;
  std::uint64_t peer_deaths = 0;
  std::uint64_t peer_probes = 0;
  std::uint64_t peer_revivals = 0;
  std::uint64_t resyncs_started = 0;
  std::uint64_t resyncs_completed = 0;
  std::uint64_t total_resync_time_us = 0;
  std::uint64_t max_resync_time_us = 0;
  std::uint64_t crash_excused_duplicates = 0;
  // Flight-recorder records lost to ring overwrite (postmortem mode only;
  // 0 with a JSONL sink attached). Non-zero means any postmortem dump from
  // this run is missing history. Never printed to stdout — observability
  // must stay result-neutral — but summed across reps for stderr warnings.
  std::uint64_t trace_records_overwritten = 0;
  // Invariant-checker output (empty when the checker is disabled or clean).
  // `invariant_violation_count` is the true total; the message list is
  // truncated at InvariantCheckerConfig::max_recorded.
  std::uint64_t invariant_violation_count = 0;
  std::vector<std::string> invariant_violations;
  std::vector<double> lateness_ratios;  // delay/deadline for late pairs
  std::vector<double> delay_ms_samples;  // end-to-end delay of every pair

  [[nodiscard]] double delivery_ratio() const {
    return expected_pairs == 0
               ? 1.0
               : static_cast<double>(delivered_pairs) / expected_pairs;
  }
  [[nodiscard]] double qos_ratio() const {
    return expected_pairs == 0
               ? 1.0
               : static_cast<double>(qos_pairs) / expected_pairs;
  }
  [[nodiscard]] double packets_per_subscriber() const {
    return expected_pairs == 0
               ? 0.0
               : static_cast<double>(data_transmissions) / expected_pairs;
  }
  [[nodiscard]] double duplicate_rate() const {
    return expected_pairs == 0
               ? 0.0
               : static_cast<double>(duplicate_deliveries) / expected_pairs;
  }
  // Mean time a restarted broker spent reconverging (ms); 0 when no resync
  // completed.
  [[nodiscard]] double mean_resync_ms() const {
    return resyncs_completed == 0 ? 0.0
                                  : static_cast<double>(total_resync_time_us) /
                                        (1000.0 * resyncs_completed);
  }

  // Pools counts (and lateness samples) across repetitions so ratios are
  // weighted by pair counts rather than averaging per-run ratios.
  void Absorb(const RunSummary& other);
};

class MetricsCollector final : public DeliverySink {
 public:
  explicit MetricsCollector(const SubscriptionTable& subscriptions)
      : subscriptions_(subscriptions) {}

  // Engine calls this when a message enters the system.
  void OnPublished(const Message& message);
  void OnDelivered(const Message& message, NodeId subscriber,
                   SimTime arrival) override;

  // Snapshot with the transmission counters folded in.
  [[nodiscard]] RunSummary Summarize(std::uint64_t data_transmissions,
                                     std::uint64_t ack_transmissions,
                                     std::uint64_t control_transmissions =
                                         0) const;

  // The live, un-summarized tally. The registry's slo.* counters register
  // its pair counts by const pointer so the time-series sampler can window
  // them without a second accounting path.
  [[nodiscard]] const RunSummary& live_summary() const { return summary_; }

 private:
  struct PendingMessage {
    SimTime publish_time;
    TopicId topic;
    // Subscribers not yet delivered, with the deadline captured at publish
    // time — the subscription table may mutate under churn afterwards.
    std::unordered_map<NodeId, SimDuration> awaiting;
  };

  const SubscriptionTable& subscriptions_;
  std::unordered_map<std::uint64_t, PendingMessage> open_;
  RunSummary summary_;
};

}  // namespace dcrd
