#include "sim/sweep_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "common/logging.h"

namespace dcrd {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int ResolveJobCount(int requested) {
  if (requested >= 1) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

int CapJobsForShards(int jobs, int shards, unsigned hardware_threads) {
  if (jobs < 1) jobs = 1;
  if (shards <= 1) return jobs;  // one layer only: --jobs stays literal
  if (hardware_threads == 0) return jobs;  // unknown hardware: no cap
  const long total = static_cast<long>(jobs) * static_cast<long>(shards);
  if (total <= static_cast<long>(hardware_threads)) return jobs;
  const int capped =
      std::max(1, static_cast<int>(hardware_threads) / shards);
  if (capped < jobs) {
    DCRD_LOG(kWarn) << "capping --jobs " << jobs << " to " << capped
                    << ": " << jobs << " x " << shards
                    << " shards would oversubscribe "
                    << hardware_threads << " hardware threads";
  }
  return std::min(jobs, capped);
}

int CapJobsForShards(int jobs, int shards) {
  return CapJobsForShards(jobs, shards,
                          std::thread::hardware_concurrency());
}

SweepRunner::SweepRunner(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {}

void SweepRunner::Run(std::size_t count,
                      const std::function<void(std::size_t)>& fn,
                      const std::function<std::string(std::size_t)>& describe,
                      SweepRunStats* stats) const {
  const auto run_start = std::chrono::steady_clock::now();
  std::vector<double> cell_seconds(count, 0.0);
  // One slot per cell: workers write only their own index, so no lock is
  // needed and the lowest-indexed failure is recoverable after the join.
  std::vector<std::exception_ptr> failures(count);

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> abandon{false};
  const auto worker = [&] {
    while (!abandon.load(std::memory_order_relaxed)) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      const auto cell_start = std::chrono::steady_clock::now();
      try {
        fn(i);
      } catch (...) {
        failures[i] = std::current_exception();
        abandon.store(true, std::memory_order_relaxed);
      }
      cell_seconds[i] = SecondsSince(cell_start);
    }
  };

  const std::size_t thread_count =
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), count);
  if (thread_count <= 1) {
    worker();  // inline: today's serial path, index order guaranteed
  } else {
    std::vector<std::thread> threads;
    threads.reserve(thread_count);
    for (std::size_t t = 0; t < thread_count; ++t) {
      threads.emplace_back(worker);
    }
    for (std::thread& thread : threads) thread.join();
  }

  if (stats != nullptr) {
    stats->jobs = jobs_;
    stats->cells = count;
    stats->wall_seconds = SecondsSince(run_start);
    stats->cell_seconds = std::move(cell_seconds);
  }

  for (std::size_t i = 0; i < count; ++i) {
    if (!failures[i]) continue;
    std::string message;
    try {
      std::rethrow_exception(failures[i]);
    } catch (const std::exception& e) {
      message = e.what();
    } catch (...) {
      message = "unknown exception";
    }
    const std::string label =
        describe ? describe(i) : "#" + std::to_string(i);
    throw std::runtime_error("sweep cell " + label + " failed: " + message);
  }
}

}  // namespace dcrd
