// Scenario configuration (paper Section IV-A defaults).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "dcrd/dr.h"

namespace dcrd {

enum class TopologyKind {
  kFullMesh,      // Fig. 2
  kRandomDegree,  // Figs. 3-8 ("for a given link degree, we randomly choose
                  //  the neighboring nodes")
};

enum class RouterKind { kDcrd, kRTree, kDTree, kOracle, kMultipath };

const char* RouterName(RouterKind kind);

struct ScenarioConfig {
  // --- topology -----------------------------------------------------------
  std::size_t node_count = 20;
  TopologyKind topology = TopologyKind::kRandomDegree;
  std::size_t degree = 8;
  SimDuration link_delay_min = SimDuration::Millis(10);
  SimDuration link_delay_max = SimDuration::Millis(50);
  // When non-empty, the overlay is loaded from this edge-list file (see
  // graph/io.h) instead of being generated; node_count / topology / degree
  // and the delay range are then ignored.
  std::string topology_file;

  // --- failure / loss processes -------------------------------------------
  double failure_probability = 0.0;   // Pf, stationary link-down fraction
  SimDuration failure_epoch = SimDuration::Seconds(1);
  // Length of a link outage in epochs (1 = the paper's one-second blips;
  // larger values model long outages for the persistency-mode experiments).
  int link_outage_epochs = 1;
  // Per-link spread of the failure probability: 0 = every link fails at
  // exactly Pf (the paper's model); h > 0 draws each link's down fraction
  // as Pf * exp(U(-h, h)) — heterogeneous "flaky vs clean" links, the
  // regime where reliability-aware ordering earns its keep.
  double failure_heterogeneity = 0.0;
  // Broker-node failure process (paper Section V future work). A down
  // broker can neither send nor receive.
  double node_failure_probability = 0.0;
  int node_outage_epochs = 1;
  // Broker crash–recovery process (net/broker_lifecycle.h): fail-stop
  // restarts with volatile-state loss. Distinct from
  // node_failure_probability — a *failed* broker pauses with its state
  // intact, a *crashed* broker comes back empty and must resync. The mean
  // up time between crashes; Zero disables the process entirely.
  SimDuration broker_mtbf = SimDuration::Zero();
  // Mean (and, with the counter-based schedule, exact) outage length.
  SimDuration broker_mttr = SimDuration::Seconds(5);
  double loss_rate = 1e-4;            // Pl, per transmission
  // Gray-failure (partial-degradation) process; see net/gray_failure.h.
  // Probability 0 disables it and leaves every sample path untouched.
  double gray_probability = 0.0;      // per link/epoch episode probability
  double gray_extra_loss = 0.25;      // extra drop probability while gray
  double gray_delay_factor = 3.0;     // propagation multiplier while gray
  double gray_asymmetry = 0.5;        // P(episode degrades one direction only)
  // Per-packet link occupancy; 0 = infinite bandwidth (the paper's model).
  SimDuration link_serialization = SimDuration::Zero();
  // Propagation jitter fraction; 0 = the paper's fixed delays.
  double delay_jitter = 0.0;

  // --- protocol parameters --------------------------------------------------
  RouterKind router = RouterKind::kDcrd;
  int max_transmissions = 1;          // m
  SimDuration ack_slack = SimDuration::Millis(1);
  // Adaptive per-link retransmission timers (Jacobson/Karels RTO with
  // exponential backoff) instead of the paper's fixed 2*alpha_hat + slack
  // timer. Off by default: the paper's figures assume the fixed timer.
  bool adaptive_rto = false;
  // ACK-silence peer-death detection + probing in every HopTransport (see
  // hop_transport.h). Off by default for figure parity.
  bool peer_death_detection = false;
  int peer_death_threshold = 2;
  // ACK propagation as a fraction of the link delay. 0 = the paper's
  // "senders immediately know the reception status" out-of-band model;
  // 1 = physical in-band round trip (ablation).
  double ack_delay_factor = 0.0;
  bool dcrd_best_effort_fallback = true;
  int dcrd_reroute_retry_cap = 20;
  // Persistency mode (paper Section III); see DcrdConfig.
  bool dcrd_persistence = false;
  SimDuration dcrd_persistence_retry = SimDuration::Seconds(1);
  int dcrd_persistence_max_retries = 60;
  // Parallel routes per subscriber for the Multipath baseline (paper: 2).
  std::size_t multipath_path_count = 2;
  // Sending-list ordering (ablation; kTheorem1 is DCRD proper).
  OrderingPolicy dcrd_ordering = OrderingPolicy::kTheorem1;
  // Run the Section III-B recursion as real gossip instead of the
  // centralized solver (control traffic counted; brief convergence window
  // after every epoch).
  bool dcrd_distributed = false;

  // --- monitoring ------------------------------------------------------------
  SimDuration monitor_interval = SimDuration::Seconds(300);
  int monitor_probes = 30;
  double monitor_ewma_weight = 0.5;

  // --- workload ---------------------------------------------------------------
  std::size_t topic_count = 10;
  double subscriber_probability_min = 0.2;  // Ps drawn per topic
  double subscriber_probability_max = 0.6;
  SimDuration publish_interval = SimDuration::Seconds(1);
  double qos_factor = 3.0;  // deadline = factor * shortest-path delay
  // Subscription churn: at every monitoring epoch each subscription is,
  // with this probability, replaced by a subscription from a random
  // previously-uninterested broker (count-preserving join/leave). 0 = the
  // paper's static subscriber population.
  double subscription_churn = 0.0;

  // --- run control --------------------------------------------------------------
  SimDuration sim_time = SimDuration::Seconds(7200);  // paper: two hours
  std::uint64_t seed = 1;
  // Run the simulation-wide invariant checker (sim/invariant_checker.h)
  // alongside the metrics collector; violations land in
  // RunSummary::invariant_violations.
  bool enable_invariant_checker = false;
  // Also check the delivery guarantee. Only sound for DCRD with
  // loss_rate == 0; see InvariantCheckerConfig.
  bool check_delivery_guarantee = false;
  SimDuration guarantee_window = SimDuration::Seconds(5);

  // --- sharded execution --------------------------------------------------
  // Engine shards (worker threads) the scenario runs across; 1 = the
  // classic single-threaded engine. The shard count can never change
  // results — keyed randomness plus conservative lookahead synchronization
  // keep N-shard runs bit-identical to 1-shard runs (DESIGN.md §12) — so,
  // like the observability knobs, it is deliberately excluded from
  // Describe(). Falls back to one shard with a stderr note for
  // dcrd_distributed runs, when a capture that needs a global event order
  // at run time is requested (delay_audit_out), or when the partition's
  // lookahead is below one microsecond. Tracing, the shard profiler,
  // metrics and the time-series sampler stay sharded: per-shard captures
  // merge deterministically at join (DESIGN.md §13–§14).
  int shards = 1;
  // Test hook: explicit broker->shard owner map (size node_count, every
  // value in [0, shards)). Empty = the BFS locality partitioner
  // (graph/partition.h). Adversarial maps (round-robin) exist to prove the
  // partition choice is result-neutral.
  std::vector<int> shard_assignment;

  // --- observability ------------------------------------------------------
  // None of these fields affect simulation results: the flight recorder and
  // metrics registry only *read* state and write to stderr/files, never to
  // stdout and never to an RNG stream. Deliberately excluded from
  // Describe() — two configs differing only here are the same experiment.
  //
  // Keep the in-memory flight recorder on (postmortem dumps on invariant
  // violations / engine exceptions; full traces when trace_out is set).
  bool trace = false;
  std::size_t trace_ring_capacity = std::size_t{1} << 16;
  // When non-empty, stream the full trace to this file as JSONL (implies
  // tracing). Readable by tools/dcrd_trace. Sharded runs write one file per
  // shard — `.shardK` inserted before a trailing `.jsonl` (or appended) —
  // and dcrd_trace merges them by (t_us, seq, shard).
  std::string trace_out;
  // When non-empty, write the shard-execution profile — per-shard busy vs
  // barrier-stall wall time per horizon round, events executed, and the
  // cross-shard traffic matrix — to this file as JSON at end of run
  // ("dcrd-shard-profile-v1", obs/shard_profiler.h). Works at any shard
  // count; a 1-shard run writes the degenerate all-busy profile. Rendered
  // by tools/dcrd_trace --shards.
  std::string shard_profile_out;
  // When non-empty, write the metrics registry (per-epoch counter/gauge
  // series + histograms) to this file as JSON at end of run. Sharded runs
  // keep one registry per shard and fold them at join (MergePolicy rules,
  // obs/metrics_registry.h) — the merged document is byte-identical to a
  // 1-shard run's.
  std::string metrics_json;
  // When non-empty, sample the metrics registry every timeseries_interval
  // of sim time into a columnar store (counter deltas, gauge levels,
  // histogram raw-bucket deltas, per-broker health) and write it to this
  // file as JSON at end of run ("dcrd-timeseries-v1", obs/timeseries.h),
  // including the windowed deadline-SLO series. Rendered by
  // tools/dcrd_trace --timeseries. Implies a metrics registry even when
  // metrics_json is empty; sharded runs merge per-shard stores at join.
  std::string timeseries_out;
  SimDuration timeseries_interval = SimDuration::Seconds(1);
  // When non-empty and the router is DCRD, write the model's view — per
  // (topic, subscriber) expected <d, r> and the publisher's Theorem-1
  // sending list, one JSONL row per destination per monitoring epoch — to
  // this file. tools/dcrd_trace --audit joins it against a trace to compare
  // observed delays with the closed-form expectation. Read-only like the
  // other observability knobs; ignored (with a stderr note) for non-DCRD
  // routers.
  std::string delay_audit_out;

  [[nodiscard]] std::string Describe() const;
};

}  // namespace dcrd
