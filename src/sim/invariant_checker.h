// Simulation-wide invariant checking.
//
// The figure harnesses measure *how well* each protocol performs; nothing
// before this module checked that a run was *correct*. The checker hooks
// three places — the hop transport (every copy arrival), the delivery sink
// (every hand-up to a subscriber), and the engine's epoch/end-of-run hooks —
// and verifies:
//
//  1. Routing-loop freedom: a copy arriving at a node already on its
//     routing path must be a legal upstream reroute (the receiver is the
//     sender's original upstream, Algorithm 2 lines 10-12); anything else
//     is a forwarding loop.
//  2. Exactly-once hand-up per copy id, across the *whole run* — the
//     transport's own dedup set is cleared at monitoring epochs to bound
//     memory, so a straggler duplicate crossing an epoch boundary would
//     slip through it; the checker keeps the full set and would catch that.
//     Crash-aware: a broker restart legitimately loses the receiver's dedup
//     window, so a repeat hand-up at a node is *excused* iff that node was
//     down at some point between the two hand-ups (counted in
//     crash_excused_duplicates()); any duplicate not attributable to a
//     crash window stays a hard violation.
//  3. Conservation: every attempted transmission is either delivered or in
//     exactly one drop bucket, per traffic class, checked every epoch.
//  4. Delivery guarantee (optional; sound only for reroute-capable routers
//     with zero background loss): a (message, subscriber) pair is a
//     violation if it was never delivered although some publisher->
//     subscriber path was continuously clean — links up, not gray in either
//     direction, endpoint brokers up (neither failed nor crashed) — for
//     `guarantee_window` after publication. On such a path every hop
//     transmission succeeds deterministically, so DCRD's retry/reroute
//     machinery must deliver. Under broker crashes the oracle additionally
//     requires that no broker which *touched* the packet (publisher or any
//     copy endpoint) crashed inside the window — a crash at a holding
//     broker destroys the packet no matter how clean the rest of the
//     overlay is, so non-delivery is then expected, not a violation.
//  5. Quiescence: after the scheduler drains, no pending transport copies,
//     no open router episodes, no leftover scheduled events.
//
// Violations are collected, not thrown: the engine folds the messages into
// RunSummary::invariant_violations so tests (the chaos soak) can assert the
// list is empty and print it when it is not.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/overlay_network.h"
#include "pubsub/publisher.h"
#include "pubsub/subscriptions.h"
#include "routing/router.h"
#include "routing/transport_observer.h"

namespace dcrd {

struct InvariantCheckerConfig {
  // Enable check 4. Callers must only set this for routers that actually
  // promise the guarantee (DCRD) in scenarios with loss_rate == 0 —
  // background loss can legitimately defeat any finite retry budget.
  bool check_delivery_guarantee = false;
  // How long a clean path must persist after publication before
  // non-delivery counts as a violation. Generous compared to the ms-scale
  // timeout/reroute machinery, so only genuine give-ups trip it.
  SimDuration guarantee_window = SimDuration::Seconds(5);
  // Stop recording after this many violations (the first few identify the
  // bug; thousands just drown the report).
  std::size_t max_recorded = 32;
};

class SimInvariantChecker final : public DeliverySink,
                                  public TransportObserver {
 public:
  // Wraps `next` (the metrics collector): deliveries are recorded and
  // forwarded. The network reference provides graph + failure schedules.
  SimInvariantChecker(const OverlayNetwork& network,
                      const SubscriptionTable& subscriptions,
                      DeliverySink& next,
                      InvariantCheckerConfig config = {});

  // DeliverySink: records the (message, subscriber) delivery, forwards.
  void OnDelivered(const Message& message, NodeId subscriber,
                   SimTime arrival) override;

  // TransportObserver: loop-freedom and exactly-once hand-up.
  void OnCopyArrival(std::uint64_t copy_id, NodeId at, NodeId from,
                     const Packet& packet, bool handed_up) override;

  // Engine hook, called when a message enters the system (alongside
  // MetricsCollector::OnPublished).
  void OnPublished(const Message& message);

  // Engine hook at every monitoring epoch: conservation of transmissions.
  // Sound per engine shard without any merge: ResolveSend tallies attempted
  // and its terminal bucket on the sender's shard in one call.
  void CheckEpoch();

  // Engine hook after the scheduler drains: quiescence + the delivery
  // guarantee over all published pairs. The two counts are summed across
  // shards by the sharded engine; `end` is the global quiescence time.
  void CheckEndOfRun(std::uint64_t pending_copies, std::size_t open_episodes,
                     SimTime end);
  // Single-shard convenience: reads both counts from `router`.
  void CheckEndOfRun(const Router& router, SimTime end);

  // Sharded runs: folds a peer shard's observations into this checker
  // before CheckEndOfRun. Publishes replay on every shard, so `pairs_` has
  // identical keys everywhere; deliveries and copy arrivals happen only on
  // the shard owning the receiving broker, so delivered flags are OR-ed,
  // touched-broker sets unioned, and violation tallies summed (shard-index
  // order keeps the merged violation list deterministic). The peer is left
  // in a moved-from state — merge once, then discard it.
  void AbsorbPeer(SimInvariantChecker& peer);

  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t violation_count() const {
    return violation_count_;
  }
  [[nodiscard]] std::uint64_t copies_observed() const {
    return copies_observed_;
  }
  // Duplicate hand-ups legally attributable to a broker-restart dedup loss
  // (check 2); always 0 when the crash process is disabled.
  [[nodiscard]] std::uint64_t crash_excused_duplicates() const {
    return crash_excused_duplicates_;
  }

  // When set, the FIRST violation of a run triggers an immediate
  // flight-recorder postmortem to stderr — the events leading up to the bug,
  // captured before further simulation scrolls them out of the ring.
  void set_flight_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

 private:
  struct PublishedPair {
    NodeId publisher;
    NodeId subscriber;
    SimTime publish_time;
    bool delivered = false;
  };

  void Record(std::string message);
  // True when some publisher->subscriber path is continuously clean over
  // [t0, t0 + guarantee_window] (capped at `end`): every link up and
  // gray-free in both directions at every failure epoch the window touches,
  // every node on the path up likewise.
  [[nodiscard]] bool CleanPathExists(NodeId publisher, NodeId subscriber,
                                     SimTime t0, SimTime end) const;
  [[nodiscard]] bool LinkClean(LinkId link, SimTime t0, SimTime t1) const;
  [[nodiscard]] bool NodeClean(NodeId node, SimTime t0, SimTime t1) const;

  const OverlayNetwork& network_;
  const SubscriptionTable& subscriptions_;
  DeliverySink& next_;
  InvariantCheckerConfig config_;

  // Last hand-up of each copy id, never cleared. A repeat is either a
  // crash-excused duplicate (node down in between) or a violation.
  struct HandUp {
    NodeId node;
    SimTime time;
  };
  std::unordered_map<std::uint64_t, HandUp> handed_up_;
  // (message id << 16 | subscriber) -> pair record. Subscriber ids are
  // dense and << 2^16 in every scenario; checked at insert.
  std::unordered_map<std::uint64_t, PublishedPair> pairs_;
  // message id -> brokers that held the packet (publisher + every copy
  // endpoint); feeds the guarantee oracle's touched-broker precondition.
  // Only populated when check_delivery_guarantee is on.
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint32_t>>
      touched_;
  std::vector<std::string> violations_;
  std::uint64_t violation_count_ = 0;
  std::uint64_t copies_observed_ = 0;
  std::uint64_t crash_excused_duplicates_ = 0;
  FlightRecorder* recorder_ = nullptr;
};

}  // namespace dcrd
