// Workload generation (paper Section IV-A).
//
// Publishers: `topic_count` publishers on randomly chosen distinct broker
// nodes, one topic each, publishing at 1 packet/s. Subscribers: per topic a
// probability Ps is drawn uniformly from [0.2, 0.6] and every broker node
// (except the topic's publisher) subscribes independently with probability
// Ps; topics that end up with zero subscribers are redrawn so every topic
// carries traffic. Deadlines: D_PS = qos_factor times the ground-truth
// shortest-path delay from publisher to subscriber — the paper's "three
// times the shortest-path delay" hint, with the factor swept in Fig. 6.
#pragma once

#include "common/rng.h"
#include "graph/graph.h"
#include "pubsub/subscriptions.h"
#include "sim/scenario.h"

namespace dcrd {

// Builds the subscription table for `graph` under `config`. Deterministic
// in `rng`.
SubscriptionTable GenerateWorkload(const Graph& graph,
                                   const ScenarioConfig& config, Rng& rng);

// One round of count-preserving churn: each subscription is, with
// probability `config.subscription_churn`, replaced by a subscription from
// a random broker not currently subscribed to that topic (the joiner's
// deadline follows the usual qos_factor rule). Called by the engine at
// monitoring epochs, immediately before routers rebuild.
void ApplySubscriptionChurn(const Graph& graph, const ScenarioConfig& config,
                            Rng& rng, SubscriptionTable& table);

}  // namespace dcrd
