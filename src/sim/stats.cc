#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace dcrd {

double Quantile(std::vector<double> samples, double q) {
  DCRD_CHECK(q >= 0.0 && q <= 1.0);
  if (samples.empty()) return 0.0;
  // Nearest-rank: the smallest sample with cumulative frequency >= q, i.e.
  // 0-based rank ceil(q*n) - 1. The previous floor(q*n) overshot by one
  // whenever q*n was integral (p99 of 100 samples returned the maximum, not
  // sample #99). The epsilon guards against ceil rounding up when floating-
  // point puts q*n a hair above an integer.
  const double h = q * static_cast<double>(samples.size());
  std::size_t rank =
      h <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(h - 1e-9)) - 1;
  if (rank >= samples.size()) rank = samples.size() - 1;
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(rank),
                   samples.end());
  return samples[rank];
}

double Mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : samples) sum += x;
  return sum / static_cast<double>(samples.size());
}

double StdDev(const std::vector<double>& samples) {
  if (samples.size() < 2) return 0.0;
  const double mean = Mean(samples);
  double sum_sq = 0.0;
  for (const double x : samples) sum_sq += (x - mean) * (x - mean);
  return std::sqrt(sum_sq / static_cast<double>(samples.size() - 1));
}

std::uint64_t Histogram::total() const {
  std::uint64_t sum = underflow + overflow;
  for (const std::uint64_t b : buckets) sum += b;
  return sum;
}

double Histogram::CdfAt(double x) const {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  if (x < lo) return 0.0;
  std::uint64_t below = underflow;
  const double width = (hi - lo) / static_cast<double>(buckets.size());
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double bucket_lo = lo + width * static_cast<double>(i);
    const double bucket_hi = bucket_lo + width;
    if (x >= bucket_hi) {
      below += buckets[i];
      continue;
    }
    const double fraction = (x - bucket_lo) / width;
    return (static_cast<double>(below) +
            fraction * static_cast<double>(buckets[i])) /
           static_cast<double>(n);
  }
  return static_cast<double>(n - overflow) / static_cast<double>(n);
}

std::string Histogram::Render(int bar_width) const {
  std::ostringstream os;
  std::uint64_t max_bucket = 1;
  for (const std::uint64_t b : buckets) max_bucket = std::max(max_bucket, b);
  const double width = (hi - lo) / static_cast<double>(buckets.size());
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double bucket_lo = lo + width * static_cast<double>(i);
    const int bar = static_cast<int>(
        static_cast<double>(buckets[i]) / static_cast<double>(max_bucket) *
        bar_width);
    os << "[" << bucket_lo << ", " << bucket_lo + width << ") "
       << std::string(static_cast<std::size_t>(bar), '#') << " "
       << buckets[i] << "\n";
  }
  if (underflow > 0) os << "underflow: " << underflow << "\n";
  if (overflow > 0) os << "overflow: " << overflow << "\n";
  return os.str();
}

Histogram MakeHistogram(const std::vector<double>& samples, double lo,
                        double hi, std::size_t bucket_count) {
  DCRD_CHECK(hi > lo);
  DCRD_CHECK(bucket_count > 0);
  Histogram histogram;
  histogram.lo = lo;
  histogram.hi = hi;
  histogram.buckets.assign(bucket_count, 0);
  const double width = (hi - lo) / static_cast<double>(bucket_count);
  for (const double x : samples) {
    if (x < lo) {
      ++histogram.underflow;
    } else if (x >= hi) {
      ++histogram.overflow;
    } else {
      ++histogram.buckets[static_cast<std::size_t>((x - lo) / width)];
    }
  }
  return histogram;
}

}  // namespace dcrd
