#include "sim/bench_json.h"

#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/logging.h"

namespace dcrd {

namespace {

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
  }
  return out;
}

std::string UtcNow() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[32];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

}  // namespace

std::string GitDescribe() {
  FILE* pipe = popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  std::string out;
  char buffer[128];
  while (fgets(buffer, sizeof buffer, pipe) != nullptr) out += buffer;
  pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

BenchRecord MakeBenchRecord(const std::string& name,
                            const SweepRunStats& stats) {
  BenchRecord record;
  record.name = name;
  record.git = GitDescribe();
  record.utc = UtcNow();
  record.jobs = stats.jobs;
  record.cells = stats.cells;
  record.wall_seconds = stats.wall_seconds;
  record.cells_per_second = stats.cells_per_second();
  record.cell_seconds = stats.cell_seconds;
  return record;
}

void WriteBenchRecordJson(std::ostream& os, const BenchRecord& record) {
  os << "{\"name\": \"" << JsonEscape(record.name) << "\", \"git\": \""
     << JsonEscape(record.git) << "\", \"utc\": \"" << JsonEscape(record.utc)
     << "\", \"jobs\": " << record.jobs << ", \"cells\": " << record.cells
     << ", \"wall_seconds\": " << record.wall_seconds
     << ", \"cells_per_second\": " << record.cells_per_second;
  if (!record.cell_seconds.empty()) {
    os << ", \"cell_seconds\": [";
    for (std::size_t i = 0; i < record.cell_seconds.size(); ++i) {
      if (i != 0) os << ", ";
      os << record.cell_seconds[i];
    }
    os << "]";
  }
  if (!record.rates.empty()) {
    os << ", \"rates\": {";
    for (std::size_t i = 0; i < record.rates.size(); ++i) {
      if (i != 0) os << ", ";
      os << "\"" << JsonEscape(record.rates[i].first)
         << "\": " << record.rates[i].second;
    }
    os << "}";
  }
  os << "}";
}

bool AppendBenchRecord(const std::string& path, const BenchRecord& record) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      existing = buffer.str();
    }
  }
  // Re-open the array: drop everything from the closing bracket on.
  const auto closing = existing.find_last_of(']');
  std::string prefix;
  if (closing == std::string::npos) {
    if (existing.find_first_not_of(" \t\r\n") != std::string::npos) {
      DCRD_LOG(kWarn) << path
                      << " is not a JSON array; bench record not written";
      return false;
    }
    prefix = "[\n  ";
  } else {
    prefix = existing.substr(0, closing);
    while (!prefix.empty() &&
           (prefix.back() == ' ' || prefix.back() == '\n' ||
            prefix.back() == '\r' || prefix.back() == '\t')) {
      prefix.pop_back();
    }
    // ",\n" only when the array already holds a record.
    if (prefix.empty()) {
      prefix = "[\n  ";
    } else {
      prefix += prefix.back() == '[' ? "\n  " : ",\n  ";
    }
  }

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    DCRD_LOG(kWarn) << "cannot write " << path;
    return false;
  }
  out << prefix;
  WriteBenchRecordJson(out, record);
  out << "\n]\n";
  return out.good();
}

}  // namespace dcrd
