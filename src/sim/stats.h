// Small descriptive-statistics toolkit used by the metrics layer and the
// CLI: quantiles, means, and fixed-width histograms over double samples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dcrd {

// Empirical quantile (nearest-rank on the sorted copy); q in [0, 1].
// Returns 0 for an empty sample set.
double Quantile(std::vector<double> samples, double q);

double Mean(const std::vector<double>& samples);

// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double StdDev(const std::vector<double>& samples);

struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::uint64_t> buckets;  // uniform width over [lo, hi)
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;

  [[nodiscard]] std::uint64_t total() const;
  // Fraction of samples at or below `x` (linear interpolation within the
  // containing bucket).
  [[nodiscard]] double CdfAt(double x) const;
  // Terminal-friendly rendering: one row per bucket with a proportional
  // bar, e.g. for dcrdsim --histogram.
  [[nodiscard]] std::string Render(int bar_width = 40) const;
};

Histogram MakeHistogram(const std::vector<double>& samples, double lo,
                        double hi, std::size_t bucket_count);

}  // namespace dcrd
