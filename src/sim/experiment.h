// Experiment harness: repeated paired runs and the series tables the paper
// plots.
//
// Every figure in the paper is a sweep over one parameter with one line per
// routing algorithm, averaged over several random topologies. RunSweep
// executes exactly that — for each x-value and each router it runs
// `repetitions` scenarios (seeds base+rep, identical across routers, so the
// comparison is paired) and pools the counts — and PrintTable renders the
// series in the layout recorded in EXPERIMENTS.md.
//
// Sweeps expand into independent (x, router, rep) cells executed on a
// SweepRunner pool (`jobs` threads; 1 = the historical serial path) and
// reduced in cell order, so tables and CSVs are bit-identical for any job
// count.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/metrics.h"
#include "sim/scenario.h"
#include "sim/sweep_runner.h"

namespace dcrd {

struct SweepPoint {
  double x = 0.0;
  std::vector<RunSummary> per_router;  // parallel to the router list
};

struct SweepResult {
  std::string title;
  std::string x_label;
  std::vector<RouterKind> routers;
  std::vector<SweepPoint> points;
};

// Applies (x, config&) for each x-value, runs every router `repetitions`
// times and pools the summaries. `configure` receives a copy of `base`
// already carrying the right seed/router and must set the swept parameter;
// it is called concurrently from worker threads when jobs > 1 and must not
// touch shared mutable state. `stats`, when non-null, receives wall-clock
// accounting for the pooled run.
SweepResult RunSweep(const std::string& title, const std::string& x_label,
                     const ScenarioConfig& base,
                     const std::vector<RouterKind>& routers,
                     const std::vector<double>& x_values,
                     const std::function<void(double, ScenarioConfig&)>& configure,
                     int repetitions, int jobs = 1,
                     SweepRunStats* stats = nullptr);

// Pools `repetitions` scenarios built by `make_config(rep)` (cell = one
// repetition) over a `jobs`-thread pool, absorbing in rep order — the
// parallel form of the figure binaries' hand-rolled rep loops. `make_config`
// must derive everything, including the seed, from `rep` alone.
RunSummary RunRepetitions(int repetitions, int jobs,
                          const std::function<ScenarioConfig(int)>& make_config,
                          SweepRunStats* stats = nullptr);

// One metric as a table: rows = x-values, columns = routers.
void PrintTable(std::ostream& os, const SweepResult& sweep,
                const std::string& metric_name,
                const std::function<double(const RunSummary&)>& metric);

// Convenience: the paper's three standard panels (delivery ratio, QoS
// delivery ratio, packets/subscriber) for one sweep.
void PrintStandardPanels(std::ostream& os, const SweepResult& sweep);

// Empirical CDF evaluated at `grid` points from pooled lateness samples.
std::vector<double> LatenessCdf(const RunSummary& summary,
                                const std::vector<double>& grid);

}  // namespace dcrd
