#include "sim/experiment.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "common/logging.h"

namespace dcrd {

SweepResult RunSweep(
    const std::string& title, const std::string& x_label,
    const ScenarioConfig& base, const std::vector<RouterKind>& routers,
    const std::vector<double>& x_values,
    const std::function<void(double, ScenarioConfig&)>& configure,
    int repetitions,
    const std::function<double(const RunSummary&)>& /*metric*/) {
  DCRD_CHECK(repetitions >= 1);
  SweepResult result;
  result.title = title;
  result.x_label = x_label;
  result.routers = routers;

  for (double x : x_values) {
    SweepPoint point;
    point.x = x;
    for (RouterKind router : routers) {
      RunSummary pooled;
      for (int rep = 0; rep < repetitions; ++rep) {
        ScenarioConfig config = base;
        config.router = router;
        // Same seed across routers for a given rep: identical topology,
        // workload and failure sample path (paired comparison).
        config.seed = base.seed + static_cast<std::uint64_t>(rep);
        configure(x, config);
        pooled.Absorb(RunScenario(config));
      }
      point.per_router.push_back(std::move(pooled));
    }
    result.points.push_back(std::move(point));
  }
  return result;
}

void PrintTable(std::ostream& os, const SweepResult& sweep,
                const std::string& metric_name,
                const std::function<double(const RunSummary&)>& metric) {
  os << "\n" << sweep.title << " — " << metric_name << "\n";
  os << std::left << std::setw(14) << sweep.x_label;
  for (RouterKind router : sweep.routers) {
    os << std::right << std::setw(12) << RouterName(router);
  }
  os << "\n";
  for (const SweepPoint& point : sweep.points) {
    os << std::left << std::setw(14) << point.x;
    for (const RunSummary& summary : point.per_router) {
      os << std::right << std::setw(12) << std::fixed << std::setprecision(4)
         << metric(summary);
    }
    os << "\n";
    os.unsetf(std::ios::fixed);
  }
}

void PrintStandardPanels(std::ostream& os, const SweepResult& sweep) {
  PrintTable(os, sweep, "Delivery Ratio",
             [](const RunSummary& s) { return s.delivery_ratio(); });
  PrintTable(os, sweep, "QoS Delivery Ratio",
             [](const RunSummary& s) { return s.qos_ratio(); });
  PrintTable(os, sweep, "Packets Sent / Subscriber",
             [](const RunSummary& s) { return s.packets_per_subscriber(); });
}

std::vector<double> LatenessCdf(const RunSummary& summary,
                                const std::vector<double>& grid) {
  std::vector<double> sorted = summary.lateness_ratios;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> cdf;
  cdf.reserve(grid.size());
  for (double x : grid) {
    const auto upper =
        std::upper_bound(sorted.begin(), sorted.end(), x);
    cdf.push_back(sorted.empty()
                      ? 1.0
                      : static_cast<double>(upper - sorted.begin()) /
                            static_cast<double>(sorted.size()));
  }
  return cdf;
}

}  // namespace dcrd
