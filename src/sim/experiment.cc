#include "sim/experiment.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace dcrd {

namespace {

// One independent simulation: the unit of parallelism and of determinism.
struct SweepCell {
  std::size_t x_index = 0;
  std::size_t router_index = 0;
  int rep = 0;
};

}  // namespace

SweepResult RunSweep(
    const std::string& title, const std::string& x_label,
    const ScenarioConfig& base, const std::vector<RouterKind>& routers,
    const std::vector<double>& x_values,
    const std::function<void(double, ScenarioConfig&)>& configure,
    int repetitions, int jobs, SweepRunStats* stats) {
  DCRD_CHECK(repetitions >= 1);
  SweepResult result;
  result.title = title;
  result.x_label = x_label;
  result.routers = routers;

  // Expand in the historical loop order (x, then router, then rep) so the
  // jobs == 1 path executes cells in exactly the old sequence and the
  // ordered reduce below absorbs repetitions in rep order.
  std::vector<SweepCell> cells;
  cells.reserve(x_values.size() * routers.size() *
                static_cast<std::size_t>(repetitions));
  for (std::size_t xi = 0; xi < x_values.size(); ++xi) {
    for (std::size_t ri = 0; ri < routers.size(); ++ri) {
      for (int rep = 0; rep < repetitions; ++rep) {
        cells.push_back(SweepCell{xi, ri, rep});
      }
    }
  }

  std::vector<RunSummary> summaries(cells.size());
  SweepRunner runner(jobs);
  runner.Run(
      cells.size(),
      [&](std::size_t i) {
        const SweepCell& cell = cells[i];
        ScenarioConfig config = base;
        config.router = routers[cell.router_index];
        // Same seed across routers for a given rep: identical topology,
        // workload and failure sample path (paired comparison). The cell
        // derives its RNG streams from (base seed, rep) alone, never from
        // thread or completion order.
        config.seed = base.seed + static_cast<std::uint64_t>(cell.rep);
        configure(x_values[cell.x_index], config);
        summaries[i] = RunScenario(config);
      },
      [&](std::size_t i) {
        const SweepCell& cell = cells[i];
        std::ostringstream label;
        label << "(" << x_label << "=" << x_values[cell.x_index]
              << ", router=" << RouterName(routers[cell.router_index])
              << ", rep=" << cell.rep << ")";
        return label.str();
      },
      stats);

  // Ordered reduce: cell layout is contiguous reps per (x, router), so the
  // pooled summaries absorb in rep order regardless of completion order.
  std::size_t next = 0;
  for (double x : x_values) {
    SweepPoint point;
    point.x = x;
    for (std::size_t ri = 0; ri < routers.size(); ++ri) {
      RunSummary pooled;
      for (int rep = 0; rep < repetitions; ++rep) {
        pooled.Absorb(summaries[next++]);
      }
      point.per_router.push_back(std::move(pooled));
    }
    result.points.push_back(std::move(point));
  }
  return result;
}

RunSummary RunRepetitions(
    int repetitions, int jobs,
    const std::function<ScenarioConfig(int)>& make_config,
    SweepRunStats* stats) {
  DCRD_CHECK(repetitions >= 1);
  std::vector<RunSummary> summaries(static_cast<std::size_t>(repetitions));
  SweepRunner runner(jobs);
  runner.Run(
      static_cast<std::size_t>(repetitions),
      [&](std::size_t i) {
        summaries[i] = RunScenario(make_config(static_cast<int>(i)));
      },
      [](std::size_t i) { return "(rep=" + std::to_string(i) + ")"; },
      stats);
  RunSummary pooled;
  for (const RunSummary& summary : summaries) pooled.Absorb(summary);
  return pooled;
}

void PrintTable(std::ostream& os, const SweepResult& sweep,
                const std::string& metric_name,
                const std::function<double(const RunSummary&)>& metric) {
  os << "\n" << sweep.title << " — " << metric_name << "\n";
  os << std::left << std::setw(14) << sweep.x_label;
  for (RouterKind router : sweep.routers) {
    os << std::right << std::setw(12) << RouterName(router);
  }
  os << "\n";
  for (const SweepPoint& point : sweep.points) {
    os << std::left << std::setw(14) << point.x;
    for (const RunSummary& summary : point.per_router) {
      os << std::right << std::setw(12) << std::fixed << std::setprecision(4)
         << metric(summary);
    }
    os << "\n";
    os.unsetf(std::ios::fixed);
  }
}

void PrintStandardPanels(std::ostream& os, const SweepResult& sweep) {
  PrintTable(os, sweep, "Delivery Ratio",
             [](const RunSummary& s) { return s.delivery_ratio(); });
  PrintTable(os, sweep, "QoS Delivery Ratio",
             [](const RunSummary& s) { return s.qos_ratio(); });
  PrintTable(os, sweep, "Packets Sent / Subscriber",
             [](const RunSummary& s) { return s.packets_per_subscriber(); });
}

std::vector<double> LatenessCdf(const RunSummary& summary,
                                const std::vector<double>& grid) {
  std::vector<double> sorted = summary.lateness_ratios;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> cdf;
  cdf.reserve(grid.size());
  for (double x : grid) {
    const auto upper =
        std::upper_bound(sorted.begin(), sorted.end(), x);
    cdf.push_back(sorted.empty()
                      ? 1.0
                      : static_cast<double>(upper - sorted.begin()) /
                            static_cast<double>(sorted.size()));
  }
  return cdf;
}

}  // namespace dcrd
