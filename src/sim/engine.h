// Simulation engine: wires topology, network, monitoring, workload and the
// router under test together, runs the clock, and returns a RunSummary.
//
// The same seed produces the same topology, workload, failure schedule and
// probe noise for every RouterKind, so per-figure comparisons are paired.
#pragma once

#include <memory>

#include "routing/router.h"
#include "sim/metrics.h"
#include "sim/scenario.h"

namespace dcrd {

// Runs one complete scenario. Publishers stop at config.sim_time; the
// scheduler then drains remaining in-flight events (every episode/timer
// terminates by construction) so late deliveries are still observed.
RunSummary RunScenario(const ScenarioConfig& config);

// Factory used by RunScenario and the examples: builds the router named by
// `config.router` over an existing context.
std::unique_ptr<Router> MakeRouter(const ScenarioConfig& config,
                                   RouterContext context);

}  // namespace dcrd
