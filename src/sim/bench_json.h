// Machine-readable bench records: one JSON object per measured run,
// accumulated into a JSON array file (--bench_json PATH on the figure and
// micro-bench binaries). The records seed the BENCH_*.json perf trajectory:
// every record carries wall-clock, throughput, the job count and `git
// describe`, so future PRs can prove speedups against committed baselines.
//
// Timing fields are measurement only — simulation output stays bit-identical
// for any job count; only these JSON files vary run to run.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/sweep_runner.h"

namespace dcrd {

struct BenchRecord {
  std::string name;          // sweep stem or micro-bench binary name
  std::string git;           // `git describe --always --dirty`, or "unknown"
  std::string utc;           // ISO-8601 record time
  int jobs = 1;
  std::size_t cells = 0;     // simulation cells (or benchmarks) executed
  double wall_seconds = 0.0;
  double cells_per_second = 0.0;
  std::vector<double> cell_seconds;  // per-cell detail; empty = omitted
  // Per-benchmark items/s (micro-bench binaries only; empty = omitted).
  // This is what scripts/bench_gate.py compares against its baseline.
  std::vector<std::pair<std::string, double>> rates;
};

// `git describe --always --dirty` of the working directory's repository;
// "unknown" when git or the repository is unavailable.
std::string GitDescribe();

// Record carrying the stats of one pooled sweep, stamped with GitDescribe()
// and the current UTC time.
BenchRecord MakeBenchRecord(const std::string& name,
                            const SweepRunStats& stats);

// Serialises one record as a JSON object.
void WriteBenchRecordJson(std::ostream& os, const BenchRecord& record);

// Appends `record` to the JSON array in `path`, creating the file (as a
// one-element array) when missing or empty. Returns false with a warning on
// stderr when the file cannot be read/written or is not a JSON array.
bool AppendBenchRecord(const std::string& path, const BenchRecord& record);

}  // namespace dcrd
