#include "sim/workload.h"

#include <numeric>
#include <vector>

#include "graph/shortest_path.h"

namespace dcrd {

SubscriptionTable GenerateWorkload(const Graph& graph,
                                   const ScenarioConfig& config, Rng& rng) {
  const std::size_t n = graph.node_count();
  DCRD_CHECK(config.topic_count <= n)
      << "more publishers than broker nodes";

  // Distinct random publisher placements.
  std::vector<std::uint32_t> nodes(n);
  std::iota(nodes.begin(), nodes.end(), 0U);
  rng.Shuffle(nodes);

  SubscriptionTable table;
  for (std::size_t t = 0; t < config.topic_count; ++t) {
    const NodeId publisher(nodes[t]);
    const TopicId topic = table.AddTopic(publisher);
    const PathTree true_delays = ShortestDelayTree(graph, publisher);

    // Redraw until the topic has at least one subscriber; a topic nobody
    // hears carries no information for any metric.
    std::vector<NodeId> chosen;
    while (chosen.empty()) {
      const double ps =
          rng.NextDoubleInRange(config.subscriber_probability_min,
                                config.subscriber_probability_max);
      for (std::size_t v = 0; v < n; ++v) {
        const NodeId node(static_cast<NodeId::underlying_type>(v));
        if (node == publisher) continue;
        if (rng.NextBernoulli(ps)) chosen.push_back(node);
      }
    }
    for (NodeId subscriber : chosen) {
      DCRD_CHECK(true_delays.Reachable(subscriber))
          << "generator produced a disconnected overlay";
      const SimDuration shortest =
          true_delays.distance[subscriber.underlying()];
      table.AddSubscription(
          topic, subscriber,
          SimDuration::FromMillisF(shortest.millis() * config.qos_factor));
    }
  }
  return table;
}

void ApplySubscriptionChurn(const Graph& graph, const ScenarioConfig& config,
                            Rng& rng, SubscriptionTable& table) {
  const std::size_t n = graph.node_count();
  for (std::size_t t = 0; t < table.topic_count(); ++t) {
    const TopicId topic(static_cast<TopicId::underlying_type>(t));
    const NodeId publisher = table.publisher(topic);
    const PathTree true_delays = ShortestDelayTree(graph, publisher);

    // Snapshot: mutations below must not affect this round's draws.
    const std::vector<NodeId> current = table.SubscriberNodes(topic);
    for (const NodeId leaver : current) {
      if (!rng.NextBernoulli(config.subscription_churn)) continue;
      // Joiner: a uniformly random broker currently uninterested in the
      // topic (and not the publisher). No candidate -> the leaver stays,
      // keeping every topic non-empty.
      std::vector<NodeId> candidates;
      for (std::size_t v = 0; v < n; ++v) {
        const NodeId node(static_cast<NodeId::underlying_type>(v));
        if (node == publisher || table.IsSubscribed(topic, node)) continue;
        candidates.push_back(node);
      }
      if (candidates.empty()) continue;
      const NodeId joiner =
          candidates[rng.NextBounded(candidates.size())];
      table.RemoveSubscription(topic, leaver);
      const SimDuration shortest = true_delays.distance[joiner.underlying()];
      table.AddSubscription(
          topic, joiner,
          SimDuration::FromMillisF(shortest.millis() * config.qos_factor));
    }
  }
}

}  // namespace dcrd
