#include "sim/invariant_checker.h"

#include <algorithm>
#include <deque>
#include <iostream>
#include <sstream>

#include "obs/flight_recorder.h"
#include "pubsub/packet.h"

namespace dcrd {

namespace {

std::uint64_t PairKey(MessageId message, NodeId subscriber) {
  DCRD_CHECK(subscriber.underlying() < (1ULL << 16));
  return (message.value << 16) | subscriber.underlying();
}

}  // namespace

SimInvariantChecker::SimInvariantChecker(const OverlayNetwork& network,
                                         const SubscriptionTable& subscriptions,
                                         DeliverySink& next,
                                         InvariantCheckerConfig config)
    : network_(network),
      subscriptions_(subscriptions),
      next_(next),
      config_(config) {}

void SimInvariantChecker::Record(std::string message) {
  ++violation_count_;
  if (violations_.size() < config_.max_recorded) {
    violations_.push_back(std::move(message));
  }
  // Dump on the first violation only: the ring still holds the events that
  // led up to it, and one postmortem per run is enough to debug from.
  if (violation_count_ == 1 && recorder_ != nullptr) {
    recorder_->DumpPostmortem(std::cerr, 256, violations_.back());
  }
}

void SimInvariantChecker::OnPublished(const Message& message) {
  if (config_.check_delivery_guarantee) {
    touched_[message.id.value].insert(message.publisher.underlying());
  }
  for (const Subscription& sub :
       subscriptions_.subscriptions(message.topic)) {
    PublishedPair pair;
    pair.publisher = message.publisher;
    pair.subscriber = sub.subscriber;
    pair.publish_time = message.publish_time;
    pairs_.emplace(PairKey(message.id, sub.subscriber), pair);
  }
}

void SimInvariantChecker::OnDelivered(const Message& message,
                                      NodeId subscriber, SimTime arrival) {
  const auto it = pairs_.find(PairKey(message.id, subscriber));
  if (it != pairs_.end()) it->second.delivered = true;
  next_.OnDelivered(message, subscriber, arrival);
}

void SimInvariantChecker::OnCopyArrival(std::uint64_t copy_id, NodeId at,
                                        NodeId from, const Packet& packet,
                                        bool handed_up) {
  ++copies_observed_;
  // 1. Loop freedom. The sender stamps itself before every send, so `from`
  // is always on the path; the receiver may only be on it when the copy is
  // a reroute back to the sender's original upstream.
  if (packet.OnRoutingPath(at) && at != packet.UpstreamOf(from)) {
    std::ostringstream os;
    os << "routing loop: copy " << copy_id << " of message "
       << packet.message().id << " arrived at " << at << " from " << from
       << ", which is on its routing path but is not the sender's upstream";
    Record(os.str());
  }
  if (config_.check_delivery_guarantee) {
    auto& touched = touched_[packet.message().id.value];
    touched.insert(at.underlying());
    touched.insert(from.underlying());
  }
  // 2. Exactly-once hand-up per copy id, across epoch-boundary dedup
  // clears. Crash-aware: a restart wipes the receiver's dedup window, so a
  // repeat hand-up at the *same* node is legal iff the node was down at
  // some point between the two hand-ups; everything else is a hard
  // violation.
  if (handed_up) {
    const SimTime now = network_.scheduler().now();
    const auto [it, inserted] = handed_up_.try_emplace(copy_id, HandUp{at, now});
    if (!inserted) {
      const BrokerCrashSchedule& crashes = network_.crashes();
      const bool excused = crashes.enabled() && at == it->second.node &&
                           crashes.DownDuring(at, it->second.time, now);
      if (excused) {
        ++crash_excused_duplicates_;
      } else {
        std::ostringstream os;
        os << "copy " << copy_id << " of message " << packet.message().id
           << " handed up twice (at " << at
           << ") with no broker crash to explain it";
        Record(os.str());
      }
      it->second = HandUp{at, now};
    }
  }
}

void SimInvariantChecker::CheckEpoch() {
  static constexpr TrafficClass kClasses[] = {
      TrafficClass::kData, TrafficClass::kAck, TrafficClass::kControl};
  static constexpr const char* kNames[] = {"data", "ack", "control"};
  for (std::size_t c = 0; c < 3; ++c) {
    const TrafficCounters& counters = network_.counters(kClasses[c]);
    if (counters.attempted != counters.accounted()) {
      std::ostringstream os;
      os << kNames[c] << " counter leak: attempted=" << counters.attempted
         << " but delivered+dropped=" << counters.accounted();
      Record(os.str());
    }
  }
}

bool SimInvariantChecker::LinkClean(LinkId link, SimTime t0,
                                    SimTime t1) const {
  const FailureSchedule& failures = network_.failures();
  const GrayFailureSchedule& gray = network_.gray();
  const SimDuration epoch = failures.epoch();
  // Outages and gray episodes are epoch-aligned, so sampling t0 and every
  // epoch boundary in (t0, t1] covers the whole window.
  for (SimTime t = t0; t <= t1;) {
    if (!failures.IsUp(link, t)) return false;
    if (gray.Active(link, t)) return false;
    const std::int64_t next_epoch =
        (t.micros() / epoch.micros() + 1) * epoch.micros();
    if (SimTime::FromMicros(next_epoch) > t1) break;
    t = SimTime::FromMicros(next_epoch);
  }
  return true;
}

bool SimInvariantChecker::NodeClean(NodeId node, SimTime t0,
                                    SimTime t1) const {
  const NodeFailureSchedule& nodes = network_.node_failures();
  const BrokerCrashSchedule& crashes = network_.crashes();
  const SimDuration epoch = network_.failures().epoch();
  for (SimTime t = t0; t <= t1;) {
    if (!nodes.IsUp(node, t)) return false;
    if (!crashes.Up(node, t)) return false;
    const std::int64_t next_epoch =
        (t.micros() / epoch.micros() + 1) * epoch.micros();
    if (SimTime::FromMicros(next_epoch) > t1) break;
    t = SimTime::FromMicros(next_epoch);
  }
  return true;
}

bool SimInvariantChecker::CleanPathExists(NodeId publisher, NodeId subscriber,
                                          SimTime t0, SimTime end) const {
  const SimTime t1 = std::min(t0 + config_.guarantee_window, end);
  const Graph& graph = network_.graph();
  if (!NodeClean(publisher, t0, t1) || !NodeClean(subscriber, t0, t1)) {
    return false;
  }
  // BFS over continuously-clean links and nodes.
  std::vector<bool> visited(graph.node_count(), false);
  std::deque<NodeId> frontier{publisher};
  visited[publisher.underlying()] = true;
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop_front();
    for (const Neighbor& neighbor : graph.neighbors(node)) {
      if (visited[neighbor.peer.underlying()]) continue;
      if (!LinkClean(neighbor.link, t0, t1)) continue;
      if (!NodeClean(neighbor.peer, t0, t1)) continue;
      if (neighbor.peer == subscriber) return true;
      visited[neighbor.peer.underlying()] = true;
      frontier.push_back(neighbor.peer);
    }
  }
  return false;
}

void SimInvariantChecker::AbsorbPeer(SimInvariantChecker& peer) {
  for (const auto& [key, pair] : peer.pairs_) {
    if (!pair.delivered) continue;
    const auto it = pairs_.find(key);
    DCRD_CHECK(it != pairs_.end())
        << "peer shard delivered a pair this shard never saw published";
    it->second.delivered = true;
  }
  for (auto& [message, brokers] : peer.touched_) {
    touched_[message].merge(brokers);
  }
  violation_count_ += peer.violation_count_;
  for (std::string& violation : peer.violations_) {
    if (violations_.size() >= config_.max_recorded) break;
    violations_.push_back(std::move(violation));
  }
  copies_observed_ += peer.copies_observed_;
  crash_excused_duplicates_ += peer.crash_excused_duplicates_;
}

void SimInvariantChecker::CheckEndOfRun(const Router& router, SimTime end) {
  const TransportStats stats = router.transport_stats();
  CheckEndOfRun(stats.pending_copies, router.open_episodes(), end);
}

void SimInvariantChecker::CheckEndOfRun(std::uint64_t pending_copies,
                                        std::size_t open_episodes,
                                        SimTime end) {
  CheckEpoch();
  // 5. Quiescence.
  if (pending_copies != 0) {
    std::ostringstream os;
    os << pending_copies << " transport copies still pending after quiescence";
    Record(os.str());
  }
  if (open_episodes != 0) {
    std::ostringstream os;
    os << open_episodes << " router episodes still open after quiescence";
    Record(os.str());
  }
  // 4. Delivery guarantee.
  if (!config_.check_delivery_guarantee) return;
  const BrokerCrashSchedule& crashes = network_.crashes();
  for (const auto& [key, pair] : pairs_) {
    if (pair.delivered || pair.subscriber == pair.publisher) continue;
    // Touched-broker precondition: a crash at any broker that held this
    // packet destroys it regardless of path cleanliness elsewhere, so
    // non-delivery is expected and the oracle stays silent.
    if (crashes.enabled()) {
      const SimTime t1 =
          std::min(pair.publish_time + config_.guarantee_window, end);
      const auto touched_it = touched_.find(key >> 16);
      bool holder_crashed = false;
      if (touched_it != touched_.end()) {
        for (const std::uint32_t broker : touched_it->second) {
          if (crashes.DownDuring(NodeId(static_cast<NodeId::underlying_type>(
                                     broker)),
                                 pair.publish_time, t1)) {
            holder_crashed = true;
            break;
          }
        }
      }
      if (holder_crashed) continue;
    }
    if (CleanPathExists(pair.publisher, pair.subscriber, pair.publish_time,
                        end)) {
      std::ostringstream os;
      os << "delivery guarantee: message " << (key >> 16) << " published "
         << pair.publish_time << " at " << pair.publisher
         << " never reached " << pair.subscriber
         << " despite a continuously clean path";
      Record(os.str());
    }
  }
}

}  // namespace dcrd
