#include "sim/engine.h"

#include <exception>
#include <fstream>
#include <iostream>
#include <vector>

#include "dcrd/dcrd_router.h"
#include "event/scheduler.h"
#include "graph/io.h"
#include "graph/topology.h"
#include "net/link_monitor.h"
#include "net/overlay_network.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "pubsub/publisher.h"
#include "routing/multipath_router.h"
#include "routing/oracle_router.h"
#include "routing/tree_router.h"
#include "sim/invariant_checker.h"
#include "sim/workload.h"

namespace dcrd {

std::unique_ptr<Router> MakeRouter(const ScenarioConfig& config,
                                   RouterContext context) {
  switch (config.router) {
    case RouterKind::kDcrd: {
      DcrdConfig dcrd_config;
      dcrd_config.best_effort_fallback = config.dcrd_best_effort_fallback;
      dcrd_config.reroute_retry_cap = config.dcrd_reroute_retry_cap;
      dcrd_config.enable_persistence = config.dcrd_persistence;
      dcrd_config.persistence_retry_interval = config.dcrd_persistence_retry;
      dcrd_config.persistence_max_retries =
          config.dcrd_persistence_max_retries;
      dcrd_config.computation.ordering = config.dcrd_ordering;
      dcrd_config.use_distributed_computation = config.dcrd_distributed;
      return std::make_unique<DcrdRouter>(context, dcrd_config);
    }
    case RouterKind::kRTree:
      return std::make_unique<TreeRouter>(context, TreeKind::kShortestHop);
    case RouterKind::kDTree:
      return std::make_unique<TreeRouter>(context, TreeKind::kShortestDelay);
    case RouterKind::kOracle:
      return std::make_unique<OracleRouter>(context);
    case RouterKind::kMultipath:
      return std::make_unique<MultipathRouter>(context,
                                               config.multipath_path_count);
  }
  DCRD_CHECK(false) << "unknown router kind";
  return nullptr;
}

namespace {

// Delivery-sink shim: records a kDeliver trace event and the end-to-end
// delay histogram sample, then forwards to the real sink (the invariant
// checker or the metrics collector). Pure read-side — it cannot change what
// the wrapped sink observes.
class ObservedSink final : public DeliverySink {
 public:
  ObservedSink(DeliverySink& next, FlightRecorder* recorder,
               LogLinearHistogram* delay_histogram)
      : next_(next), recorder_(recorder), delay_histogram_(delay_histogram) {}

  void OnDelivered(const Message& message, NodeId subscriber,
                   SimTime arrival) override {
    if (recorder_ != nullptr) {
      recorder_->Record(TraceEventKind::kDeliver, message.id.value, 0,
                        subscriber, message.publisher, LinkId());
    }
    if (delay_histogram_ != nullptr) {
      delay_histogram_->Record((arrival - message.publish_time).micros());
    }
    next_.OnDelivered(message, subscriber, arrival);
  }

 private:
  DeliverySink& next_;
  FlightRecorder* recorder_;
  LogLinearHistogram* delay_histogram_;
};

// Samples every link's up/gray state at failure-epoch cadence and records
// the *transitions* as trace events. The failure and gray processes are
// counter-based pure functions of (seed, entity, epoch) — sampling them is
// free of side effects, so the traced run stays bit-identical to the
// untraced one. Chain-scheduled with a [this] capture (8 bytes, well inside
// the scheduler's inline budget).
class LinkStateSampler {
 public:
  LinkStateSampler(const OverlayNetwork& network, Scheduler& scheduler,
                   FlightRecorder& recorder, SimDuration epoch, SimTime end)
      : network_(network),
        scheduler_(scheduler),
        recorder_(recorder),
        epoch_(epoch),
        end_(end),
        link_up_(network.graph().edge_count(), true),
        link_gray_(network.graph().edge_count(), false) {
    Sample();  // t = 0 baseline; records nothing unless a link starts down
    ScheduleNext();
  }

 private:
  void Sample() {
    const SimTime now = scheduler_.now();
    const Graph& graph = network_.graph();
    for (std::size_t i = 0; i < graph.edge_count(); ++i) {
      const LinkId link(static_cast<LinkId::underlying_type>(i));
      const EdgeSpec& edge = graph.edge(link);
      const bool up = network_.failures().IsUp(link, now);
      if (up != link_up_[i]) {
        link_up_[i] = up;
        recorder_.Record(up ? TraceEventKind::kLinkUp
                            : TraceEventKind::kLinkDown,
                         TraceRecord::kNoPacket, 0, edge.a, edge.b, link);
      }
      const bool gray = network_.gray().Active(link, now);
      if (gray != link_gray_[i]) {
        link_gray_[i] = gray;
        recorder_.Record(gray ? TraceEventKind::kGrayStart
                              : TraceEventKind::kGrayEnd,
                         TraceRecord::kNoPacket, 0, edge.a, edge.b, link);
      }
    }
  }

  void ScheduleNext() {
    if (scheduler_.now() + epoch_ > end_) return;
    scheduler_.ScheduleAfter(epoch_, [this] {
      Sample();
      ScheduleNext();
    });
  }

  const OverlayNetwork& network_;
  Scheduler& scheduler_;
  FlightRecorder& recorder_;
  const SimDuration epoch_;
  const SimTime end_;
  std::vector<bool> link_up_;
  std::vector<bool> link_gray_;
};

// Registers the network's per-class TrafficCounters fields under
// "net.<class>.<field>" names. By const pointer: the network stays the
// single source of truth, the registry only reads at snapshot time.
void RegisterNetworkCounters(MetricsRegistry& registry,
                             const OverlayNetwork& network) {
  static constexpr std::string_view kClassNames[] = {"data", "ack",
                                                     "control"};
  for (std::size_t c = 0; c < 3; ++c) {
    const TrafficCounters& counters =
        network.counters(static_cast<TrafficClass>(c));
    const std::string prefix = "net." + std::string(kClassNames[c]) + ".";
    registry.RegisterCounter(prefix + "attempted", &counters.attempted);
    registry.RegisterCounter(prefix + "delivered", &counters.delivered);
    registry.RegisterCounter(prefix + "dropped_link_failure",
                             &counters.dropped_failure);
    registry.RegisterCounter(prefix + "dropped_node_failure",
                             &counters.dropped_node_failure);
    registry.RegisterCounter(prefix + "dropped_loss", &counters.dropped_loss);
    registry.RegisterCounter(prefix + "dropped_gray", &counters.dropped_gray);
    registry.RegisterCounter(prefix + "dropped_crash",
                             &counters.dropped_crash);
  }
}

// Samples every broker's crash-schedule state at failure-epoch cadence and
// drives the router's lifecycle hooks on transitions: up->down kills the
// broker's volatile state (OnBrokerCrash), down->up triggers resync
// (OnBrokerRestart). Unlike LinkStateSampler this is NOT observability —
// the hooks mutate protocol state — so it runs whenever the crash process
// is enabled, recorder or not. The schedule itself is a counter-based pure
// function, so the sampler adds no RNG draws.
class BrokerLifecycleSampler {
 public:
  BrokerLifecycleSampler(const OverlayNetwork& network, Scheduler& scheduler,
                         Router& router, FlightRecorder* recorder,
                         SimDuration epoch, SimTime end)
      : network_(network),
        scheduler_(scheduler),
        router_(router),
        recorder_(recorder),
        epoch_(epoch),
        end_(end),
        up_(network.graph().node_count(), true) {
    Sample();  // t = 0 baseline; fires hooks for brokers that start down
    ScheduleNext();
  }

  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
  [[nodiscard]] std::uint64_t restarts() const { return restarts_; }

 private:
  void Sample() {
    const SimTime now = scheduler_.now();
    const BrokerCrashSchedule& schedule = network_.crashes();
    for (std::size_t i = 0; i < up_.size(); ++i) {
      const NodeId node(static_cast<NodeId::underlying_type>(i));
      const bool up = schedule.Up(node, now);
      if (up == up_[i]) continue;
      up_[i] = up;
      if (!up) {
        ++crashes_;
        const std::size_t killed = router_.OnBrokerCrash(node);
        if (recorder_ != nullptr) {
          recorder_->Record(TraceEventKind::kBrokerDown,
                            TraceRecord::kNoPacket, 0, node, NodeId(),
                            LinkId(), 0,
                            static_cast<std::uint16_t>(
                                killed > 0xFFFF ? 0xFFFF : killed));
        }
      } else {
        ++restarts_;
        router_.OnBrokerRestart(node);
        if (recorder_ != nullptr) {
          recorder_->Record(TraceEventKind::kBrokerUp, TraceRecord::kNoPacket,
                            0, node, NodeId(), LinkId());
        }
      }
    }
  }

  void ScheduleNext() {
    if (scheduler_.now() + epoch_ > end_) return;
    scheduler_.ScheduleAfter(epoch_, [this] {
      Sample();
      ScheduleNext();
    });
  }

  const OverlayNetwork& network_;
  Scheduler& scheduler_;
  Router& router_;
  FlightRecorder* recorder_;
  const SimDuration epoch_;
  const SimTime end_;
  std::vector<bool> up_;
  std::uint64_t crashes_ = 0;
  std::uint64_t restarts_ = 0;
};

}  // namespace

RunSummary RunScenario(const ScenarioConfig& config) {
  const Rng root(config.seed);

  // Topology and workload draw from substreams independent of the failure
  // and loss processes, so changing Pf/Pl/router never reshapes the overlay.
  Rng topology_rng = root.Fork("topology");
  const DelayRange delays{config.link_delay_min, config.link_delay_max};
  const Graph graph = [&] {
    if (!config.topology_file.empty()) {
      std::ifstream file(config.topology_file);
      DCRD_CHECK(file.good())
          << "cannot open topology file " << config.topology_file;
      std::string error;
      auto loaded = ReadEdgeList(file, &error);
      DCRD_CHECK(loaded.has_value())
          << config.topology_file << ": " << error;
      return *std::move(loaded);
    }
    return config.topology == TopologyKind::kFullMesh
               ? FullMesh(config.node_count, topology_rng, delays)
               : RandomConnected(config.node_count, config.degree,
                                 topology_rng, delays);
  }();

  Rng workload_rng = root.Fork("workload");
  SubscriptionTable subscriptions =
      GenerateWorkload(graph, config, workload_rng);

  Scheduler scheduler;
  Rng link_pf_rng = root.Fork("link-pf");
  const FailureSchedule failures(
      root.Fork("failures")(),
      DrawHeterogeneousFractions(graph.edge_count(),
                                 config.failure_probability,
                                 config.failure_heterogeneity, link_pf_rng),
      config.failure_epoch, config.link_outage_epochs);
  const NodeFailureSchedule node_failures(root.Fork("node-failures")(),
                                          config.node_failure_probability,
                                          config.failure_epoch,
                                          config.node_outage_epochs);
  OverlayNetworkConfig network_config;
  network_config.loss_rate = config.loss_rate;
  network_config.ack_delay_factor = config.ack_delay_factor;
  network_config.serialization = config.link_serialization;
  network_config.delay_jitter = config.delay_jitter;
  GrayFailureConfig gray_config;
  gray_config.probability = config.gray_probability;
  gray_config.extra_loss = config.gray_extra_loss;
  gray_config.delay_factor = config.gray_delay_factor;
  gray_config.asymmetry = config.gray_asymmetry;
  gray_config.epoch = config.failure_epoch;
  const GrayFailureSchedule gray(root.Fork("gray")(), gray_config);
  // Crash schedule on its own substream: enabling it never perturbs the
  // failure/loss/gray sample paths (and vice versa).
  const BrokerCrashSchedule crashes(root.Fork("broker-crashes")(),
                                    config.broker_mtbf, config.broker_mttr,
                                    config.failure_epoch);
  OverlayNetwork network(graph, scheduler, failures, network_config,
                         root.Fork("loss"), node_failures, gray, crashes);

  // --- observability (read-only; see the ScenarioConfig block comment) ----
  const bool tracing = config.trace || !config.trace_out.empty();
  std::unique_ptr<FlightRecorder> recorder;
  std::ofstream trace_file;
  if (tracing) {
    FlightRecorder::Config recorder_config;
    recorder_config.ring_capacity = config.trace_ring_capacity;
    recorder = std::make_unique<FlightRecorder>(scheduler, recorder_config);
    recorder->set_enabled(true);
    if (!config.trace_out.empty()) {
      trace_file.open(config.trace_out, std::ios::trunc);
      if (trace_file) {
        recorder->set_sink(&trace_file);
      } else {
        DCRD_LOG(kWarn) << "cannot write trace to " << config.trace_out
                        << "; tracing to the in-memory ring only";
      }
    }
    network.set_flight_recorder(recorder.get());
  }
  std::ofstream audit_file;
  if (!config.delay_audit_out.empty()) {
    audit_file.open(config.delay_audit_out, std::ios::trunc);
    if (!audit_file) {
      DCRD_LOG(kWarn) << "cannot write delay-audit model rows to "
                      << config.delay_audit_out;
    }
  }
  std::unique_ptr<MetricsRegistry> registry;
  LogLinearHistogram* delay_histogram = nullptr;
  LogLinearHistogram* rtt_histogram = nullptr;
  if (!config.metrics_json.empty()) {
    registry = std::make_unique<MetricsRegistry>();
    RegisterNetworkCounters(*registry, network);
    delay_histogram = registry->AddHistogram("delivery.delay_us");
    rtt_histogram = registry->AddHistogram("transport.rtt_us");
  }

  LinkMonitorConfig monitor_config;
  monitor_config.interval = config.monitor_interval;
  monitor_config.probe_count = config.monitor_probes;
  monitor_config.ewma_weight = config.monitor_ewma_weight;
  monitor_config.loss_rate = config.loss_rate;
  LinkMonitor monitor(graph, failures, monitor_config, root.Fork("probes"));

  MetricsCollector metrics(subscriptions);
  std::unique_ptr<SimInvariantChecker> checker;
  if (config.enable_invariant_checker) {
    InvariantCheckerConfig checker_config;
    checker_config.check_delivery_guarantee = config.check_delivery_guarantee;
    checker_config.guarantee_window = config.guarantee_window;
    checker = std::make_unique<SimInvariantChecker>(network, subscriptions,
                                                    metrics, checker_config);
    checker->set_flight_recorder(recorder.get());
  }
  DeliverySink& protocol_sink =
      checker ? static_cast<DeliverySink&>(*checker) : metrics;
  ObservedSink observed_sink(protocol_sink, recorder.get(), delay_histogram);
  const bool observing = recorder != nullptr || registry != nullptr;

  RouterContext context;
  context.network = &network;
  context.subscriptions = &subscriptions;
  context.sink = observing ? static_cast<DeliverySink*>(&observed_sink)
                           : &protocol_sink;
  context.max_transmissions = config.max_transmissions;
  context.ack_slack = config.ack_slack;
  context.adaptive_rto = config.adaptive_rto;
  context.peer_death = config.peer_death_detection;
  context.peer_death_threshold = config.peer_death_threshold;
  context.transport_observer = checker.get();
  context.recorder = recorder.get();
  context.hop_rtt_histogram = rtt_histogram;
  const std::unique_ptr<Router> router = MakeRouter(config, context);
  // The delay auditor needs the model's sending lists, which only the DCRD
  // router materialises. Pure read-side: snapshots go to the audit file
  // only, after each rebuild, so routing never observes the auditor.
  const DcrdRouter* audit_router = nullptr;
  if (audit_file.is_open()) {
    audit_router = dynamic_cast<const DcrdRouter*>(router.get());
    if (audit_router == nullptr) {
      DCRD_LOG(kWarn) << "delay_audit_out requested but router "
                      << router->name()
                      << " has no Theorem-1 model; no rows written";
    }
  }

  if (registry != nullptr) {
    // Gauges sample live engine state; registered after the router exists.
    registry->RegisterGauge("scheduler.pending_events", [&scheduler] {
      return static_cast<std::uint64_t>(scheduler.pending_count());
    });
    registry->RegisterGauge("router.open_episodes", [r = router.get()] {
      return static_cast<std::uint64_t>(r->open_episodes());
    });
    registry->RegisterGauge("transport.pending_copies", [r = router.get()] {
      return static_cast<std::uint64_t>(r->transport_stats().pending_copies);
    });
  }

  // Bootstrap measurement + epoch rebuilds for the whole run. Churn, when
  // enabled, mutates the subscription table immediately before the rebuild
  // so routers always see a consistent epoch snapshot.
  monitor.MeasureAt(SimTime::Zero());
  router->Rebuild(monitor.view());
  Rng churn_rng = root.Fork("churn");
  const auto apply_churn = [&] {
    if (config.subscription_churn <= 0.0) return;
    ApplySubscriptionChurn(graph, config, churn_rng, subscriptions);
  };
  const SimTime end = SimTime::Zero() + config.sim_time;
  for (SimTime epoch = SimTime::Zero() + config.monitor_interval;
       epoch <= end; epoch += config.monitor_interval) {
    scheduler.ScheduleAt(epoch,
                         [&monitor, &router, &scheduler, &apply_churn,
                          &checker] {
      if (checker) checker->CheckEpoch();
      apply_churn();
      monitor.MeasureAt(scheduler.now());
      router->Rebuild(monitor.view());
    });
  }
  if (observing || audit_router != nullptr) {
    // Observability epochs ride their own events rather than widening the
    // capture of the rebuild lambda above (which is at the scheduler's
    // inline-capture budget). Scheduled after the rebuild loop, so at each
    // epoch instant they run *after* the rebuild (same time, later seq) and
    // the kRebuild record / snapshot / audit rows reflect the post-rebuild
    // state.
    if (recorder != nullptr) {
      recorder->Record(TraceEventKind::kRebuild, TraceRecord::kNoPacket, 0,
                       NodeId(), NodeId(), LinkId());
    }
    if (registry != nullptr) registry->SnapshotEpoch(SimTime::Zero());
    if (audit_router != nullptr) {
      audit_router->WriteAuditSnapshot(audit_file, SimTime::Zero());
    }
    FlightRecorder* rec = recorder.get();
    MetricsRegistry* reg = registry.get();
    std::ostream* audit_out = audit_router != nullptr ? &audit_file : nullptr;
    for (SimTime epoch = SimTime::Zero() + config.monitor_interval;
         epoch <= end; epoch += config.monitor_interval) {
      scheduler.ScheduleAt(epoch,
                           [rec, reg, &scheduler, audit_router, audit_out] {
        if (rec != nullptr) {
          rec->Record(TraceEventKind::kRebuild, TraceRecord::kNoPacket, 0,
                      NodeId(), NodeId(), LinkId());
        }
        if (reg != nullptr) reg->SnapshotEpoch(scheduler.now());
        if (audit_out != nullptr) {
          audit_router->WriteAuditSnapshot(*audit_out, scheduler.now());
        }
      });
    }
  }
  std::unique_ptr<LinkStateSampler> link_sampler;
  if (recorder != nullptr) {
    link_sampler = std::make_unique<LinkStateSampler>(
        network, scheduler, *recorder, config.failure_epoch, end);
  }
  std::unique_ptr<BrokerLifecycleSampler> lifecycle_sampler;
  if (network.crashes().enabled()) {
    lifecycle_sampler = std::make_unique<BrokerLifecycleSampler>(
        network, scheduler, *router, recorder.get(), config.failure_epoch,
        end);
  }

  // Publishers: one per topic, phase-jittered within the first interval.
  Rng phase_rng = root.Fork("phases");
  std::uint64_t next_message_id = 0;
  std::vector<std::unique_ptr<Publisher>> publishers;
  for (std::size_t t = 0; t < subscriptions.topic_count(); ++t) {
    const TopicId topic(static_cast<TopicId::underlying_type>(t));
    FlightRecorder* rec = recorder.get();
    publishers.push_back(std::make_unique<Publisher>(
        topic, subscriptions.publisher(topic), config.publish_interval,
        scheduler,
        [&metrics, &router, &checker, rec, &network](const Message& message) {
          // A crashed broker cannot publish; its producer pauses and the
          // message never enters the system (not counted as an expected
          // pair). No-op — and byte-identical — when the crash process is
          // off.
          if (network.crashes().enabled() &&
              !network.crashes().Up(message.publisher,
                                    network.scheduler().now())) {
            return;
          }
          if (rec != nullptr) {
            // aux16 carries the topic id so offline analysis can join a
            // packet to its (topic, subscriber) model row.
            rec->Record(TraceEventKind::kPublish, message.id.value, 0,
                        message.publisher, NodeId(), LinkId(), 0,
                        static_cast<std::uint16_t>(
                            message.topic.underlying()));
          }
          metrics.OnPublished(message);
          if (checker) checker->OnPublished(message);
          router->Publish(message);
        }));
    publishers.back()->Start(
        SimDuration::Micros(phase_rng.NextInRange(
            0, config.publish_interval.micros() - 1)),
        end, next_message_id);
  }

  try {
    scheduler.RunUntil(end);
    // Drain in-flight deliveries, timers and reroutes published before
    // `end`.
    scheduler.Run();
    if (checker) checker->CheckEndOfRun(*router, scheduler.now());
  } catch (...) {
    // A throwing cell is exactly when the last events matter most; dump the
    // ring before the exception unwinds the engine state it describes.
    if (recorder != nullptr) {
      recorder->DumpPostmortem(std::cerr, 256, "exception during run");
    }
    throw;
  }

  if (registry != nullptr) {
    registry->SnapshotEpoch(scheduler.now());
    std::ofstream metrics_file(config.metrics_json, std::ios::trunc);
    if (metrics_file) {
      registry->WriteJson(metrics_file);
    } else {
      DCRD_LOG(kWarn) << "cannot write metrics to " << config.metrics_json;
    }
  }
  if (recorder != nullptr) recorder->Flush();

  RunSummary summary = metrics.Summarize(
      network.counters(TrafficClass::kData).attempted,
      network.counters(TrafficClass::kAck).attempted,
      network.counters(TrafficClass::kControl).attempted);
  const TransportStats transport = router->transport_stats();
  summary.retransmissions = transport.retransmissions;
  summary.spurious_retransmissions = transport.spurious_retransmissions;
  summary.rtt_samples = transport.rtt_samples;
  summary.peer_deaths = transport.peer_deaths;
  summary.peer_probes = transport.peer_probes;
  summary.peer_revivals = transport.peer_revivals;
  summary.crash_copies_killed = transport.crash_copies_killed;
  summary.dropped_crash =
      network.counters(TrafficClass::kData).dropped_crash +
      network.counters(TrafficClass::kAck).dropped_crash +
      network.counters(TrafficClass::kControl).dropped_crash;
  if (lifecycle_sampler != nullptr) {
    summary.broker_crashes = lifecycle_sampler->crashes();
    summary.broker_restarts = lifecycle_sampler->restarts();
  }
  const ResyncStats resync = router->resync_stats();
  summary.resyncs_started = resync.resyncs_started;
  summary.resyncs_completed = resync.resyncs_completed;
  summary.total_resync_time_us =
      static_cast<std::uint64_t>(resync.total_resync_time.micros());
  summary.max_resync_time_us =
      static_cast<std::uint64_t>(resync.max_resync_time.micros());
  if (recorder != nullptr) {
    summary.trace_records_overwritten = recorder->overwritten();
    if (recorder->overwritten() > 0 && !config.trace_out.empty()) {
      // A sink-mode trace should be lossless; overwrites here mean the sink
      // failed to open and the capture silently degraded to the ring.
      DCRD_LOG(kWarn) << "flight recorder overwrote "
                      << recorder->overwritten()
                      << " record(s); the captured trace is lossy";
    }
  }
  if (checker) {
    summary.invariant_violation_count = checker->violation_count();
    summary.invariant_violations = checker->violations();
    summary.crash_excused_duplicates = checker->crash_excused_duplicates();
  }
  return summary;
}

}  // namespace dcrd
