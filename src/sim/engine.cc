#include "sim/engine.h"

#include <fstream>
#include <vector>

#include "dcrd/dcrd_router.h"
#include "event/scheduler.h"
#include "graph/io.h"
#include "graph/topology.h"
#include "net/link_monitor.h"
#include "net/overlay_network.h"
#include "pubsub/publisher.h"
#include "routing/multipath_router.h"
#include "routing/oracle_router.h"
#include "routing/tree_router.h"
#include "sim/invariant_checker.h"
#include "sim/workload.h"

namespace dcrd {

std::unique_ptr<Router> MakeRouter(const ScenarioConfig& config,
                                   RouterContext context) {
  switch (config.router) {
    case RouterKind::kDcrd: {
      DcrdConfig dcrd_config;
      dcrd_config.best_effort_fallback = config.dcrd_best_effort_fallback;
      dcrd_config.reroute_retry_cap = config.dcrd_reroute_retry_cap;
      dcrd_config.enable_persistence = config.dcrd_persistence;
      dcrd_config.persistence_retry_interval = config.dcrd_persistence_retry;
      dcrd_config.persistence_max_retries =
          config.dcrd_persistence_max_retries;
      dcrd_config.computation.ordering = config.dcrd_ordering;
      dcrd_config.use_distributed_computation = config.dcrd_distributed;
      return std::make_unique<DcrdRouter>(context, dcrd_config);
    }
    case RouterKind::kRTree:
      return std::make_unique<TreeRouter>(context, TreeKind::kShortestHop);
    case RouterKind::kDTree:
      return std::make_unique<TreeRouter>(context, TreeKind::kShortestDelay);
    case RouterKind::kOracle:
      return std::make_unique<OracleRouter>(context);
    case RouterKind::kMultipath:
      return std::make_unique<MultipathRouter>(context,
                                               config.multipath_path_count);
  }
  DCRD_CHECK(false) << "unknown router kind";
  return nullptr;
}

RunSummary RunScenario(const ScenarioConfig& config) {
  const Rng root(config.seed);

  // Topology and workload draw from substreams independent of the failure
  // and loss processes, so changing Pf/Pl/router never reshapes the overlay.
  Rng topology_rng = root.Fork("topology");
  const DelayRange delays{config.link_delay_min, config.link_delay_max};
  const Graph graph = [&] {
    if (!config.topology_file.empty()) {
      std::ifstream file(config.topology_file);
      DCRD_CHECK(file.good())
          << "cannot open topology file " << config.topology_file;
      std::string error;
      auto loaded = ReadEdgeList(file, &error);
      DCRD_CHECK(loaded.has_value())
          << config.topology_file << ": " << error;
      return *std::move(loaded);
    }
    return config.topology == TopologyKind::kFullMesh
               ? FullMesh(config.node_count, topology_rng, delays)
               : RandomConnected(config.node_count, config.degree,
                                 topology_rng, delays);
  }();

  Rng workload_rng = root.Fork("workload");
  SubscriptionTable subscriptions =
      GenerateWorkload(graph, config, workload_rng);

  Scheduler scheduler;
  Rng link_pf_rng = root.Fork("link-pf");
  const FailureSchedule failures(
      root.Fork("failures")(),
      DrawHeterogeneousFractions(graph.edge_count(),
                                 config.failure_probability,
                                 config.failure_heterogeneity, link_pf_rng),
      config.failure_epoch, config.link_outage_epochs);
  const NodeFailureSchedule node_failures(root.Fork("node-failures")(),
                                          config.node_failure_probability,
                                          config.failure_epoch,
                                          config.node_outage_epochs);
  OverlayNetworkConfig network_config;
  network_config.loss_rate = config.loss_rate;
  network_config.ack_delay_factor = config.ack_delay_factor;
  network_config.serialization = config.link_serialization;
  network_config.delay_jitter = config.delay_jitter;
  GrayFailureConfig gray_config;
  gray_config.probability = config.gray_probability;
  gray_config.extra_loss = config.gray_extra_loss;
  gray_config.delay_factor = config.gray_delay_factor;
  gray_config.asymmetry = config.gray_asymmetry;
  gray_config.epoch = config.failure_epoch;
  const GrayFailureSchedule gray(root.Fork("gray")(), gray_config);
  OverlayNetwork network(graph, scheduler, failures, network_config,
                         root.Fork("loss"), node_failures, gray);

  LinkMonitorConfig monitor_config;
  monitor_config.interval = config.monitor_interval;
  monitor_config.probe_count = config.monitor_probes;
  monitor_config.ewma_weight = config.monitor_ewma_weight;
  monitor_config.loss_rate = config.loss_rate;
  LinkMonitor monitor(graph, failures, monitor_config, root.Fork("probes"));

  MetricsCollector metrics(subscriptions);
  std::unique_ptr<SimInvariantChecker> checker;
  if (config.enable_invariant_checker) {
    InvariantCheckerConfig checker_config;
    checker_config.check_delivery_guarantee = config.check_delivery_guarantee;
    checker_config.guarantee_window = config.guarantee_window;
    checker = std::make_unique<SimInvariantChecker>(network, subscriptions,
                                                    metrics, checker_config);
  }

  RouterContext context;
  context.network = &network;
  context.subscriptions = &subscriptions;
  context.sink = checker ? static_cast<DeliverySink*>(checker.get()) : &metrics;
  context.max_transmissions = config.max_transmissions;
  context.ack_slack = config.ack_slack;
  context.adaptive_rto = config.adaptive_rto;
  context.transport_observer = checker.get();
  const std::unique_ptr<Router> router = MakeRouter(config, context);

  // Bootstrap measurement + epoch rebuilds for the whole run. Churn, when
  // enabled, mutates the subscription table immediately before the rebuild
  // so routers always see a consistent epoch snapshot.
  monitor.MeasureAt(SimTime::Zero());
  router->Rebuild(monitor.view());
  Rng churn_rng = root.Fork("churn");
  const auto apply_churn = [&] {
    if (config.subscription_churn <= 0.0) return;
    ApplySubscriptionChurn(graph, config, churn_rng, subscriptions);
  };
  const SimTime end = SimTime::Zero() + config.sim_time;
  for (SimTime epoch = SimTime::Zero() + config.monitor_interval;
       epoch <= end; epoch += config.monitor_interval) {
    scheduler.ScheduleAt(epoch,
                         [&monitor, &router, &scheduler, &apply_churn,
                          &checker] {
      if (checker) checker->CheckEpoch();
      apply_churn();
      monitor.MeasureAt(scheduler.now());
      router->Rebuild(monitor.view());
    });
  }

  // Publishers: one per topic, phase-jittered within the first interval.
  Rng phase_rng = root.Fork("phases");
  std::uint64_t next_message_id = 0;
  std::vector<std::unique_ptr<Publisher>> publishers;
  for (std::size_t t = 0; t < subscriptions.topic_count(); ++t) {
    const TopicId topic(static_cast<TopicId::underlying_type>(t));
    publishers.push_back(std::make_unique<Publisher>(
        topic, subscriptions.publisher(topic), config.publish_interval,
        scheduler, [&metrics, &router, &checker](const Message& message) {
          metrics.OnPublished(message);
          if (checker) checker->OnPublished(message);
          router->Publish(message);
        }));
    publishers.back()->Start(
        SimDuration::Micros(phase_rng.NextInRange(
            0, config.publish_interval.micros() - 1)),
        end, next_message_id);
  }

  scheduler.RunUntil(end);
  // Drain in-flight deliveries, timers and reroutes published before `end`.
  scheduler.Run();
  if (checker) checker->CheckEndOfRun(*router, scheduler.now());

  RunSummary summary = metrics.Summarize(
      network.counters(TrafficClass::kData).attempted,
      network.counters(TrafficClass::kAck).attempted,
      network.counters(TrafficClass::kControl).attempted);
  const TransportStats transport = router->transport_stats();
  summary.retransmissions = transport.retransmissions;
  summary.spurious_retransmissions = transport.spurious_retransmissions;
  summary.rtt_samples = transport.rtt_samples;
  if (checker) {
    summary.invariant_violation_count = checker->violation_count();
    summary.invariant_violations = checker->violations();
  }
  return summary;
}

}  // namespace dcrd
