#include "sim/engine.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "dcrd/dcrd_router.h"
#include "event/scheduler.h"
#include "graph/io.h"
#include "graph/partition.h"
#include "graph/topology.h"
#include "net/shard_exchange.h"
#include "net/link_monitor.h"
#include "net/overlay_network.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/shard_profiler.h"
#include "obs/timeseries.h"
#include "pubsub/publisher.h"
#include "routing/multipath_router.h"
#include "routing/oracle_router.h"
#include "routing/tree_router.h"
#include "sim/invariant_checker.h"
#include "sim/workload.h"

namespace dcrd {

std::unique_ptr<Router> MakeRouter(const ScenarioConfig& config,
                                   RouterContext context) {
  switch (config.router) {
    case RouterKind::kDcrd: {
      DcrdConfig dcrd_config;
      dcrd_config.best_effort_fallback = config.dcrd_best_effort_fallback;
      dcrd_config.reroute_retry_cap = config.dcrd_reroute_retry_cap;
      dcrd_config.enable_persistence = config.dcrd_persistence;
      dcrd_config.persistence_retry_interval = config.dcrd_persistence_retry;
      dcrd_config.persistence_max_retries =
          config.dcrd_persistence_max_retries;
      dcrd_config.computation.ordering = config.dcrd_ordering;
      dcrd_config.use_distributed_computation = config.dcrd_distributed;
      return std::make_unique<DcrdRouter>(context, dcrd_config);
    }
    case RouterKind::kRTree:
      return std::make_unique<TreeRouter>(context, TreeKind::kShortestHop);
    case RouterKind::kDTree:
      return std::make_unique<TreeRouter>(context, TreeKind::kShortestDelay);
    case RouterKind::kOracle:
      return std::make_unique<OracleRouter>(context);
    case RouterKind::kMultipath:
      return std::make_unique<MultipathRouter>(context,
                                               config.multipath_path_count);
  }
  DCRD_CHECK(false) << "unknown router kind";
  return nullptr;
}

namespace {

// Delivery-sink shim: records a kDeliver trace event and the end-to-end
// delay histogram sample, then forwards to the real sink (the invariant
// checker or the metrics collector). Pure read-side — it cannot change what
// the wrapped sink observes.
class ObservedSink final : public DeliverySink {
 public:
  ObservedSink(DeliverySink& next, FlightRecorder* recorder,
               LogLinearHistogram* delay_histogram)
      : next_(next), recorder_(recorder), delay_histogram_(delay_histogram) {}

  void OnDelivered(const Message& message, NodeId subscriber,
                   SimTime arrival) override {
    if (recorder_ != nullptr) {
      recorder_->Record(TraceEventKind::kDeliver, message.id.value, 0,
                        subscriber, message.publisher, LinkId());
    }
    if (delay_histogram_ != nullptr) {
      delay_histogram_->Record((arrival - message.publish_time).micros());
    }
    next_.OnDelivered(message, subscriber, arrival);
  }

 private:
  DeliverySink& next_;
  FlightRecorder* recorder_;
  LogLinearHistogram* delay_histogram_;
};

// Samples every link's up/gray state at failure-epoch cadence and records
// the *transitions* as trace events. The failure and gray processes are
// counter-based pure functions of (seed, entity, epoch) — sampling them is
// free of side effects, so the traced run stays bit-identical to the
// untraced one. Chain-scheduled with a [this] capture (8 bytes, well inside
// the scheduler's inline budget).
//
// Sharded runs create the sampler on EVERY shard (its scheduled events keep
// the engine-origin event sequence identical across shards) but only shard
// 0 emits the records — link state is global, so per-kind record counts
// summed across per-shard trace files match the 1-shard trace exactly.
class LinkStateSampler {
 public:
  LinkStateSampler(const OverlayNetwork& network, Scheduler& scheduler,
                   FlightRecorder& recorder, SimDuration epoch, SimTime end,
                   bool record)
      : network_(network),
        scheduler_(scheduler),
        recorder_(recorder),
        epoch_(epoch),
        end_(end),
        record_(record),
        link_up_(network.graph().edge_count(), true),
        link_gray_(network.graph().edge_count(), false) {
    Sample();  // t = 0 baseline; records nothing unless a link starts down
    ScheduleNext();
  }

 private:
  void Sample() {
    const SimTime now = scheduler_.now();
    const Graph& graph = network_.graph();
    for (std::size_t i = 0; i < graph.edge_count(); ++i) {
      const LinkId link(static_cast<LinkId::underlying_type>(i));
      const EdgeSpec& edge = graph.edge(link);
      const bool up = network_.failures().IsUp(link, now);
      if (up != link_up_[i]) {
        link_up_[i] = up;
        if (record_) {
          recorder_.Record(up ? TraceEventKind::kLinkUp
                              : TraceEventKind::kLinkDown,
                           TraceRecord::kNoPacket, 0, edge.a, edge.b, link);
        }
      }
      const bool gray = network_.gray().Active(link, now);
      if (gray != link_gray_[i]) {
        link_gray_[i] = gray;
        if (record_) {
          recorder_.Record(gray ? TraceEventKind::kGrayStart
                                : TraceEventKind::kGrayEnd,
                           TraceRecord::kNoPacket, 0, edge.a, edge.b, link);
        }
      }
    }
  }

  void ScheduleNext() {
    if (scheduler_.now() + epoch_ > end_) return;
    scheduler_.ScheduleAfter(epoch_, [this] {
      Sample();
      ScheduleNext();
    });
  }

  const OverlayNetwork& network_;
  Scheduler& scheduler_;
  FlightRecorder& recorder_;
  const SimDuration epoch_;
  const SimTime end_;
  const bool record_;
  std::vector<bool> link_up_;
  std::vector<bool> link_gray_;
};

// Registers the network's per-class TrafficCounters fields under
// "net.<class>.<field>" names. By const pointer: the network stays the
// single source of truth, the registry only reads at snapshot time.
void RegisterNetworkCounters(MetricsRegistry& registry,
                             const OverlayNetwork& network) {
  static constexpr std::string_view kClassNames[] = {"data", "ack",
                                                     "control"};
  for (std::size_t c = 0; c < 3; ++c) {
    const TrafficCounters& counters =
        network.counters(static_cast<TrafficClass>(c));
    const std::string prefix = "net." + std::string(kClassNames[c]) + ".";
    registry.RegisterCounter(prefix + "attempted", &counters.attempted);
    registry.RegisterCounter(prefix + "delivered", &counters.delivered);
    registry.RegisterCounter(prefix + "dropped_link_failure",
                             &counters.dropped_failure);
    registry.RegisterCounter(prefix + "dropped_node_failure",
                             &counters.dropped_node_failure);
    registry.RegisterCounter(prefix + "dropped_loss", &counters.dropped_loss);
    registry.RegisterCounter(prefix + "dropped_gray", &counters.dropped_gray);
    registry.RegisterCounter(prefix + "dropped_crash",
                             &counters.dropped_crash);
  }
}

// Samples every broker's crash-schedule state at failure-epoch cadence and
// drives the router's lifecycle hooks on transitions: up->down kills the
// broker's volatile state (OnBrokerCrash), down->up triggers resync
// (OnBrokerRestart). Unlike LinkStateSampler this is NOT observability —
// the hooks mutate protocol state — so it runs whenever the crash process
// is enabled, recorder or not. The schedule itself is a counter-based pure
// function, so the sampler adds no RNG draws.
class BrokerLifecycleSampler {
 public:
  BrokerLifecycleSampler(const OverlayNetwork& network, Scheduler& scheduler,
                         Router& router, FlightRecorder* recorder,
                         SimDuration epoch, SimTime end)
      : network_(network),
        scheduler_(scheduler),
        router_(router),
        recorder_(recorder),
        epoch_(epoch),
        end_(end),
        up_(network.graph().node_count(), true) {
    Sample();  // t = 0 baseline; fires hooks for brokers that start down
    ScheduleNext();
  }

  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
  [[nodiscard]] std::uint64_t restarts() const { return restarts_; }

 private:
  void Sample() {
    const SimTime now = scheduler_.now();
    const BrokerCrashSchedule& schedule = network_.crashes();
    for (std::size_t i = 0; i < up_.size(); ++i) {
      const NodeId node(static_cast<NodeId::underlying_type>(i));
      const bool up = schedule.Up(node, now);
      if (up == up_[i]) continue;
      up_[i] = up;
      // Transitions replay on every shard (the schedule is a pure function)
      // but only the broker's owner records them, so a multi-shard trace
      // carries each lifecycle event exactly once.
      if (!up) {
        ++crashes_;
        const std::size_t killed = router_.OnBrokerCrash(node);
        if (recorder_ != nullptr && network_.IsLocalNode(node)) {
          recorder_->Record(TraceEventKind::kBrokerDown,
                            TraceRecord::kNoPacket, 0, node, NodeId(),
                            LinkId(), 0,
                            static_cast<std::uint16_t>(
                                killed > 0xFFFF ? 0xFFFF : killed));
        }
      } else {
        ++restarts_;
        router_.OnBrokerRestart(node);
        if (recorder_ != nullptr && network_.IsLocalNode(node)) {
          recorder_->Record(TraceEventKind::kBrokerUp, TraceRecord::kNoPacket,
                            0, node, NodeId(), LinkId());
        }
      }
    }
  }

  void ScheduleNext() {
    if (scheduler_.now() + epoch_ > end_) return;
    scheduler_.ScheduleAfter(epoch_, [this] {
      Sample();
      ScheduleNext();
    });
  }

  const OverlayNetwork& network_;
  Scheduler& scheduler_;
  Router& router_;
  FlightRecorder* recorder_;
  const SimDuration epoch_;
  const SimTime end_;
  std::vector<bool> up_;
  std::uint64_t crashes_ = 0;
  std::uint64_t restarts_ = 0;
};

// One engine shard: the complete single-threaded simulation state —
// workload, scheduler, network, monitor, router, metrics — built from the
// same (config, graph) on every shard, in the same order the pre-sharding
// engine built it (engine-origin event sequence numbers replicate across
// shards because the setup sequence does). Ownership gating decides what a
// shard *executes*: publish events, epoch rebuilds, churn, monitoring and
// lifecycle transitions replay identically everywhere (they are pure
// functions of config/seed/epoch), while sends, deliveries and per-broker
// protocol state run only on the shard owning the acting broker. A
// single-shard run is the degenerate case with a null shard map.
class Sim {
 public:
  Sim(const ScenarioConfig& config, const Graph& graph,
      const ShardMap* shard_map, int shard, ShardExchange* exchange);
  Sim(const Sim&) = delete;
  Sim& operator=(const Sim&) = delete;

  // Legacy single-shard execution: run to the end wall, drain, check,
  // flush observability, summarize.
  RunSummary RunSingle();

  // Sharded window-loop primitives (RunSharded below). DrainInbound injects
  // every exchange message other shards appended for us during the previous
  // window; the barrier between appends and this call makes the queues
  // safe single-writer/single-reader.
  void DrainInbound();
  [[nodiscard]] SimTime NextEventTime() const {
    return scheduler_.NextEventTime();
  }
  void RunWindow(SimTime horizon) { scheduler_.RunBefore(horizon); }
  [[nodiscard]] SimTime now() const { return scheduler_.now(); }

  // Shard-execution profiling (obs/shard_profiler.h). The profiler, when
  // attached, tallies drained exchange messages; the window loop reads the
  // events-executed delta instead of adding any per-event counter.
  void set_profiler(ShardProfiler* profiler) { profiler_ = profiler; }
  [[nodiscard]] std::uint64_t events_executed() const {
    return scheduler_.events_executed();
  }

  // Drains the recorder's ring tail into the trace sink. RunSingle flushes
  // inline; the sharded engine calls this once per shard after the workers
  // join (single-threaded, like the summary merge) so short runs that never
  // filled a ring still land on disk.
  void FlushObservability() {
    if (recorder_ != nullptr) recorder_->Flush();
  }

  [[nodiscard]] SimInvariantChecker* checker() { return checker_.get(); }
  [[nodiscard]] const Router& router() const { return *router_; }
  // Per-shard telemetry, folded by RunSharded at join (single-threaded).
  [[nodiscard]] MetricsRegistry* registry() { return registry_.get(); }
  [[nodiscard]] TimeSeriesSampler* timeseries() { return timeseries_.get(); }

  // Merges per-shard observations into one RunSummary, bit-identical to
  // the 1-shard run: published-side counts are replicated (shard 0 speaks
  // for all), delivered-side counts and transmission tallies are disjoint
  // across shards (summed), and sample vectors are concatenated then
  // sorted — in BOTH modes, so the canonical order never depends on the
  // partition. sims[0] must already hold any absorbed checker state.
  static RunSummary BuildSummary(const std::vector<Sim*>& sims);

 private:
  void OnPublish(const Message& message);
  void EpochTick();

  static SubscriptionTable MakeWorkload(const Graph& graph,
                                        const ScenarioConfig& config,
                                        const Rng& root) {
    Rng workload_rng = root.Fork("workload");
    return GenerateWorkload(graph, config, workload_rng);
  }
  static FailureSchedule MakeFailures(const Graph& graph,
                                      const ScenarioConfig& config,
                                      const Rng& root) {
    Rng link_pf_rng = root.Fork("link-pf");
    return FailureSchedule(
        root.Fork("failures")(),
        DrawHeterogeneousFractions(graph.edge_count(),
                                   config.failure_probability,
                                   config.failure_heterogeneity, link_pf_rng),
        config.failure_epoch, config.link_outage_epochs);
  }
  static GrayFailureSchedule MakeGray(const ScenarioConfig& config,
                                      const Rng& root) {
    GrayFailureConfig gray_config;
    gray_config.probability = config.gray_probability;
    gray_config.extra_loss = config.gray_extra_loss;
    gray_config.delay_factor = config.gray_delay_factor;
    gray_config.asymmetry = config.gray_asymmetry;
    gray_config.epoch = config.failure_epoch;
    return GrayFailureSchedule(root.Fork("gray")(), gray_config);
  }
  static OverlayNetworkConfig MakeNetworkConfig(const ScenarioConfig& config) {
    OverlayNetworkConfig network_config;
    network_config.loss_rate = config.loss_rate;
    network_config.ack_delay_factor = config.ack_delay_factor;
    network_config.serialization = config.link_serialization;
    network_config.delay_jitter = config.delay_jitter;
    return network_config;
  }
  static LinkMonitorConfig MakeMonitorConfig(const ScenarioConfig& config) {
    LinkMonitorConfig monitor_config;
    monitor_config.interval = config.monitor_interval;
    monitor_config.probe_count = config.monitor_probes;
    monitor_config.ewma_weight = config.monitor_ewma_weight;
    monitor_config.loss_rate = config.loss_rate;
    return monitor_config;
  }

  const ScenarioConfig& config_;
  const Graph& graph_;
  const Rng root_;
  SubscriptionTable subscriptions_;
  Scheduler scheduler_;
  const FailureSchedule failures_;
  const NodeFailureSchedule node_failures_;
  const GrayFailureSchedule gray_;
  // Crash schedule on its own substream: enabling it never perturbs the
  // failure/loss/gray sample paths (and vice versa).
  const BrokerCrashSchedule crashes_;
  OverlayNetwork network_;
  // Observability (read-only). Tracing shards cleanly — every shard owns a
  // recorder writing its own `.shardK` file, record sites gate on node
  // ownership so each event is captured exactly once — and metrics / time
  // series shard too (per-shard registries and stores, merged at join);
  // only the delay audit still forces a single-shard fallback in
  // RunScenario.
  std::unique_ptr<FlightRecorder> recorder_;
  std::ofstream trace_file_;
  std::ofstream audit_file_;
  std::unique_ptr<MetricsRegistry> registry_;
  LogLinearHistogram* delay_histogram_ = nullptr;
  LogLinearHistogram* rtt_histogram_ = nullptr;
  LinkMonitor monitor_;
  MetricsCollector metrics_;
  std::unique_ptr<SimInvariantChecker> checker_;
  std::unique_ptr<ObservedSink> observed_sink_;
  std::unique_ptr<Router> router_;
  const DcrdRouter* audit_router_ = nullptr;
  Rng churn_rng_;
  std::unique_ptr<LinkStateSampler> link_sampler_;
  std::unique_ptr<BrokerLifecycleSampler> lifecycle_sampler_;
  std::unique_ptr<TimeSeriesSampler> timeseries_;
  ShardProfiler* profiler_ = nullptr;
  std::uint64_t next_message_id_ = 0;
  std::vector<std::unique_ptr<Publisher>> publishers_;
  const SimTime end_;
};

Sim::Sim(const ScenarioConfig& config, const Graph& graph,
         const ShardMap* shard_map, int shard, ShardExchange* exchange)
    : config_(config),
      graph_(graph),
      root_(config.seed),
      subscriptions_(MakeWorkload(graph, config, root_)),
      failures_(MakeFailures(graph, config, root_)),
      node_failures_(root_.Fork("node-failures")(),
                     config.node_failure_probability, config.failure_epoch,
                     config.node_outage_epochs),
      gray_(MakeGray(config, root_)),
      crashes_(root_.Fork("broker-crashes")(), config.broker_mtbf,
               config.broker_mttr, config.failure_epoch),
      network_(graph, scheduler_, failures_, MakeNetworkConfig(config),
               root_.Fork("loss"), node_failures_, gray_, crashes_),
      monitor_(graph, failures_, MakeMonitorConfig(config),
               root_.Fork("probes")),
      metrics_(subscriptions_),
      churn_rng_(root_.Fork("churn")),
      end_(SimTime::Zero() + config.sim_time) {
  if (shard_map != nullptr) {
    network_.ConfigureSharding(shard_map, shard, exchange);
  }

  // --- observability (read-only; see the ScenarioConfig block comment) ----
  const bool tracing = config_.trace || !config_.trace_out.empty();
  if (tracing) {
    FlightRecorder::Config recorder_config;
    recorder_config.ring_capacity = config_.trace_ring_capacity;
    recorder_ = std::make_unique<FlightRecorder>(scheduler_, recorder_config);
    recorder_->set_enabled(true);
    if (shard_map != nullptr) recorder_->set_shard(shard);
    if (!config_.trace_out.empty()) {
      // Sharded runs write one trace file per shard: `.shardK` inserted
      // before a trailing `.jsonl` (appended otherwise). dcrd_trace merges
      // the set deterministically by (t_us, seq, shard).
      std::string path = config_.trace_out;
      if (shard_map != nullptr) {
        const std::string tag = ".shard" + std::to_string(shard);
        constexpr std::string_view kExt = ".jsonl";
        if (path.size() >= kExt.size() &&
            path.compare(path.size() - kExt.size(), kExt.size(), kExt) == 0) {
          path.insert(path.size() - kExt.size(), tag);
        } else {
          path += tag;
        }
      }
      trace_file_.open(path, std::ios::trunc);
      if (trace_file_) {
        recorder_->set_sink(&trace_file_);
      } else {
        DCRD_LOG(kWarn) << "cannot write trace to " << path
                        << "; tracing to the in-memory ring only";
      }
    }
    network_.set_flight_recorder(recorder_.get());
  }
  if (!config_.delay_audit_out.empty()) {
    audit_file_.open(config_.delay_audit_out, std::ios::trunc);
    if (!audit_file_) {
      DCRD_LOG(kWarn) << "cannot write delay-audit model rows to "
                      << config_.delay_audit_out;
    }
  }
  if (!config_.metrics_json.empty() || !config_.timeseries_out.empty()) {
    registry_ = std::make_unique<MetricsRegistry>();
    RegisterNetworkCounters(*registry_, network_);
    // SLO pair counters, read live from the collector's tally. Published-
    // side counts replicate on every shard (each shard's collector sees the
    // full expected set); delivered-side counts land on the subscriber's
    // owning shard only — the same split BuildSummary merges by.
    const RunSummary& live = metrics_.live_summary();
    registry_->RegisterCounter("slo.messages_published",
                               &live.messages_published,
                               MergePolicy::kReplicated);
    registry_->RegisterCounter("slo.pairs_published", &live.expected_pairs,
                               MergePolicy::kReplicated);
    registry_->RegisterCounter("slo.pairs_delivered", &live.delivered_pairs);
    registry_->RegisterCounter("slo.pairs_on_time", &live.qos_pairs);
    delay_histogram_ = registry_->AddHistogram("delivery.delay_us");
    rtt_histogram_ = registry_->AddHistogram("transport.rtt_us");
  }

  if (config_.enable_invariant_checker) {
    InvariantCheckerConfig checker_config;
    checker_config.check_delivery_guarantee = config_.check_delivery_guarantee;
    checker_config.guarantee_window = config_.guarantee_window;
    checker_ = std::make_unique<SimInvariantChecker>(
        network_, subscriptions_, metrics_, checker_config);
    checker_->set_flight_recorder(recorder_.get());
  }
  DeliverySink& protocol_sink =
      checker_ ? static_cast<DeliverySink&>(*checker_) : metrics_;
  observed_sink_ = std::make_unique<ObservedSink>(protocol_sink,
                                                  recorder_.get(),
                                                  delay_histogram_);
  const bool observing = recorder_ != nullptr || registry_ != nullptr;

  RouterContext context;
  context.network = &network_;
  context.subscriptions = &subscriptions_;
  context.sink = observing ? static_cast<DeliverySink*>(observed_sink_.get())
                           : &protocol_sink;
  context.max_transmissions = config_.max_transmissions;
  context.ack_slack = config_.ack_slack;
  context.adaptive_rto = config_.adaptive_rto;
  context.peer_death = config_.peer_death_detection;
  context.peer_death_threshold = config_.peer_death_threshold;
  context.transport_observer = checker_.get();
  context.recorder = recorder_.get();
  context.hop_rtt_histogram = rtt_histogram_;
  router_ = MakeRouter(config_, context);
  // The delay auditor needs the model's sending lists, which only the DCRD
  // router materialises. Pure read-side: snapshots go to the audit file
  // only, after each rebuild, so routing never observes the auditor.
  if (audit_file_.is_open()) {
    audit_router_ = dynamic_cast<const DcrdRouter*>(router_.get());
    if (audit_router_ == nullptr) {
      DCRD_LOG(kWarn) << "delay_audit_out requested but router "
                      << router_->name()
                      << " has no Theorem-1 model; no rows written";
    }
  }

  if (registry_ != nullptr) {
    // Gauges sample live engine state; registered after the router exists.
    // (No scheduler.pending_events gauge: replicated control events sit in
    // every shard's queue, so per-shard pending counts cannot merge into
    // the 1-shard value under any policy.)
    registry_->RegisterGauge("router.open_episodes", [r = router_.get()] {
      return static_cast<std::uint64_t>(r->open_episodes());
    });
    registry_->RegisterGauge("transport.pending_copies", [r = router_.get()] {
      return static_cast<std::uint64_t>(r->transport_stats().pending_copies);
    });
    // Link up/gray state is a pure function of schedules and time — every
    // shard computes the same counts, so shard 0 speaks for all.
    registry_->RegisterGauge(
        "links.down",
        [this] {
          std::uint64_t down = 0;
          const SimTime now = scheduler_.now();
          for (std::size_t i = 0; i < graph_.edge_count(); ++i) {
            const LinkId link(static_cast<LinkId::underlying_type>(i));
            if (!network_.failures().IsUp(link, now)) ++down;
          }
          return down;
        },
        MergePolicy::kReplicated);
    registry_->RegisterGauge(
        "links.gray",
        [this] {
          std::uint64_t gray = 0;
          const SimTime now = scheduler_.now();
          for (std::size_t i = 0; i < graph_.edge_count(); ++i) {
            const LinkId link(static_cast<LinkId::underlying_type>(i));
            if (network_.gray().Active(link, now)) ++gray;
          }
          return gray;
        },
        MergePolicy::kReplicated);
  }

  // Bootstrap measurement + epoch rebuilds for the whole run. Churn, when
  // enabled, mutates the subscription table immediately before the rebuild
  // so routers always see a consistent epoch snapshot. All of it replays
  // identically on every shard (pure functions of config/seed/epoch).
  monitor_.MeasureAt(SimTime::Zero());
  router_->Rebuild(monitor_.view());
  for (SimTime epoch = SimTime::Zero() + config_.monitor_interval;
       epoch <= end_; epoch += config_.monitor_interval) {
    scheduler_.ScheduleAt(epoch, [this] { EpochTick(); });
  }
  if (observing || audit_router_ != nullptr) {
    // Observability epochs ride their own events rather than widening the
    // rebuild event. Scheduled after the rebuild loop, so at each epoch
    // instant they run *after* the rebuild (same time, later seq) and the
    // kRebuild record / snapshot / audit rows reflect the post-rebuild
    // state.
    // Rebuilds replay on every shard; shard 0 speaks for all in the trace
    // (the same convention the published-side summary counts use).
    if (recorder_ != nullptr && network_.shard() == 0) {
      recorder_->Record(TraceEventKind::kRebuild, TraceRecord::kNoPacket, 0,
                        NodeId(), NodeId(), LinkId());
    }
    if (registry_ != nullptr) registry_->SnapshotEpoch(SimTime::Zero());
    if (audit_router_ != nullptr) {
      audit_router_->WriteAuditSnapshot(audit_file_, SimTime::Zero());
    }
    for (SimTime epoch = SimTime::Zero() + config_.monitor_interval;
         epoch <= end_; epoch += config_.monitor_interval) {
      scheduler_.ScheduleAt(epoch, [this] {
        if (recorder_ != nullptr && network_.shard() == 0) {
          recorder_->Record(TraceEventKind::kRebuild, TraceRecord::kNoPacket,
                            0, NodeId(), NodeId(), LinkId());
        }
        if (registry_ != nullptr) registry_->SnapshotEpoch(scheduler_.now());
        if (audit_router_ != nullptr) {
          audit_router_->WriteAuditSnapshot(audit_file_, scheduler_.now());
        }
      });
    }
  }
  if (recorder_ != nullptr) {
    link_sampler_ = std::make_unique<LinkStateSampler>(
        network_, scheduler_, *recorder_, config_.failure_epoch, end_,
        /*record=*/network_.shard() == 0);
  }
  if (network_.crashes().enabled()) {
    lifecycle_sampler_ = std::make_unique<BrokerLifecycleSampler>(
        network_, scheduler_, *router_, recorder_.get(),
        config_.failure_epoch, end_);
  }
  if (!config_.timeseries_out.empty()) {
    // Created on every shard at this same setup point — its chain-scheduled
    // events keep engine-origin sequence numbers replicated, exactly like
    // the link-state sampler — and strictly read-only, so enabling it never
    // changes results.
    TimeSeriesConfig ts_config;
    ts_config.interval = config_.timeseries_interval;
    ts_config.end = end_;
    ts_config.node_count = graph_.node_count();
    timeseries_ = std::make_unique<TimeSeriesSampler>(
        *registry_, scheduler_, ts_config,
        [this](std::vector<BrokerHealth>& out) {
          router_->SampleBrokerHealth(out);
        });
  }

  // Publishers: one per topic, phase-jittered within the first interval.
  Rng phase_rng = root_.Fork("phases");
  for (std::size_t t = 0; t < subscriptions_.topic_count(); ++t) {
    const TopicId topic(static_cast<TopicId::underlying_type>(t));
    publishers_.push_back(std::make_unique<Publisher>(
        topic, subscriptions_.publisher(topic), config_.publish_interval,
        scheduler_, [this](const Message& message) { OnPublish(message); }));
    publishers_.back()->Start(
        SimDuration::Micros(phase_rng.NextInRange(
            0, config_.publish_interval.micros() - 1)),
        end_, next_message_id_);
  }
}

void Sim::OnPublish(const Message& message) {
  // A crashed broker cannot publish; its producer pauses and the message
  // never enters the system (not counted as an expected pair). No-op — and
  // byte-identical — when the crash process is off.
  if (network_.crashes().enabled() &&
      !network_.crashes().Up(message.publisher, network_.scheduler().now())) {
    return;
  }
  // aux16 carries the topic id so offline analysis can join a packet to
  // its (topic, subscriber) model row. Recorded on the publisher's owning
  // shard only — the publish replays everywhere, the record must not.
  if (recorder_ != nullptr && network_.IsLocalNode(message.publisher)) {
    recorder_->Record(TraceEventKind::kPublish, message.id.value, 0,
                      message.publisher, NodeId(), LinkId(), 0,
                      static_cast<std::uint16_t>(message.topic.underlying()));
  }
  // Published-pair bookkeeping replicates on every shard (each shard's
  // collector knows the full expected set); only the shard owning the
  // publisher launches copies — the rest replicate deterministic
  // publish-time router state (route caches) via OnRemotePublish.
  metrics_.OnPublished(message);
  if (checker_) checker_->OnPublished(message);
  if (network_.IsLocalNode(message.publisher)) {
    router_->Publish(message);
  } else {
    router_->OnRemotePublish(message);
  }
}

void Sim::EpochTick() {
  if (checker_) checker_->CheckEpoch();
  if (config_.subscription_churn > 0.0) {
    ApplySubscriptionChurn(graph_, config_, churn_rng_, subscriptions_);
  }
  monitor_.MeasureAt(scheduler_.now());
  router_->Rebuild(monitor_.view());
}

void Sim::DrainInbound() {
  ShardExchange* exchange = network_.exchange();
  if (exchange == nullptr) return;
  const int me = network_.shard();
  for (int src = 0; src < exchange->shards(); ++src) {
    const std::size_t count = exchange->Count(src, me);
    for (std::size_t i = 0; i < count; ++i) {
      XMsg& msg = exchange->Message(src, me, i);
      // Tally before AcceptRemote — acceptance may move the payload out of
      // the slot, and the byte model reads it.
      if (profiler_ != nullptr) profiler_->CountInbound(src, msg);
      network_.AcceptRemote(msg);
    }
    exchange->Reset(src, me);
  }
}

// Opens `path` and writes the merged profile; degrades to a warning (never
// an error — profiling must not fail a run) when the file cannot open.
void WriteShardProfileFile(const std::string& path,
                           const ShardProfile& profile) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    DCRD_LOG(kWarn) << "cannot write shard profile to " << path;
    return;
  }
  WriteShardProfileJson(file, profile);
}

// Same degrade-to-warning contract for the metrics and time-series
// documents. Both take the already-merged artefact: the 1-shard path folds
// a one-element list through the same merge functions the N-shard path
// uses, so the two paths cannot drift apart byte-wise.
void WriteMetricsFile(const std::string& path, const MetricsDoc& doc) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    DCRD_LOG(kWarn) << "cannot write metrics to " << path;
    return;
  }
  WriteMetricsJson(file, doc);
}

void WriteTimeSeriesFile(const std::string& path,
                         const TimeSeriesStore& store) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    DCRD_LOG(kWarn) << "cannot write time series to " << path;
    return;
  }
  WriteTimeSeriesJson(file, store);
}

RunSummary Sim::RunSingle() {
  // The degenerate 1-shard profile: one all-busy round covering the whole
  // run, a 1x1 empty traffic matrix. Same schema as the sharded profile so
  // downstream tooling never branches on shard count.
  const bool profiling = !config_.shard_profile_out.empty();
  const auto wall_start = std::chrono::steady_clock::now();
  try {
    scheduler_.RunUntil(end_);
    // Drain in-flight deliveries, timers and reroutes published before
    // `end`.
    scheduler_.Run();
    if (checker_) checker_->CheckEndOfRun(*router_, scheduler_.now());
  } catch (...) {
    // A throwing cell is exactly when the last events matter most; dump the
    // ring before the exception unwinds the engine state it describes.
    if (recorder_ != nullptr) {
      recorder_->DumpPostmortem(std::cerr, 256, "exception during run");
    }
    throw;
  }

  if (registry_ != nullptr) {
    registry_->SnapshotEpoch(scheduler_.now());
    if (!config_.metrics_json.empty()) {
      const MetricsDoc doc = registry_->Collect();
      WriteMetricsFile(config_.metrics_json, MergeMetricsDocs({&doc}));
    }
  }
  if (timeseries_ != nullptr) {
    timeseries_->FinalizeAt(scheduler_.now());
    WriteTimeSeriesFile(config_.timeseries_out,
                        MergeTimeSeriesStores({&timeseries_->store()}));
  }
  if (recorder_ != nullptr) recorder_->Flush();
  if (profiling) {
    const auto busy_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - wall_start);
    ShardProfiler profiler(0, 1);
    profiler.AddRound(scheduler_.now().micros(),
                      static_cast<std::uint64_t>(busy_ns.count()), 0,
                      scheduler_.events_executed());
    WriteShardProfileFile(config_.shard_profile_out,
                          MergeShardProfiles({&profiler}, 0));
  }

  std::vector<Sim*> self{this};
  return BuildSummary(self);
}

RunSummary Sim::BuildSummary(const std::vector<Sim*>& sims) {
  Sim& first = *sims.front();
  TrafficCounters data, ack, control;
  for (Sim* sim : sims) {
    data.Add(sim->network_.counters(TrafficClass::kData));
    ack.Add(sim->network_.counters(TrafficClass::kAck));
    control.Add(sim->network_.counters(TrafficClass::kControl));
  }
  RunSummary summary = first.metrics_.Summarize(data.attempted, ack.attempted,
                                                control.attempted);
  for (std::size_t s = 1; s < sims.size(); ++s) {
    // Deliveries happen only on the subscriber's owning shard, so the
    // delivered-side counts are disjoint sums; the published side (expected
    // pairs, messages published) replicated and is already in `summary`.
    const RunSummary peer = sims[s]->metrics_.Summarize(0, 0, 0);
    summary.delivered_pairs += peer.delivered_pairs;
    summary.qos_pairs += peer.qos_pairs;
    summary.duplicate_deliveries += peer.duplicate_deliveries;
    summary.delay_ms_samples.insert(summary.delay_ms_samples.end(),
                                    peer.delay_ms_samples.begin(),
                                    peer.delay_ms_samples.end());
    summary.lateness_ratios.insert(summary.lateness_ratios.end(),
                                   peer.lateness_ratios.begin(),
                                   peer.lateness_ratios.end());
  }
  TransportStats transport{};
  for (Sim* sim : sims) {
    const TransportStats t = sim->router_->transport_stats();
    transport.retransmissions += t.retransmissions;
    transport.spurious_retransmissions += t.spurious_retransmissions;
    transport.rtt_samples += t.rtt_samples;
    transport.peer_deaths += t.peer_deaths;
    transport.peer_probes += t.peer_probes;
    transport.peer_revivals += t.peer_revivals;
    transport.crash_copies_killed += t.crash_copies_killed;
  }
  summary.retransmissions = transport.retransmissions;
  summary.spurious_retransmissions = transport.spurious_retransmissions;
  summary.rtt_samples = transport.rtt_samples;
  summary.peer_deaths = transport.peer_deaths;
  summary.peer_probes = transport.peer_probes;
  summary.peer_revivals = transport.peer_revivals;
  summary.crash_copies_killed = transport.crash_copies_killed;
  summary.dropped_crash =
      data.dropped_crash + ack.dropped_crash + control.dropped_crash;
  if (first.lifecycle_sampler_ != nullptr) {
    // Crash/restart transitions replicate on every shard; shard 0 counts.
    summary.broker_crashes = first.lifecycle_sampler_->crashes();
    summary.broker_restarts = first.lifecycle_sampler_->restarts();
  }
  // Resync bookkeeping (completion timers, stats) replays identically on
  // every shard; shard 0 speaks for all, exactly like the published side.
  const ResyncStats resync = first.router_->resync_stats();
  summary.resyncs_started = resync.resyncs_started;
  summary.resyncs_completed = resync.resyncs_completed;
  summary.total_resync_time_us =
      static_cast<std::uint64_t>(resync.total_resync_time.micros());
  summary.max_resync_time_us =
      static_cast<std::uint64_t>(resync.max_resync_time.micros());
  if (first.recorder_ != nullptr) {
    summary.trace_records_overwritten = first.recorder_->overwritten();
    if (first.recorder_->overwritten() > 0 && !first.config_.trace_out.empty()) {
      // A sink-mode trace should be lossless; overwrites here mean the sink
      // failed to open and the capture silently degraded to the ring.
      DCRD_LOG(kWarn) << "flight recorder overwrote "
                      << first.recorder_->overwritten()
                      << " record(s); the captured trace is lossy";
    }
  }
  if (first.checker_) {
    summary.invariant_violation_count = first.checker_->violation_count();
    summary.invariant_violations = first.checker_->violations();
    summary.crash_excused_duplicates =
        first.checker_->crash_excused_duplicates();
  }
  // Canonical sample order. Deliveries land per owning shard, so the
  // concatenation order above is partition-dependent; sorting — in the
  // single-shard path too — makes the summary bit-identical across shard
  // counts. Every consumer is order-insensitive (percentile/CDF code sorts
  // its own copy).
  std::sort(summary.delay_ms_samples.begin(), summary.delay_ms_samples.end());
  std::sort(summary.lateness_ratios.begin(), summary.lateness_ratios.end());
  return summary;
}

// Conservative parallel window loop. Each of the N shard threads
// alternates: (a) drain inbound exchange queues and publish its next
// pending event time M_s, (b) barrier — the completion computes the global
// window stop H = min_s(M_s) + lookahead, (c) run every event strictly
// before H, (d) barrier — making this window's exchange appends visible to
// the next drain. Any event a shard executes sits at t >= min_s(M_s), and
// a cross-shard arrival lands at >= t + lookahead >= H, so no injection
// can ever land inside a window the receiver already executed — the
// classic Chandy-Misra conservative argument, with the lookahead equal to
// the minimum worst-case-shrunk cross-shard link delay. Termination: all
// schedulers empty at a drain barrier implies the queues are empty too
// (appends only happen inside windows, drains precede the publish).
RunSummary RunSharded(const ScenarioConfig& config, const Graph& graph,
                      const ShardMap& map, std::int64_t lookahead_micros) {
  const int shards = map.shard_count;
  ShardExchange exchange(shards);
  std::vector<std::unique_ptr<Sim>> sims(shards);
  // One profiler per shard, touched only by its owning thread; the join
  // before the merge is the only synchronization the accumulators need.
  const bool profiling = !config.shard_profile_out.empty();
  std::vector<std::unique_ptr<ShardProfiler>> profilers(
      profiling ? static_cast<std::size_t>(shards) : 0);
  std::vector<std::exception_ptr> errors(shards);
  std::atomic<bool> abort{false};
  std::vector<SimTime> next(static_cast<std::size_t>(shards),
                            SimTime::Max());
  const SimDuration lookahead = SimDuration::Micros(lookahead_micros);
  SimTime horizon = SimTime::Zero();
  bool done = false;

  // The completion runs on exactly one thread while the rest block in
  // arrive_and_wait, so the plain writes to horizon/done are synchronized
  // by the barrier itself. It also fires at the post-window barrier, where
  // it recomputes the same values from the unchanged `next` array — a
  // benign no-op kept for the simplicity of a single barrier object.
  std::barrier sync(shards, [&]() noexcept {
    if (abort.load(std::memory_order_relaxed)) {
      done = true;
      return;
    }
    SimTime min_next = SimTime::Max();
    for (const SimTime t : next) min_next = std::min(min_next, t);
    if (min_next == SimTime::Max()) {
      done = true;
      return;
    }
    done = false;
    horizon = min_next + lookahead;
  });

  auto worker = [&](int shard) {
    bool failed = false;
    try {
      sims[static_cast<std::size_t>(shard)] = std::make_unique<Sim>(
          config, graph, &map, shard, &exchange);
    } catch (...) {
      errors[static_cast<std::size_t>(shard)] = std::current_exception();
      abort.store(true, std::memory_order_relaxed);
      failed = true;
    }
    Sim* sim = sims[static_cast<std::size_t>(shard)].get();
    ShardProfiler* prof = nullptr;
    if (profiling && !failed) {
      profilers[static_cast<std::size_t>(shard)] =
          std::make_unique<ShardProfiler>(shard, shards);
      prof = profilers[static_cast<std::size_t>(shard)].get();
      sim->set_profiler(prof);
    }
    // A failed shard keeps arriving at both barriers (reporting an empty
    // schedule) so the healthy shards never deadlock; the abort flag turns
    // the next completion into `done`.
    //
    // Profiling timestamps t0..t4 split each round's wall clock into busy
    // (drain + window) and stall (both barrier waits). Unprofiled runs take
    // one untaken null-check branch per timing point and none per event —
    // the window's event count comes from the scheduler's existing
    // events_executed() delta.
    using ProfClock = std::chrono::steady_clock;
    ProfClock::time_point t0, t1, t2, t3;
    while (true) {
      if (prof != nullptr) t0 = ProfClock::now();
      if (!failed) {
        try {
          sim->DrainInbound();
          next[static_cast<std::size_t>(shard)] = sim->NextEventTime();
        } catch (...) {
          errors[static_cast<std::size_t>(shard)] = std::current_exception();
          abort.store(true, std::memory_order_relaxed);
          failed = true;
        }
      }
      if (failed) next[static_cast<std::size_t>(shard)] = SimTime::Max();
      if (prof != nullptr) t1 = ProfClock::now();
      sync.arrive_and_wait();
      if (done) break;
      if (prof != nullptr) t2 = ProfClock::now();
      const std::uint64_t events_before =
          failed ? 0 : sim->events_executed();
      if (!failed) {
        try {
          sim->RunWindow(horizon);
        } catch (...) {
          errors[static_cast<std::size_t>(shard)] = std::current_exception();
          abort.store(true, std::memory_order_relaxed);
          failed = true;
        }
      }
      if (prof != nullptr) t3 = ProfClock::now();
      sync.arrive_and_wait();
      if (prof != nullptr) {
        const auto ns = [](ProfClock::duration d) {
          return static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(d)
                  .count());
        };
        const auto t4 = ProfClock::now();
        prof->AddRound(
            horizon.micros(), ns(t1 - t0) + ns(t3 - t2),
            ns(t2 - t1) + ns(t4 - t3),
            failed ? 0 : sim->events_executed() - events_before);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) threads.emplace_back(worker, s);
  for (std::thread& thread : threads) thread.join();
  for (int s = 0; s < shards; ++s) {
    if (errors[static_cast<std::size_t>(s)]) {
      std::rethrow_exception(errors[static_cast<std::size_t>(s)]);
    }
  }
  for (const auto& sim : sims) sim->FlushObservability();

  if (profiling) {
    std::vector<const ShardProfiler*> views;
    views.reserve(profilers.size());
    for (const auto& prof : profilers) views.push_back(prof.get());
    WriteShardProfileFile(config.shard_profile_out,
                          MergeShardProfiles(views, lookahead_micros));
  }

  // Global quiescence time: RunUntil pins the 1-shard clock to the end
  // wall, then Run() advances it to the last drained event; the max over
  // shard clocks (the last event executes on its owner) reproduces that.
  SimTime end_time = SimTime::Zero() + config.sim_time;
  for (const auto& sim : sims) end_time = std::max(end_time, sim->now());

  // Telemetry join (single-threaded, like the summary merge): close every
  // shard's final epoch / tail sample at the same global quiescence time
  // the 1-shard run would use, then fold per MergePolicy and write —
  // byte-identical to the 1-shard documents.
  if (!config.metrics_json.empty()) {
    std::vector<MetricsDoc> docs;
    docs.reserve(sims.size());
    for (const auto& sim : sims) {
      sim->registry()->SnapshotEpoch(end_time);
      docs.push_back(sim->registry()->Collect());
    }
    std::vector<const MetricsDoc*> doc_views;
    doc_views.reserve(docs.size());
    for (const MetricsDoc& doc : docs) doc_views.push_back(&doc);
    WriteMetricsFile(config.metrics_json, MergeMetricsDocs(doc_views));
  }
  if (!config.timeseries_out.empty()) {
    std::vector<const TimeSeriesStore*> stores;
    stores.reserve(sims.size());
    for (const auto& sim : sims) {
      sim->timeseries()->FinalizeAt(end_time);
      stores.push_back(&sim->timeseries()->store());
    }
    WriteTimeSeriesFile(config.timeseries_out, MergeTimeSeriesStores(stores));
  }

  std::vector<Sim*> views;
  views.reserve(sims.size());
  for (const auto& sim : sims) views.push_back(sim.get());

  if (views.front()->checker() != nullptr) {
    std::uint64_t pending_copies = 0;
    std::size_t open_episodes = 0;
    for (Sim* sim : views) {
      pending_copies += sim->router().transport_stats().pending_copies;
      open_episodes += sim->router().open_episodes();
    }
    // Conservation (CheckEpoch) is sound per shard — run it on each peer
    // before folding its observations into shard 0, then close out with
    // the summed quiescence counts and the merged delivery-guarantee scan.
    for (std::size_t s = 1; s < views.size(); ++s) {
      views[s]->checker()->CheckEpoch();
      views.front()->checker()->AbsorbPeer(*views[s]->checker());
    }
    views.front()->checker()->CheckEndOfRun(pending_copies, open_episodes,
                                            end_time);
  }
  return Sim::BuildSummary(views);
}

}  // namespace

RunSummary RunScenario(const ScenarioConfig& config) {
  const Rng root(config.seed);

  // Topology and workload draw from substreams independent of the failure
  // and loss processes, so changing Pf/Pl/router never reshapes the overlay.
  // Built once here — the graph is immutable, so shard threads share it.
  Rng topology_rng = root.Fork("topology");
  const DelayRange delays{config.link_delay_min, config.link_delay_max};
  const Graph graph = [&] {
    if (!config.topology_file.empty()) {
      std::ifstream file(config.topology_file);
      DCRD_CHECK(file.good())
          << "cannot open topology file " << config.topology_file;
      std::string error;
      auto loaded = ReadEdgeList(file, &error);
      DCRD_CHECK(loaded.has_value())
          << config.topology_file << ": " << error;
      return *std::move(loaded);
    }
    return config.topology == TopologyKind::kFullMesh
               ? FullMesh(config.node_count, topology_rng, delays)
               : RandomConnected(config.node_count, config.degree,
                                 topology_rng, delays);
  }();

  int shards = std::max(config.shards, 1);
  shards = std::min<int>(shards, static_cast<int>(graph.node_count()));
  if (shards > 1 && config.dcrd_distributed) {
    DCRD_LOG(kWarn) << "sharded execution does not support the distributed "
                       "gossip computation; running on one shard";
    shards = 1;
  }
  // Tracing, the shard profiler, metrics and the time-series sampler all
  // run sharded (per-shard captures, merged at join); only the delay audit
  // — whose rows need a live global event order — still forces the
  // fallback.
  if (shards > 1 && !config.delay_audit_out.empty()) {
    DCRD_LOG(kWarn) << "delay-audit capture is single-shard; "
                       "running on one shard";
    shards = 1;
  }
  if (shards > 1) {
    ShardMap map;
    if (config.shard_assignment.empty()) {
      map.owner = BfsContiguousPartition(graph, shards);
    } else {
      DCRD_CHECK(config.shard_assignment.size() == graph.node_count())
          << "shard_assignment covers " << config.shard_assignment.size()
          << " nodes; topology has " << graph.node_count();
      for (const int owner : config.shard_assignment) {
        DCRD_CHECK(owner >= 0 && owner < shards)
            << "shard_assignment owner " << owner << " outside [0, "
            << shards << ")";
      }
      map.owner = config.shard_assignment;
    }
    map.shard_count = shards;
    // Cap far below the SimTime range so `min + lookahead` cannot overflow
    // even when no edge crosses shards (INT64_MAX sentinel).
    const std::int64_t lookahead = std::min(
        MinCrossShardDelayMicros(graph, map.owner, config.delay_jitter,
                                 config.gray_delay_factor,
                                 config.gray_probability),
        std::int64_t{1} << 50);
    if (lookahead < 1) {
      DCRD_LOG(kWarn) << "cross-shard lookahead below 1us (jitter or gray "
                         "shrink can erase a cross-shard delay); running on "
                         "one shard";
      shards = 1;
    } else {
      return RunSharded(config, graph, map, lookahead);
    }
  }

  Sim sim(config, graph, nullptr, 0, nullptr);
  return sim.RunSingle();
}

}  // namespace dcrd
