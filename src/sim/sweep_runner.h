// Deterministic parallel job pool for experiment sweeps.
//
// Every figure is a sweep over one parameter × routers × repetitions, and
// each (x, router, rep) cell is a self-contained simulation: RunScenario
// builds its own engine, network and splittable RNG streams from the cell's
// config alone, so cells are embarrassingly parallel. SweepRunner fans an
// index range over `jobs` worker threads and leaves aggregation to the
// caller, who reduces *by cell index, not completion order* — which is what
// makes output bit-identical for any job count.
//
// Determinism contract (see DESIGN.md §7):
//  * cell i's work must be a pure function of i (derive seeds from the cell,
//    never from thread identity or a shared counter);
//  * cell i writes only to index-i slots of caller-owned storage;
//  * the final reduce walks indices 0..count-1 in order.
// `jobs == 1` runs cells inline on the calling thread in index order — the
// exact serial path the figure binaries had before parallelisation.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace dcrd {

// Resolves a --jobs request: n >= 1 is taken literally; 0 or negative means
// "use every core" (std::thread::hardware_concurrency, at least 1).
int ResolveJobCount(int requested);

// Composes the two parallelism layers: with `shards` engine shards per cell
// (sim/engine.cc §sharded execution) a sweep spawns jobs x shards threads,
// so the job count is capped at hardware_threads / shards (at least 1) and
// a note goes to *stderr* — stdout stays byte-identical, same contract as
// the --jobs gate. `shards <= 1` leaves `jobs` untouched, preserving the
// literal meaning of an explicit --jobs on the classic engine.
int CapJobsForShards(int jobs, int shards, unsigned hardware_threads);

// Same, against this machine's std::thread::hardware_concurrency().
int CapJobsForShards(int jobs, int shards);

// Wall-clock accounting for one pooled run; feeds the --bench_json emitter.
// Timing is measurement only — it never influences scheduling or results.
struct SweepRunStats {
  int jobs = 1;
  std::size_t cells = 0;
  double wall_seconds = 0.0;
  std::vector<double> cell_seconds;  // indexed by cell

  [[nodiscard]] double cells_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(cells) / wall_seconds
                              : 0.0;
  }
};

class SweepRunner {
 public:
  // `jobs` as from ResolveJobCount; values < 1 are clamped to 1.
  explicit SweepRunner(int jobs);

  [[nodiscard]] int jobs() const { return jobs_; }

  // Runs fn(i) for every i in [0, count). fn must be safe to call
  // concurrently for distinct i and must confine its writes to index-i
  // storage. Cells are claimed in index order from an atomic cursor (no
  // work stealing, no reordering of the claim sequence); with jobs() == 1
  // everything runs inline in index order.
  //
  // If any cell throws, the remaining unclaimed cells are abandoned, all
  // workers are joined (no deadlock), and the lowest-indexed failure is
  // rethrown as std::runtime_error carrying `describe(i)` (when provided)
  // and the original exception's message.
  //
  // `stats`, when non-null, receives per-cell and total wall-clock times.
  void Run(std::size_t count, const std::function<void(std::size_t)>& fn,
           const std::function<std::string(std::size_t)>& describe = nullptr,
           SweepRunStats* stats = nullptr) const;

 private:
  int jobs_;
};

}  // namespace dcrd
