#include "net/link_monitor.h"

#include <algorithm>

namespace dcrd {

LinkMonitor::LinkMonitor(const Graph& graph, const FailureSchedule& failures,
                         LinkMonitorConfig config, Rng rng)
    : graph_(graph), failures_(failures), config_(config), rng_(rng) {
  DCRD_CHECK(config_.probe_count > 0);
  DCRD_CHECK(config_.ewma_weight > 0.0 && config_.ewma_weight <= 1.0);
  gamma_.assign(graph_.edge_count(), 1.0);
}

void LinkMonitor::MeasureAt(SimTime t) {
  const std::size_t link_count = graph_.edge_count();
  std::vector<SimDuration> alpha(link_count);
  std::vector<double> gamma(link_count);

  // Probe instants are spread uniformly at random over the window ending at
  // t (or, at the bootstrap measurement t=0, over the first window — the
  // failure schedule is stationary, so this yields the same statistics).
  const SimTime window_start =
      t.micros() >= config_.interval.micros()
          ? SimTime::FromMicros(t.micros() - config_.interval.micros())
          : SimTime::Zero();
  const std::int64_t window_span =
      std::max<std::int64_t>(config_.interval.micros(), 1);

  for (std::size_t i = 0; i < link_count; ++i) {
    const LinkId link(static_cast<LinkId::underlying_type>(i));
    alpha[i] = graph_.edge(link).delay;

    int successes = 0;
    for (int p = 0; p < config_.probe_count; ++p) {
      const SimTime probe_time =
          window_start +
          SimDuration::Micros(rng_.NextInRange(0, window_span - 1));
      const bool up = failures_.IsUp(link, probe_time);
      const bool lost =
          config_.loss_rate > 0.0 && rng_.NextBernoulli(config_.loss_rate);
      if (up && !lost) ++successes;
    }
    const double sample =
        static_cast<double>(successes) / config_.probe_count;
    gamma_[i] = config_.ewma_weight * sample +
                (1.0 - config_.ewma_weight) * gamma_[i];
    gamma[i] = std::max(gamma_[i], config_.gamma_floor);
  }

  view_ = MonitoredView(std::move(alpha), std::move(gamma));
}

}  // namespace dcrd
