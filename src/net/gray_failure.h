// Gray-failure (partial-degradation) processes.
//
// The paper's Section IV-A failure model is binary and symmetric: a link is
// either perfectly up or completely down, in both directions at once. Real
// overlay links mostly fail *gray*: they keep passing traffic but drop a
// fraction of it, inflate its delay, or degrade in one direction only (the
// classic "data gets through, ACKs don't" pathology that defeats fixed
// ACK timers). This module injects exactly those modes:
//
//  * Partial loss: while a gray episode is active, transmissions suffer an
//    extra drop probability on top of the background loss rate Pl.
//  * Delay inflation: propagation is multiplied by `delay_factor`, so the
//    monitored alpha_hat — measured mostly during clean epochs and refreshed
//    only every 5 minutes — underestimates the true delay and a fixed
//    `alpha_hat + slack` timer fires spuriously.
//  * Asymmetry: with probability `asymmetry` an episode degrades only one
//    direction of the link (which one is a fair coin), so the data direction
//    can be clean while the returning ACK direction is lossy, and vice
//    versa.
//
// Like FailureSchedule, the process is *counter-based*: whether (and how) a
// link is gray in an epoch is a pure hash of (seed, link, epoch), so queries
// need no state, arbitrary-future queries work, and every router under
// comparison faces the identical gray sample path. Only the per-transmission
// extra-loss Bernoulli draws are stateful (they live in OverlayNetwork's
// rng, like the background loss draws).
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"

namespace dcrd {

// Direction of a transmission over an (undirected) overlay link, from the
// edge's canonical endpoint order: 0 = a->b, 1 = b->a. ACKs for a data
// packet travel the opposite direction, which is what makes asymmetric
// degradation observable.
enum class LinkDirection : int { kAToB = 0, kBToA = 1 };

[[nodiscard]] constexpr LinkDirection Opposite(LinkDirection dir) {
  return dir == LinkDirection::kAToB ? LinkDirection::kBToA
                                     : LinkDirection::kAToB;
}

struct GrayFailureConfig {
  // Per (link, epoch) probability that a gray episode is active. 0 disables
  // the process entirely (the default — paper parity).
  double probability = 0.0;
  // Extra drop probability imposed on degraded directions while gray.
  double extra_loss = 0.25;
  // Propagation-delay multiplier on degraded directions while gray (>= 1).
  double delay_factor = 3.0;
  // Probability that an episode degrades only one direction; the afflicted
  // direction is then a fair coin. 0 = always symmetric.
  double asymmetry = 0.5;
  SimDuration epoch = SimDuration::Seconds(1);
};

class GrayFailureSchedule {
 public:
  // The default-constructed schedule never degrades anything.
  GrayFailureSchedule() = default;
  GrayFailureSchedule(std::uint64_t seed, GrayFailureConfig config)
      : seed_(seed), config_(config) {
    DCRD_CHECK(config_.probability >= 0.0 && config_.probability <= 1.0);
    DCRD_CHECK(config_.extra_loss >= 0.0 && config_.extra_loss <= 1.0);
    DCRD_CHECK(config_.delay_factor >= 1.0);
    DCRD_CHECK(config_.asymmetry >= 0.0 && config_.asymmetry <= 1.0);
    DCRD_CHECK(config_.epoch > SimDuration::Zero());
  }

  [[nodiscard]] bool enabled() const { return config_.probability > 0.0; }

  // True when a gray episode (in any direction) is active on `link` for a
  // transmission entered at `t`.
  [[nodiscard]] bool Active(LinkId link, SimTime t) const {
    return enabled() && ModeAt(link, t) != Mode::kClean;
  }

  // True when the given direction of `link` is degraded at `t`.
  [[nodiscard]] bool Degraded(LinkId link, LinkDirection dir, SimTime t) const;

  // Extra drop probability for a transmission in `dir` at `t`; 0 when the
  // direction is clean.
  [[nodiscard]] double ExtraLoss(LinkId link, LinkDirection dir,
                                 SimTime t) const {
    return Degraded(link, dir, t) ? config_.extra_loss : 0.0;
  }

  // Propagation multiplier for a transmission in `dir` at `t`; 1 when the
  // direction is clean.
  [[nodiscard]] double DelayFactor(LinkId link, LinkDirection dir,
                                   SimTime t) const {
    return Degraded(link, dir, t) ? config_.delay_factor : 1.0;
  }

  [[nodiscard]] const GrayFailureConfig& config() const { return config_; }

 private:
  enum class Mode { kClean, kBoth, kAToBOnly, kBToAOnly };

  // The (deterministic) episode mode of `link` in the epoch containing `t`.
  [[nodiscard]] Mode ModeAt(LinkId link, SimTime t) const;

  std::uint64_t seed_ = 0;
  GrayFailureConfig config_{};
};

}  // namespace dcrd
