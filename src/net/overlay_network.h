// Overlay transmission service.
//
// A transmission over link L entered at time t succeeds iff L is up at t,
// both endpoint brokers are up at t, an independent Bernoulli(Pl) loss
// draw passes, and — when a gray episode degrades the transmission's
// direction (see gray_failure.h) — an extra Bernoulli loss draw passes; on
// success the payload callback fires at the receiving endpoint after
// (queuing +) propagation delay, inflated by the gray delay factor while
// the direction is degraded. Senders are never told the outcome directly —
// reliable delivery is built *above* this service from hop-by-hop ACKs,
// exactly as in the paper.
//
// Randomness is *keyed*, not streamed: every loss/gray/jitter draw is a
// pure function of (network seed, directed link + traffic class, a
// per-(directed link, class) attempt counter — or, for ACK legs, the
// copy's content key) via KeyedUnit/KeyedBernoulli (common/rng.h). No draw
// depends on the global interleaving of other transmissions, so the sample
// path — and with it every figure — is independent of how the sharded
// engine partitions brokers across threads. For the same reason delivery
// produces a *Resolution* (arrival time plus the canonical event key of
// the arrival, see event/scheduler.h): callers schedule the arrival
// locally or hand it across a shard boundary (shard_exchange.h), and the
// receiving scheduler sorts it identically either way.
//
// Optional per-link queuing: when `serialization` is non-zero every data
// packet occupies its directed link for that long, so bursts build a FIFO
// queue and the queuing delay counts against the deadline — the
// "congestion" the paper's introduction worries about. ACKs ride the
// out-of-band control channel (see ack_delay_factor) and never queue.
//
// The network also keeps the traffic counters behind the paper's
// "packets sent / subscriber" metric: data packets (including
// retransmissions and reroutes) are what Fig. 2(c)-5(c) count; ACKs and
// control traffic are tallied separately.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/slot_map.h"
#include "event/scheduler.h"
#include "graph/graph.h"
#include "net/broker_lifecycle.h"
#include "net/failure_schedule.h"
#include "net/gray_failure.h"
#include "net/shard_exchange.h"
#include "obs/trace_record.h"

namespace dcrd {

class FlightRecorder;

enum class TrafficClass : std::size_t { kData = 0, kAck = 1, kControl = 2 };

struct TrafficCounters {
  std::uint64_t attempted = 0;  // transmissions started
  std::uint64_t delivered = 0;  // payload callbacks fired
  std::uint64_t dropped_failure = 0;       // link down at entry
  std::uint64_t dropped_node_failure = 0;  // an endpoint broker down
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_gray = 0;   // gray episode's extra loss
  std::uint64_t dropped_crash = 0;  // a crashed broker killed it (at entry
                                    // or mid-flight — fail-stop semantics)

  // Every attempt is either delivered or lands in exactly one drop bucket;
  // the invariant checker asserts this every monitoring epoch.
  [[nodiscard]] std::uint64_t accounted() const {
    return delivered + dropped_failure + dropped_node_failure + dropped_loss +
           dropped_gray + dropped_crash;
  }

  // Accumulates another shard's tally (the merged-summary path).
  void Add(const TrafficCounters& other) {
    attempted += other.attempted;
    delivered += other.delivered;
    dropped_failure += other.dropped_failure;
    dropped_node_failure += other.dropped_node_failure;
    dropped_loss += other.dropped_loss;
    dropped_gray += other.dropped_gray;
    dropped_crash += other.dropped_crash;
  }
};

struct OverlayNetworkConfig {
  double loss_rate = 0.0;
  // ACK propagation as a fraction of the link delay; 0 = the paper's
  // "senders immediately know the reception status" out-of-band model,
  // 1 = physical in-band round trip.
  double ack_delay_factor = 0.0;
  // Per-packet link occupancy (0 = infinite bandwidth, the paper's model).
  SimDuration serialization = SimDuration::Zero();
  // Per-transmission propagation jitter: actual = delay * (1 + U(-j, +j)).
  // 0 = the paper's fixed delays. Jitter makes the monitored alpha an
  // *estimate* rather than the truth and can trip ACK timers spuriously.
  double delay_jitter = 0.0;
};

// Outcome of one resolved transmission. When `delivered` is true, `at` is
// the arrival instant and (k1, k2) the canonical key the arrival event
// must be scheduled under — on this shard's scheduler or, after crossing
// the exchange, on the receiver's. When false the attempt landed in a
// drop bucket and the other fields are meaningless.
struct Resolution {
  bool delivered = false;
  SimTime at;
  std::uint64_t k1 = 0;
  std::uint64_t k2 = 0;
};

class OverlayNetwork {
 public:
  OverlayNetwork(const Graph& graph, Scheduler& scheduler,
                 FailureSchedule failures, OverlayNetworkConfig config,
                 Rng loss_rng,
                 NodeFailureSchedule node_failures = NodeFailureSchedule(),
                 GrayFailureSchedule gray = GrayFailureSchedule(),
                 BrokerCrashSchedule crashes = BrokerCrashSchedule())
      : graph_(graph),
        scheduler_(scheduler),
        failures_(failures),
        node_failures_(node_failures),
        gray_(gray),
        crashes_(crashes),
        config_(config),
        // All keyed draws hash through one forked seed; the fork keeps the
        // substream independent of every other consumer of the scenario rng.
        seed_(loss_rng.Fork("keyed")()),
        // One busy-until slot per directed link: index 2*link + direction.
        link_free_(graph.edge_count() * 2, SimTime::Zero()),
        // One attempt counter per (directed link, traffic class).
        draw_seq_(graph.edge_count() * 2 * 3, 0),
        // One arrival-sequence counter per sending broker (the k2 minor
        // word of every data/control arrival it originates).
        arrival_seq_(graph.node_count(), 0) {}

  // Legacy convenience constructor used widely in tests.
  OverlayNetwork(const Graph& graph, Scheduler& scheduler,
                 FailureSchedule failures, double loss_rate, Rng loss_rng,
                 double ack_delay_factor = 0.0)
      : OverlayNetwork(graph, scheduler, failures,
                       OverlayNetworkConfig{loss_rate, ack_delay_factor,
                                            SimDuration::Zero()},
                       loss_rng) {}

  OverlayNetwork(const OverlayNetwork&) = delete;
  OverlayNetwork& operator=(const OverlayNetwork&) = delete;

  // Resolves one transmission from `from` over `link` entered now: runs
  // the drop gauntlet (link/node/crash state, keyed loss + gray draws),
  // the queuing/jitter delay math, and the counters. Pure bookkeeping —
  // nothing is scheduled; the caller dispatches the arrival under the
  // returned key. Precondition: `from` is an endpoint of `link`. `trace`
  // names the packet/copy for the flight recorder's drop records.
  Resolution ResolveSend(NodeId from, LinkId link, TrafficClass cls,
                         TraceContext trace = {});

  // Resolves the ACK a data copy's receiver emits the instant the copy
  // lands: every schedule lookup (link/node/crash/gray state) is evaluated
  // at the future arrival instant `t1`, and the loss/gray draws are keyed
  // by `ack_key` — the copy's content key — instead of an attempt counter.
  // Both make the resolution computable at *send* time by the data
  // sender's shard, which is what lets an ACK be precomputed locally and
  // never cross a shard boundary (DESIGN.md §12). Counters tally on this
  // (the data sender's) network. The returned key is (PackK1(t1, acker),
  // ack_key).
  Resolution ResolveAckAt(NodeId acker, LinkId link, SimTime t1,
                          std::uint64_t ack_key, TraceContext trace = {});

  // Attempts one transmission from `from` over `link` and, on success,
  // schedules `on_delivered` on THIS shard's scheduler at the opposite
  // endpoint's arrival instant — so the receiver must be shard-local
  // (checked). ResolveSend + ScheduleKeyed fused: the right call for
  // tests and for traffic that only runs single-shard (gossip). The
  // return value (false = dropped, callback destroyed unrun) exists ONLY
  // so callers can recycle resources referenced by the callback;
  // protocols must never branch on it — the paper's senders learn
  // outcomes through ACKs alone.
  bool Transmit(NodeId from, LinkId link, TrafficClass cls,
                Scheduler::Action on_delivered, TraceContext trace = {});

  // Control-plane round trip: a request leg to `link`'s other endpoint
  // and, resolved *at the receiver* when the request lands, a reply leg
  // back. `on_echo` runs at the sender when the reply lands; if either
  // leg drops, it is destroyed unrun (the usual silent-network contract).
  // Pass an empty callback for fire-and-forget round trips that only
  // exist to exercise the control channel (crash-recovery resync). Both
  // the peer-death probe and the resync ping ride this; unlike Transmit
  // it is shard-safe — either leg crosses the exchange when the peer is
  // remote. Returns false when the request leg dropped at the sender.
  bool TransmitEcho(NodeId from, LinkId link, Scheduler::Action on_echo,
                    TraceContext trace = {});

  // --- Sharded execution plumbing (sim/engine.cc §sharded execution) ---

  // Attaches this network to shard `shard` of a sharded run. `map` and
  // `exchange` must outlive the network; both nullptr (the default state)
  // means an unsharded run where every node is local.
  void ConfigureSharding(const ShardMap* map, int shard,
                         ShardExchange* exchange) {
    shard_map_ = map;
    shard_ = shard;
    exchange_ = exchange;
  }

  // True when `node` is simulated on this shard (always true unsharded).
  [[nodiscard]] bool IsLocalNode(NodeId node) const {
    return shard_map_ == nullptr || shard_map_->OwnerOf(node) == shard_;
  }

  // Shard wiring introspection for the engine's drain loop; exchange() is
  // nullptr on unsharded runs.
  [[nodiscard]] ShardExchange* exchange() { return exchange_; }
  [[nodiscard]] int shard() const { return shard_; }

  // A fresh exchange message bound for `to`'s owning shard. Caller fills
  // it; the receiving shard drains it at the next window barrier.
  [[nodiscard]] XMsg& ExportTo(NodeId to) {
    DCRD_CHECK(exchange_ != nullptr && !IsLocalNode(to));
    return exchange_->Append(shard_, shard_map_->OwnerOf(to));
  }

  // Receives the transport's handler for kData exchange messages (the
  // network owns the echo kinds itself). Must be set before any remote
  // data message is accepted.
  using RemoteDataSink = InlineFunction<void(XMsg&)>;
  void SetRemoteDataSink(RemoteDataSink sink) {
    remote_data_sink_ = std::move(sink);
  }

  // Injects one drained exchange message: schedules the carried arrival
  // under its canonical key (kData via the remote data sink), or releases
  // a dropped reply's completion slot. Called only at window barriers,
  // from this shard's thread.
  void AcceptRemote(XMsg& msg);

  // Attaches the flight recorder that receives link-level drop events.
  // nullptr (the default) detaches. Must outlive the network.
  void set_flight_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

  // True when `node` can currently send and receive.
  [[nodiscard]] bool NodeUp(NodeId node) const {
    const SimTime now = scheduler_.now();
    return node_failures_.IsUp(node, now) && crashes_.Up(node, now);
  }

  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] const FailureSchedule& failures() const { return failures_; }
  [[nodiscard]] const NodeFailureSchedule& node_failures() const {
    return node_failures_;
  }
  [[nodiscard]] const GrayFailureSchedule& gray() const { return gray_; }
  [[nodiscard]] const BrokerCrashSchedule& crashes() const { return crashes_; }
  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const Scheduler& scheduler() const { return scheduler_; }
  [[nodiscard]] const TrafficCounters& counters(TrafficClass cls) const {
    return counters_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] double ack_delay_factor() const {
    return config_.ack_delay_factor;
  }
  [[nodiscard]] const OverlayNetworkConfig& config() const { return config_; }

 private:
  // Shared resolution core; `when` is the instant every schedule lookup
  // and the delay math use (now for data/control, the data arrival
  // instant for precomputed ACKs), `draw_key` the keyed-draw minor word.
  Resolution ResolveAt(NodeId from, LinkId link, TrafficClass cls,
                       SimTime when, std::uint64_t draw_key,
                       const TraceContext& trace);

  // Request leg landed at `at_node`: resolve the reply leg back to
  // `origin` and dispatch it (locally or across the exchange).
  // `origin_slot` is the completion's slot in the ORIGIN network's
  // echo_slots_ (invalid for fire-and-forget echoes).
  void HandleEchoRequest(NodeId at_node, NodeId origin, LinkId link,
                         SlotHandle origin_slot);
  // Reply leg landed back at the origin: run and release the completion.
  void RunEcho(SlotHandle slot);

  const Graph& graph_;
  Scheduler& scheduler_;
  FailureSchedule failures_;
  NodeFailureSchedule node_failures_;
  GrayFailureSchedule gray_;
  BrokerCrashSchedule crashes_;
  OverlayNetworkConfig config_;
  const std::uint64_t seed_;  // keyed-draw seed (see header comment)
  std::vector<SimTime> link_free_;
  std::vector<std::uint64_t> draw_seq_;     // [didx * 3 + class]
  std::vector<std::uint64_t> arrival_seq_;  // [sending broker]
  std::array<TrafficCounters, 3> counters_{};
  // Completion callbacks for in-flight echo round trips (probes, resync).
  SlotMap<Scheduler::Action> echo_slots_;
  FlightRecorder* recorder_ = nullptr;
  // Shard wiring; all-null for unsharded runs.
  const ShardMap* shard_map_ = nullptr;
  int shard_ = 0;
  ShardExchange* exchange_ = nullptr;
  RemoteDataSink remote_data_sink_;
};

}  // namespace dcrd
