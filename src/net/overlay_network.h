// Overlay transmission service.
//
// A transmission over link L entered at time t succeeds iff L is up at t,
// both endpoint brokers are up at t, an independent Bernoulli(Pl) loss
// draw passes, and — when a gray episode degrades the transmission's
// direction (see gray_failure.h) — an extra Bernoulli loss draw passes; on
// success the payload callback fires at the receiving endpoint after
// (queuing +) propagation delay, inflated by the gray delay factor while
// the direction is degraded. Senders are never told the outcome directly —
// reliable delivery is built *above* this service from hop-by-hop ACKs,
// exactly as in the paper.
//
// Optional per-link queuing: when `serialization` is non-zero every data
// packet occupies its directed link for that long, so bursts build a FIFO
// queue and the queuing delay counts against the deadline — the
// "congestion" the paper's introduction worries about. ACKs ride the
// out-of-band control channel (see ack_delay_factor) and never queue.
//
// The network also keeps the traffic counters behind the paper's
// "packets sent / subscriber" metric: data packets (including
// retransmissions and reroutes) are what Fig. 2(c)-5(c) count; ACKs and
// control traffic are tallied separately.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "event/scheduler.h"
#include "graph/graph.h"
#include "net/broker_lifecycle.h"
#include "net/failure_schedule.h"
#include "net/gray_failure.h"
#include "obs/trace_record.h"

namespace dcrd {

class FlightRecorder;

enum class TrafficClass : std::size_t { kData = 0, kAck = 1, kControl = 2 };

struct TrafficCounters {
  std::uint64_t attempted = 0;  // transmissions started
  std::uint64_t delivered = 0;  // payload callbacks fired
  std::uint64_t dropped_failure = 0;       // link down at entry
  std::uint64_t dropped_node_failure = 0;  // an endpoint broker down
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_gray = 0;   // gray episode's extra loss
  std::uint64_t dropped_crash = 0;  // a crashed broker killed it (at entry
                                    // or mid-flight — fail-stop semantics)

  // Every attempt is either delivered or lands in exactly one drop bucket;
  // the invariant checker asserts this every monitoring epoch.
  [[nodiscard]] std::uint64_t accounted() const {
    return delivered + dropped_failure + dropped_node_failure + dropped_loss +
           dropped_gray + dropped_crash;
  }
};

struct OverlayNetworkConfig {
  double loss_rate = 0.0;
  // ACK propagation as a fraction of the link delay; 0 = the paper's
  // "senders immediately know the reception status" out-of-band model,
  // 1 = physical in-band round trip.
  double ack_delay_factor = 0.0;
  // Per-packet link occupancy (0 = infinite bandwidth, the paper's model).
  SimDuration serialization = SimDuration::Zero();
  // Per-transmission propagation jitter: actual = delay * (1 + U(-j, +j)).
  // 0 = the paper's fixed delays. Jitter makes the monitored alpha an
  // *estimate* rather than the truth and can trip ACK timers spuriously.
  double delay_jitter = 0.0;
};

class OverlayNetwork {
 public:
  OverlayNetwork(const Graph& graph, Scheduler& scheduler,
                 FailureSchedule failures, OverlayNetworkConfig config,
                 Rng loss_rng,
                 NodeFailureSchedule node_failures = NodeFailureSchedule(),
                 GrayFailureSchedule gray = GrayFailureSchedule(),
                 BrokerCrashSchedule crashes = BrokerCrashSchedule())
      : graph_(graph),
        scheduler_(scheduler),
        failures_(failures),
        node_failures_(node_failures),
        gray_(gray),
        crashes_(crashes),
        config_(config),
        loss_rng_(loss_rng),
        // Gray extra-loss draws use a forked substream so enabling the gray
        // process never perturbs the background loss sample path.
        gray_rng_(loss_rng.Fork("gray-loss")),
        // One busy-until slot per directed link: index 2*link + direction.
        link_free_(graph.edge_count() * 2, SimTime::Zero()) {}

  // Legacy convenience constructor used widely in tests.
  OverlayNetwork(const Graph& graph, Scheduler& scheduler,
                 FailureSchedule failures, double loss_rate, Rng loss_rng,
                 double ack_delay_factor = 0.0)
      : OverlayNetwork(graph, scheduler, failures,
                       OverlayNetworkConfig{loss_rate, ack_delay_factor,
                                            SimDuration::Zero()},
                       loss_rng) {}

  OverlayNetwork(const OverlayNetwork&) = delete;
  OverlayNetwork& operator=(const OverlayNetwork&) = delete;

  // Attempts one transmission from `from` over `link`. Precondition: `from`
  // is an endpoint of `link`. On success `on_delivered` runs at the
  // opposite endpoint after queuing + propagation; on failure nothing
  // happens (the sender's own timeout machinery reacts). The return value
  // (false = dropped, callback destroyed unrun) exists ONLY so callers can
  // recycle resources referenced by the callback; protocols must never
  // branch on it — the paper's senders learn outcomes through ACKs alone.
  // `trace` names the packet/copy for the flight recorder's drop records;
  // leave defaulted for traffic with no packet identity (probes, gossip).
  bool Transmit(NodeId from, LinkId link, TrafficClass cls,
                Scheduler::Action on_delivered, TraceContext trace = {});

  // Attaches the flight recorder that receives link-level drop events.
  // nullptr (the default) detaches. Must outlive the network.
  void set_flight_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

  // True when `node` can currently send and receive.
  [[nodiscard]] bool NodeUp(NodeId node) const {
    const SimTime now = scheduler_.now();
    return node_failures_.IsUp(node, now) && crashes_.Up(node, now);
  }

  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] const FailureSchedule& failures() const { return failures_; }
  [[nodiscard]] const NodeFailureSchedule& node_failures() const {
    return node_failures_;
  }
  [[nodiscard]] const GrayFailureSchedule& gray() const { return gray_; }
  [[nodiscard]] const BrokerCrashSchedule& crashes() const { return crashes_; }
  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const Scheduler& scheduler() const { return scheduler_; }
  [[nodiscard]] const TrafficCounters& counters(TrafficClass cls) const {
    return counters_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] double ack_delay_factor() const {
    return config_.ack_delay_factor;
  }
  [[nodiscard]] const OverlayNetworkConfig& config() const { return config_; }

 private:
  const Graph& graph_;
  Scheduler& scheduler_;
  FailureSchedule failures_;
  NodeFailureSchedule node_failures_;
  GrayFailureSchedule gray_;
  BrokerCrashSchedule crashes_;
  OverlayNetworkConfig config_;
  Rng loss_rng_;
  Rng gray_rng_;
  std::vector<SimTime> link_free_;
  std::array<TrafficCounters, 3> counters_{};
  FlightRecorder* recorder_ = nullptr;
};

}  // namespace dcrd
