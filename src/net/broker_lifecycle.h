// Broker crash–recover lifecycle (fail-stop model).
//
// A broker alternates between being up (serving traffic, holding volatile
// state) and crashed (silent: every in-flight or queued packet addressed to
// it is dropped, every timer it owned is void). When it restarts it comes
// back with *empty volatile state* — dedup tables, open episodes, gossip
// caches are gone — and must resynchronize from its neighbors before its
// routing state is trustworthy again.
//
// The schedule is parameterized the way operators think about it — MTBF
// (mean time between failures) and MTTR (mean time to repair) — and mapped
// onto the same counter-based `internal::OutageProcess` the link and gray
// schedules use:
//
//   stationary down fraction = MTTR / (MTBF + MTTR)
//   outage length            = ceil(MTTR / epoch) epochs
//
// so up/down at time t is a pure hash of (seed, broker, epoch): queries
// need no state, work at any horizon (the invariant checker asks about the
// past, the ORACLE about the future), and every router under the same seed
// faces the identical crash sample path. MTBF zero (the default)
// disables the process entirely — no draws, no branches downstream.
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "common/logging.h"
#include "common/sim_time.h"
#include "net/failure_schedule.h"

namespace dcrd {

class BrokerCrashSchedule {
 public:
  // Disabled schedule: every broker is up forever.
  BrokerCrashSchedule()
      : BrokerCrashSchedule(0, SimDuration::Zero(), SimDuration::Zero()) {}

  BrokerCrashSchedule(std::uint64_t seed, SimDuration mtbf, SimDuration mttr,
                      SimDuration epoch = SimDuration::Seconds(1))
      : process_(seed, epoch, OutageEpochsFor(mttr, epoch)),
        mtbf_(mtbf),
        mttr_(mttr),
        down_fraction_(mtbf > SimDuration::Zero()
                           ? static_cast<double>(mttr.micros()) /
                                 static_cast<double>(mtbf.micros() +
                                                     mttr.micros())
                           : 0.0),
        start_(process_.StartProbabilityFor(down_fraction_)) {
    DCRD_CHECK(mtbf >= SimDuration::Zero());
    DCRD_CHECK(mttr >= SimDuration::Zero());
  }

  [[nodiscard]] bool enabled() const { return down_fraction_ > 0.0; }

  // True when `node` is up (not crashed) at time t.
  [[nodiscard]] bool Up(NodeId node, SimTime t) const {
    return process_.IsUp(node.underlying(), t, start_);
  }

  // True when `node` is up at every instant of [t0, t1]. State is constant
  // within an epoch, so sampling t0 plus every epoch boundary in (t0, t1]
  // covers the window exactly.
  [[nodiscard]] bool UpThroughout(NodeId node, SimTime t0, SimTime t1) const {
    if (!enabled()) return true;
    const SimDuration epoch = process_.epoch();
    for (SimTime t = t0; t <= t1;) {
      if (!Up(node, t)) return false;
      const std::int64_t next_epoch =
          (t.micros() / epoch.micros() + 1) * epoch.micros();
      if (SimTime::FromMicros(next_epoch) > t1) break;
      t = SimTime::FromMicros(next_epoch);
    }
    return true;
  }

  // True when `node` was crashed at some instant of [t0, t1] — the window
  // contains (part of) a down period. A duplicate hand-up at a broker is
  // legal exactly when this holds between the two hand-ups: the dedup entry
  // died with the crash.
  [[nodiscard]] bool DownDuring(NodeId node, SimTime t0, SimTime t1) const {
    return !UpThroughout(node, t0, t1);
  }

  [[nodiscard]] SimDuration epoch() const { return process_.epoch(); }
  [[nodiscard]] SimDuration mtbf() const { return mtbf_; }
  [[nodiscard]] SimDuration mttr() const { return mttr_; }
  [[nodiscard]] double down_fraction() const { return down_fraction_; }

 private:
  static int OutageEpochsFor(SimDuration mttr, SimDuration epoch) {
    if (mttr <= SimDuration::Zero()) return 1;
    const std::int64_t epochs =
        (mttr.micros() + epoch.micros() - 1) / epoch.micros();
    return static_cast<int>(epochs < 1 ? 1 : epochs);
  }

  internal::OutageProcess process_;
  SimDuration mtbf_;
  SimDuration mttr_;
  double down_fraction_;
  double start_;
};

}  // namespace dcrd
