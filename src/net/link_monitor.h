// Periodic link-quality monitoring (paper Section IV-A).
//
// "Each node monitors network conditions only every 5 minutes, while the
// network conditions change more frequently."
//
// Every monitoring epoch the monitor refreshes, per link, the single-
// transmission estimates the routers plan with:
//   alpha_hat — expected one-way delay. Link propagation delays are static
//               in the paper's model, so measurement returns the true delay.
//   gamma_hat — expected delivery ratio, estimated from `probe_count` probe
//               transmissions spread over the preceding epoch (each probe is
//               subject to the failure schedule and the loss rate, like any
//               packet) and smoothed with an EWMA.
//
// The resulting MonitoredView is deliberately *stale* between epochs: this
// staleness is exactly what breaks the tree baselines when 1-second failures
// strike mid-epoch, and what DCRD's dynamic switching compensates for.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "graph/graph.h"
#include "net/failure_schedule.h"

namespace dcrd {

// Immutable snapshot of link estimates, indexed by LinkId.
class MonitoredView {
 public:
  MonitoredView() = default;
  MonitoredView(std::vector<SimDuration> alpha, std::vector<double> gamma)
      : alpha_(std::move(alpha)), gamma_(std::move(gamma)) {}

  [[nodiscard]] SimDuration alpha(LinkId link) const {
    return alpha_[link.underlying()];
  }
  [[nodiscard]] double gamma(LinkId link) const {
    return gamma_[link.underlying()];
  }
  [[nodiscard]] std::size_t link_count() const { return alpha_.size(); }

 private:
  std::vector<SimDuration> alpha_;
  std::vector<double> gamma_;
};

struct LinkMonitorConfig {
  SimDuration interval = SimDuration::Seconds(300);
  int probe_count = 30;       // probes per link per epoch
  double ewma_weight = 0.5;   // weight of the newest sample
  double gamma_floor = 1e-4;  // estimates never reach exactly 0
  double loss_rate = 0.0;     // probes see the same loss process as data
};

class LinkMonitor {
 public:
  LinkMonitor(const Graph& graph, const FailureSchedule& failures,
              LinkMonitorConfig config, Rng rng);

  // Measures all links over (t - interval, t] and folds the samples into
  // the EWMA estimates. Call at t = 0 for the bootstrap measurement and at
  // every epoch boundary thereafter.
  void MeasureAt(SimTime t);

  [[nodiscard]] const MonitoredView& view() const { return view_; }
  [[nodiscard]] const LinkMonitorConfig& config() const { return config_; }

 private:
  const Graph& graph_;
  const FailureSchedule& failures_;
  LinkMonitorConfig config_;
  Rng rng_;
  std::vector<double> gamma_;  // running EWMA state
  MonitoredView view_;
};

}  // namespace dcrd
