#include "net/gray_failure.h"

namespace dcrd {

namespace {

// One 64-bit draw per (seed, link, epoch, salt), same idiom as
// internal::OutageProcess::Draw so the two processes stay independent even
// under a shared scenario seed (the salts differ).
double HashDraw(std::uint64_t seed, std::uint64_t link, std::uint64_t epoch,
                std::uint64_t salt) {
  std::uint64_t s = seed ^ (0xA24BAED4963EE407ULL * (link + 1));
  s ^= 0x9FB21C651E98DF25ULL * (epoch + 1);
  s ^= salt;
  const std::uint64_t bits = SplitMix64(s);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

GrayFailureSchedule::Mode GrayFailureSchedule::ModeAt(LinkId link,
                                                      SimTime t) const {
  if (!enabled()) return Mode::kClean;
  const std::uint64_t epoch =
      static_cast<std::uint64_t>(t.micros() / config_.epoch.micros());
  const std::uint64_t id = link.underlying();
  if (HashDraw(seed_, id, epoch, /*salt=*/1) >= config_.probability) {
    return Mode::kClean;
  }
  if (HashDraw(seed_, id, epoch, /*salt=*/2) >= config_.asymmetry) {
    return Mode::kBoth;
  }
  return HashDraw(seed_, id, epoch, /*salt=*/3) < 0.5 ? Mode::kAToBOnly
                                                      : Mode::kBToAOnly;
}

bool GrayFailureSchedule::Degraded(LinkId link, LinkDirection dir,
                                   SimTime t) const {
  switch (ModeAt(link, t)) {
    case Mode::kClean: return false;
    case Mode::kBoth: return true;
    case Mode::kAToBOnly: return dir == LinkDirection::kAToB;
    case Mode::kBToAOnly: return dir == LinkDirection::kBToA;
  }
  return false;
}

}  // namespace dcrd
