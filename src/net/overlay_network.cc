#include "net/overlay_network.h"

#include <algorithm>

#include "obs/flight_recorder.h"

namespace dcrd {

namespace {

// One inline helper per drop branch keeps the hot path readable: a disabled
// recorder costs a null check, and the TraceContext fields only get touched
// when tracing is actually on.
inline void RecordDrop(FlightRecorder* recorder, const TraceContext& trace,
                       TraceDropReason reason, NodeId from, NodeId to,
                       LinkId link, TrafficClass cls) {
  if (recorder == nullptr) return;
  recorder->Record(TraceEventKind::kDrop, trace.packet, trace.copy, from, to,
                   link, static_cast<std::uint8_t>(reason),
                   static_cast<std::uint16_t>(cls));
}

}  // namespace

bool OverlayNetwork::Transmit(NodeId from, LinkId link, TrafficClass cls,
                              Scheduler::Action on_delivered,
                              TraceContext trace) {
  const EdgeSpec& edge = graph_.edge(link);
  DCRD_CHECK(from == edge.a || from == edge.b)
      << from << " is not an endpoint of " << link;
  TrafficCounters& counter = counters_[static_cast<std::size_t>(cls)];
  ++counter.attempted;

  const NodeId to = edge.OtherEnd(from);
  const SimTime now = scheduler_.now();
  if (!node_failures_.IsUp(from, now) || !node_failures_.IsUp(to, now)) {
    ++counter.dropped_node_failure;
    RecordDrop(recorder_, trace, TraceDropReason::kNodeDown, from, to, link,
               cls);
    return false;
  }
  // Fail-stop crash at entry: a crashed sender transmits nothing, a crashed
  // receiver's inbound queue is void. Counter-based — no RNG draw, so the
  // loss/gray sample paths are untouched when the schedule is disabled.
  if (crashes_.enabled() &&
      (!crashes_.Up(from, now) || !crashes_.Up(to, now))) {
    ++counter.dropped_crash;
    RecordDrop(recorder_, trace, TraceDropReason::kCrash, from, to, link,
               cls);
    return false;
  }
  if (!failures_.IsUp(link, now)) {
    ++counter.dropped_failure;
    RecordDrop(recorder_, trace, TraceDropReason::kLinkDown, from, to, link,
               cls);
    return false;
  }
  if (config_.loss_rate > 0.0 && loss_rng_.NextBernoulli(config_.loss_rate)) {
    ++counter.dropped_loss;
    RecordDrop(recorder_, trace, TraceDropReason::kLoss, from, to, link, cls);
    return false;
  }
  const LinkDirection direction =
      from == edge.a ? LinkDirection::kAToB : LinkDirection::kBToA;
  const double gray_loss = gray_.ExtraLoss(link, direction, now);
  if (gray_loss > 0.0 && gray_rng_.NextBernoulli(gray_loss)) {
    ++counter.dropped_gray;
    RecordDrop(recorder_, trace, TraceDropReason::kGray, from, to, link, cls);
    return false;
  }

  SimTime departure = now;
  if (config_.serialization > SimDuration::Zero() &&
      cls != TrafficClass::kAck) {
    // FIFO per directed link: wait out the packets ahead of us.
    const std::size_t slot =
        link.underlying() * 2 + (from == edge.a ? 0 : 1);
    departure = std::max(now, link_free_[slot]);
    link_free_[slot] = departure + config_.serialization;
  }
  SimDuration propagation = edge.delay;
  if (config_.delay_jitter > 0.0 && cls != TrafficClass::kAck) {
    propagation = SimDuration::FromMillisF(
        edge.delay.millis() *
        (1.0 + loss_rng_.NextDoubleInRange(-config_.delay_jitter,
                                           config_.delay_jitter)));
  }
  if (cls == TrafficClass::kAck) {
    propagation = SimDuration::FromMillisF(edge.delay.millis() *
                                           config_.ack_delay_factor);
  }
  // Delay inflation applies to data and ACK alike (an ACK direction with
  // ack_delay_factor 0 stays instantaneous — the paper's out-of-band model).
  propagation = SimDuration::FromMillisF(
      propagation.millis() * gray_.DelayFactor(link, direction, now));
  // Fail-stop drops in-flight traffic: the receiver must stay up for the
  // whole queuing + propagation window or the packet dies with the crash.
  // Checked after the delay math (arrival time is needed) but before the
  // delivered count so every attempt still lands in exactly one bucket.
  if (crashes_.enabled() &&
      !crashes_.UpThroughout(to, now, departure + propagation)) {
    ++counter.dropped_crash;
    RecordDrop(recorder_, trace, TraceDropReason::kCrash, from, to, link,
               cls);
    return false;
  }
  ++counter.delivered;
  scheduler_.ScheduleAt(departure + propagation, std::move(on_delivered));
  return true;
}

}  // namespace dcrd
