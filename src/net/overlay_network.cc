#include "net/overlay_network.h"

#include <algorithm>
#include <utility>

#include "obs/flight_recorder.h"

namespace dcrd {

namespace {

// One inline helper per drop branch keeps the hot path readable: a disabled
// recorder costs a null check, and the TraceContext fields only get touched
// when tracing is actually on.
inline void RecordDrop(FlightRecorder* recorder, const TraceContext& trace,
                       TraceDropReason reason, NodeId from, NodeId to,
                       LinkId link, TrafficClass cls) {
  if (recorder == nullptr) return;
  recorder->Record(TraceEventKind::kDrop, trace.packet, trace.copy, from, to,
                   link, static_cast<std::uint8_t>(reason),
                   static_cast<std::uint16_t>(cls));
}

}  // namespace

Resolution OverlayNetwork::ResolveAt(NodeId from, LinkId link,
                                     TrafficClass cls, SimTime when,
                                     std::uint64_t draw_key,
                                     const TraceContext& trace) {
  const EdgeSpec& edge = graph_.edge(link);
  DCRD_CHECK(from == edge.a || from == edge.b)
      << from << " is not an endpoint of " << link;
  TrafficCounters& counter = counters_[static_cast<std::size_t>(cls)];
  ++counter.attempted;

  const NodeId to = edge.OtherEnd(from);
  if (!node_failures_.IsUp(from, when) || !node_failures_.IsUp(to, when)) {
    ++counter.dropped_node_failure;
    RecordDrop(recorder_, trace, TraceDropReason::kNodeDown, from, to, link,
               cls);
    return {};
  }
  // Fail-stop crash at entry: a crashed sender transmits nothing, a crashed
  // receiver's inbound queue is void. Counter-based — no draw, so the
  // loss/gray sample paths are untouched when the schedule is disabled.
  if (crashes_.enabled() &&
      (!crashes_.Up(from, when) || !crashes_.Up(to, when))) {
    ++counter.dropped_crash;
    RecordDrop(recorder_, trace, TraceDropReason::kCrash, from, to, link,
               cls);
    return {};
  }
  if (!failures_.IsUp(link, when)) {
    ++counter.dropped_failure;
    RecordDrop(recorder_, trace, TraceDropReason::kLinkDown, from, to, link,
               cls);
    return {};
  }
  // Keyed draws: the (directed link, class) pair is the major address word,
  // `draw_key` the minor one; the salt separates loss / gray / jitter so
  // enabling one process never perturbs another's sample path.
  const bool from_is_a = from == edge.a;
  const std::size_t didx = link.underlying() * 2 + (from_is_a ? 0 : 1);
  const std::uint64_t draw_a = (static_cast<std::uint64_t>(didx) << 2) |
                               static_cast<std::uint64_t>(cls);
  if (config_.loss_rate > 0.0 &&
      KeyedBernoulli(config_.loss_rate, seed_, draw_a, draw_key, 0)) {
    ++counter.dropped_loss;
    RecordDrop(recorder_, trace, TraceDropReason::kLoss, from, to, link, cls);
    return {};
  }
  const LinkDirection direction =
      from_is_a ? LinkDirection::kAToB : LinkDirection::kBToA;
  const double gray_loss = gray_.ExtraLoss(link, direction, when);
  if (gray_loss > 0.0 &&
      KeyedBernoulli(gray_loss, seed_, draw_a, draw_key, 1)) {
    ++counter.dropped_gray;
    RecordDrop(recorder_, trace, TraceDropReason::kGray, from, to, link, cls);
    return {};
  }

  SimTime departure = when;
  if (config_.serialization > SimDuration::Zero() &&
      cls != TrafficClass::kAck) {
    // FIFO per directed link: wait out the packets ahead of us.
    departure = std::max(when, link_free_[didx]);
    link_free_[didx] = departure + config_.serialization;
  }
  SimDuration propagation = edge.delay;
  if (config_.delay_jitter > 0.0 && cls != TrafficClass::kAck) {
    const double unit = KeyedUnit(seed_, draw_a, draw_key, 2);
    propagation = SimDuration::FromMillisF(
        edge.delay.millis() *
        (1.0 - config_.delay_jitter + 2.0 * config_.delay_jitter * unit));
  }
  if (cls == TrafficClass::kAck) {
    propagation = SimDuration::FromMillisF(edge.delay.millis() *
                                           config_.ack_delay_factor);
  }
  // Delay inflation applies to data and ACK alike (an ACK direction with
  // ack_delay_factor 0 stays instantaneous — the paper's out-of-band model).
  propagation = SimDuration::FromMillisF(
      propagation.millis() * gray_.DelayFactor(link, direction, when));
  // Fail-stop drops in-flight traffic: the receiver must stay up for the
  // whole queuing + propagation window or the packet dies with the crash.
  // Checked after the delay math (arrival time is needed) but before the
  // delivered count so every attempt still lands in exactly one bucket.
  if (crashes_.enabled() &&
      !crashes_.UpThroughout(to, when, departure + propagation)) {
    ++counter.dropped_crash;
    RecordDrop(recorder_, trace, TraceDropReason::kCrash, from, to, link,
               cls);
    return {};
  }
  ++counter.delivered;
  Resolution res;
  res.delivered = true;
  res.at = departure + propagation;
  return res;
}

Resolution OverlayNetwork::ResolveSend(NodeId from, LinkId link,
                                       TrafficClass cls, TraceContext trace) {
  // Counters and draw addresses for a send belong to the sender's shard;
  // a resolution for a foreign node would double-tally them.
  DCRD_CHECK(IsLocalNode(from))
      << "ResolveSend from " << from << " on a shard that does not own it";
  const EdgeSpec& edge = graph_.edge(link);
  const std::size_t didx =
      link.underlying() * 2 + (from == edge.a ? 0 : 1);
  // The attempt counter advances once per resolution whether or not any
  // draw branch is reached: it is an address, not a stream position, so
  // skipping it on early drops would buy nothing and cost a branch.
  const std::uint64_t draw_key =
      draw_seq_[didx * 3 + static_cast<std::size_t>(cls)]++;
  Resolution res =
      ResolveAt(from, link, cls, scheduler_.now(), draw_key, trace);
  if (res.delivered) {
    res.k1 = Scheduler::PackK1(scheduler_.now().micros(), from.underlying());
    res.k2 = arrival_seq_[from.underlying()]++;
  }
  return res;
}

Resolution OverlayNetwork::ResolveAckAt(NodeId acker, LinkId link, SimTime t1,
                                        std::uint64_t ack_key,
                                        TraceContext trace) {
  Resolution res =
      ResolveAt(acker, link, TrafficClass::kAck, t1, ack_key, trace);
  if (res.delivered) {
    res.k1 = Scheduler::PackK1(t1.micros(), acker.underlying());
    res.k2 = ack_key;
  }
  return res;
}

bool OverlayNetwork::Transmit(NodeId from, LinkId link, TrafficClass cls,
                              Scheduler::Action on_delivered,
                              TraceContext trace) {
  // Replicated callers (broker-lifecycle hooks run on every shard) invoke
  // this for nodes they do not own; the owning shard performs the send.
  if (!IsLocalNode(from)) return false;
  const Resolution res = ResolveSend(from, link, cls, trace);
  if (!res.delivered) return false;
  DCRD_CHECK(IsLocalNode(graph_.edge(link).OtherEnd(from)))
      << "Transmit cannot cross shards — use the Resolution API";
  scheduler_.ScheduleKeyed(res.at, res.k1, res.k2, std::move(on_delivered));
  return true;
}

bool OverlayNetwork::TransmitEcho(NodeId from, LinkId link,
                                  Scheduler::Action on_echo,
                                  TraceContext trace) {
  // Same ownership gate as Transmit: resync hooks replay on every shard,
  // but only the owner of `from` sends (and tallies) the probe.
  if (!IsLocalNode(from)) return false;
  const Resolution req = ResolveSend(from, link, TrafficClass::kControl,
                                     trace);
  if (!req.delivered) return false;
  SlotHandle slot;  // stays invalid for fire-and-forget round trips
  if (on_echo) {
    Scheduler::Action* value;
    slot = echo_slots_.Acquire(&value);
    *value = std::move(on_echo);
  }
  const NodeId to = graph_.edge(link).OtherEnd(from);
  if (IsLocalNode(to)) {
    scheduler_.ScheduleKeyed(req.at, req.k1, req.k2,
                             [this, to, from, link, slot] {
                               HandleEchoRequest(to, from, link, slot);
                             });
  } else {
    XMsg& msg = ExportTo(to);
    msg.kind = XMsgKind::kEchoRequest;
    msg.at = req.at.micros();
    msg.k1 = req.k1;
    msg.k2 = req.k2;
    msg.to = to;
    msg.from = from;
    msg.link = link;
    msg.echo_slot = slot;
  }
  return true;
}

void OverlayNetwork::HandleEchoRequest(NodeId at_node, NodeId origin,
                                       LinkId link, SlotHandle origin_slot) {
  // The reply is ordinary control traffic resolved with the receiver's own
  // counters at the moment the request lands — receiver-local state, so
  // the outcome is identical whether the request arrived locally or over
  // the exchange.
  const Resolution reply =
      ResolveSend(at_node, link, TrafficClass::kControl, {});
  if (reply.delivered) {
    if (IsLocalNode(origin)) {
      scheduler_.ScheduleKeyed(
          reply.at, reply.k1, reply.k2,
          [this, origin_slot] { RunEcho(origin_slot); });
    } else {
      XMsg& msg = ExportTo(origin);
      msg.kind = XMsgKind::kEchoReply;
      msg.at = reply.at.micros();
      msg.k1 = reply.k1;
      msg.k2 = reply.k2;
      msg.to = origin;
      msg.from = at_node;
      msg.link = link;
      msg.echo_slot = origin_slot;
    }
    return;
  }
  if (!origin_slot.valid()) return;
  // Reply dropped: the completion never runs. Its slot lives in the origin
  // network — release it there (directly, or via a barrier-time drop
  // message; slot lifetimes are unobservable to the simulation).
  if (IsLocalNode(origin)) {
    DCRD_CHECK(echo_slots_.Release(origin_slot));
  } else {
    XMsg& msg = ExportTo(origin);
    msg.kind = XMsgKind::kEchoDrop;
    msg.to = origin;
    msg.from = at_node;
    msg.link = link;
    msg.echo_slot = origin_slot;
  }
}

void OverlayNetwork::RunEcho(SlotHandle slot) {
  if (!slot.valid()) return;  // fire-and-forget round trip completed
  Scheduler::Action* action = echo_slots_.Get(slot);
  DCRD_CHECK(action != nullptr) << "echo completion slot went stale";
  // Run in place (slab addresses are stable even if the callback arms new
  // echoes), then release; the callback's own round/generation guards
  // decide whether its effect is still wanted.
  (*action)();
  echo_slots_.Release(slot);
}

void OverlayNetwork::AcceptRemote(XMsg& msg) {
  switch (msg.kind) {
    case XMsgKind::kData:
      DCRD_CHECK(remote_data_sink_) << "no remote data sink registered";
      remote_data_sink_(msg);
      return;
    case XMsgKind::kEchoRequest:
      scheduler_.ScheduleKeyed(SimTime::FromMicros(msg.at), msg.k1, msg.k2,
                               [this, to = msg.to, from = msg.from,
                                link = msg.link, slot = msg.echo_slot] {
                                 HandleEchoRequest(to, from, link, slot);
                               });
      return;
    case XMsgKind::kEchoReply:
      scheduler_.ScheduleKeyed(SimTime::FromMicros(msg.at), msg.k1, msg.k2,
                               [this, slot = msg.echo_slot] {
                                 RunEcho(slot);
                               });
      return;
    case XMsgKind::kEchoDrop:
      DCRD_CHECK(echo_slots_.Release(msg.echo_slot));
      return;
  }
  DCRD_CHECK(false) << "unknown exchange message kind";
}

}  // namespace dcrd
