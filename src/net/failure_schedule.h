// Link- and node-failure processes.
//
// Paper Section IV-A: "we change the network condition once every second,
// i.e., we inject link failures into randomly chosen links that will cause
// one second of packet loss." Every (link, epoch) pair independently fails
// with probability Pf — that is `outage_epochs = 1`, the default.
//
// Three extensions the paper points at are modelled here too:
//  * Multi-epoch outages (`outage_epochs = L > 1`): an outage *starts* in
//    an epoch with probability q = 1-(1-Pf)^(1/L) and holds the link down
//    for L consecutive epochs, so the stationary down-fraction stays
//    exactly Pf while outages become L seconds long. This is the regime
//    where the paper's persistency mode matters.
//  * Per-link heterogeneity: each link may have its own stationary down
//    fraction (lossy access links next to clean backbone links). This is
//    what makes reliability-aware sending-list ordering (Theorem 1) differ
//    from plain delay ordering in vivo.
//  * Node failures (Section V future work): the same process keyed by
//    broker node — a down broker can neither send nor receive, which takes
//    out all its adjacent links at once (correlated link failures).
//
// All schedules are *counter-based*: up/down at time t is a pure hash of
// (seed, entity, epoch), so queries need no state, work for any horizon
// (the ORACLE consults the future), and two routing algorithms with the
// same seed face the identical sample path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"

namespace dcrd {

namespace internal {

// Shared counter-based outage machinery over an integer entity id; the
// per-entity outage-start probability is supplied by the caller.
class OutageProcess {
 public:
  OutageProcess(std::uint64_t seed, SimDuration epoch, int outage_epochs)
      : seed_(seed), epoch_(epoch), outage_epochs_(outage_epochs) {
    DCRD_CHECK(outage_epochs_ >= 1);
  }

  [[nodiscard]] bool IsUp(std::uint64_t entity, SimTime t,
                          double start_probability) const {
    if (start_probability <= 0.0) return true;
    const std::uint64_t epoch_index =
        static_cast<std::uint64_t>(t.micros() / epoch_.micros());
    // Down iff an outage started in any of the last `outage_epochs_`
    // epochs (including this one), clamped at the beginning of time.
    for (int back = 0; back < outage_epochs_; ++back) {
      if (epoch_index < static_cast<std::uint64_t>(back)) break;
      if (Draw(entity, epoch_index - back) < start_probability) return false;
    }
    return true;
  }

  // Outage-start probability q with stationary down fraction exactly
  // `down_fraction`: 1 - (1-q)^L = down_fraction.
  [[nodiscard]] double StartProbabilityFor(double down_fraction) const;

  [[nodiscard]] SimDuration epoch() const { return epoch_; }
  [[nodiscard]] int outage_epochs() const { return outage_epochs_; }

 private:
  [[nodiscard]] double Draw(std::uint64_t entity,
                            std::uint64_t epoch_index) const {
    std::uint64_t s = seed_ ^ (0x9E3779B97F4A7C15ULL * (entity + 1));
    s ^= 0xC2B2AE3D27D4EB4FULL * (epoch_index + 1);
    const std::uint64_t bits = SplitMix64(s);
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
  }

  std::uint64_t seed_;
  SimDuration epoch_;
  int outage_epochs_;
};

}  // namespace internal

// Per-link failure process; uniform Pf or per-link down fractions.
class FailureSchedule {
 public:
  FailureSchedule(std::uint64_t seed, double failure_probability,
                  SimDuration epoch = SimDuration::Seconds(1),
                  int outage_epochs = 1)
      : process_(seed, epoch, outage_epochs),
        uniform_fraction_(failure_probability),
        uniform_start_(process_.StartProbabilityFor(failure_probability)) {
    DCRD_CHECK(failure_probability >= 0.0 && failure_probability <= 1.0);
  }

  // Heterogeneous variant: `per_link_fraction[l]` is link l's stationary
  // down fraction.
  FailureSchedule(std::uint64_t seed, std::vector<double> per_link_fraction,
                  SimDuration epoch = SimDuration::Seconds(1),
                  int outage_epochs = 1)
      : process_(seed, epoch, outage_epochs),
        per_link_fraction_(std::move(per_link_fraction)) {
    double sum = 0.0;
    per_link_start_.reserve(per_link_fraction_.size());
    for (const double fraction : per_link_fraction_) {
      DCRD_CHECK(fraction >= 0.0 && fraction <= 1.0);
      per_link_start_.push_back(process_.StartProbabilityFor(fraction));
      sum += fraction;
    }
    uniform_fraction_ = per_link_fraction_.empty()
                            ? 0.0
                            : sum / static_cast<double>(
                                        per_link_fraction_.size());
  }

  // True when `link` is usable for transmissions entered at time `t`.
  [[nodiscard]] bool IsUp(LinkId link, SimTime t) const {
    return process_.IsUp(link.underlying(), t, StartProbability(link));
  }

  // Stationary down fraction: the link's own when heterogeneous, the
  // global Pf otherwise.
  [[nodiscard]] double DownFraction(LinkId link) const {
    if (link.underlying() < per_link_fraction_.size()) {
      return per_link_fraction_[link.underlying()];
    }
    return uniform_fraction_;
  }
  // Mean down fraction across links (== Pf in the uniform case).
  [[nodiscard]] double failure_probability() const {
    return uniform_fraction_;
  }
  [[nodiscard]] SimDuration epoch() const { return process_.epoch(); }
  [[nodiscard]] int outage_epochs() const { return process_.outage_epochs(); }

 private:
  [[nodiscard]] double StartProbability(LinkId link) const {
    if (link.underlying() < per_link_start_.size()) {
      return per_link_start_[link.underlying()];
    }
    return uniform_start_;
  }

  internal::OutageProcess process_;
  double uniform_fraction_ = 0.0;
  double uniform_start_ = 0.0;
  std::vector<double> per_link_fraction_;
  std::vector<double> per_link_start_;
};

// Per-broker failure process (paper Section V: node failures).
class NodeFailureSchedule {
 public:
  // The default — probability 0 — never fails anyone.
  NodeFailureSchedule() : NodeFailureSchedule(0, 0.0) {}
  NodeFailureSchedule(std::uint64_t seed, double failure_probability,
                      SimDuration epoch = SimDuration::Seconds(1),
                      int outage_epochs = 1)
      : process_(seed, epoch, outage_epochs),
        fraction_(failure_probability),
        start_(process_.StartProbabilityFor(failure_probability)) {
    DCRD_CHECK(failure_probability >= 0.0 && failure_probability <= 1.0);
  }

  [[nodiscard]] bool IsUp(NodeId node, SimTime t) const {
    return process_.IsUp(node.underlying(), t, start_);
  }

  [[nodiscard]] double failure_probability() const { return fraction_; }
  [[nodiscard]] int outage_epochs() const { return process_.outage_epochs(); }

 private:
  internal::OutageProcess process_;
  double fraction_;
  double start_;
};

// Draws per-link stationary down fractions around `mean_fraction` with
// log-uniform spread `heterogeneity` (0 = uniform Pf everywhere; h draws
// each link's fraction as Pf * exp(U(-h, h)), clamped to [0, 0.9]). The
// spread is what separates "reliable" from "flaky" links.
std::vector<double> DrawHeterogeneousFractions(std::size_t link_count,
                                               double mean_fraction,
                                               double heterogeneity,
                                               Rng& rng);

}  // namespace dcrd
