#include "net/failure_schedule.h"

#include <algorithm>
#include <cmath>

namespace dcrd {

namespace internal {

double OutageProcess::StartProbabilityFor(double down_fraction) const {
  if (down_fraction <= 0.0) return 0.0;
  if (down_fraction >= 1.0) return 1.0;
  if (outage_epochs_ == 1) return down_fraction;
  return 1.0 - std::pow(1.0 - down_fraction, 1.0 / outage_epochs_);
}

}  // namespace internal

std::vector<double> DrawHeterogeneousFractions(std::size_t link_count,
                                               double mean_fraction,
                                               double heterogeneity,
                                               Rng& rng) {
  DCRD_CHECK(heterogeneity >= 0.0);
  std::vector<double> fractions(link_count, mean_fraction);
  if (heterogeneity <= 0.0 || mean_fraction <= 0.0) return fractions;
  for (double& fraction : fractions) {
    const double factor =
        std::exp(rng.NextDoubleInRange(-heterogeneity, heterogeneity));
    fraction = std::clamp(mean_fraction * factor, 0.0, 0.9);
  }
  return fractions;
}

}  // namespace dcrd
