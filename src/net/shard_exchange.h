// Cross-shard hand-off for the sharded engine.
//
// When a scenario runs on N engine shards (see sim/engine.cc §sharded
// execution and DESIGN.md §12), every simulated object lives on exactly one
// shard — the one owning its broker — and a transmission whose receiver is
// owned elsewhere cannot be scheduled directly into the peer's Scheduler
// (it is being drained by another thread). Instead the sending shard
// appends an exchange message carrying everything the receiving shard
// needs to schedule the arrival itself: the arrival tick, the canonical
// event key (a pure function of the event's content — see
// event/scheduler.h), and the payload. Messages are appended during a
// synchronization window (single writer: the sending shard's thread) and
// drained at the following barrier (single reader: the receiving shard's
// thread); the barrier's release ordering makes the queues safe without
// any per-message locking.
//
// Determinism: the merge order of injected events is decided entirely by
// their canonical keys at dispatch, never by which queue they arrived
// through or when a thread appended them — so `--shards 1` and
// `--shards N` byte-identical output follows from key purity alone.
//
// Memory: per-(src,dst) queues are plain vectors with a used-counter;
// Reset() rewinds the counter without destroying elements, so Packet
// buffer capacity parks in place and steady-state hand-off performs zero
// heap allocations (tests/perf/exchange_alloc_test.cc enforces).
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/logging.h"
#include "common/slot_map.h"
#include "pubsub/packet.h"

namespace dcrd {

// Static broker->shard assignment, fixed for a whole run (see
// graph/partition.h for the deterministic partitioners).
struct ShardMap {
  std::vector<int> owner;  // indexed by node id
  int shard_count = 1;

  [[nodiscard]] int OwnerOf(NodeId node) const {
    return owner[node.underlying()];
  }
};

enum class XMsgKind : std::uint8_t {
  kData,         // a delivered data copy arriving at a remote broker
  kEchoRequest,  // control leg arriving at a remote broker; it resolves
                 // and returns the reply leg (probe / resync round trip)
  kEchoReply,    // reply leg delivered back: run the stored completion
  kEchoDrop,     // reply leg dropped: release the stored completion slot
                 // at the barrier (no simulated-time effect)
};

struct XMsg {
  XMsgKind kind = XMsgKind::kData;
  std::int64_t at = 0;       // arrival tick in micros (unused for kEchoDrop)
  std::uint64_t k1 = 0;      // canonical event key, major word
  std::uint64_t k2 = 0;      // canonical event key, minor word
  NodeId to;                 // receiving broker (kData / kEchoRequest)
  NodeId from;               // sending broker
  LinkId link;
  std::uint64_t copy_id = 0;  // kData
  int tx_index = 0;           // kData
  SlotHandle echo_slot;       // kEcho*: completion slot in the ORIGIN
                              // shard's network (opaque to the receiver)
  Packet packet;              // kData payload; capacity reused across runs
};

// N*N single-writer/single-reader message queues. Writer s appends to
// (s, *) between barriers; reader t drains (*, t) at the barrier.
class ShardExchange {
 public:
  explicit ShardExchange(int shards) : shards_(shards), queues_(
      static_cast<std::size_t>(shards) * static_cast<std::size_t>(shards)) {}

  ShardExchange(const ShardExchange&) = delete;
  ShardExchange& operator=(const ShardExchange&) = delete;

  [[nodiscard]] int shards() const { return shards_; }

  // Next free message slot on the src->dst queue, recycled storage when
  // available. Caller fills every field it needs; stale fields from the
  // slot's previous life are overwritten by convention (kind dispatch
  // reads only its own fields).
  XMsg& Append(int src, int dst) {
    Queue& queue = At(src, dst);
    if (queue.used < queue.slots.size()) return queue.slots[queue.used++];
    ++queue.used;
    return queue.slots.emplace_back();
  }

  // Messages pending on the src->dst queue, in append order.
  [[nodiscard]] std::size_t Count(int src, int dst) const {
    return At(src, dst).used;
  }
  [[nodiscard]] XMsg& Message(int src, int dst, std::size_t i) {
    DCRD_CHECK(i < At(src, dst).used);
    return At(src, dst).slots[i];
  }

  // Rewinds the src->dst queue; element storage (Packet buffers) stays.
  void Reset(int src, int dst) { At(src, dst).used = 0; }

  // True when any queue holds an undrained message (the coordinator's
  // termination check: a run is done only when every scheduler is empty AND
  // nothing is still in flight between shards).
  [[nodiscard]] bool AnyPending() const {
    for (const Queue& queue : queues_) {
      if (queue.used != 0) return true;
    }
    return false;
  }

 private:
  struct Queue {
    std::vector<XMsg> slots;
    std::size_t used = 0;
  };

  [[nodiscard]] Queue& At(int src, int dst) {
    return queues_[static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(shards_) +
                   static_cast<std::size_t>(dst)];
  }
  [[nodiscard]] const Queue& At(int src, int dst) const {
    return queues_[static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(shards_) +
                   static_cast<std::size_t>(dst)];
  }

  const int shards_;
  std::vector<Queue> queues_;
};

}  // namespace dcrd
