// Topic and subscription registry.
//
// One publisher broker per topic (as in the paper's workload) and a set of
// subscriber brokers per topic, each with a QoS delay requirement D_PS. The
// engine fills this table from the workload generator; routers treat it as
// read-only configuration.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/logging.h"
#include "common/sim_time.h"

namespace dcrd {

struct Subscription {
  NodeId subscriber;
  SimDuration deadline;  // D_PS: end-to-end delay requirement
};

class SubscriptionTable {
 public:
  // Registers a topic with its publisher broker; topics must be added in
  // TopicId order starting from 0.
  TopicId AddTopic(NodeId publisher);

  void AddSubscription(TopicId topic, NodeId subscriber, SimDuration deadline);
  // Removes a subscription (churn support); returns false when the
  // subscriber was not subscribed. In-flight packets toward a departed
  // subscriber are the routers' problem: they drop them gracefully.
  bool RemoveSubscription(TopicId topic, NodeId subscriber);

  [[nodiscard]] std::size_t topic_count() const { return topics_.size(); }
  [[nodiscard]] NodeId publisher(TopicId topic) const {
    return topics_[topic.underlying()].publisher;
  }
  [[nodiscard]] const std::vector<Subscription>& subscriptions(
      TopicId topic) const {
    return topics_[topic.underlying()].subscriptions;
  }
  // Subscriber broker ids for a topic, in registration order.
  [[nodiscard]] std::vector<NodeId> SubscriberNodes(TopicId topic) const;
  // Deadline for a (topic, subscriber); CHECK-fails if not subscribed.
  [[nodiscard]] SimDuration Deadline(TopicId topic, NodeId subscriber) const;
  [[nodiscard]] bool IsSubscribed(TopicId topic, NodeId subscriber) const;

 private:
  struct TopicEntry {
    NodeId publisher;
    std::vector<Subscription> subscriptions;
  };
  std::vector<TopicEntry> topics_;
};

}  // namespace dcrd
