// Publishers and the delivery sink.
//
// Each publisher emits one message per second (the paper's air-surveillance
// rate: ADS-B aircraft broadcast position once per second) with a random
// start phase, handing every message to the router under test. Deliveries
// flow back through the DeliverySink interface, implemented by the metrics
// collector.
#pragma once

#include <functional>

#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "event/scheduler.h"
#include "pubsub/packet.h"

namespace dcrd {

// Receives the first arrival of each message at each subscriber broker.
class DeliverySink {
 public:
  virtual ~DeliverySink() = default;
  virtual void OnDelivered(const Message& message, NodeId subscriber,
                           SimTime arrival) = 0;
};

class Publisher {
 public:
  using PublishFn = std::function<void(const Message&)>;

  Publisher(TopicId topic, NodeId node, SimDuration interval,
            Scheduler& scheduler, PublishFn publish)
      : topic_(topic),
        node_(node),
        interval_(interval),
        scheduler_(scheduler),
        publish_(std::move(publish)) {}

  // Starts the periodic publication process: first message at `phase`,
  // subsequent messages every `interval` until `end`. Message ids are drawn
  // from the shared `next_id` counter so ids are globally unique.
  void Start(SimDuration phase, SimTime end, std::uint64_t& next_id);

  [[nodiscard]] TopicId topic() const { return topic_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] std::uint64_t published_count() const { return published_; }

 private:
  void PublishOnce(SimTime end, std::uint64_t& next_id);

  TopicId topic_;
  NodeId node_;
  SimDuration interval_;
  Scheduler& scheduler_;
  PublishFn publish_;
  std::uint64_t published_ = 0;
};

}  // namespace dcrd
