#include "pubsub/publisher.h"

namespace dcrd {

void Publisher::Start(SimDuration phase, SimTime end, std::uint64_t& next_id) {
  scheduler_.ScheduleAt(SimTime::Zero() + phase,
                        [this, end, &next_id] { PublishOnce(end, next_id); });
}

void Publisher::PublishOnce(SimTime end, std::uint64_t& next_id) {
  Message message;
  message.id = MessageId(next_id++);
  message.topic = topic_;
  message.publisher = node_;
  message.publish_time = scheduler_.now();
  ++published_;
  publish_(message);

  const SimTime next = scheduler_.now() + interval_;
  if (next <= end) {
    scheduler_.ScheduleAt(next,
                          [this, end, &next_id] { PublishOnce(end, next_id); });
  }
}

}  // namespace dcrd
