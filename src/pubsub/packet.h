// Messages and packets.
//
// A Message is the application-level publication (one per publisher per
// second in the paper's workload). A Packet is a hop-level carrier for a
// message: it names the subscriber brokers it is still responsible for and
// records — per Algorithm 2 — every broker that has forwarded it (the
// "routing path"), which both prevents forwarding loops and lets a broker
// locate its upstream node when rerouting.
#pragma once

#include <algorithm>
#include <vector>

#include "common/ids.h"
#include "common/logging.h"
#include "common/sim_time.h"

namespace dcrd {

struct Message {
  MessageId id;
  TopicId topic;
  NodeId publisher;
  SimTime publish_time;
};

class Packet {
 public:
  Packet() = default;
  Packet(Message msg, std::vector<NodeId> destinations)
      : message_(msg), destinations_(std::move(destinations)) {
    std::sort(destinations_.begin(), destinations_.end());
  }

  [[nodiscard]] const Message& message() const { return message_; }
  // Protocol-private tag carried with the packet; the Multipath baseline
  // uses it to distinguish which of a subscriber's route copies this is.
  [[nodiscard]] std::uint8_t flow_label() const { return flow_label_; }
  void set_flow_label(std::uint8_t label) { flow_label_ = label; }
  [[nodiscard]] const std::vector<NodeId>& destinations() const {
    return destinations_;
  }
  [[nodiscard]] const std::vector<NodeId>& routing_path() const {
    return routing_path_;
  }

  [[nodiscard]] bool IsDestination(NodeId node) const {
    return std::binary_search(destinations_.begin(), destinations_.end(),
                              node);
  }
  [[nodiscard]] bool OnRoutingPath(NodeId node) const {
    return std::find(routing_path_.begin(), routing_path_.end(), node) !=
           routing_path_.end();
  }

  // Appends `node` to the routing path. Deliberately unconditional, exactly
  // as in Algorithm 2 line 20: every sender stamps itself before every
  // send, so the path's last entry is always the broker the receiver got
  // the packet from, and the entry before a broker's *first* occurrence is
  // the upstream broker that originally handed the packet down. Membership
  // (loop prevention) is unaffected by the duplicates.
  void RecordOnPath(NodeId node) { routing_path_.push_back(node); }

  // The broker that originally handed the packet to `node` on the way
  // *down* from the publisher: the entry immediately preceding `node`'s
  // first occurrence on the routing path. Invalid NodeId when `node` heads
  // the path (the publisher) or is not on it.
  [[nodiscard]] NodeId UpstreamOf(NodeId node) const {
    const auto it =
        std::find(routing_path_.begin(), routing_path_.end(), node);
    if (it == routing_path_.end() || it == routing_path_.begin()) {
      return NodeId();
    }
    return *(it - 1);
  }

  // Derives the packet a broker actually sends: same message and path,
  // destination set narrowed to the subscribers the chosen next hop covers.
  [[nodiscard]] Packet WithDestinations(std::vector<NodeId> dests) const {
    Packet out = *this;
    out.destinations_ = std::move(dests);
    std::sort(out.destinations_.begin(), out.destinations_.end());
    return out;
  }

 private:
  Message message_;
  std::vector<NodeId> destinations_;
  std::vector<NodeId> routing_path_;
  std::uint8_t flow_label_ = 0;
};

}  // namespace dcrd
