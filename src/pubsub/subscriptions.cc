#include "pubsub/subscriptions.h"

#include <algorithm>

namespace dcrd {

TopicId SubscriptionTable::AddTopic(NodeId publisher) {
  DCRD_CHECK(publisher.valid());
  topics_.push_back(TopicEntry{publisher, {}});
  return TopicId(static_cast<TopicId::underlying_type>(topics_.size() - 1));
}

void SubscriptionTable::AddSubscription(TopicId topic, NodeId subscriber,
                                        SimDuration deadline) {
  DCRD_CHECK(topic.underlying() < topics_.size());
  DCRD_CHECK(!IsSubscribed(topic, subscriber))
      << subscriber << " already subscribed to " << topic;
  DCRD_CHECK(deadline > SimDuration::Zero());
  topics_[topic.underlying()].subscriptions.push_back(
      Subscription{subscriber, deadline});
}

bool SubscriptionTable::RemoveSubscription(TopicId topic, NodeId subscriber) {
  DCRD_CHECK(topic.underlying() < topics_.size());
  auto& subs = topics_[topic.underlying()].subscriptions;
  const auto it =
      std::find_if(subs.begin(), subs.end(), [&](const Subscription& s) {
        return s.subscriber == subscriber;
      });
  if (it == subs.end()) return false;
  subs.erase(it);
  return true;
}

std::vector<NodeId> SubscriptionTable::SubscriberNodes(TopicId topic) const {
  std::vector<NodeId> nodes;
  for (const Subscription& sub : subscriptions(topic)) {
    nodes.push_back(sub.subscriber);
  }
  return nodes;
}

SimDuration SubscriptionTable::Deadline(TopicId topic,
                                        NodeId subscriber) const {
  for (const Subscription& sub : subscriptions(topic)) {
    if (sub.subscriber == subscriber) return sub.deadline;
  }
  DCRD_CHECK(false) << subscriber << " not subscribed to " << topic;
  return SimDuration::Zero();
}

bool SubscriptionTable::IsSubscribed(TopicId topic, NodeId subscriber) const {
  const auto& subs = topics_[topic.underlying()].subscriptions;
  return std::any_of(subs.begin(), subs.end(), [&](const Subscription& s) {
    return s.subscriber == subscriber;
  });
}

}  // namespace dcrd
