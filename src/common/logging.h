// Minimal leveled logging and check macros.
//
// The simulator is a library, so logging is off by default and controlled by
// a process-wide level; benches/examples flip it on with --verbose. CHECK is
// used for programmer-error invariants (never for expected runtime
// conditions) and aborts with a message — per the Core Guidelines' advice to
// make broken preconditions loud.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace dcrd {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel& GlobalLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << Name(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
  ~LogMessage() {
    if (static_cast<int>(level_) <= static_cast<int>(GlobalLogLevel())) {
      stream_ << "\n";
      std::clog << stream_.str();
    }
  }
  std::ostream& stream() { return stream_; }

 private:
  static constexpr const char* Name(LogLevel level) {
    switch (level) {
      case LogLevel::kError: return "E";
      case LogLevel::kWarn: return "W";
      case LogLevel::kInfo: return "I";
      case LogLevel::kDebug: return "D";
    }
    return "?";
  }
  static constexpr std::string_view Basename(std::string_view path) {
    const auto pos = path.find_last_of('/');
    return pos == std::string_view::npos ? path : path.substr(pos + 1);
  }

  LogLevel level_;
  std::ostringstream stream_;
};

[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& extra);

class CheckMessage {
 public:
  CheckMessage(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}
  [[noreturn]] ~CheckMessage() { CheckFailed(expr_, file_, line_, stream_.str()); }
  std::ostream& stream() { return stream_; }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define DCRD_LOG(level)                                                     \
  ::dcrd::internal::LogMessage(::dcrd::LogLevel::level, __FILE__, __LINE__) \
      .stream()

#define DCRD_CHECK(cond)                                                  \
  while (!(cond))                                                         \
  ::dcrd::internal::CheckMessage(#cond, __FILE__, __LINE__).stream()

}  // namespace dcrd
