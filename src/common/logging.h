// Minimal leveled logging and check macros — the single logging
// implementation for the whole simulator.
//
// The simulator is a library, so logging is off by default and controlled by
// a process-wide level; benches/examples flip it on with --verbose. Every
// line carries the level, the current simulation time (when a scheduler is
// running on this thread; "-" otherwise), and a component/file:line tag:
//
//   [W 5000us sim/engine.cc:42] message
//
// Output goes to stderr only — stdout belongs to the figure data and must
// stay byte-identical whether or not logging or tracing is enabled. Raw
// fprintf/std::cerr diagnostics elsewhere in src/ are a bug; route them
// through DCRD_LOG so they pick up sim time and obey the global level.
//
// CHECK is used for programmer-error invariants (never for expected runtime
// conditions) and aborts with a message — per the Core Guidelines' advice to
// make broken preconditions loud.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

#include "common/sim_time.h"

namespace dcrd {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel& GlobalLogLevel();

namespace internal {

// Slot for the simulation clock of the scheduler currently running on this
// thread. Scheduler::Run/RunUntil install a pointer to their clock for the
// duration of the run (RAII, nesting-safe) so log lines can stamp sim time;
// nullptr outside a run.
const SimTime*& ThreadSimClock();

// Last two path segments of __FILE__ — "sim/engine.cc" — so the component
// is visible without the full build-tree prefix.
constexpr std::string_view ComponentPath(std::string_view path) {
  const auto base = path.find_last_of('/');
  if (base == std::string_view::npos) return path;
  const auto dir = path.find_last_of('/', base - 1);
  return dir == std::string_view::npos ? path : path.substr(dir + 1);
}

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << Name(level) << " ";
    if (const SimTime* clock = ThreadSimClock(); clock != nullptr) {
      stream_ << clock->micros() << "us";
    } else {
      stream_ << "-";
    }
    stream_ << " " << ComponentPath(file) << ":" << line << "] ";
  }
  ~LogMessage() {
    if (static_cast<int>(level_) <= static_cast<int>(GlobalLogLevel())) {
      stream_ << "\n";
      std::cerr << stream_.str();
    }
  }
  std::ostream& stream() { return stream_; }

 private:
  static constexpr const char* Name(LogLevel level) {
    switch (level) {
      case LogLevel::kError: return "E";
      case LogLevel::kWarn: return "W";
      case LogLevel::kInfo: return "I";
      case LogLevel::kDebug: return "D";
    }
    return "?";
  }

  LogLevel level_;
  std::ostringstream stream_;
};

[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& extra);

class CheckMessage {
 public:
  CheckMessage(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}
  [[noreturn]] ~CheckMessage() { CheckFailed(expr_, file_, line_, stream_.str()); }
  std::ostream& stream() { return stream_; }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Installs `clock` as the thread's sim clock for the guard's lifetime,
// restoring the previous value on exit (so nested Run/RunUntil of different
// schedulers unwind correctly).
class ScopedSimClock {
 public:
  explicit ScopedSimClock(const SimTime* clock)
      : previous_(ThreadSimClock()) {
    ThreadSimClock() = clock;
  }
  ~ScopedSimClock() { ThreadSimClock() = previous_; }
  ScopedSimClock(const ScopedSimClock&) = delete;
  ScopedSimClock& operator=(const ScopedSimClock&) = delete;

 private:
  const SimTime* previous_;
};

}  // namespace internal

#define DCRD_LOG(level)                                                     \
  ::dcrd::internal::LogMessage(::dcrd::LogLevel::level, __FILE__, __LINE__) \
      .stream()

#define DCRD_CHECK(cond)                                                  \
  while (!(cond))                                                         \
  ::dcrd::internal::CheckMessage(#cond, __FILE__, __LINE__).stream()

}  // namespace dcrd
