// Strongly-typed identifiers used across the DCRD codebase.
//
// Every entity in the simulator (broker node, overlay link, topic, message)
// is referred to by a small dense integer id. Using distinct wrapper types
// instead of bare ints prevents the classic bug of passing a LinkId where a
// NodeId is expected; the wrappers compile down to plain integers.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace dcrd {

// CRTP base for a dense integer id. `Tag` makes each instantiation a
// distinct type; `underlying()` exposes the raw value for indexing vectors.
template <typename Tag>
class DenseId {
 public:
  using underlying_type = std::uint32_t;

  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();

  constexpr DenseId() = default;
  constexpr explicit DenseId(underlying_type value) : value_(value) {}

  [[nodiscard]] constexpr underlying_type underlying() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(DenseId, DenseId) = default;

  friend std::ostream& operator<<(std::ostream& os, DenseId id) {
    if (!id.valid()) return os << Tag::prefix() << "<invalid>";
    return os << Tag::prefix() << id.value_;
  }

 private:
  underlying_type value_ = kInvalid;
};

struct NodeTag {
  static constexpr const char* prefix() { return "n"; }
};
struct LinkTag {
  static constexpr const char* prefix() { return "l"; }
};
struct TopicTag {
  static constexpr const char* prefix() { return "t"; }
};

// Overlay broker node.
using NodeId = DenseId<NodeTag>;
// Directed overlay link (each undirected adjacency yields two LinkIds).
using LinkId = DenseId<LinkTag>;
// Pub/sub topic.
using TopicId = DenseId<TopicTag>;

// Messages are numbered globally in publish order; 64 bits so a multi-hour
// simulation with thousands of publishers cannot wrap.
struct MessageId {
  std::uint64_t value = std::numeric_limits<std::uint64_t>::max();

  constexpr MessageId() = default;
  constexpr explicit MessageId(std::uint64_t v) : value(v) {}
  [[nodiscard]] constexpr bool valid() const {
    return value != std::numeric_limits<std::uint64_t>::max();
  }
  friend constexpr auto operator<=>(MessageId, MessageId) = default;
  friend std::ostream& operator<<(std::ostream& os, MessageId id) {
    return os << "m" << id.value;
  }
};

}  // namespace dcrd

namespace std {
template <typename Tag>
struct hash<dcrd::DenseId<Tag>> {
  size_t operator()(dcrd::DenseId<Tag> id) const noexcept {
    return std::hash<typename dcrd::DenseId<Tag>::underlying_type>{}(
        id.underlying());
  }
};
template <>
struct hash<dcrd::MessageId> {
  size_t operator()(dcrd::MessageId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
}  // namespace std
