// Hierarchical timer wheel: the scheduler's near-horizon event tier.
//
// A three-level, 2048-slot-per-level wheel over the simulator's microsecond
// ticks (the structure lokinet/i2pd run for their RTO and reconnect
// timers). Level 0 buckets are exact microsecond ticks; level L buckets
// span 2048^L ticks. An event goes into the *lowest* level whose current
// rotation contains its expiry — equivalently, the lowest L where the
// expiry shares the clock's bit prefix above the level's 11 slot bits — so
// insert, cancel-by-staleness and advance are all O(1), with no comparison
// sorting anywhere. The wide levels are deliberate: level 1 alone spans
// ~4.2 simulated seconds, so the RTO/probe/epoch population (tens of
// microseconds to a few seconds out) pays exactly one cascade hop before
// dispatch, and the per-level occupancy bitmap keeps the wider slot scans
// at a handful of 64-bit word loads. Together the three levels cover 2^33
// us (~2.4 hours) ahead of the clock — past the paper-scale 2h figure runs
// — and anything beyond that horizon is the caller's problem (the
// Scheduler keeps a binary-heap overflow tier and migrates entries down as
// the horizon advances).
//
// Determinism contract (load-bearing — the figure byte-identity gate sits
// on it): every entry carries a canonical ordering key (k1, k2) that is a
// pure function of the event's content, not of insertion order (see
// event/scheduler.h). Entries of one exact tick must be yielded in
// ascending key order. Buckets are appended FIFO, which keeps the common
// case — keys arriving already ordered, because local scheduling assigns
// monotone keys — free; PopNext sorts the detached level-0 run only when a
// cross-shard injection landed out of order (same-tick runs are one to a
// handful of entries, so the occasional sort is a few compares on a scratch
// index vector with retained capacity). PopNext enforces strict (tick, k1,
// k2) monotonicity per yield — a violated contract fails loudly rather than
// silently reordering a figure run.
//
// Horizon-bounded draining: PopNextBefore(limit) refuses to detach a
// level-0 bucket or cascade into a block at or past `limit`. The sharded
// engine's window loop uses this so the wheel clock never runs ahead of a
// synchronization horizon — a bucket whose tick is still reachable by a
// cross-shard injection is never mid-yield when the injection arrives.
//
// Memory: nodes live in fixed-size pooled slabs recycled through a free
// list — slab growth never relocates live nodes (no vector-doubling copy),
// and cascading relinks nodes between buckets without touching the pool, so
// the wheel performs zero heap allocations once the pool has grown to the
// simulation's in-flight high-water mark (enforced by alloc_test).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.h"

namespace dcrd {

template <typename Payload>
class TimerWheel {
 public:
  static constexpr int kLevels = 3;
  static constexpr int kSlotBits = 11;
  static constexpr std::uint32_t kSlots = 1u << kSlotBits;
  // Ticks covered ahead of current(): same top prefix above 33 bits.
  static constexpr int kHorizonBits = kSlotBits * kLevels;

  struct Entry {
    std::int64_t at = 0;
    std::uint64_t k1 = 0;  // canonical ordering key, major word
    std::uint64_t k2 = 0;  // canonical ordering key, minor word
    Payload payload{};
  };

  TimerWheel() = default;
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::int64_t current() const { return current_; }

  // Pre-grows the node pool to hold `n` in-flight entries.
  void Reserve(std::size_t n) {
    const std::size_t want = (n + kPoolChunkSize - 1) >> kPoolChunkShift;
    pool_.reserve(want);
    while (pool_.size() < want) {
      pool_.push_back(std::make_unique_for_overwrite<Node[]>(kPoolChunkSize));
    }
  }

  // True when `at` falls inside the wheel's horizon: the three levels only
  // index ticks sharing the clock's prefix above kHorizonBits. `at` ticks
  // beyond that belong in the caller's overflow tier until the clock
  // advances into their block.
  [[nodiscard]] bool Accepts(std::int64_t at) const {
    return (at >> kHorizonBits) == (current_ >> kHorizonBits) &&
           at >= current_;
  }

  // Inserts an entry expiring at tick `at` (must satisfy Accepts), carrying
  // its canonical ordering key (k1, k2).
  void Insert(std::int64_t at, std::uint64_t k1, std::uint64_t k2,
              const Payload& payload) {
    DCRD_CHECK(Accepts(at)) << "tick " << at << " outside wheel horizon @"
                            << current_;
    (void)TryInsert(at, k1, k2, payload);
  }

  // Insert iff `at` is inside the horizon; the horizon test and the level
  // selection share one xor, which is why the scheduler's enqueue fast
  // path calls this instead of Accepts-then-Insert.
  bool TryInsert(std::int64_t at, std::uint64_t k1, std::uint64_t k2,
                 const Payload& payload) {
    const std::uint64_t diff = static_cast<std::uint64_t>(at ^ current_);
    if ((diff >> kHorizonBits) != 0 || at < current_) return false;
    const int level =
        diff == 0 ? 0 : (63 - __builtin_clzll(diff)) / kSlotBits;
    const std::uint32_t node = AcquireNode();
    Node& n = NodeAt(node);
    n.at = at;
    n.k1 = k1;
    n.k2 = k2;
    n.payload = payload;
    n.next = kNil;
    Link(level, SlotOf(at, level), node);
    ++size_;
    return true;
  }

  // Moves the clock to `tick` without draining anything. Only legal while
  // the wheel is empty (used when the caller jumps to its overflow tier's
  // front); jumping over live entries would strand them behind the clock.
  void JumpTo(std::int64_t tick) {
    DCRD_CHECK(empty()) << "JumpTo over " << size_ << " live entries";
    current_ = tick;
  }

  // Yields the next pending entry in (tick, k1, k2) order, advancing the
  // clock — cascading higher-level buckets down as rotation boundaries are
  // crossed — as needed. Returns false when the wheel is empty. The common
  // case (the level-0 bucket detached by the previous call still has
  // entries, or the very next slot is occupied) is a handful of loads. The
  // node is freed before returning, so a same-tick re-insert made by the
  // caller reuses it without growing the pool; such re-inserts land in the
  // (already detached) current slot's bucket and are yielded after the
  // detached run — correct, because an event created during the tick's own
  // dispatch carries a key that sorts after every pending entry of that
  // tick (its scheduling time IS the tick; see event/scheduler.h).
  bool PopNext(Entry* out) { return PopNextBefore(INT64_MAX, out); }

  // PopNext, refusing to advance into ticks >= `limit`: no bucket at or
  // past the limit is detached and no cascade enters a block starting at or
  // past it, so entries there stay insertable-next-to (the sharded engine's
  // cross-shard injections land at ticks >= the window horizon). Returns
  // false when nothing strictly before `limit` is pending — the clock then
  // rests strictly below `limit`.
  bool PopNextBefore(std::int64_t limit, Entry* out) {
    while (cursor_ == kNil) {
      if (size_ == 0) return false;
      // Level 0: the slot holding current() is still eligible (same-tick
      // re-arms land there); higher levels exclude the clock's own slot,
      // which by the cascade invariant is already empty.
      const int slot0 = FindOccupied(0, static_cast<std::uint32_t>(
                                            current_ & (kSlots - 1)));
      if (slot0 >= 0) {
        const std::int64_t tick =
            (current_ & ~static_cast<std::int64_t>(kSlots - 1)) | slot0;
        if (tick >= limit) return false;
        current_ = tick;
        cursor_ = Detach(0, static_cast<std::uint32_t>(slot0));
        SortCursorRun();
        break;
      }
      bool cascaded = false;
      for (int level = 1; level < kLevels; ++level) {
        const std::uint32_t slot = SlotOf(current_, level);
        const int next = FindOccupied(level, slot + 1);
        if (next < 0) continue;
        // Enter the bucket's block: move the clock to the block start and
        // relink every entry into its (strictly lower) new level.
        const std::int64_t block =
            ~((static_cast<std::int64_t>(1) << (kSlotBits * (level + 1))) -
              1);
        const std::int64_t block_start =
            (current_ & block) |
            (static_cast<std::int64_t>(next) << (kSlotBits * level));
        if (block_start >= limit) return false;
        current_ = block_start;
        Cascade(level, static_cast<std::uint32_t>(next));
        cascaded = true;
        break;
      }
      DCRD_CHECK(cascaded) << "non-empty wheel with no reachable bucket";
    }
    const std::uint32_t node = cursor_;
    Node& n = NodeAt(node);
    out->at = n.at;
    out->k1 = n.k1;
    out->k2 = n.k2;
    out->payload = n.payload;
    cursor_ = n.next;
    n.next = free_head_;
    free_head_ = node;
    DCRD_CHECK(size_ > 0);
    --size_;
    // The determinism contract, enforced instead of assumed: entries must
    // come out in strictly ascending (tick, k1, k2) order. Fails loudly
    // rather than silently reordering a figure run.
    DCRD_CHECK(out->at > last_at_ ||
               (out->at == last_at_ &&
                (out->k1 > last_k1_ ||
                 (out->k1 == last_k1_ && out->k2 > last_k2_))))
        << "intra-tick key order violated at tick " << out->at;
    last_at_ = out->at;
    last_k1_ = out->k1;
    last_k2_ = out->k2;
    return true;
  }

  // Earliest linked tick without mutating anything: no detach, no cascade,
  // no clock movement. Stale (cancelled) entries are indistinguishable from
  // live ones here, so the result is a conservative lower bound on the next
  // live expiry — exactly what the sharded engine's window computation
  // needs. Returns false when the wheel is empty.
  bool PeekNextAt(std::int64_t* out) const {
    if (size_ == 0) return false;
    if (cursor_ != kNil) {
      *out = NodeAt(cursor_).at;
      return true;
    }
    const int slot0 = FindOccupied(0, static_cast<std::uint32_t>(
                                          current_ & (kSlots - 1)));
    if (slot0 >= 0) {
      *out = (current_ & ~static_cast<std::int64_t>(kSlots - 1)) | slot0;
      return true;
    }
    for (int level = 1; level < kLevels; ++level) {
      const std::uint32_t slot = SlotOf(current_, level);
      const int next = FindOccupied(level, slot + 1);
      if (next < 0) continue;
      // The earliest occupied bucket of the lowest non-empty level bounds
      // every later bucket; the exact minimum still needs a walk because
      // entries within a wide bucket are unordered.
      std::int64_t best = INT64_MAX;
      for (std::uint32_t node =
               buckets_[level][static_cast<std::uint32_t>(next)].head;
           node != kNil; node = NodeAt(node).next) {
        if (NodeAt(node).at < best) best = NodeAt(node).at;
      }
      *out = best;
      return true;
    }
    DCRD_CHECK(false) << "non-empty wheel with no reachable bucket";
    return false;
  }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Node {
    std::int64_t at;
    std::uint64_t k1;
    std::uint64_t k2;
    Payload payload;
    std::uint32_t next;
  };

  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  [[nodiscard]] static std::uint32_t SlotOf(std::int64_t at, int level) {
    return static_cast<std::uint32_t>(at >> (kSlotBits * level)) &
           (kSlots - 1);
  }

  // Lowest level whose current rotation contains `at`: the expiry and the
  // clock agree on every bit above the level's slot field. One xor + bit
  // scan instead of a per-level loop — this runs once per insert and once
  // per cascade relink.
  [[nodiscard]] int LevelFor(std::int64_t at) const {
    const std::uint64_t diff =
        static_cast<std::uint64_t>(at ^ current_);
    if (diff == 0) return 0;
    const int high = 63 - __builtin_clzll(diff);
    const int level = high / kSlotBits;
    DCRD_CHECK(level < kLevels)
        << "tick " << at << " outside horizon @" << current_;
    return level;
  }

  [[nodiscard]] Node& NodeAt(std::uint32_t node) {
    return pool_[node >> kPoolChunkShift][node & (kPoolChunkSize - 1)];
  }

  [[nodiscard]] const Node& NodeAt(std::uint32_t node) const {
    return pool_[node >> kPoolChunkShift][node & (kPoolChunkSize - 1)];
  }

  // Restores ascending (k1, k2) order over the just-detached level-0 run.
  // Local scheduling appends monotone keys, so the single ordered-check
  // pass almost always exits without sorting; only a cross-shard injection
  // that landed between lower-keyed local entries pays the sort. Sorting
  // an index vector (retained capacity) and relinking keeps the node pool
  // untouched. Keys are unique — (k1, k2) encodes the event's origin and a
  // per-origin counter — so plain sort suffices.
  void SortCursorRun() {
    bool ordered = true;
    for (std::uint32_t node = cursor_; node != kNil;) {
      const std::uint32_t next = NodeAt(node).next;
      if (next != kNil) {
        const Node& a = NodeAt(node);
        const Node& b = NodeAt(next);
        if (a.k1 > b.k1 || (a.k1 == b.k1 && a.k2 > b.k2)) {
          ordered = false;
          break;
        }
      }
      node = next;
    }
    if (ordered) return;
    sort_scratch_.clear();
    for (std::uint32_t node = cursor_; node != kNil;
         node = NodeAt(node).next) {
      sort_scratch_.push_back(node);
    }
    std::sort(sort_scratch_.begin(), sort_scratch_.end(),
              [this](std::uint32_t x, std::uint32_t y) {
                const Node& a = NodeAt(x);
                const Node& b = NodeAt(y);
                return a.k1 < b.k1 || (a.k1 == b.k1 && a.k2 < b.k2);
              });
    for (std::size_t i = 0; i + 1 < sort_scratch_.size(); ++i) {
      NodeAt(sort_scratch_[i]).next = sort_scratch_[i + 1];
    }
    NodeAt(sort_scratch_.back()).next = kNil;
    cursor_ = sort_scratch_.front();
  }

  std::uint32_t AcquireNode() {
    if (free_head_ != kNil) {
      const std::uint32_t node = free_head_;
      free_head_ = NodeAt(node).next;
      return node;
    }
    const std::uint32_t node = pool_size_;
    if ((node >> kPoolChunkShift) == pool_.size()) {
      pool_.push_back(std::make_unique_for_overwrite<Node[]>(kPoolChunkSize));
    }
    ++pool_size_;
    return node;
  }

  void Link(int level, std::uint32_t slot, std::uint32_t node) {
    Bucket& bucket = buckets_[level][slot];
    if (bucket.head == kNil) {
      bucket.head = node;
    } else {
      NodeAt(bucket.tail).next = node;
    }
    bucket.tail = node;
    occupied_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63);
    summary_[level] |= std::uint32_t{1} << (slot >> 6);
  }

  // First occupied slot >= from at `level`, or -1. The per-level summary
  // word (bit w = occupancy word w nonempty) turns the sparse-wheel scan —
  // up to 32 word loads when 10k timers spread over a million ticks —
  // into two bit scans.
  [[nodiscard]] int FindOccupied(int level, std::uint32_t from) const {
    if (from >= kSlots) return -1;
    std::uint32_t word = from >> 6;
    std::uint64_t bits =
        occupied_[level][word] & (~std::uint64_t{0} << (from & 63));
    if (bits == 0) {
      const std::uint32_t later =
          summary_[level] & (~std::uint32_t{1} << word);
      if (later == 0) return -1;
      word = static_cast<std::uint32_t>(__builtin_ctz(later));
      bits = occupied_[level][word];
    }
    return static_cast<int>(
        word * 64 + static_cast<std::uint32_t>(__builtin_ctzll(bits)));
  }

  // Detaches a bucket's list and returns its head; clears the occupancy bit.
  std::uint32_t Detach(int level, std::uint32_t slot) {
    Bucket& bucket = buckets_[level][slot];
    const std::uint32_t head = bucket.head;
    bucket.head = bucket.tail = kNil;
    std::uint64_t& word = occupied_[level][slot >> 6];
    word &= ~(std::uint64_t{1} << (slot & 63));
    if (word == 0) {
      summary_[level] &= ~(std::uint32_t{1} << (slot >> 6));
    }
    return head;
  }

  // Relinks every entry of a level>=1 bucket into its new (lower) level.
  // Walking head->tail preserves FIFO order in every target bucket, which
  // preserves the common already-key-ordered case (see the header's
  // determinism contract); SortCursorRun repairs the rest at detach.
  void Cascade(int level, std::uint32_t slot) {
    std::uint32_t node = Detach(level, slot);
    while (node != kNil) {
      const std::uint32_t next = NodeAt(node).next;
      NodeAt(node).next = kNil;
      const int new_level = LevelFor(NodeAt(node).at);
      DCRD_CHECK(new_level < level);
      Link(new_level, SlotOf(NodeAt(node).at, new_level), node);
      node = next;
    }
  }

  static_assert(kSlots / 64 <= 32, "summary word must cover a level");

  Bucket buckets_[kLevels][kSlots];
  std::uint64_t occupied_[kLevels][kSlots / 64] = {};
  // Bit w set iff occupied_[level][w] != 0: FindOccupied's fast path.
  std::uint32_t summary_[kLevels] = {};
  // 1024 nodes per slab: growth allocates a slab, never relocates nodes.
  static constexpr std::uint32_t kPoolChunkShift = 10;
  static constexpr std::uint32_t kPoolChunkSize = 1u << kPoolChunkShift;
  std::vector<std::unique_ptr<Node[]>> pool_;
  std::uint32_t pool_size_ = 0;  // nodes handed out (free or linked)
  std::uint32_t free_head_ = kNil;
  // Detached level-0 list currently being yielded by PopNext. Counted in
  // size_ until yielded (so empty()/JumpTo stay honest about them).
  std::uint32_t cursor_ = kNil;
  std::size_t size_ = 0;
  std::int64_t current_ = 0;
  // Last yielded (tick, k1, k2): backs the strict-order check in PopNext.
  std::int64_t last_at_ = -1;
  std::uint64_t last_k1_ = 0;
  std::uint64_t last_k2_ = 0;
  // Index scratch for SortCursorRun; capacity retained across sorts.
  std::vector<std::uint32_t> sort_scratch_;
};

}  // namespace dcrd
