// Fixed-capacity, non-allocating callable — the engine's callback type.
//
// The scheduler and transport hot paths create and destroy millions of
// callbacks per figure run. std::function heap-allocates any capture larger
// than its small-object buffer (16 bytes on libstdc++), and that allocation
// is the single largest per-event cost. InlineFunction stores the callable
// in a fixed inline buffer and has *no heap fallback*: a capture that does
// not fit is a compile error, so the zero-allocation property of the event
// engine is enforced at build time rather than hoped for. Keep captures
// small — ids and pointers, not payloads; bulk state (e.g. an in-flight
// Packet) belongs in a pooled slab (see slot_map.h) with the handle in the
// capture.
//
// Move-only, like the closures it carries. The stored callable must be
// nothrow-move-constructible so SlotMap slabs can grow without a throwing
// relocate.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dcrd {

// Default inline budget. 48 bytes fits every engine capture: a `this`
// pointer plus a handful of ids/times (see the static_asserts at each call
// site that fail loudly if a capture outgrows it).
inline constexpr std::size_t kInlineFunctionCapacity = 48;

template <typename Signature, std::size_t Capacity = kInlineFunctionCapacity>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  // Implicit by design: call sites pass lambdas exactly as they passed them
  // to std::function.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<R, Fn&, Args...>,
                  "callable signature mismatch");
    static_assert(sizeof(Fn) <= Capacity,
                  "capture exceeds the inline budget — shrink the capture or "
                  "move bulk state into a pooled slab (slot_map.h)");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned capture");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "capture must be nothrow-movable (slab growth relocates)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    vtable_ = &kVTable<Fn>;
  }

  // Constructs a callable directly in the inline buffer, replacing any
  // previous one. Equivalent to `*this = InlineFunction(std::forward<F>(f))`
  // minus the temporary's relocate — the scheduler's hot path assigns
  // millions of callbacks per figure run into recycled slab slots, where
  // the extra indirect relocate call showed up in the event-queue bench.
  template <typename F>
  void Assign(F&& f) {
    if constexpr (std::is_same_v<std::decay_t<F>, InlineFunction>) {
      *this = std::forward<F>(f);
    } else {
      using Fn = std::decay_t<F>;
      static_assert(std::is_invocable_r_v<R, Fn&, Args...>,
                    "callable signature mismatch");
      static_assert(sizeof(Fn) <= Capacity,
                    "capture exceeds the inline budget — shrink the capture "
                    "or move bulk state into a pooled slab (slot_map.h)");
      static_assert(alignof(Fn) <= alignof(std::max_align_t),
                    "over-aligned capture");
      static_assert(std::is_nothrow_move_constructible_v<Fn>,
                    "capture must be nothrow-movable (slab growth relocates)");
      Reset();
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vtable_ = &kVTable<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  InlineFunction& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  [[nodiscard]] explicit operator bool() const { return vtable_ != nullptr; }

  R operator()(Args... args) {
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    // Move-constructs dst from src, then destroys src's object.
    void (*relocate)(void* dst, void* src) noexcept;
    // nullptr for trivially destructible callables — the overwhelmingly
    // common capture shape (ids and pointers) — so the per-event Reset in
    // the scheduler's dispatch loop is a load and a predicted branch, not
    // an indirect call to an empty function.
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr VTable kVTable = {
      [](void* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(s)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* s) noexcept {
              std::launder(reinterpret_cast<Fn*>(s))->~Fn();
            },
  };

  void MoveFrom(InlineFunction& other) noexcept {
    if (other.vtable_ == nullptr) return;
    other.vtable_->relocate(storage_, other.storage_);
    vtable_ = other.vtable_;
    other.vtable_ = nullptr;
  }

  void Reset() noexcept {
    if (vtable_ != nullptr) {
      if (vtable_->destroy != nullptr) vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const VTable* vtable_ = nullptr;
};

}  // namespace dcrd
