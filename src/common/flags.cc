#include "common/flags.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string_view>

#include "common/logging.h"

namespace dcrd {

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      flags.passthrough_.emplace_back(arg);
      continue;
    }
    if (arg.starts_with("--benchmark_")) {
      flags.passthrough_.emplace_back(arg);
      continue;
    }
    std::string_view body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string_view::npos) {
      flags.values_[std::string(body.substr(0, eq))] =
          std::string(body.substr(eq + 1));
      continue;
    }
    // `--name value` form only when the next token is not itself a flag.
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      flags.values_[std::string(body)] = argv[++i];
    } else {
      flags.values_[std::string(body)] = "true";
    }
  }
  return flags;
}

void Flags::RecordQuery(const std::string& name) const {
  DCRD_CHECK(!sealed_)
      << "flag --" << name
      << " queried after Seal(); read the whole configuration before shard "
         "or worker threads start";
  const std::thread::id self = std::this_thread::get_id();
  if (query_thread_ == std::thread::id{}) query_thread_ = self;
  DCRD_CHECK(query_thread_ == self)
      << "Flags queried from multiple threads; read the whole configuration "
         "before starting worker threads (flag --" << name << ")";
  queried_.insert(name);
}

bool Flags::Has(const std::string& name) const {
  RecordQuery(name);
  return values_.contains(name);
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  RecordQuery(name);
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::GetInt(const std::string& name,
                           std::int64_t fallback) const {
  RecordQuery(name);
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  RecordQuery(name);
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  RecordQuery(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::vector<std::string> Flags::UnqueriedFlags() const {
  std::vector<std::string> unqueried;
  for (const auto& [name, value] : values_) {
    if (!queried_.contains(name)) unqueried.push_back(name);
  }
  return unqueried;
}

void Flags::ExitOnUnqueried() const {
  const std::vector<std::string> unqueried = UnqueriedFlags();
  if (unqueried.empty()) {
    // Configuration is complete and clean: seal, so a stray flag read
    // after worker/shard threads exist aborts instead of racing.
    Seal();
    return;
  }
  for (const std::string& name : unqueried) {
    DCRD_LOG(kError) << "unknown flag --" << name;
  }
  std::exit(2);
}

std::vector<std::string> Flags::UnknownFlags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      unknown.push_back(name);
    }
  }
  return unknown;
}

}  // namespace dcrd
