// Generation-checked slot map: the engine's pooled-storage primitive.
//
// A SlotMap hands out dense integer slots from a slab, recycling freed
// slots through an intrusive free list. Every slot carries a generation
// counter, bumped on release; a Handle is {slot, generation}, so a stale
// handle — one whose slot has since been released or re-acquired — is
// rejected by a single compare instead of a hash lookup. This is the
// classic slot-map / versioned-index design from DES engines and entity
// systems, and it replaces the `unordered_map<id, state>` pattern on every
// hot path (scheduler actions, in-flight transport copies).
//
// Recycle semantics — deliberate, and the reason the engine is
// allocation-free in steady state: values are default-constructed once when
// the slab grows and are NOT destroyed on Release. Acquire returns the slot
// with the previous tenant's value still in place, so members that own heap
// capacity (vectors inside a Packet, say) keep that capacity across reuse;
// the caller overwrites fields by assignment. Callers that hold resources
// which must not outlive the tenancy (callbacks owning shared_ptrs) reset
// those members explicitly before Release.
//
// The slab is chunked (fixed-size chunks, never reallocated), so growing it
// never move-constructs existing values — growth cost is one chunk
// allocation, not an O(n) relocation of every live callback — and the
// address of a value is stable for the whole map lifetime. Note the slot
// itself is still recycled: a pointer from Get() must not be used past the
// slot's Release, because a re-acquire overwrites the value in place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace dcrd {

// Handle into a SlotMap. Default-constructed handles refer to nothing and
// are never valid for any map. 32-bit generations wrap after 4 billion
// reuses of one slot — far beyond any simulation's event count per slot.
struct SlotHandle {
  static constexpr std::uint32_t kInvalidSlot = 0xFFFFFFFFu;

  std::uint32_t slot = kInvalidSlot;
  std::uint32_t generation = 0;

  [[nodiscard]] bool valid() const { return slot != kInvalidSlot; }
  friend bool operator==(SlotHandle, SlotHandle) = default;
};

template <typename T>
class SlotMap {
 public:
  SlotMap() = default;
  SlotMap(const SlotMap&) = delete;
  SlotMap& operator=(const SlotMap&) = delete;
  // Chunks are raw storage; values are placement-constructed the first
  // time their slot is acquired (not when the chunk is allocated — a
  // simulation that churns schedulers would otherwise pay a full-slab
  // default-construction sweep per instance) and destroyed here, where
  // every slot below the high-water mark holds a constructed value.
  ~SlotMap() {
    for (std::size_t slot = 0; slot < meta_.size(); ++slot) {
      Value(slot)->~T();
    }
  }

  // Number of live (acquired) slots.
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }
  // Slab capacity (live + free slots); monotone over the map's lifetime.
  [[nodiscard]] std::size_t slab_size() const { return meta_.size(); }

  void Reserve(std::size_t n) {
    meta_.reserve(n);
    chunks_.reserve((n + kChunkSize - 1) >> kChunkShift);
  }

 private:
  // The value living in `slot` (which must have been acquired at least
  // once, so its T is constructed).
  [[nodiscard]] T* Value(std::size_t slot) {
    return reinterpret_cast<T*>(chunks_[slot >> kChunkShift].get()) +
           (slot & kChunkMask);
  }

 public:

  // Acquires a slot and returns its handle. The value is recycled from the
  // slot's previous tenant (or default-constructed on first use); the
  // caller overwrites it via Get().
  SlotHandle Acquire() {
    std::uint32_t slot;
    if (free_head_ != SlotHandle::kInvalidSlot) {
      slot = free_head_;
      free_head_ = meta_[slot].next_free;
    } else {
      slot = static_cast<std::uint32_t>(meta_.size());
      DCRD_CHECK(slot != SlotHandle::kInvalidSlot) << "slot map exhausted";
      if ((slot >> kChunkShift) == chunks_.size()) {
        chunks_.push_back(std::make_unique_for_overwrite<std::byte[]>(
            kChunkSize * sizeof(T)));
      }
      meta_.push_back(Meta{1, SlotHandle::kInvalidSlot, false});
      ::new (static_cast<void*>(Value(slot))) T();
    }
    Meta& meta = meta_[slot];
    DCRD_CHECK(!meta.live);
    meta.live = true;
    ++live_;
    return SlotHandle{slot, meta.generation};
  }

  // Acquire + Get fused: also hands back the value pointer, skipping the
  // revalidation a separate Get would repeat. The scheduler's schedule path
  // runs this once per event.
  SlotHandle Acquire(T** value) {
    const SlotHandle handle = Acquire();
    *value = Value(handle.slot);
    return handle;
  }

  // Hints the prefetcher at a handle's metadata and value lines: callers
  // that stage a handle for imminent dispatch overlap the (often cold)
  // loads with their staging bookkeeping.
  void Prefetch(SlotHandle handle) {
    if (handle.slot >= meta_.size()) return;
    __builtin_prefetch(&meta_[handle.slot]);
    __builtin_prefetch(Value(handle.slot));
  }

  // The value for a live handle; nullptr when the handle is stale (its slot
  // was released, possibly re-acquired by a newer tenant) or empty.
  [[nodiscard]] T* Get(SlotHandle handle) {
    if (handle.slot >= meta_.size()) return nullptr;
    const Meta& meta = meta_[handle.slot];
    if (!meta.live || meta.generation != handle.generation) return nullptr;
    return Value(handle.slot);
  }
  [[nodiscard]] const T* Get(SlotHandle handle) const {
    return const_cast<SlotMap*>(this)->Get(handle);
  }

  // Visits the handle of every live slot in slot order. The callback must
  // not Acquire or Release on this map — callers that need to mutate
  // (fail-fast sweeps) collect the handles first and act afterwards, when
  // a handle gone stale in the meantime is rejected by Get as usual.
  template <typename Fn>
  void ForEachLiveHandle(Fn&& fn) const {
    std::size_t remaining = live_;
    for (std::uint32_t slot = 0;
         remaining > 0 && slot < static_cast<std::uint32_t>(meta_.size());
         ++slot) {
      if (!meta_[slot].live) continue;
      --remaining;
      fn(SlotHandle{slot, meta_[slot].generation});
    }
  }

  // Bumps a live handle's generation in place: every outstanding handle to
  // the slot goes stale, but the slot stays live and its value is untouched
  // — no free-list round trip, no value move. This is the cheap re-arm
  // primitive: the scheduler renews a timer's slot instead of releasing and
  // re-acquiring it when the same callback is armed again. Dies on a stale
  // handle.
  SlotHandle Renew(SlotHandle handle) {
    DCRD_CHECK(Get(handle) != nullptr) << "renewing a stale handle";
    Meta& meta = meta_[handle.slot];
    ++meta.generation;
    return SlotHandle{handle.slot, meta.generation};
  }

  // Renew + Get fused into one metadata access: stales every outstanding
  // handle, stores the renewed handle in *renewed, and returns the value
  // pointer. The scheduler's dispatch loop runs this once per event, where
  // the separate Renew-then-Get round trips showed up in the event-queue
  // bench. Dies on a stale handle.
  T* BeginDispatch(SlotHandle handle, SlotHandle* renewed) {
    DCRD_CHECK(handle.slot < meta_.size()) << "dispatching a null handle";
    Meta& meta = meta_[handle.slot];
    DCRD_CHECK(meta.live && meta.generation == handle.generation)
        << "dispatching a stale handle";
    ++meta.generation;
    *renewed = SlotHandle{handle.slot, meta.generation};
    return Value(handle.slot);
  }

  // Releases a live handle's slot back to the free list, bumping the
  // generation so every outstanding handle to it goes stale. Returns false
  // (and does nothing) when the handle is already stale. The value is kept
  // constructed for recycling — see the header comment.
  bool Release(SlotHandle handle) {
    if (Get(handle) == nullptr) return false;
    ReleaseLive(handle);
    return true;
  }

  // Release for a handle the caller has already proven live (e.g. the
  // renewed handle from BeginDispatch, which no one else can have released
  // in the meantime): skips the staleness probe, dies if the claim is
  // wrong.
  void ReleaseLive(SlotHandle handle) {
    DCRD_CHECK(handle.slot < meta_.size());
    Meta& meta = meta_[handle.slot];
    DCRD_CHECK(meta.live && meta.generation == handle.generation)
        << "releasing a stale handle";
    meta.live = false;
    ++meta.generation;
    meta.next_free = free_head_;
    free_head_ = handle.slot;
    DCRD_CHECK(live_ > 0);
    --live_;
  }

 private:
  struct Meta {
    std::uint32_t generation = 1;  // 0 is reserved for null handles
    std::uint32_t next_free = SlotHandle::kInvalidSlot;
    bool live = false;
  };

  // 1024 values per chunk: large enough that chunk allocations vanish past
  // warm-up, small enough that a sparse map doesn't overcommit.
  static constexpr std::uint32_t kChunkShift = 10;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::vector<Meta> meta_;
  std::uint32_t free_head_ = SlotHandle::kInvalidSlot;
  std::size_t live_ = 0;
};

}  // namespace dcrd
