// Tiny command-line flag parser for the experiment binaries and examples.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags are collected so a binary can reject typos; google-benchmark flags
// (--benchmark_*) are passed through untouched.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dcrd {

class Flags {
 public:
  // Parses argv; consumes recognised-looking `--x[=v]` tokens and leaves the
  // rest (including --benchmark_* flags) in `passthrough()`.
  static Flags Parse(int argc, char** argv);

  [[nodiscard]] bool Has(const std::string& name) const;
  [[nodiscard]] std::string GetString(const std::string& name,
                                      const std::string& fallback) const;
  [[nodiscard]] std::int64_t GetInt(const std::string& name,
                                    std::int64_t fallback) const;
  [[nodiscard]] double GetDouble(const std::string& name,
                                 double fallback) const;
  [[nodiscard]] bool GetBool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& passthrough() const {
    return passthrough_;
  }
  // Flags that were parsed but never queried via a Get*/Has call would be
  // typos; binaries may call this after reading their config.
  [[nodiscard]] std::vector<std::string> UnknownFlags(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> passthrough_;
};

}  // namespace dcrd
