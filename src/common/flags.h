// Tiny command-line flag parser for the experiment binaries and examples.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Every
// Has/Get* call records the queried name, so after a binary has read its
// whole configuration it calls ExitOnUnqueried() and any leftover flag — a
// typo like --sedonds — aborts the run instead of silently running the
// default configuration. google-benchmark flags (--benchmark_*) are passed
// through untouched.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace dcrd {

class Flags {
 public:
  // Parses argv; consumes recognised-looking `--x[=v]` tokens and leaves the
  // rest (including --benchmark_* flags) in `passthrough()`.
  static Flags Parse(int argc, char** argv);

  [[nodiscard]] bool Has(const std::string& name) const;
  [[nodiscard]] std::string GetString(const std::string& name,
                                      const std::string& fallback) const;
  [[nodiscard]] std::int64_t GetInt(const std::string& name,
                                    std::int64_t fallback) const;
  [[nodiscard]] double GetDouble(const std::string& name,
                                 double fallback) const;
  [[nodiscard]] bool GetBool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& passthrough() const {
    return passthrough_;
  }
  // Flags parsed but never touched by a Has/Get* call so far. A non-empty
  // result after a binary has read its whole configuration means typos.
  [[nodiscard]] std::vector<std::string> UnqueriedFlags() const;
  // Exits with an error listing UnqueriedFlags() when it is non-empty.
  // Call after the last flag read; every experiment binary does. On a
  // clean pass it also Seal()s the flags, so the sweep pool and engine
  // shards that spin up next can never race a late flag read.
  void ExitOnUnqueried() const;
  // Flags whose names are not in `known` (explicit allow-list variant).
  [[nodiscard]] std::vector<std::string> UnknownFlags(
      const std::vector<std::string>& known) const;

  // Declares configuration reading complete. Call right before the first
  // worker pool or engine shard spins up: any Has/Get* afterwards — even
  // from the pinned thread — aborts, so a flag read can never race the
  // shard workers (the sweep and figure binaries seal after their last
  // read; RunScenario's shard threads then start against a sealed config).
  void Seal() const { sealed_ = true; }
  [[nodiscard]] bool sealed() const { return sealed_; }

 private:
  // Queried-name tracking mutates under const accessors, so Flags is
  // single-threaded by contract: parse and read the whole configuration
  // before any worker pool spins up. The first query pins the owning
  // thread; a query from any other thread is a programmer error and aborts.
  void RecordQuery(const std::string& name) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> passthrough_;
  // Names queried through the const accessors; see header comment.
  mutable std::set<std::string> queried_;
  mutable std::thread::id query_thread_{};  // pinned by the first query
  mutable bool sealed_ = false;             // set by Seal(); queries abort
};

}  // namespace dcrd
