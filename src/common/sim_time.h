// Fixed-point simulated time.
//
// The simulator keeps time as a 64-bit count of microseconds. Integer time
// makes event ordering exact and runs bit-reproducible across platforms,
// which the determinism tests rely on. Link delays in the paper are
// 10-50 ms, failure epochs are 1 s and monitoring epochs 300 s, so
// microsecond resolution leaves ample headroom (2^63 us ~= 292k years).
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace dcrd {

class SimDuration {
 public:
  constexpr SimDuration() = default;

  static constexpr SimDuration Micros(std::int64_t us) {
    return SimDuration(us);
  }
  static constexpr SimDuration Millis(std::int64_t ms) {
    return SimDuration(ms * 1000);
  }
  static constexpr SimDuration Seconds(std::int64_t s) {
    return SimDuration(s * 1'000'000);
  }
  // Converts a floating-point quantity (e.g. a scaled deadline) with
  // round-to-nearest; used only at configuration time, never on hot paths.
  static constexpr SimDuration FromSecondsF(double s) {
    return SimDuration(static_cast<std::int64_t>(s * 1e6 + (s >= 0 ? .5 : -.5)));
  }
  static constexpr SimDuration FromMillisF(double ms) {
    return SimDuration(
        static_cast<std::int64_t>(ms * 1e3 + (ms >= 0 ? .5 : -.5)));
  }
  static constexpr SimDuration Zero() { return SimDuration(0); }
  static constexpr SimDuration Max() {
    return SimDuration(INT64_MAX);
  }

  [[nodiscard]] constexpr std::int64_t micros() const { return us_; }
  [[nodiscard]] constexpr double millis() const { return us_ / 1e3; }
  [[nodiscard]] constexpr double seconds() const { return us_ / 1e6; }

  friend constexpr auto operator<=>(SimDuration, SimDuration) = default;
  friend constexpr SimDuration operator+(SimDuration a, SimDuration b) {
    return SimDuration(a.us_ + b.us_);
  }
  friend constexpr SimDuration operator-(SimDuration a, SimDuration b) {
    return SimDuration(a.us_ - b.us_);
  }
  friend constexpr SimDuration operator*(SimDuration a, std::int64_t k) {
    return SimDuration(a.us_ * k);
  }
  friend constexpr SimDuration operator*(std::int64_t k, SimDuration a) {
    return a * k;
  }
  constexpr SimDuration& operator+=(SimDuration b) {
    us_ += b.us_;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration b) {
    us_ -= b.us_;
    return *this;
  }
  // Ratio of two durations, e.g. lateness / deadline for the Fig.7 CDF.
  [[nodiscard]] constexpr double RatioTo(SimDuration denom) const {
    return static_cast<double>(us_) / static_cast<double>(denom.us_);
  }

  friend std::ostream& operator<<(std::ostream& os, SimDuration d) {
    return os << d.us_ << "us";
  }

 private:
  constexpr explicit SimDuration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

// A point on the simulated timeline (microseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime FromMicros(std::int64_t us) { return SimTime(us); }
  static constexpr SimTime Zero() { return SimTime(0); }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  [[nodiscard]] constexpr std::int64_t micros() const { return us_; }
  [[nodiscard]] constexpr double seconds() const { return us_ / 1e6; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;
  friend constexpr SimTime operator+(SimTime t, SimDuration d) {
    return SimTime(t.us_ + d.micros());
  }
  friend constexpr SimTime operator+(SimDuration d, SimTime t) { return t + d; }
  friend constexpr SimDuration operator-(SimTime a, SimTime b) {
    return SimDuration::Micros(a.us_ - b.us_);
  }
  constexpr SimTime& operator+=(SimDuration d) {
    us_ += d.micros();
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << "@" << t.us_ << "us";
  }

 private:
  constexpr explicit SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace dcrd
