// Seeded, splittable random-number substrate.
//
// Every stochastic subsystem (topology generation, link delays, loss draws,
// failure schedules, workload placement, publish jitter) owns an independent
// Rng derived from the scenario seed plus a component label. This keeps runs
// bit-reproducible and — crucially for the experiments — lets two routing
// algorithms face the *identical* failure/loss sample path, so comparisons
// in the figure harnesses are paired, not merely same-distribution.
//
// The generator is xoshiro256**: tiny state, excellent statistical quality,
// and trivially seedable from splitmix64 per the reference implementation.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace dcrd {

// splitmix64 step; used for seeding and for hashing labels into substreams.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Stateless splitmix64 finalizer: a bijective avalanche mix of one word.
// Building block for the keyed (counter-addressed) draws below.
constexpr std::uint64_t MixU64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Keyed uniform draw in [0, 1): a pure function of (seed, a, b, salt) with
// no stream state. The sharded engine addresses every loss/gray/jitter draw
// by content (directed link + per-link counter, or copy id + transmission
// index) instead of consuming a shared sequential stream, so the value of a
// draw cannot depend on the global interleaving of *other* transmissions —
// which is what makes the sample path independent of the shard partition.
// Chained splitmix finalizers give full avalanche across all four words.
constexpr double KeyedUnit(std::uint64_t seed, std::uint64_t a,
                           std::uint64_t b, std::uint64_t salt) {
  const std::uint64_t h = MixU64(seed ^ MixU64(a ^ MixU64(b ^ MixU64(salt))));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Keyed Bernoulli trial; same purity contract as KeyedUnit.
constexpr bool KeyedBernoulli(double p, std::uint64_t seed, std::uint64_t a,
                              std::uint64_t b, std::uint64_t salt) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return KeyedUnit(seed, a, b, salt) < p;
}

// FNV-1a over a label, mixed through splitmix64; maps component names to
// substream offsets.
constexpr std::uint64_t HashLabel(std::string_view label) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  std::uint64_t s = h;
  return SplitMix64(s);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xD1B54A32D192ED03ULL) {
    std::uint64_t s = seed;
    for (auto& word : state_) word = SplitMix64(s);
  }

  // Derives an independent substream for a named component, e.g.
  // rng.Fork("failures") or rng.Fork("topology", rep).
  [[nodiscard]] Rng Fork(std::string_view label, std::uint64_t index = 0) const {
    std::uint64_t s = state_[0] ^ (state_[2] * 0x9E3779B97F4A7C15ULL);
    s ^= HashLabel(label) + 0x632BE59BD9B4E019ULL * (index + 1);
    return Rng(SplitMix64(s));
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1); 53 random mantissa bits.
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound); Lemire's multiply-shift rejection method.
  std::uint64_t NextBounded(std::uint64_t bound) {
    if (bound <= 1) return 0;
    // 128-bit multiply keeps the distribution exactly uniform.
    while (true) {
      const std::uint64_t x = (*this)();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [lo, hi).
  double NextDoubleInRange(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Bernoulli trial with success probability p.
  bool NextBernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  // Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void Shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBounded(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dcrd
