#include "common/logging.h"

#include <cstdlib>

namespace dcrd {

LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

namespace internal {

const SimTime*& ThreadSimClock() {
  thread_local const SimTime* clock = nullptr;
  return clock;
}

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& extra) {
  std::cerr << "CHECK failed: " << expr << " at " << ComponentPath(file)
            << ":" << line;
  if (const SimTime* clock = ThreadSimClock(); clock != nullptr) {
    std::cerr << " (sim time " << clock->micros() << "us)";
  }
  if (!extra.empty()) std::cerr << " — " << extra;
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace dcrd
