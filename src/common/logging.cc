#include "common/logging.h"

#include <cstdlib>

namespace dcrd {

LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

namespace internal {

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& extra) {
  std::cerr << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!extra.empty()) std::cerr << " — " << extra;
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace dcrd
