// Open-addressing hash containers for the engine's hot paths.
//
// The node-based std::unordered_{map,set} pay one heap allocation per
// insert and a pointer chase per lookup; on id-keyed engine state (dedup
// sets, ACK tombstones) that churn dominates. These containers keep
// everything in two flat arrays (control bytes + slots), probe linearly,
// and erase by backward-shift, so there are no tombstones to accumulate and
// no per-element allocations — after the table reaches its steady-state
// capacity, insert/erase cycles allocate nothing. clear() keeps capacity
// for the same reason.
//
// Keys are the engine's 64-bit ids (copy ids, message ids), mixed through
// a finalizer so sequential ids spread across the table. Not a general
// replacement for unordered_map: keys are value types, iteration order is
// unspecified, and pointers into the table are invalidated by rehash AND
// by erase (backward-shift moves elements).
//
// DenseIndexMap is the degenerate-but-fastest case: keys that are already
// dense small integers (LinkId, NodeId underlyings) index a flat array
// directly — no hashing at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace dcrd {

// Mixes a 64-bit id so consecutive ids probe independent buckets
// (splitmix64 finalizer; full avalanche).
inline std::uint64_t MixId(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

namespace internal {

// Shared open-addressing core over Slot{key, ...} records. Linear probing,
// power-of-two capacity, max load factor 7/8, backward-shift deletion.
template <typename Slot>
class DenseTable {
 public:
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  void clear() {
    std::fill(used_.begin(), used_.end(), 0);
    size_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    // Grow until n fits under the 7/8 load bound.
    while (cap - cap / 8 < n) cap *= 2;
    if (cap > slots_.size()) Rehash(cap);
  }

  // Index of `key`'s slot, or capacity() when absent / table empty.
  [[nodiscard]] std::size_t FindIndex(std::uint64_t key) const {
    if (slots_.empty()) return 0;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(MixId(key)) & mask;
    while (used_[i]) {
      if (slots_[i].key == key) return i;
      i = (i + 1) & mask;
    }
    return slots_.size();
  }

  [[nodiscard]] bool Contains(std::uint64_t key) const {
    const std::size_t i = FindIndex(key);
    return i < slots_.size() && used_[i];
  }

  // Finds or creates the slot for `key`; second is true when inserted.
  std::pair<std::size_t, bool> InsertIndex(std::uint64_t key) {
    if (slots_.empty() || size_ + 1 > slots_.size() - slots_.size() / 8) {
      Rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(MixId(key)) & mask;
    while (used_[i]) {
      if (slots_[i].key == key) return {i, false};
      i = (i + 1) & mask;
    }
    used_[i] = 1;
    slots_[i].key = key;
    ++size_;
    return {i, true};
  }

  // Removes `key` if present (backward-shift: subsequent probe-chain
  // entries move toward their home buckets, so no tombstones exist).
  bool Erase(std::uint64_t key) {
    std::size_t i = FindIndex(key);
    if (i >= slots_.size() || !used_[i]) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t hole = i;
    std::size_t probe = (hole + 1) & mask;
    while (used_[probe]) {
      const std::size_t home =
          static_cast<std::size_t>(MixId(slots_[probe].key)) & mask;
      // Move probe's entry into the hole when the hole lies on the cyclic
      // path from its home bucket to its current position (cyclic distance
      // home->probe covers hole->probe).
      if (((probe - home) & mask) >= ((probe - hole) & mask)) {
        slots_[hole] = std::move(slots_[probe]);
        hole = probe;
      }
      probe = (probe + 1) & mask;
    }
    used_[hole] = 0;
    --size_;
    return true;
  }

  Slot& slot(std::size_t i) { return slots_[i]; }
  const Slot& slot(std::size_t i) const { return slots_[i]; }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  void Rehash(std::size_t new_capacity) {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.assign(new_capacity, Slot{});
    used_.assign(new_capacity, 0);
    size_ = 0;
    const std::size_t mask = new_capacity - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      std::size_t j =
          static_cast<std::size_t>(MixId(old_slots[i].key)) & mask;
      while (used_[j]) j = (j + 1) & mask;
      slots_[j] = std::move(old_slots[i]);
      used_[j] = 1;
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
};

}  // namespace internal

// Set of 64-bit ids.
class DenseIdSet {
 public:
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] bool empty() const { return table_.empty(); }
  void clear() { table_.clear(); }
  void reserve(std::size_t n) { table_.reserve(n); }

  // Returns true when newly inserted (unordered_set::insert().second).
  bool Insert(std::uint64_t key) { return table_.InsertIndex(key).second; }
  [[nodiscard]] bool Contains(std::uint64_t key) const {
    return table_.Contains(key);
  }
  bool Erase(std::uint64_t key) { return table_.Erase(key); }

  friend void swap(DenseIdSet& a, DenseIdSet& b) noexcept {
    std::swap(a.table_, b.table_);
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
  };
  internal::DenseTable<Slot> table_;
};

// Map from 64-bit ids to V. V must be default-constructible and movable.
template <typename V>
class DenseIdMap {
 public:
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] bool empty() const { return table_.empty(); }
  void clear() { table_.clear(); }
  void reserve(std::size_t n) { table_.reserve(n); }

  // Finds or default-creates; second is true when inserted. The returned
  // pointer is invalidated by any later insert or erase.
  std::pair<V*, bool> TryEmplace(std::uint64_t key) {
    const auto [i, inserted] = table_.InsertIndex(key);
    if (inserted) table_.slot(i).value = V{};
    return {&table_.slot(i).value, inserted};
  }

  [[nodiscard]] V* Find(std::uint64_t key) {
    const std::size_t i = table_.FindIndex(key);
    return i < table_.capacity() ? &table_.slot(i).value : nullptr;
  }
  [[nodiscard]] const V* Find(std::uint64_t key) const {
    return const_cast<DenseIdMap*>(this)->Find(key);
  }
  [[nodiscard]] bool Contains(std::uint64_t key) const {
    return table_.Contains(key);
  }
  bool Erase(std::uint64_t key) { return table_.Erase(key); }

 private:
  struct Slot {
    std::uint64_t key = 0;
    V value{};
  };
  internal::DenseTable<Slot> table_;
};

// Flat array keyed by an already-dense small-integer id (link ids, node
// ids). Grows to the largest index touched; presence is tracked per entry
// so "no state yet for this id" stays distinguishable from a default value.
template <typename V>
class DenseIndexMap {
 public:
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void reserve(std::size_t n) {
    values_.reserve(n);
    present_.reserve(n);
  }

  std::pair<V*, bool> TryEmplace(std::size_t index) {
    if (index >= values_.size()) {
      values_.resize(index + 1);
      present_.resize(index + 1, 0);
    }
    const bool inserted = present_[index] == 0;
    if (inserted) {
      present_[index] = 1;
      values_[index] = V{};
      ++size_;
    }
    return {&values_[index], inserted};
  }

  [[nodiscard]] V* Find(std::size_t index) {
    if (index >= values_.size() || present_[index] == 0) return nullptr;
    return &values_[index];
  }
  [[nodiscard]] const V* Find(std::size_t index) const {
    return const_cast<DenseIndexMap*>(this)->Find(index);
  }
  [[nodiscard]] bool Contains(std::size_t index) const {
    return Find(index) != nullptr;
  }

 private:
  std::vector<V> values_;
  std::vector<std::uint8_t> present_;
  std::size_t size_ = 0;
};

}  // namespace dcrd
