// Overlay topology generators.
//
// The paper's simulation setup (Section IV-A): N broker nodes; "for a given
// link degree, we randomly choose the neighboring nodes"; per-link delays
// drawn uniformly from [10 ms, 50 ms] (range taken from AT&T backbone
// measurements). Two generator families reproduce this: FullMesh (Fig. 2)
// and RandomConnected with a target degree (Figs. 3-8). Ring/Line/Star exist
// for unit tests with hand-checkable answers.
#pragma once

#include "common/rng.h"
#include "common/sim_time.h"
#include "graph/graph.h"

namespace dcrd {

struct DelayRange {
  SimDuration min = SimDuration::Millis(10);
  SimDuration max = SimDuration::Millis(50);
};

// Draws a uniform link delay in [range.min, range.max] at 1 us granularity.
SimDuration DrawLinkDelay(Rng& rng, const DelayRange& range);

// Every pair of nodes directly connected (paper Sec. IV-D1).
Graph FullMesh(std::size_t node_count, Rng& rng,
               const DelayRange& range = {});

// Random connected overlay where every node has degree as close to
// `target_degree` as the random process allows (and at least 2). The
// construction starts from a random Hamiltonian ring — guaranteeing
// connectivity and degree 2 — and then adds random non-parallel edges
// between nodes still below the target until no eligible pair remains.
// Postcondition: connected; max degree == target_degree.
Graph RandomConnected(std::size_t node_count, std::size_t target_degree,
                      Rng& rng, const DelayRange& range = {});

// Deterministic shapes for tests. Delays: fixed `delay` per link.
Graph Ring(std::size_t node_count, SimDuration delay);
Graph Line(std::size_t node_count, SimDuration delay);
Graph Star(std::size_t leaf_count, SimDuration delay);  // node 0 is the hub

}  // namespace dcrd
