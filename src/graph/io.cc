#include "graph/io.h"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

namespace dcrd {

std::string ToDot(const Graph& graph) {
  std::ostringstream os;
  os << "graph overlay {\n";
  os << "  node [shape=circle];\n";
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    os << "  n" << v << ";\n";
  }
  for (const EdgeSpec& edge : graph.edges()) {
    os << "  n" << edge.a.underlying() << " -- n" << edge.b.underlying()
       << " [label=\"" << std::setprecision(3) << edge.delay.millis()
       << "ms\"];\n";
  }
  os << "}\n";
  return os.str();
}

void WriteEdgeList(std::ostream& os, const Graph& graph) {
  os << "# dcrd overlay edge list: node_count, then `a b delay_us` lines\n";
  os << graph.node_count() << "\n";
  for (const EdgeSpec& edge : graph.edges()) {
    os << edge.a.underlying() << " " << edge.b.underlying() << " "
       << edge.delay.micros() << "\n";
  }
}

namespace {

bool IsCommentOrBlank(const std::string& line) {
  for (const char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::optional<Graph> Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return std::nullopt;
}

}  // namespace

std::optional<Graph> ReadEdgeList(std::istream& is, std::string* error) {
  std::string line;
  std::optional<Graph> graph;
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream fields(line);
    if (!graph.has_value()) {
      std::int64_t node_count = 0;
      if (!(fields >> node_count) || node_count <= 0) {
        return Fail(error, "line " + std::to_string(line_number) +
                               ": expected positive node count");
      }
      graph.emplace(static_cast<std::size_t>(node_count));
      continue;
    }
    std::int64_t a = 0, b = 0, delay_us = 0;
    if (!(fields >> a >> b >> delay_us)) {
      return Fail(error, "line " + std::to_string(line_number) +
                             ": expected `a b delay_us`");
    }
    const auto n = static_cast<std::int64_t>(graph->node_count());
    if (a < 0 || a >= n || b < 0 || b >= n) {
      return Fail(error, "line " + std::to_string(line_number) +
                             ": endpoint out of range");
    }
    if (a == b) {
      return Fail(error,
                  "line " + std::to_string(line_number) + ": self-loop");
    }
    if (delay_us <= 0) {
      return Fail(error, "line " + std::to_string(line_number) +
                             ": non-positive delay");
    }
    if (graph->HasEdge(NodeId(static_cast<NodeId::underlying_type>(a)),
                       NodeId(static_cast<NodeId::underlying_type>(b)))) {
      return Fail(error, "line " + std::to_string(line_number) +
                             ": duplicate edge");
    }
    graph->AddEdge(NodeId(static_cast<NodeId::underlying_type>(a)),
                   NodeId(static_cast<NodeId::underlying_type>(b)),
                   SimDuration::Micros(delay_us));
  }
  if (!graph.has_value()) return Fail(error, "empty input");
  return graph;
}

}  // namespace dcrd
