#include "graph/connectivity.h"

#include <deque>

namespace dcrd {

std::vector<bool> ReachableFrom(const Graph& graph, NodeId source,
                                const LinkFilterFn& admit) {
  std::vector<bool> seen(graph.node_count(), false);
  DCRD_CHECK(source.underlying() < graph.node_count());
  std::deque<NodeId> frontier{source};
  seen[source.underlying()] = true;
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop_front();
    for (const Neighbor& nb : graph.neighbors(node)) {
      if (admit && !admit(nb.link)) continue;
      if (!seen[nb.peer.underlying()]) {
        seen[nb.peer.underlying()] = true;
        frontier.push_back(nb.peer);
      }
    }
  }
  return seen;
}

bool IsConnected(const Graph& graph, const LinkFilterFn& admit) {
  if (graph.node_count() == 0) return true;
  const auto seen = ReachableFrom(graph, NodeId(0), admit);
  for (bool s : seen) {
    if (!s) return false;
  }
  return true;
}

}  // namespace dcrd
