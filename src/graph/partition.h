// Deterministic static partitioning of the overlay graph across engine
// shards.
//
// The sharded engine (sim/engine.cc, DESIGN.md §12) assigns every broker to
// exactly one shard; a shard simulates its brokers' events and hands
// cross-shard transmissions through exchange queues. Two properties matter:
//
//  * Determinism: the assignment must be a pure function of the topology —
//    never of thread timing or shard count-dependent RNG draws — because the
//    byte-identity gate compares runs across shard counts, and because every
//    shard independently recomputes the same map.
//  * Locality: conservative synchronization pays one barrier round per
//    lookahead window, so the fewer edges cross shards (and the longer the
//    delays on those that do), the larger the windows and the cheaper the
//    sync. A BFS layout keeps topological neighbourhoods together, which is
//    as close to min-cut as a linear-time heuristic gets on the paper's
//    random-degree overlays.
//
// The partition *choice* can never change simulation results — only wall
// clock. RoundRobinPartition deliberately maximises the cut so tests can
// prove that (adversarial-partition bit-identity).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dcrd {

// Owner shard per node (index = node id), balanced to within one node:
// nodes are laid out in deterministic BFS order from node 0 (unvisited
// components appended by ascending id) and the order is cut into
// `shard_count` contiguous blocks. shard_count must be >= 1; it is clamped
// to node_count so no shard is empty.
[[nodiscard]] std::vector<int> BfsContiguousPartition(const Graph& graph,
                                                      int shard_count);

// Adversarial layout: node i -> shard i % shard_count, putting essentially
// every edge across a shard boundary. Exists for tests proving that the
// partition choice cannot perturb results.
[[nodiscard]] std::vector<int> RoundRobinPartition(std::size_t node_count,
                                                   int shard_count);

// Conservative lookahead for a partition: the minimum propagation delay in
// microseconds over edges whose endpoints live on different shards, scaled
// by the worst-case delay shrink the scenario can apply (jitter low side,
// gray delay factors below 1). Returns INT64_MAX when no edge crosses a
// shard boundary. The sharded engine refuses lookaheads below 1us (it
// falls back to one shard) because a zero-width window cannot make
// progress.
[[nodiscard]] std::int64_t MinCrossShardDelayMicros(
    const Graph& graph, const std::vector<int>& owner, double delay_jitter,
    double gray_delay_factor, double gray_probability);

}  // namespace dcrd
