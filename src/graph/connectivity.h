// Reachability helpers: connectivity checks for topology generation and the
// delivery-guarantee property tests ("delivered iff a non-failed path
// exists").
#pragma once

#include <vector>

#include "common/ids.h"
#include "graph/graph.h"
#include "graph/shortest_path.h"

namespace dcrd {

// BFS reachability from `source` over links admitted by `admit` (all links
// when `admit` is null). Result is indexed by node id.
std::vector<bool> ReachableFrom(const Graph& graph, NodeId source,
                                const LinkFilterFn& admit = nullptr);

// True when every node is reachable from node 0 over admitted links.
bool IsConnected(const Graph& graph, const LinkFilterFn& admit = nullptr);

}  // namespace dcrd
