#include "graph/topology.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/connectivity.h"

namespace dcrd {

SimDuration DrawLinkDelay(Rng& rng, const DelayRange& range) {
  return SimDuration::Micros(
      rng.NextInRange(range.min.micros(), range.max.micros()));
}

Graph FullMesh(std::size_t node_count, Rng& rng, const DelayRange& range) {
  Graph graph(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    for (std::size_t j = i + 1; j < node_count; ++j) {
      graph.AddEdge(NodeId(static_cast<NodeId::underlying_type>(i)),
                    NodeId(static_cast<NodeId::underlying_type>(j)),
                    DrawLinkDelay(rng, range));
    }
  }
  return graph;
}

Graph RandomConnected(std::size_t node_count, std::size_t target_degree,
                      Rng& rng, const DelayRange& range) {
  DCRD_CHECK(node_count >= 3);
  DCRD_CHECK(target_degree >= 2);
  DCRD_CHECK(target_degree < node_count);
  Graph graph(node_count);

  // Random Hamiltonian ring: connectivity plus degree 2 for everyone.
  std::vector<std::uint32_t> order(node_count);
  std::iota(order.begin(), order.end(), 0U);
  rng.Shuffle(order);
  for (std::size_t i = 0; i < node_count; ++i) {
    graph.AddEdge(NodeId(order[i]), NodeId(order[(i + 1) % node_count]),
                  DrawLinkDelay(rng, range));
  }

  // Greedy random augmentation: repeatedly pick a random pair of distinct
  // below-target nodes without an existing edge. The candidate pool shrinks
  // monotonically, so this terminates; a small residue of nodes may end one
  // below target when the last below-target nodes are already adjacent.
  std::vector<std::uint32_t> open;  // nodes with degree < target
  for (std::uint32_t v = 0; v < node_count; ++v) {
    if (graph.degree(NodeId(v)) < target_degree) open.push_back(v);
  }
  while (open.size() >= 2) {
    // Collect eligible pairs among open nodes; choose uniformly.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> eligible;
    for (std::size_t i = 0; i < open.size(); ++i) {
      for (std::size_t j = i + 1; j < open.size(); ++j) {
        if (!graph.HasEdge(NodeId(open[i]), NodeId(open[j]))) {
          eligible.emplace_back(open[i], open[j]);
        }
      }
    }
    if (eligible.empty()) break;
    const auto [a, b] =
        eligible[rng.NextBounded(eligible.size())];
    graph.AddEdge(NodeId(a), NodeId(b), DrawLinkDelay(rng, range));
    open.clear();
    for (std::uint32_t v = 0; v < node_count; ++v) {
      if (graph.degree(NodeId(v)) < target_degree) open.push_back(v);
    }
  }

  DCRD_CHECK(IsConnected(graph));
  return graph;
}

Graph Ring(std::size_t node_count, SimDuration delay) {
  DCRD_CHECK(node_count >= 3);
  Graph graph(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    graph.AddEdge(NodeId(static_cast<NodeId::underlying_type>(i)),
                  NodeId(static_cast<NodeId::underlying_type>(
                      (i + 1) % node_count)),
                  delay);
  }
  return graph;
}

Graph Line(std::size_t node_count, SimDuration delay) {
  DCRD_CHECK(node_count >= 2);
  Graph graph(node_count);
  for (std::size_t i = 0; i + 1 < node_count; ++i) {
    graph.AddEdge(NodeId(static_cast<NodeId::underlying_type>(i)),
                  NodeId(static_cast<NodeId::underlying_type>(i + 1)), delay);
  }
  return graph;
}

Graph Star(std::size_t leaf_count, SimDuration delay) {
  DCRD_CHECK(leaf_count >= 1);
  Graph graph(leaf_count + 1);
  for (std::size_t i = 1; i <= leaf_count; ++i) {
    graph.AddEdge(NodeId(0),
                  NodeId(static_cast<NodeId::underlying_type>(i)), delay);
  }
  return graph;
}

}  // namespace dcrd
