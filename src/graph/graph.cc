#include "graph/graph.h"

namespace dcrd {

LinkId Graph::AddEdge(NodeId a, NodeId b, SimDuration delay) {
  DCRD_CHECK(a.underlying() < adjacency_.size());
  DCRD_CHECK(b.underlying() < adjacency_.size());
  DCRD_CHECK(a != b) << "self-loop on " << a;
  DCRD_CHECK(!HasEdge(a, b)) << "parallel edge " << a << "-" << b;
  DCRD_CHECK(delay > SimDuration::Zero());
  const LinkId id(static_cast<LinkId::underlying_type>(edges_.size()));
  edges_.push_back(EdgeSpec{a, b, delay});
  adjacency_[a.underlying()].push_back(Neighbor{b, id});
  adjacency_[b.underlying()].push_back(Neighbor{a, id});
  return id;
}

std::optional<LinkId> Graph::FindEdge(NodeId a, NodeId b) const {
  if (a.underlying() >= adjacency_.size()) return std::nullopt;
  for (const Neighbor& n : adjacency_[a.underlying()]) {
    if (n.peer == b) return n.link;
  }
  return std::nullopt;
}

std::vector<NodeId> Graph::AllNodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(node_count());
  for (std::size_t i = 0; i < node_count(); ++i) {
    nodes.emplace_back(static_cast<NodeId::underlying_type>(i));
  }
  return nodes;
}

}  // namespace dcrd
