#include "graph/yen_ksp.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace dcrd {

namespace {

WeightedPath MakePath(const Graph& graph, const PathTree& tree, NodeId dest,
                      const LinkDelayFn& delay) {
  WeightedPath path;
  path.nodes = tree.PathTo(dest);
  path.links = tree.LinksTo(dest);
  path.total_delay = SimDuration::Zero();
  for (LinkId link : path.links) {
    path.total_delay += delay ? delay(link) : graph.edge(link).delay;
  }
  return path;
}

// Ordering for the candidate set: by delay, then lexicographic node ids so
// the algorithm is deterministic.
struct CandidateLess {
  bool operator()(const WeightedPath& a, const WeightedPath& b) const {
    if (a.total_delay != b.total_delay) return a.total_delay < b.total_delay;
    return a.nodes < b.nodes;
  }
};

}  // namespace

std::vector<WeightedPath> YenKShortestPaths(const Graph& graph, NodeId source,
                                            NodeId dest, std::size_t k,
                                            const LinkDelayFn& delay) {
  std::vector<WeightedPath> result;
  if (k == 0) return result;

  const PathTree first_tree = ShortestDelayTree(graph, source, delay);
  if (!first_tree.Reachable(dest)) return result;
  result.push_back(MakePath(graph, first_tree, dest, delay));

  std::set<WeightedPath, CandidateLess> candidates;

  while (result.size() < k) {
    const WeightedPath& previous = result.back();
    // Each prefix of the previous path becomes a spur root.
    for (std::size_t spur_index = 0; spur_index + 1 < previous.nodes.size();
         ++spur_index) {
      const NodeId spur_node = previous.nodes[spur_index];

      // Links to ban: the edge each already-found path with the same prefix
      // takes out of the spur node.
      std::unordered_set<LinkId::underlying_type> banned_links;
      for (const WeightedPath& found : result) {
        if (found.nodes.size() > spur_index &&
            std::equal(previous.nodes.begin(),
                       previous.nodes.begin() +
                           static_cast<std::ptrdiff_t>(spur_index + 1),
                       found.nodes.begin())) {
          banned_links.insert(found.links[spur_index].underlying());
        }
      }
      // Nodes on the root path (except the spur node) must not reappear —
      // this is what keeps paths loopless.
      std::unordered_set<NodeId::underlying_type> banned_nodes;
      for (std::size_t i = 0; i < spur_index; ++i) {
        banned_nodes.insert(previous.nodes[i].underlying());
      }

      const auto admit = [&](LinkId link) {
        if (banned_links.contains(link.underlying())) return false;
        const EdgeSpec& edge = graph.edge(link);
        return !banned_nodes.contains(edge.a.underlying()) &&
               !banned_nodes.contains(edge.b.underlying());
      };

      const PathTree spur_tree =
          ShortestDelayTree(graph, spur_node, delay, admit);
      if (!spur_tree.Reachable(dest)) continue;

      WeightedPath total;
      total.nodes.assign(previous.nodes.begin(),
                         previous.nodes.begin() +
                             static_cast<std::ptrdiff_t>(spur_index));
      total.links.assign(previous.links.begin(),
                         previous.links.begin() +
                             static_cast<std::ptrdiff_t>(spur_index));
      const std::vector<NodeId> spur_nodes = spur_tree.PathTo(dest);
      const std::vector<LinkId> spur_links = spur_tree.LinksTo(dest);
      total.nodes.insert(total.nodes.end(), spur_nodes.begin(),
                         spur_nodes.end());
      total.links.insert(total.links.end(), spur_links.begin(),
                         spur_links.end());
      total.total_delay = SimDuration::Zero();
      for (LinkId link : total.links) {
        total.total_delay += delay ? delay(link) : graph.edge(link).delay;
      }
      if (std::find(result.begin(), result.end(), total) == result.end()) {
        candidates.insert(std::move(total));
      }
    }

    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

std::size_t SharedLinkCount(const WeightedPath& a, const WeightedPath& b) {
  std::unordered_set<LinkId::underlying_type> links_a;
  for (LinkId link : a.links) links_a.insert(link.underlying());
  std::size_t shared = 0;
  for (LinkId link : b.links) {
    if (links_a.contains(link.underlying())) ++shared;
  }
  return shared;
}

}  // namespace dcrd
