#include "graph/partition.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

namespace dcrd {

std::vector<int> BfsContiguousPartition(const Graph& graph, int shard_count) {
  const std::size_t n = graph.node_count();
  DCRD_CHECK(shard_count >= 1);
  const std::size_t shards =
      std::min<std::size_t>(static_cast<std::size_t>(shard_count), n);

  // Deterministic BFS layout: adjacency lists are in insertion order (a
  // topology-generator guarantee), unvisited components start from the
  // lowest unvisited id.
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::deque<NodeId> frontier;
  for (std::size_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    visited[root] = true;
    frontier.push_back(NodeId(static_cast<NodeId::underlying_type>(root)));
    while (!frontier.empty()) {
      const NodeId node = frontier.front();
      frontier.pop_front();
      order.push_back(node);
      for (const Neighbor& neighbor : graph.neighbors(node)) {
        if (visited[neighbor.peer.underlying()]) continue;
        visited[neighbor.peer.underlying()] = true;
        frontier.push_back(neighbor.peer);
      }
    }
  }

  // Cut the layout into `shards` contiguous blocks, sizes n/shards rounded
  // so the first (n % shards) blocks take one extra node.
  std::vector<int> owner(n, 0);
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t size = base + (s < extra ? 1 : 0);
    for (std::size_t i = 0; i < size; ++i) {
      owner[order[cursor++].underlying()] = static_cast<int>(s);
    }
  }
  DCRD_CHECK(cursor == n);
  return owner;
}

std::vector<int> RoundRobinPartition(std::size_t node_count, int shard_count) {
  DCRD_CHECK(shard_count >= 1);
  std::vector<int> owner(node_count, 0);
  for (std::size_t i = 0; i < node_count; ++i) {
    owner[i] = static_cast<int>(i % static_cast<std::size_t>(shard_count));
  }
  return owner;
}

std::int64_t MinCrossShardDelayMicros(const Graph& graph,
                                      const std::vector<int>& owner,
                                      double delay_jitter,
                                      double gray_delay_factor,
                                      double gray_probability) {
  DCRD_CHECK(owner.size() == graph.node_count());
  std::int64_t min_micros = std::numeric_limits<std::int64_t>::max();
  for (const EdgeSpec& edge : graph.edges()) {
    if (owner[edge.a.underlying()] == owner[edge.b.underlying()]) continue;
    min_micros = std::min(min_micros, edge.delay.micros());
  }
  if (min_micros == std::numeric_limits<std::int64_t>::max()) {
    return min_micros;
  }
  // Worst-case shrink the delay processes can apply to a propagation time:
  // jitter's low side, and — when gray episodes are possible — a delay
  // factor below 1 (the default 3.0 only stretches, so it never shrinks the
  // bound).
  double scale = 1.0 - delay_jitter;
  if (gray_probability > 0.0 && gray_delay_factor < 1.0) {
    scale *= gray_delay_factor;
  }
  scale = std::max(scale, 0.0);
  return static_cast<std::int64_t>(
      std::floor(static_cast<double>(min_micros) * scale));
}

}  // namespace dcrd
