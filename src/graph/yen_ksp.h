// Yen's algorithm for the K shortest loopless paths.
//
// The Multipath baseline (Section IV-B) sends each packet down the shortest
// delay path plus "another path selected from the top 5 shortest delay paths
// that has the fewest overlapping links with the shortest delay path". Yen's
// algorithm supplies exactly that top-5 list.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "graph/graph.h"
#include "graph/shortest_path.h"

namespace dcrd {

struct WeightedPath {
  std::vector<NodeId> nodes;  // source..dest inclusive
  std::vector<LinkId> links;  // nodes.size() - 1 entries
  SimDuration total_delay;

  friend bool operator==(const WeightedPath&, const WeightedPath&) = default;
};

// Up to `k` loopless source->dest paths in nondecreasing delay order (fewer
// if the graph does not contain k distinct paths). Deterministic for a given
// graph. `delay` overrides ground-truth link delays when planning on
// monitored estimates.
std::vector<WeightedPath> YenKShortestPaths(const Graph& graph, NodeId source,
                                            NodeId dest, std::size_t k,
                                            const LinkDelayFn& delay = nullptr);

// Number of links shared between two paths (set intersection size); the
// Multipath baseline minimises this overlap for its second path.
std::size_t SharedLinkCount(const WeightedPath& a, const WeightedPath& b);

}  // namespace dcrd
