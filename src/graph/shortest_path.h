// Shortest-path machinery used by every router.
//
// Three variants cover the paper's needs:
//   * ShortestDelayTree      — Dijkstra on (possibly estimated) link delays;
//                              D-Tree construction and deadline derivation.
//   * ShortestHopTree        — lexicographic (hop count, delay) Dijkstra;
//                              R-Tree ("most reliable tree") construction.
//   * TimeAwareShortestPath  — Dijkstra over the time-expanded graph where a
//                              link may only be entered at instants it is up;
//                              the ORACLE router's omniscient path choice.
//
// All functions take an optional per-link cost override so routers can plan
// on *monitored estimates* while the network itself uses ground truth.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "graph/graph.h"

namespace dcrd {

// Result of a single-source shortest-path computation. `parent[v]` is the
// predecessor of v on the shortest path from the source (invalid for the
// source itself and for unreachable nodes); `parent_link[v]` the edge used.
struct PathTree {
  NodeId source;
  std::vector<SimDuration> distance;  // SimDuration::Max() if unreachable
  std::vector<NodeId> parent;
  std::vector<LinkId> parent_link;
  std::vector<std::uint32_t> hops;  // hop count along the chosen path

  [[nodiscard]] bool Reachable(NodeId v) const {
    return distance[v.underlying()] != SimDuration::Max();
  }
  // Path from source to v as a node sequence (inclusive). Empty when
  // unreachable.
  [[nodiscard]] std::vector<NodeId> PathTo(NodeId v) const;
  // Links along PathTo(v), in order.
  [[nodiscard]] std::vector<LinkId> LinksTo(NodeId v) const;
};

// Per-link planning delay. Defaults to the graph's ground-truth delay.
using LinkDelayFn = std::function<SimDuration(LinkId)>;
// Link admissibility filter (e.g. "exclude these Yen spur edges").
using LinkFilterFn = std::function<bool(LinkId)>;

// Dijkstra minimising total delay. Deterministic: ties broken by node id.
PathTree ShortestDelayTree(const Graph& graph, NodeId source,
                           const LinkDelayFn& delay = nullptr,
                           const LinkFilterFn& admit = nullptr);

// Dijkstra minimising (hop count, then delay) lexicographically. Produces
// the paper's R-Tree: minimum-hop paths, delay as the deterministic
// tie-break.
PathTree ShortestHopTree(const Graph& graph, NodeId source,
                         const LinkDelayFn& delay = nullptr,
                         const LinkFilterFn& admit = nullptr);

// Whether a link can be *entered* at absolute time `t` (the transmission
// will then occupy it for the link delay).
using LinkUpAtFn = std::function<bool(LinkId, SimTime)>;

struct TimedPath {
  std::vector<NodeId> nodes;  // source..dest inclusive
  std::vector<LinkId> links;
  SimTime arrival;
};

// Earliest-arrival path from `source` (departing at `depart`) to `dest`
// where every hop must be up at the moment it is entered. Returns nullopt
// when no such path exists. This is the ORACLE's planning primitive: it
// sees the ground-truth failure schedule including the future.
std::optional<TimedPath> TimeAwareShortestPath(const Graph& graph,
                                               NodeId source, NodeId dest,
                                               SimTime depart,
                                               const LinkUpAtFn& up_at,
                                               const LinkDelayFn& delay = nullptr);

}  // namespace dcrd
