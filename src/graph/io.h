// Topology import/export.
//
// Two formats:
//  * Edge list — the interchange format the tools read back:
//      line 1:  <node_count>
//      then:    <a> <b> <delay_us>        (one undirected edge per line)
//    '#'-prefixed lines and blank lines are comments.
//  * Graphviz DOT — export-only, for visualising overlays in docs.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph.h"

namespace dcrd {

// Renders the overlay as an undirected DOT graph; edge labels carry the
// delay in milliseconds.
std::string ToDot(const Graph& graph);

void WriteEdgeList(std::ostream& os, const Graph& graph);

// Parses the edge-list format. On malformed input returns nullopt and, when
// `error` is non-null, a one-line description of the first problem.
std::optional<Graph> ReadEdgeList(std::istream& is, std::string* error = nullptr);

}  // namespace dcrd
