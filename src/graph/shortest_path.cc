#include "graph/shortest_path.h"

#include <algorithm>
#include <queue>

namespace dcrd {

std::vector<NodeId> PathTree::PathTo(NodeId v) const {
  if (!Reachable(v)) return {};
  std::vector<NodeId> path;
  for (NodeId cur = v; cur.valid(); cur = parent[cur.underlying()]) {
    path.push_back(cur);
    if (cur == source) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<LinkId> PathTree::LinksTo(NodeId v) const {
  if (!Reachable(v)) return {};
  std::vector<LinkId> links;
  for (NodeId cur = v; cur != source; cur = parent[cur.underlying()]) {
    links.push_back(parent_link[cur.underlying()]);
  }
  std::reverse(links.begin(), links.end());
  return links;
}

namespace {

// Shared Dijkstra skeleton; Cost must be totally ordered and support the
// relaxation `Extend(cost, edge_delay)`.
template <typename Cost, typename ExtendFn, typename InitFn>
PathTree RunDijkstra(const Graph& graph, NodeId source,
                     const LinkDelayFn& delay, const LinkFilterFn& admit,
                     Cost zero, Cost infinity, ExtendFn extend,
                     InitFn cost_to_duration) {
  const std::size_t n = graph.node_count();
  DCRD_CHECK(source.underlying() < n);

  std::vector<Cost> best(n, infinity);
  PathTree tree;
  tree.source = source;
  tree.distance.assign(n, SimDuration::Max());
  tree.parent.assign(n, NodeId());
  tree.parent_link.assign(n, LinkId());
  tree.hops.assign(n, 0);

  struct QueueEntry {
    Cost cost;
    NodeId node;
    bool operator>(const QueueEntry& other) const {
      if (cost != other.cost) return cost > other.cost;
      return node > other.node;  // deterministic tie-break
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue;

  best[source.underlying()] = zero;
  queue.push({zero, source});
  std::vector<bool> done(n, false);

  while (!queue.empty()) {
    const auto [cost, node] = queue.top();
    queue.pop();
    if (done[node.underlying()]) continue;
    done[node.underlying()] = true;

    for (const Neighbor& nb : graph.neighbors(node)) {
      if (admit && !admit(nb.link)) continue;
      if (done[nb.peer.underlying()]) continue;
      const SimDuration w =
          delay ? delay(nb.link) : graph.edge(nb.link).delay;
      const Cost candidate = extend(cost, w);
      if (candidate < best[nb.peer.underlying()]) {
        best[nb.peer.underlying()] = candidate;
        tree.parent[nb.peer.underlying()] = node;
        tree.parent_link[nb.peer.underlying()] = nb.link;
        tree.hops[nb.peer.underlying()] = tree.hops[node.underlying()] + 1;
        queue.push({candidate, nb.peer});
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (best[i] != infinity) tree.distance[i] = cost_to_duration(best[i]);
  }
  tree.distance[source.underlying()] = SimDuration::Zero();
  return tree;
}

}  // namespace

PathTree ShortestDelayTree(const Graph& graph, NodeId source,
                           const LinkDelayFn& delay,
                           const LinkFilterFn& admit) {
  return RunDijkstra<SimDuration>(
      graph, source, delay, admit, SimDuration::Zero(), SimDuration::Max(),
      [](SimDuration cost, SimDuration w) { return cost + w; },
      [](SimDuration cost) { return cost; });
}

PathTree ShortestHopTree(const Graph& graph, NodeId source,
                         const LinkDelayFn& delay, const LinkFilterFn& admit) {
  using Cost = std::pair<std::uint32_t, SimDuration>;  // (hops, delay)
  const Cost zero{0, SimDuration::Zero()};
  const Cost infinity{UINT32_MAX, SimDuration::Max()};
  return RunDijkstra<Cost>(
      graph, source, delay, admit, zero, infinity,
      [](Cost cost, SimDuration w) {
        return Cost{cost.first + 1, cost.second + w};
      },
      [](Cost cost) { return cost.second; });
}

std::optional<TimedPath> TimeAwareShortestPath(const Graph& graph,
                                               NodeId source, NodeId dest,
                                               SimTime depart,
                                               const LinkUpAtFn& up_at,
                                               const LinkDelayFn& delay) {
  const std::size_t n = graph.node_count();
  DCRD_CHECK(source.underlying() < n && dest.underlying() < n);

  std::vector<SimTime> arrival(n, SimTime::Max());
  std::vector<NodeId> parent(n, NodeId());
  std::vector<LinkId> parent_link(n, LinkId());

  struct QueueEntry {
    SimTime at;
    NodeId node;
    bool operator>(const QueueEntry& other) const {
      if (at != other.at) return at > other.at;
      return node > other.node;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue;
  arrival[source.underlying()] = depart;
  queue.push({depart, source});
  std::vector<bool> done(n, false);

  while (!queue.empty()) {
    const auto [at, node] = queue.top();
    queue.pop();
    if (done[node.underlying()]) continue;
    done[node.underlying()] = true;
    if (node == dest) break;

    for (const Neighbor& nb : graph.neighbors(node)) {
      if (done[nb.peer.underlying()]) continue;
      // The link must be up at the instant the packet enters it. We do not
      // model waiting at a node for a link to recover: the ORACLE, like the
      // paper's, picks a path that works "as is" at traversal times.
      if (!up_at(nb.link, at)) continue;
      const SimDuration w = delay ? delay(nb.link) : graph.edge(nb.link).delay;
      const SimTime t = at + w;
      if (t < arrival[nb.peer.underlying()]) {
        arrival[nb.peer.underlying()] = t;
        parent[nb.peer.underlying()] = node;
        parent_link[nb.peer.underlying()] = nb.link;
        queue.push({t, nb.peer});
      }
    }
  }

  if (arrival[dest.underlying()] == SimTime::Max()) return std::nullopt;

  TimedPath path;
  path.arrival = arrival[dest.underlying()];
  for (NodeId cur = dest; cur != source; cur = parent[cur.underlying()]) {
    path.nodes.push_back(cur);
    path.links.push_back(parent_link[cur.underlying()]);
  }
  path.nodes.push_back(source);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

}  // namespace dcrd
