// Overlay graph model.
//
// Broker nodes are dense ids 0..N-1. Overlay links are undirected (the
// paper's links carry traffic and ACKs both ways) with a symmetric
// propagation delay; each undirected edge has one LinkId. Adjacency lists
// are kept in insertion order, which the deterministic topology generators
// rely on.
#pragma once

#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/logging.h"
#include "common/sim_time.h"

namespace dcrd {

struct Neighbor {
  NodeId peer;
  LinkId link;
};

struct EdgeSpec {
  NodeId a;
  NodeId b;
  SimDuration delay;

  // The endpoint opposite to `from`; precondition: `from` is an endpoint.
  [[nodiscard]] NodeId OtherEnd(NodeId from) const {
    DCRD_CHECK(from == a || from == b);
    return from == a ? b : a;
  }
};

class Graph {
 public:
  explicit Graph(std::size_t node_count) : adjacency_(node_count) {}

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  // Adds an undirected edge; parallel edges and self-loops are programmer
  // errors (the overlay model never needs them).
  LinkId AddEdge(NodeId a, NodeId b, SimDuration delay);

  [[nodiscard]] const EdgeSpec& edge(LinkId id) const {
    DCRD_CHECK(id.underlying() < edges_.size());
    return edges_[id.underlying()];
  }
  [[nodiscard]] const std::vector<EdgeSpec>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<Neighbor>& neighbors(NodeId node) const {
    DCRD_CHECK(node.underlying() < adjacency_.size());
    return adjacency_[node.underlying()];
  }
  [[nodiscard]] std::size_t degree(NodeId node) const {
    return neighbors(node).size();
  }
  [[nodiscard]] std::optional<LinkId> FindEdge(NodeId a, NodeId b) const;
  [[nodiscard]] bool HasEdge(NodeId a, NodeId b) const {
    return FindEdge(a, b).has_value();
  }

  // Convenience for iterating all node ids.
  [[nodiscard]] std::vector<NodeId> AllNodes() const;

 private:
  std::vector<EdgeSpec> edges_;
  std::vector<std::vector<Neighbor>> adjacency_;
};

}  // namespace dcrd
