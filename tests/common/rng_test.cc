#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace dcrd {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng root(55);
  Rng f1 = root.Fork("failures");
  Rng f2 = Rng(55).Fork("failures");
  EXPECT_EQ(f1(), f2());

  Rng g = root.Fork("topology");
  Rng h = root.Fork("failures");
  EXPECT_NE(g(), h());
}

TEST(RngTest, ForkIndexYieldsDistinctStreams) {
  Rng root(55);
  EXPECT_NE(root.Fork("rep", 0)(), root.Fork("rep", 1)());
}

TEST(RngTest, ForkDoesNotAdvanceParent) {
  Rng a(9), b(9);
  (void)a.Fork("x");
  EXPECT_EQ(a(), b());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_LT(rng.NextBounded(17), 17U);
  }
  EXPECT_EQ(rng.NextBounded(0), 0U);
  EXPECT_EQ(rng.NextBounded(1), 0U);
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(3);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10'000; ++i) ++seen[rng.NextBounded(10)];
  for (int count : seen) EXPECT_GT(count, 800);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(13);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.06) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.06, 0.005);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(21);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, HashLabelStable) {
  EXPECT_EQ(HashLabel("failures"), HashLabel("failures"));
  EXPECT_NE(HashLabel("failures"), HashLabel("topology"));
}

}  // namespace
}  // namespace dcrd
