#include "common/flags.h"

#include <thread>

#include <gtest/gtest.h>

namespace dcrd {
namespace {

Flags ParseArgs(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  argv.push_back(const_cast<char*>("binary"));
  for (auto& arg : storage) argv.push_back(arg.data());
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsForm) {
  const Flags flags = ParseArgs({"--pf=0.06", "--nodes=20"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("pf", 0), 0.06);
  EXPECT_EQ(flags.GetInt("nodes", 0), 20);
}

TEST(FlagsTest, SpaceForm) {
  const Flags flags = ParseArgs({"--seconds", "600"});
  EXPECT_EQ(flags.GetInt("seconds", 0), 600);
}

TEST(FlagsTest, BareBoolean) {
  const Flags flags = ParseArgs({"--paper"});
  EXPECT_TRUE(flags.GetBool("paper", false));
  EXPECT_FALSE(flags.GetBool("missing", false));
}

TEST(FlagsTest, ExplicitFalse) {
  const Flags flags = ParseArgs({"--fallback=false", "--x=0", "--y=no"});
  EXPECT_FALSE(flags.GetBool("fallback", true));
  EXPECT_FALSE(flags.GetBool("x", true));
  EXPECT_FALSE(flags.GetBool("y", true));
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  const Flags flags = ParseArgs({});
  EXPECT_EQ(flags.GetInt("n", 42), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("p", 0.5), 0.5);
  EXPECT_EQ(flags.GetString("s", "dflt"), "dflt");
  EXPECT_FALSE(flags.Has("n"));
}

TEST(FlagsTest, BenchmarkFlagsPassThrough) {
  const Flags flags = ParseArgs({"--benchmark_filter=BM_Run", "--pf=0.1"});
  ASSERT_EQ(flags.passthrough().size(), 1U);
  EXPECT_EQ(flags.passthrough()[0], "--benchmark_filter=BM_Run");
  EXPECT_TRUE(flags.Has("pf"));
}

TEST(FlagsTest, PositionalArgumentsPassThrough) {
  const Flags flags = ParseArgs({"positional", "--a=1"});
  ASSERT_EQ(flags.passthrough().size(), 1U);
  EXPECT_EQ(flags.passthrough()[0], "positional");
}

TEST(FlagsTest, SpaceFormDoesNotEatNextFlag) {
  const Flags flags = ParseArgs({"--verbose", "--pf=0.1"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("pf", 0), 0.1);
}

TEST(FlagsTest, UnknownFlagDetection) {
  const Flags flags = ParseArgs({"--pf=1", "--typo=2"});
  const auto unknown = flags.UnknownFlags({"pf", "nodes"});
  ASSERT_EQ(unknown.size(), 1U);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(FlagsTest, UnqueriedFlagsTracksEveryAccessor) {
  const Flags flags = ParseArgs(
      {"--pf=0.1", "--nodes=20", "--label=x", "--fast", "--typo=7"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("pf", 0), 0.1);
  EXPECT_EQ(flags.GetInt("nodes", 0), 20);
  EXPECT_EQ(flags.GetString("label", ""), "x");
  EXPECT_TRUE(flags.GetBool("fast", false));
  const auto unqueried = flags.UnqueriedFlags();
  ASSERT_EQ(unqueried.size(), 1U);
  EXPECT_EQ(unqueried[0], "typo");
}

TEST(FlagsTest, HasCountsAsQuery) {
  // Conditional reads (`if (flags.Has("x")) ...`) must mark the flag as
  // recognised even when the branch is not taken.
  const Flags flags = ParseArgs({"--seconds=600"});
  EXPECT_TRUE(flags.Has("seconds"));
  EXPECT_TRUE(flags.UnqueriedFlags().empty());
}

TEST(FlagsTest, QueryingWithDefaultCoversAbsentFlag) {
  const Flags flags = ParseArgs({});
  EXPECT_EQ(flags.GetInt("n", 3), 3);
  EXPECT_TRUE(flags.UnqueriedFlags().empty());
}

TEST(FlagsTest, RepeatedQueriesFromOneThreadAreFine) {
  const Flags flags = ParseArgs({"--a=1", "--b=2"});
  EXPECT_EQ(flags.GetInt("a", 0), 1);
  EXPECT_EQ(flags.GetInt("b", 0), 2);
  EXPECT_EQ(flags.GetInt("a", 0), 1);  // re-query on the same thread
  EXPECT_TRUE(flags.UnqueriedFlags().empty());
}

TEST(FlagsTest, QueriesConfinedToASingleWorkerThreadAreFine) {
  // The contract pins Flags to the *first* querying thread, whichever one
  // that is — a worker may own it as long as no second thread joins in.
  const Flags flags = ParseArgs({"--a=1"});
  std::int64_t seen = 0;
  std::thread worker([&] { seen = flags.GetInt("a", 0); });
  worker.join();
  EXPECT_EQ(seen, 1);
}

TEST(FlagsTest, SealAfterFullReadIsQuiet) {
  const Flags flags = ParseArgs({"--a=1"});
  EXPECT_EQ(flags.GetInt("a", 0), 1);
  EXPECT_FALSE(flags.sealed());
  flags.Seal();
  EXPECT_TRUE(flags.sealed());
  EXPECT_TRUE(flags.UnqueriedFlags().empty());  // bookkeeping still readable
}

TEST(FlagsDeathTest, QueryAfterSealAborts) {
  // The shard-worker contract: every flag is read before the first shard
  // thread starts. A late read — even from the pinned thread — is a
  // programmer error, not a data race to get lucky on.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const Flags flags = ParseArgs({"--a=1", "--shards=4"});
  EXPECT_DEATH(
      {
        (void)flags.GetInt("a", 0);
        (void)flags.GetInt("shards", 1);
        flags.Seal();  // shard threads may start now...
        (void)flags.GetInt("a", 0);  // ...so this must abort
      },
      "queried after Seal");
}

TEST(FlagsDeathTest, CrossThreadQueryAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const Flags flags = ParseArgs({"--a=1", "--b=2"});
  EXPECT_DEATH(
      {
        (void)flags.GetInt("a", 0);  // pins the query thread
        std::thread other([&] { (void)flags.GetInt("b", 0); });
        other.join();
      },
      "multiple threads");
}

}  // namespace
}  // namespace dcrd
