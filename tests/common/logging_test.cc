#include "common/logging.h"

#include <gtest/gtest.h>

namespace dcrd {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GlobalLogLevel()) {}
  ~LogLevelGuard() { GlobalLogLevel() = saved_; }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelGatesOutput) {
  LogLevelGuard guard;
  GlobalLogLevel() = LogLevel::kWarn;

  ::testing::internal::CaptureStderr();
  DCRD_LOG(kError) << "error-visible";
  DCRD_LOG(kDebug) << "debug-hidden";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("error-visible"), std::string::npos);
  EXPECT_EQ(captured.find("debug-hidden"), std::string::npos);
}

TEST(LoggingTest, DebugLevelShowsEverything) {
  LogLevelGuard guard;
  GlobalLogLevel() = LogLevel::kDebug;
  ::testing::internal::CaptureStderr();
  DCRD_LOG(kDebug) << "now-visible";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("now-visible"), std::string::npos);
}

TEST(LoggingTest, MessagesCarryFileAndLevelTag) {
  LogLevelGuard guard;
  GlobalLogLevel() = LogLevel::kInfo;
  ::testing::internal::CaptureStderr();
  DCRD_LOG(kInfo) << "tagged";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("[I logging_test.cc:"), std::string::npos);
}

TEST(LoggingDeathTest, CheckFailureAbortsWithExpression) {
  EXPECT_DEATH({ DCRD_CHECK(1 == 2) << "math broke"; },
               "CHECK failed: 1 == 2.*math broke");
}

TEST(LoggingTest, CheckPassesThrough) {
  DCRD_CHECK(true) << "never evaluated";
  SUCCEED();
}

}  // namespace
}  // namespace dcrd
