#include "common/logging.h"

#include <gtest/gtest.h>

#include "event/scheduler.h"

namespace dcrd {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GlobalLogLevel()) {}
  ~LogLevelGuard() { GlobalLogLevel() = saved_; }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelGatesOutput) {
  LogLevelGuard guard;
  GlobalLogLevel() = LogLevel::kWarn;

  ::testing::internal::CaptureStderr();
  DCRD_LOG(kError) << "error-visible";
  DCRD_LOG(kDebug) << "debug-hidden";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("error-visible"), std::string::npos);
  EXPECT_EQ(captured.find("debug-hidden"), std::string::npos);
}

TEST(LoggingTest, DebugLevelShowsEverything) {
  LogLevelGuard guard;
  GlobalLogLevel() = LogLevel::kDebug;
  ::testing::internal::CaptureStderr();
  DCRD_LOG(kDebug) << "now-visible";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("now-visible"), std::string::npos);
}

TEST(LoggingTest, MessagesCarryComponentFileAndLevelTag) {
  LogLevelGuard guard;
  GlobalLogLevel() = LogLevel::kInfo;
  ::testing::internal::CaptureStderr();
  DCRD_LOG(kInfo) << "tagged";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  // Outside a scheduler run the sim-time field is "-".
  EXPECT_NE(captured.find("[I - common/logging_test.cc:"), std::string::npos);
}

TEST(LoggingTest, MessagesInsideSchedulerRunCarrySimTime) {
  LogLevelGuard guard;
  GlobalLogLevel() = LogLevel::kInfo;
  Scheduler scheduler;
  scheduler.ScheduleAt(SimTime::FromMicros(5000),
                       [] { DCRD_LOG(kInfo) << "timed"; });
  ::testing::internal::CaptureStderr();
  scheduler.Run();
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("[I 5000us common/logging_test.cc:"),
            std::string::npos);
}

TEST(LoggingTest, ComponentPathKeepsLastTwoSegments) {
  EXPECT_EQ(internal::ComponentPath("/a/b/sim/engine.cc"), "sim/engine.cc");
  EXPECT_EQ(internal::ComponentPath("engine.cc"), "engine.cc");
}

TEST(LoggingDeathTest, CheckFailureAbortsWithExpression) {
  EXPECT_DEATH({ DCRD_CHECK(1 == 2) << "math broke"; },
               "CHECK failed: 1 == 2.*math broke");
}

TEST(LoggingTest, CheckPassesThrough) {
  DCRD_CHECK(true) << "never evaluated";
  SUCCEED();
}

}  // namespace
}  // namespace dcrd
