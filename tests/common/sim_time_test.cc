#include "common/sim_time.h"

#include <gtest/gtest.h>

namespace dcrd {
namespace {

TEST(SimDurationTest, UnitConversions) {
  EXPECT_EQ(SimDuration::Millis(3).micros(), 3000);
  EXPECT_EQ(SimDuration::Seconds(2).micros(), 2'000'000);
  EXPECT_DOUBLE_EQ(SimDuration::Micros(2500).millis(), 2.5);
  EXPECT_DOUBLE_EQ(SimDuration::Seconds(5).seconds(), 5.0);
}

TEST(SimDurationTest, FloatingConstructionRounds) {
  EXPECT_EQ(SimDuration::FromMillisF(1.4996).micros(), 1500);
  EXPECT_EQ(SimDuration::FromSecondsF(0.000001).micros(), 1);
  EXPECT_EQ(SimDuration::FromMillisF(-1.5).micros(), -1500);
}

TEST(SimDurationTest, Arithmetic) {
  const SimDuration a = SimDuration::Millis(10);
  const SimDuration b = SimDuration::Millis(4);
  EXPECT_EQ((a + b).micros(), 14'000);
  EXPECT_EQ((a - b).micros(), 6'000);
  EXPECT_EQ((a * 3).micros(), 30'000);
  EXPECT_EQ((3 * a).micros(), 30'000);
  SimDuration c = a;
  c += b;
  c -= SimDuration::Millis(1);
  EXPECT_EQ(c.micros(), 13'000);
}

TEST(SimDurationTest, ComparisonAndRatio) {
  EXPECT_LT(SimDuration::Millis(1), SimDuration::Millis(2));
  EXPECT_EQ(SimDuration::Zero(), SimDuration::Micros(0));
  EXPECT_DOUBLE_EQ(
      SimDuration::Millis(30).RatioTo(SimDuration::Millis(20)), 1.5);
}

TEST(SimTimeTest, AdvancesByDuration) {
  SimTime t = SimTime::Zero();
  t += SimDuration::Seconds(1);
  EXPECT_EQ(t.micros(), 1'000'000);
  const SimTime later = t + SimDuration::Millis(500);
  EXPECT_EQ(later.micros(), 1'500'000);
  EXPECT_EQ((later - t).micros(), 500'000);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::Zero(), SimTime::FromMicros(1));
  EXPECT_LT(SimTime::FromMicros(5), SimTime::Max());
}

TEST(SimTimeTest, SecondsAccessor) {
  EXPECT_DOUBLE_EQ(SimTime::FromMicros(2'500'000).seconds(), 2.5);
}

}  // namespace
}  // namespace dcrd
